"""QoS classes and service-level objectives (SLOs) for cluster serving.

The paper evaluates SLA satisfaction as a *global* target sweep
(turnaround <= N x C_single, Sec VI-C).  A real MLaaS frontend instead
sells differentiated tiers -- Google Cloud ML's "online" vs "batch"
prediction is the paper's own Sec I motivation -- so this module gives
every request a **QoS class** with its own service-level objective:

- ``interactive``: latency-critical online prediction.  Tight slowdown
  target, never budget-limited.
- ``standard``: ordinary interactive traffic.  Moderate target.
- ``batch``: throughput-oriented offline work.  Loose target, and a
  bounded *admission budget share* so a batch flood cannot starve the
  paid tiers (the PCS-style isolation knob).

A class tag travels on :class:`~repro.workloads.specs.TaskSpec` (the
``qos`` field); untagged tasks fall back to a priority-derived default so
every pre-existing workload is already classified: HIGH -> interactive,
MEDIUM -> standard, LOW -> batch, mirroring how the paper's priorities
encode user-facing urgency.

An SLO can also carry an **absolute deadline** (cycles after arrival);
a task meets its SLO only if it satisfies both the slowdown multiplier
and, when set, the deadline.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, Mapping, Optional

from repro.core.tokens import Priority


class QoSClass(enum.Enum):
    INTERACTIVE = "interactive"
    STANDARD = "standard"
    BATCH = "batch"


#: Priority-derived default class for untagged tasks.
QOS_FOR_PRIORITY: Mapping[Priority, QoSClass] = {
    Priority.HIGH: QoSClass.INTERACTIVE,
    Priority.MEDIUM: QoSClass.STANDARD,
    Priority.LOW: QoSClass.BATCH,
}

#: Canonical scheduler priority per class -- how a serving frontend maps
#: a pricing tier onto the paper's user-defined priorities (Sec I).
PRIORITY_FOR_QOS: Mapping[QoSClass, Priority] = {
    qos: priority for priority, qos in QOS_FOR_PRIORITY.items()
}


def qos_of(spec) -> QoSClass:
    """Resolve a task spec's QoS class (explicit tag or priority default).

    Duck-typed on ``spec.qos`` / ``spec.priority`` so it accepts both
    :class:`~repro.workloads.specs.TaskSpec` and runtime-like objects.
    Raises ``ValueError`` for an unknown tag.
    """
    tag = getattr(spec, "qos", None)
    if tag is None:
        return QOS_FOR_PRIORITY[spec.priority]
    try:
        return QoSClass(tag)
    except ValueError:
        known = ", ".join(c.value for c in QoSClass)
        raise ValueError(
            f"unknown QoS class {tag!r} (expected one of: {known})"
        ) from None


@dataclasses.dataclass(frozen=True)
class ServiceLevel:
    """One class's objective and admission entitlements.

    ``slowdown_target`` is the paper's SLA multiplier N: the task meets
    its SLO when turnaround <= N x C_single.  ``deadline_cycles`` (when
    set) additionally bounds turnaround in absolute cycles from arrival.
    ``admission_share`` caps the fraction of the cluster's *outstanding
    admitted estimated work* this class may occupy while the cluster is
    loaded; 1.0 means never budget-limited.
    """

    qos: QoSClass
    slowdown_target: float
    deadline_cycles: Optional[float] = None
    admission_share: float = 1.0

    def __post_init__(self) -> None:
        if self.slowdown_target <= 0:
            raise ValueError("slowdown_target must be positive")
        if self.deadline_cycles is not None and self.deadline_cycles <= 0:
            raise ValueError("deadline_cycles must be positive")
        if not 0.0 < self.admission_share <= 1.0:
            raise ValueError("admission_share must be in (0, 1]")

    def met_by(self, turnaround_cycles: float, isolated_cycles: float) -> bool:
        """Did a completed task with these times meet this SLO?"""
        if turnaround_cycles > self.slowdown_target * isolated_cycles:
            return False
        if (
            self.deadline_cycles is not None
            and turnaround_cycles > self.deadline_cycles
        ):
            return False
        return True


@dataclasses.dataclass(frozen=True)
class SLOPolicy:
    """The cluster's service-level objectives, one per QoS class."""

    levels: Mapping[QoSClass, ServiceLevel]

    def __post_init__(self) -> None:
        for qos in QoSClass:
            if qos not in self.levels:
                raise ValueError(f"missing service level for {qos.value}")
        for qos, level in self.levels.items():
            if level.qos is not qos:
                raise ValueError(
                    f"service level for {qos.value} is tagged {level.qos.value}"
                )

    def level_for(self, spec) -> ServiceLevel:
        return self.levels[qos_of(spec)]

    def task_met_slo(self, task) -> bool:
        """Did a completed :class:`TaskRuntime` meet its class SLO?"""
        return self.level_for(task.spec).met_by(
            task.turnaround_cycles, task.isolated_cycles
        )


def default_slos() -> SLOPolicy:
    """The default three-tier objective set.

    Slowdown targets sit inside the paper's Fig 13 sweep range (N in
    2..20): interactive at 4x, standard at 8x, batch at 16x.  Batch gets
    at most 40% and standard at most 70% of outstanding admitted work;
    interactive is never budget-limited.
    """
    levels: Dict[QoSClass, ServiceLevel] = {
        QoSClass.INTERACTIVE: ServiceLevel(
            QoSClass.INTERACTIVE, slowdown_target=4.0, admission_share=1.0
        ),
        QoSClass.STANDARD: ServiceLevel(
            QoSClass.STANDARD, slowdown_target=8.0, admission_share=0.7
        ),
        QoSClass.BATCH: ServiceLevel(
            QoSClass.BATCH, slowdown_target=16.0, admission_share=0.4
        ),
    }
    return SLOPolicy(levels=levels)


#: Shared default policy instance (immutable).
DEFAULT_SLOS = default_slos()
