"""The ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestSimulateCommand:
    def test_default_prema_run(self, capsys):
        assert main(["simulate", "--tasks", "4", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "PREMA" in out
        assert "ANTT=" in out

    def test_policy_and_mode_flags(self, capsys):
        code = main([
            "simulate", "--policy", "SJF", "--mode", "static",
            "--mechanism", "KILL", "--tasks", "3", "--seed", "1",
        ])
        assert code == 0
        assert "SJF (static/KILL)" in capsys.readouterr().out

    def test_timeline_flag(self, capsys):
        main(["simulate", "--tasks", "3", "--seed", "2", "--timeline"])
        assert "#" in capsys.readouterr().out

    def test_unknown_policy_rejected(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--policy", "EDF"])


class TestPredictCommand:
    def test_cnn_prediction(self, capsys):
        assert main(["predict", "CNN-AN"]) == 0
        out = capsys.readouterr().out
        assert "ground truth" in out
        assert "Algorithm 1" in out

    def test_rnn_prediction_uses_lengths(self, capsys):
        assert main([
            "predict", "RNN-MT1", "--input-len", "20", "--output-len", "25",
        ]) == 0
        assert "in=20 out=25" in capsys.readouterr().out

    def test_unknown_benchmark_errors(self, capsys):
        assert main(["predict", "CNN-XX"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err


class TestZooCommand:
    def test_lists_all_benchmarks(self, capsys):
        assert main(["zoo"]) == 0
        out = capsys.readouterr().out
        for name in ("CNN-AN", "CNN-GN", "CNN-VN", "CNN-MN",
                     "RNN-SA", "RNN-MT1", "RNN-MT2", "RNN-ASR"):
            assert name in out
