"""Parallel rack-sharded simulation: conservative PDES across processes.

``ClusterConfig(workers=N)`` shards the fleet by rack across ``N``
``multiprocessing`` workers.  Each worker owns a contiguous rack group
and runs the *existing* indexed event loop over it; the coordinator
(the parent process) keeps the cluster-level arrival stream and the
rack-frontend pick.  The design is conservative synchronization in the
PDES sense: a worker only simulates an interval it can prove no other
process will retroactively perturb.

Why this is exact, not approximate
----------------------------------

The serial loop (:meth:`ClusterScheduler._run_tasks`) interleaves two
kinds of work:

- **device events** -- completions, arrivals, period ticks, reserved
  dispatches.  Between router decisions these are *rack-local*: with
  the supported configurations (see :func:`supported_reason`) no event
  on rack ``r`` ever reads or writes another rack's state, so each
  worker replays its racks' event sequence bit-for-bit on its own.
- **router decisions** -- each arrival consults the two-tier frontend
  (least aggregate-backlog rack, then in-rack best-first).  These are
  the only cross-rack reads, and they happen at known times: the
  arrival instants of the workload, which the coordinator holds.

So the protocol is a barrier per arrival: the coordinator asks every
worker that could still have an event at or before ``(t, ARRIVAL)`` to
advance through it (processing events in local key order, exactly like
the serial loop's "device events first" rule), collects each worker's
owned-rack routing keys, re-derives the serial rack pick from the
merged aggregates (:func:`repro.sched.rack.pick_rack_from_keys`), and
delegates the in-rack device pick and the injection to the owning
worker.  Because each rack's running-sum key is maintained by exactly
one process, folding the same local updates in the same order, the
mirrored pick is float-identical to single-process
:meth:`~repro.sched.rack.RackRouter.pick_rack`.  After the last
arrival, one drain round runs every worker to quiescence.

Work stealing rides along because, with an infinite cross-rack
threshold, every steal is rack-local and steal *eligibility* (an idle
thief plus a victim holding queued work) only ever appears at a rack's
own COMPLETE/ARRIVAL events -- the exact events whose passes the worker
already runs.  Serial passes triggered by other racks' events find
nothing new and are no-ops.  Preemptive migration does not ride along:
its per-event pass gates on wall-clock-dependent fabric estimates that
serial evaluates at *other* racks' event times, so it takes the serial
fallback (see below).

Determinism contract
--------------------

Merged results are **bit-for-bit identical** to the serial loop --
``_encode_cluster_v2`` digest equality, pinned across all seven
routings in ``tests/test_parallel_equivalence.py``.  Three mechanisms
carry the contract:

- **event-cut accounting**: each worker counts its processed events
  in ``(round, time, kind-rank, device)`` key order -- its processing
  order is also ascending global merge order: rounds are
  nondecreasing per worker, keys ascend within a round, and every
  round-``r`` event in *any* shard keys at or before every
  later-round event (a shard still holding an earlier event would
  have been polled in round ``r``).  The serial loop stops at the
  final completion, so the coordinator takes the largest completion
  key across the shards' drain summaries as the cut and broadcasts
  it.  Every shard event at or before the shard's *own* latest
  completion is at or before that cut by construction, so a running
  count covers those, and only the post-completion tail of keys is
  kept for a finalize-time binary search against the cut: the counts
  sum to the exact serial ``events_processed``, and the migration
  batches -- tagged with their event keys -- sort into the exact
  serial migration-list order.  No per-event log is stored or
  shipped.  This stays exact even though each worker ran past the
  serial break point to quiescence: post-cut events touch no
  digest-visible state and can produce no moves (there is no live
  work left to steal).
- **mutation copy-back**: task runtimes mutate inside workers; the
  coordinator copies every field back onto the caller's original
  objects, so ``result.tasks`` preserves identity exactly like the
  serial loop.
- **shard merge**: tracer shards merge with deterministic emission
  renumbering (:meth:`repro.obs.trace.Tracer.merge_shards`), profiler
  shards sum (:meth:`repro.obs.profile.HotPathProfiler.merge`).

Configurations outside the support matrix -- churn, admission control,
a live token ledger, flat-fleet online routing, preemptive migration,
finite cross-rack steal thresholds, metrics samplers, routing audit --
fall back to the serial loop transparently (``workers`` is then a
no-op), so ``workers=N`` is always safe to set.  ``workers`` of ``None``
or ``1`` never enters this module at all.

The worker start method follows ``REPRO_PARALLEL_START_METHOD``
(``fork`` or ``spawn``; default ``fork`` where available) so CI can pin
both; see ``docs/performance.md`` for the protocol walk-through and
measured scaling.
"""

from __future__ import annotations

import bisect
import dataclasses
import math
import multiprocessing
import os
import time
import traceback
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.trace import Tracer
from repro.sched.policies import make_policy
from repro.sched.rack import pick_rack_from_keys
from repro.sched.simulator import DeviceSim, _EventKind
from repro.sched.task import TaskRuntime
from repro.sched.timeline import ClusterTimeline

__all__ = ["supported_reason", "run_parallel"]

_ARRIVAL_RANK = int(_EventKind.ARRIVAL)


def _start_method() -> str:
    """Worker start method: env override, else fork where available."""
    method = os.environ.get("REPRO_PARALLEL_START_METHOD")
    if method:
        return method
    available = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in available else available[0]


def supported_reason(sched) -> Optional[str]:
    """Why this scheduler must take the serial loop (None = fast path).

    The support matrix is deliberately conservative: anything with a
    cross-rack coupling the barrier protocol does not mediate falls
    back, so the bit-for-bit contract can never silently break.
    """
    from repro.sched.cluster import RoutingPolicy, STATIC_ROUTINGS

    if sched.churn is not None:
        return "device churn reshapes the fleet mid-run"
    if sched.admission is not None:
        return "admission control predicts against fleet-global backlog"
    if sched.batching is not None:
        return "router batching runs the gang loop"
    if sched.sampler is not None:
        return "metrics sampling reads fleet-global gauges"
    if sched.verify_indexes:
        return "index verification runs fleet-wide reference scans"
    if sched.tracer.enabled and sched.tracer.audit_routing:
        return "routing audit scans the whole fleet per arrival"
    if sched.global_tokens and make_policy(sched.policy_name).uses_tokens:
        return "cluster token ledger couples every device"
    routing = sched.routing
    if routing in STATIC_ROUTINGS:
        return None
    if routing is RoutingPolicy.PREEMPTIVE_MIGRATION:
        return "preemptive migration gates on fabric state at foreign events"
    if sched.racks is None:
        return "flat-fleet online routing needs exact fleet-wide argmins"
    if sched.racks.num_racks < 2:
        return "single-rack topology has nothing to shard"
    if (
        routing is RoutingPolicy.WORK_STEALING
        and sched.cross_rack_threshold != math.inf
    ):
        return "finite cross-rack steal threshold couples racks"
    return None


# ----------------------------------------------------------------------
# Partitioning
# ----------------------------------------------------------------------
def _partition(sizes: Sequence[int], workers: int) -> List[List[int]]:
    """Split units (racks or devices) into <= ``workers`` contiguous
    groups, balanced by the per-unit ``sizes``; empty groups dropped."""
    total = sum(sizes)
    groups: List[List[int]] = [[] for _ in range(workers)]
    seen = 0
    for unit, size in enumerate(sizes):
        slot = min(workers - 1, (seen * workers) // total)
        groups[slot].append(unit)
        seen += size
    return [group for group in groups if group]


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
class _Worker:
    """One shard: the full-size device list with foreign devices fenced
    off, plus the local half of the barrier protocol.

    Workers build *all* devices (so device ids, index structures, and
    rack maps keep their global shape) but flip ``accepts_work`` off on
    every non-owned device before constructing the indexes: a fenced
    device keys to an infinite backlog bound, is never idle, never a
    candidate, and its rack's frontend key pins to ``inf`` -- it simply
    cannot interact.  Only owned devices ever receive injections, so
    only owned devices ever have events.
    """

    def __init__(self, init: dict) -> None:
        from repro.sched.cluster import (
            ClusterScheduler,
            RoutingPolicy,
            _ClusterIndexes,
            _RackIndexes,
        )

        self._routing_ws = RoutingPolicy.WORK_STEALING
        sched = ClusterScheduler(
            init["num_devices"],
            init["simulation_config"],
            config=init["config"],
        )
        self.sched = sched
        self.owned = set(init["owned_devices"])
        self.owned_racks: Tuple[int, ...] = tuple(init["owned_racks"] or ())
        self.devices = [
            DeviceSim(
                sched.simulation_config,
                make_policy(sched.policy_name, ledger=None),
                device_id=index,
                tracer=sched.tracer,
            )
            for index in range(sched.num_devices)
        ]
        for index, device in enumerate(self.devices):
            if index not in self.owned:
                device.accepts_work = False
        if sched.racks is not None:
            self.indexes = _RackIndexes(self.devices, sched.racks)
        else:
            self.indexes = _ClusterIndexes(self.devices)
        self.indexes.tracer = sched.tracer
        self.inflight: Dict[int, List[Tuple[float, float, int]]] = {
            index: [] for index in range(sched.num_devices)
        }
        self.assignments: Dict[int, int] = {}
        self.migrations: List[object] = []
        self.runtimes: Dict[int, TaskRuntime] = {}
        #: Event-cut accounting (see the module docstring).  Every event
        #: at or before this shard's latest completion is provably at or
        #: before the global cut (the cut is the *max* completion key),
        #: so a running count suffices for those; only the keys seen
        #: since the latest completion -- the ``tail`` -- are kept for
        #: the finalize-time binary search.  Keys are (round, time,
        #: kind-rank, device), appended in ascending order.
        self.events_total = 0
        self.events_at_last_completion = 0
        self.last_completion: Optional[Tuple[int, float, int, int]] = None
        self.completions = 0
        self.tail_keys: List[Tuple[int, float, int, int]] = []
        #: (key, n_moves) per event whose steal pass moved work, in
        #: ascending key order; parallel to ``self.migrations``.
        self.move_log: List[Tuple[Tuple[int, float, int, int], int]] = []
        #: CPU seconds spent inside advance() calls -- the shard's
        #: event-processing compute, for scaling diagnostics.  CPU, not
        #: wall, so timesharing on an undersized host doesn't inflate it.
        self.busy_seconds = 0.0
        #: Every task, pre-shipped once at startup so the per-arrival
        #: route message carries only scalars.
        self.task_by_id = {task.task_id: task for task in init["tasks"]}
        static_targets = init["static_targets"]
        for task in init["tasks"]:
            target = static_targets.get(task.task_id)
            if target is None or target not in self.owned:
                continue
            self.assignments[task.task_id] = target
            self.runtimes[task.task_id] = task
            self.devices[target].inject(task)
            self.indexes.refresh(self.devices[target])

    def advance(
        self, round_no: int, limit: Optional[Tuple[float, int]]
    ) -> Tuple[List[Tuple[float, int]], Optional[Tuple[float, int]]]:
        """Process every local event with key <= ``limit`` (all of them
        when ``limit`` is None), replicating the serial loop body; then
        report the owned racks' routing keys and the next local key."""
        sched = self.sched
        devices = self.devices
        indexes = self.indexes
        profiler = sched.profiler
        steal = sched.routing is self._routing_ws
        busy_start = time.process_time()
        while True:
            device_index, device_key = indexes.peek_next_device()
            if device_index is None or device_key is None:
                break
            if limit is not None and device_key > limit:
                break
            stepped = devices[device_index]
            now = stepped.step()
            if profiler is None:
                indexes.refresh(stepped)
            else:
                start_ns = time.perf_counter_ns()
                indexes.refresh(stepped)
                profiler.add("index", time.perf_counter_ns() - start_ns)
            self.events_total += 1
            if steal and stepped.last_event_kind in (
                _EventKind.COMPLETE,
                _EventKind.ARRIVAL,
            ):
                passed = sched._steal(devices, now, self.assignments, indexes)
                if passed:
                    self.migrations.extend(passed)
                    self.move_log.append(
                        (
                            (round_no, device_key[0], device_key[1],
                             device_index),
                            len(passed),
                        )
                    )
            if stepped.last_completed is not None:
                self.completions += 1
                self.last_completion = (
                    round_no, device_key[0], device_key[1], device_index
                )
                self.events_at_last_completion = self.events_total
                self.tail_keys.clear()
            else:
                self.tail_keys.append(
                    (round_no, device_key[0], device_key[1], device_index)
                )
        self.busy_seconds += time.process_time() - busy_start
        rack_keys = []
        if self.owned_racks:
            keys = self.indexes._router.rack_keys(self.owned_racks)
            rack_keys = list(zip(keys, self.owned_racks))
        _, next_key = indexes.peek_next_device()
        return rack_keys, next_key

    def route(self, task_id: int, rack: int, now: float) -> None:
        """The in-rack half of the serial two-tier arrival pick."""
        task = self.task_by_id[task_id]
        sched = self.sched
        indexes = self.indexes
        profiler = sched.profiler
        start_ns = time.perf_counter_ns() if profiler is not None else 0
        tracer = sched.tracer
        if tracer.enabled:
            tracer.instant(
                "rack_pick", f"rack_pick r{rack}", now, args={"rack": rack}
            )
        best_key, _ = indexes._best_first(
            indexes._router.device_heap(rack),
            now,
            lambda d: sched._inbound_backlog(self.inflight, d, now),
        )
        if best_key is None:
            raise RuntimeError(
                f"rack {rack} frontend key is live but holds no accepting "
                "device"
            )
        if profiler is not None:
            profiler.add("route", time.perf_counter_ns() - start_ns)
        target = best_key[1]
        self.assignments[task.task_id] = target
        self.runtimes[task.task_id] = task
        self.devices[target].inject(task)
        self.indexes.refresh(self.devices[target])

    def cut_summary(self) -> dict:
        """Drain-round summary the coordinator derives the serial break
        point from: this shard's completion count, its last (largest)
        completion key, and its migration batches tagged by event key."""
        return {
            "last_completion": self.last_completion,
            "completions": self.completions,
            "moves": self.move_log,
        }

    def finalize(self, cut) -> dict:
        tracer = self.sched.tracer
        # Everything through this shard's latest completion is at or
        # before the cut; count the post-completion tail by binary
        # search (sorted ascending; the inf sentinel admits the cut
        # entry itself).
        events_before_cut = self.events_at_last_completion
        if cut is not None:
            events_before_cut += bisect.bisect_left(
                self.tail_keys, cut + (math.inf,)
            )
        return {
            "devices": [
                (
                    index,
                    self.devices[index].result(),
                    self.devices[index].timeline,
                    self.devices[index].num_tasks,
                )
                for index in sorted(self.owned)
            ],
            "assignments": self.assignments,
            "migrations": self.migrations,
            "runtimes": self.runtimes,
            "events_before_cut": events_before_cut,
            "tracer": (
                (tracer.events, tracer.dropped) if tracer.enabled else None
            ),
            "profiler": self.sched.profiler,
            "busy_seconds": self.busy_seconds,
        }


def _worker_main(conn, init: dict) -> None:
    """Process entry point (module-level for spawn compatibility)."""
    try:
        worker = _Worker(init)
    except BaseException:
        conn.send(("error", traceback.format_exc()))
        conn.close()
        return
    try:
        while True:
            message = conn.recv()
            tag = message[0]
            if tag == "advance":
                reply = ("ok",) + worker.advance(message[1], message[2])
                if message[2] is None:  # the drain round
                    reply += (worker.cut_summary(),)
                conn.send(reply)
            elif tag == "route":
                worker.route(message[1], message[2], message[3])
            elif tag == "route_advance":
                # Combined inject + advance: one wakeup per arrival.
                worker.route(message[1], message[2], message[3])
                conn.send(("ok",) + worker.advance(message[4], message[5]))
            elif tag == "finalize":
                conn.send(("result", worker.finalize(message[1])))
            elif tag == "stop":
                break
            else:  # pragma: no cover - protocol bug
                raise RuntimeError(f"unknown message {tag!r}")
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except Exception:
            pass
    finally:
        conn.close()


# ----------------------------------------------------------------------
# Coordinator side
# ----------------------------------------------------------------------
class _WorkerHandle:
    def __init__(self, ctx, init: dict):
        self.conn, child = ctx.Pipe()
        self.process = ctx.Process(
            target=_worker_main, args=(child, init), daemon=True
        )
        self.process.start()
        child.close()
        self.rack_keys: Dict[int, float] = {
            rack: 0.0 for rack in (init["owned_racks"] or ())
        }
        self.next_key: Optional[Tuple[float, int]] = None
        self.dirty = False

    def recv(self):
        reply = self.conn.recv()
        if reply[0] == "error":
            raise RuntimeError(f"parallel worker failed:\n{reply[1]}")
        return reply

    def shutdown(self) -> None:
        try:
            if self.process.is_alive():
                self.conn.send(("stop",))
        except Exception:
            pass
        try:
            self.conn.close()
        except Exception:
            pass
        self.process.join(timeout=5)
        if self.process.is_alive():  # pragma: no cover - hung worker
            self.process.terminate()
            self.process.join(timeout=5)


def _worker_config(sched):
    """The config a worker scheduler is built from: same resolved
    decisions, fresh per-shard observability sinks, no recursion."""
    config = sched.config
    tracer = None
    if sched.tracer.enabled:
        tracer = Tracer(max_events=sched.tracer.max_events)
    profiler = None
    if sched.profiler is not None:
        profiler = type(sched.profiler)()
    return dataclasses.replace(
        config,
        workers=None,
        tracer=tracer,
        profiler=profiler,
        metrics_sampler=None,
    )


def run_parallel(sched, tasks: Sequence[TaskRuntime]):
    """Run ``sched``'s workload across worker processes; bit-for-bit
    equal to :meth:`ClusterScheduler._run_tasks`.  Only call when
    :func:`supported_reason` returned None."""
    from repro.sched.cluster import STATIC_ROUTINGS

    if not tasks:
        raise ValueError("need at least one task")
    seen_ids: set = set()
    for task in tasks:
        if task.task_id in seen_ids:
            raise ValueError(f"duplicate task id {task.task_id} in workload")
        seen_ids.add(task.task_id)

    static = sched.routing in STATIC_ROUTINGS
    racks = sched.racks
    if racks is not None:
        rack_sizes = [
            len(racks.devices_in(rack)) for rack in range(racks.num_racks)
        ]
        rack_groups = _partition(rack_sizes, sched.workers)
        device_groups = [
            [d for rack in group for d in racks.devices_in(rack)]
            for group in rack_groups
        ]
    else:
        device_groups = _partition([1] * sched.num_devices, sched.workers)
        rack_groups = [None] * len(device_groups)

    static_assignments: Dict[int, int] = {}
    if static:
        static_assignments = sched.route(tasks)

    config = _worker_config(sched)
    ctx = multiprocessing.get_context(_start_method())
    handles: List[_WorkerHandle] = []
    owner_of_rack: Dict[int, int] = {}
    phases: Dict[str, float] = {}
    mark = time.perf_counter()

    def _phase(name: str) -> None:
        nonlocal mark
        now = time.perf_counter()
        phases[name] = now - mark
        mark = now

    try:
        for slot, (group, rack_group) in enumerate(
            zip(device_groups, rack_groups)
        ):
            owned = set(group)
            init = {
                "num_devices": sched.num_devices,
                "simulation_config": sched.simulation_config,
                "config": config,
                "owned_devices": sorted(owned),
                "owned_racks": rack_group,
                "tasks": list(tasks),
                "static_targets": static_assignments,
            }
            handles.append(_WorkerHandle(ctx, init))
            for rack in rack_group or ():
                owner_of_rack[rack] = slot
        _phase("setup")

        profiler = sched.profiler
        round_no = 0
        if not static:
            # Per arrival: pick the rack from the cached keys (which
            # reflect every earlier route and every event at or before
            # this arrival -- the previous round's combined message
            # advanced exactly that far), then send ONE message to the
            # owning shard that both injects the task and advances it
            # through the *next* arrival, replying with fresh keys.
            # One worker wakeup per arrival is the protocol floor.
            pending = sorted(
                tasks, key=lambda t: (t.spec.arrival_cycles, t.task_id)
            )
            for index, task in enumerate(pending):
                rack = pick_rack_from_keys(
                    [
                        (key, rack)
                        for handle in handles
                        for rack, key in handle.rack_keys.items()
                    ]
                )
                if rack is None:
                    raise RuntimeError("rack frontend has no accepting rack")
                owner = handles[owner_of_rack[rack]]
                arrival = task.spec.arrival_cycles
                if index + 1 == len(pending):
                    # Last arrival: inject one-way; the drain round
                    # advances every shard anyway.
                    owner.conn.send(("route", task.task_id, rack, arrival))
                    owner.dirty = True
                    break
                round_no += 1
                limit = (
                    pending[index + 1].spec.arrival_cycles, _ARRIVAL_RANK
                )
                start_ns = (
                    time.perf_counter_ns() if profiler is not None else 0
                )
                owner.conn.send(
                    ("route_advance", task.task_id, rack, arrival,
                     round_no, limit)
                )
                waiting = [owner]
                for handle in handles:
                    if handle is owner:
                        continue
                    if handle.dirty or (
                        handle.next_key is not None
                        and handle.next_key <= limit
                    ):
                        handle.conn.send(("advance", round_no, limit))
                        waiting.append(handle)
                for handle in waiting:
                    _, rack_keys, next_key = handle.recv()
                    handle.rack_keys.update(
                        {rack_id: key for key, rack_id in rack_keys}
                    )
                    handle.next_key = next_key
                    handle.dirty = False
                if profiler is not None:
                    profiler.add("sync", time.perf_counter_ns() - start_ns)
        _phase("arrivals")

        # Drain: run every shard to quiescence.  The drain reply
        # carries each shard's cut summary; the serial loop's break
        # point is the largest completion key across shards.
        round_no += 1
        for handle in handles:
            handle.conn.send(("advance", round_no, None))
        summaries = [handle.recv()[3] for handle in handles]
        _phase("drain")
        cut = max(
            (
                summary["last_completion"]
                for summary in summaries
                if summary["last_completion"] is not None
            ),
            default=None,
        )
        completions = sum(s["completions"] for s in summaries)
        if completions != len(tasks):
            raise RuntimeError(
                f"parallel drain completed {completions}/{len(tasks)} tasks"
            )
        for handle in handles:
            handle.conn.send(("finalize", cut))
        payloads = [handle.recv()[1] for handle in handles]
        _phase("finalize")
    finally:
        for handle in handles:
            handle.shutdown()

    sched.last_run_parallel = True
    result = _merge(
        sched,
        tasks,
        payloads,
        summaries,
        cut,
        static_assignments if static else None,
    )
    _phase("merge")
    #: Scaling diagnostics for the most recent parallel run: coordinator
    #: wall seconds per phase plus each worker's in-advance compute
    #: seconds (``sum(worker_busy)/max(...)`` approximates the achieved
    #: drain-phase parallelism on a multi-core host).
    sched.last_parallel_stats = {
        "workers": len(payloads),
        "start_method": _start_method(),
        "phases": phases,
        "worker_busy_seconds": [p["busy_seconds"] for p in payloads],
    }
    return result


def _merge(
    sched,
    tasks: Sequence[TaskRuntime],
    payloads: List[dict],
    summaries: List[dict],
    cut,
    static_assignments: Optional[Dict[int, int]],
):
    """Fold worker payloads into the exact serial ClusterResult."""
    from repro.sched.cluster import ClusterResult

    # The serial loop processed events in global (round, time, rank,
    # device) order and stopped at the final completion -- the ``cut``
    # key.  Each worker already counted its own events at or before the
    # cut (``events_before_cut``, a binary search over its sorted local
    # log), so the serial event count is just the sum; the migration
    # batches come back tagged with their event keys, so sorting the
    # tags reproduces the serial migration order without shipping or
    # walking the event logs themselves.
    events_processed = sum(p["events_before_cut"] for p in payloads)
    tagged: List[Tuple[tuple, int, int, int]] = []
    for slot, summary in enumerate(summaries):
        start = 0
        for key, count in summary["moves"]:
            if key > cut:  # pragma: no cover - breaks the determinism proof
                raise RuntimeError(
                    f"worker {slot} produced {count} migrations after "
                    "the final completion"
                )
            tagged.append((key, slot, start, count))
            start += count
    tagged.sort()
    migrations: List[object] = []
    for _, slot, start, count in tagged:
        migrations.extend(payloads[slot]["migrations"][start:start + count])

    # Device results, in fleet index order, None-preserving.
    device_results: List[object] = [None] * sched.num_devices
    timelines: Dict[int, object] = {}
    for payload in payloads:
        for index, result, timeline, num_tasks in payload["devices"]:
            device_results[index] = result
            if num_tasks > 0 or len(timeline) > 0:
                timelines[index] = timeline

    # Copy worker-side runtime mutations back onto the caller's objects
    # so result.tasks preserves identity, exactly like the serial loop.
    returned: Dict[int, TaskRuntime] = {}
    for payload in payloads:
        returned.update(payload["runtimes"])
    fields = dataclasses.fields(TaskRuntime)
    for task in tasks:
        shipped = returned[task.task_id]
        for field in fields:
            setattr(task, field.name, getattr(shipped, field.name))

    if static_assignments is not None:
        assignments = {
            task.task_id: static_assignments[task.task_id] for task in tasks
        }
    else:
        assignments = {}
        for payload in payloads:
            assignments.update(payload["assignments"])

    tracer = sched.tracer
    if tracer.enabled:
        shards = [p["tracer"] for p in payloads if p["tracer"] is not None]
        tracer.merge_shards([events for events, _ in shards])
        tracer.dropped += sum(dropped for _, dropped in shards)
    if sched.profiler is not None:
        for payload in payloads:
            if payload["profiler"] is not None:
                sched.profiler.merge(payload["profiler"])

    return ClusterResult(
        tasks=tuple(tasks),
        device_results=tuple(device_results),
        assignments=assignments,
        routing=sched.routing.value,
        migrations=tuple(migrations),
        timeline=ClusterTimeline(timelines, transfers=()),
        transfers=(),
        admission_records=(),
        rejected_tasks=(),
        events_processed=events_processed,
        lost_tasks=(),
        rack_of=sched.rack_of,
    )
