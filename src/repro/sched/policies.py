"""Scheduling policies (paper Sec VI-A).

Six policies, matching the evaluation's x-axes:

=======  ==========  ===============================================
Name     Predictor?  Selection rule
=======  ==========  ===============================================
FCFS     no          earliest arrival first (TensorRT-server baseline)
RRB      no          round-robin across ready tasks
HPF      no          highest priority first, FCFS among equals
TOKEN    yes         token candidate group, FCFS among candidates
SJF      yes         shortest estimated remaining job first
PREMA    yes         token candidate group + shortest estimated job
=======  ==========  ===============================================

Each policy also defines ``outranks`` -- whether a would-be candidate
should preempt the running task under a preemptive scheduler.  FCFS and
RRB have no urgency ordering, so they never preempt (they exist as
non-preemptive baselines).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.context import ContextTable, TaskContext
from repro.core.scheduler import PremaPolicyCore, SchedulerConfig
from repro.core.tokens import candidate_threshold


class Policy:
    """Interface consumed by the simulator."""

    name: str = "abstract"
    #: Does the policy read Time_estimated (Algorithm 1 output)?
    uses_predictor: bool = False
    #: Does the policy maintain tokens on period ticks?
    uses_tokens: bool = False

    def on_period(self, table: ContextTable) -> None:
        """Hook invoked at each scheduling-period tick."""

    def on_admit(self, context: TaskContext, now: float) -> None:
        """Cluster hook: ``context`` joined this device's table.

        Fires at every processed arrival -- both fresh requests and
        work-stealing migrations in.  Token state lives on the context
        row, so tokens earned elsewhere travel with a migrated task and
        the default is a no-op.
        """

    def on_remove(self, context: TaskContext, now: float) -> None:
        """Cluster hook: ``context`` left this device (migration out).

        Waiting time has already been settled up to ``now``; policies
        keeping per-device aggregate state should forget the row here.
        """

    def select(self, ready: Sequence[TaskContext]) -> Optional[TaskContext]:
        """Pick the next task among the ready queue (None when empty)."""
        raise NotImplementedError

    def outranks(
        self,
        candidate: TaskContext,
        running: TaskContext,
        ready: Sequence[TaskContext] = (),
    ) -> bool:
        """Should ``candidate`` preempt ``running``?

        ``ready`` is the full ready queue (the candidate included), needed
        by token-threshold policies whose preemption intent depends on the
        whole queue's token state.
        """
        return False

    def reset(self) -> None:
        """Clear any cross-run state (round-robin cursors and the like)."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class FcfsPolicy(Policy):
    """Non-preemptive first-come first-serve (the NP-FCFS baseline)."""

    name = "FCFS"

    def select(self, ready: Sequence[TaskContext]) -> Optional[TaskContext]:
        if not ready:
            return None
        return min(ready, key=lambda row: row.task_id)


class RoundRobinPolicy(Policy):
    """Round-robin among the DNN *models* (Sec VI-A).

    Run-to-completion round-robin over tasks degenerates to FCFS, so the
    rotation is over benchmark names: each pick serves the next model in
    alphabetical rotation that has a ready task (FCFS within a model).
    """

    name = "RRB"

    def __init__(self) -> None:
        self._last_model: str = ""

    def select(self, ready: Sequence[TaskContext]) -> Optional[TaskContext]:
        if not ready:
            return None
        models = sorted({row.benchmark for row in ready})
        chosen_model = next(
            (m for m in models if m > self._last_model), models[0]
        )
        self._last_model = chosen_model
        return min(
            (row for row in ready if row.benchmark == chosen_model),
            key=lambda row: row.task_id,
        )

    def reset(self) -> None:
        self._last_model = ""


class HpfPolicy(Policy):
    """High-priority first; FCFS among equal priorities."""

    name = "HPF"

    def select(self, ready: Sequence[TaskContext]) -> Optional[TaskContext]:
        if not ready:
            return None
        return min(ready, key=lambda row: (-int(row.priority), row.task_id))

    def outranks(
        self,
        candidate: TaskContext,
        running: TaskContext,
        ready: Sequence[TaskContext] = (),
    ) -> bool:
        return int(candidate.priority) > int(running.priority)


class TokenPolicy(Policy):
    """Token-based candidate group, naive FCFS among candidates (Sec VI-A)."""

    name = "TOKEN"
    uses_predictor = True
    uses_tokens = True

    def __init__(self, core: Optional[PremaPolicyCore] = None) -> None:
        self._core = core or PremaPolicyCore()

    def on_period(self, table: ContextTable) -> None:
        self._core.grant_periodic_tokens(table)

    def select(self, ready: Sequence[TaskContext]) -> Optional[TaskContext]:
        if not ready:
            return None
        threshold = candidate_threshold(max(row.tokens for row in ready))
        candidates = [row for row in ready if row.tokens > threshold]
        if not candidates:
            candidates = list(ready)
        return min(candidates, key=lambda row: row.task_id)

    def outranks(
        self,
        candidate: TaskContext,
        running: TaskContext,
        ready: Sequence[TaskContext] = (),
    ) -> bool:
        # The running task competes in the candidate group: preemption
        # fires only when it falls below the dynamic token threshold while
        # a waiting task clears it.
        pool = list(ready) + [running]
        threshold = candidate_threshold(max(row.tokens for row in pool))
        return running.tokens <= threshold < candidate.tokens


class SjfPolicy(Policy):
    """Shortest estimated job first: latency-optimal, priority-blind."""

    name = "SJF"
    uses_predictor = True

    def select(self, ready: Sequence[TaskContext]) -> Optional[TaskContext]:
        if not ready:
            return None
        return min(
            ready, key=lambda row: (row.estimated_remaining_cycles, row.task_id)
        )

    def outranks(
        self,
        candidate: TaskContext,
        running: TaskContext,
        ready: Sequence[TaskContext] = (),
    ) -> bool:
        return (
            candidate.estimated_remaining_cycles
            < running.estimated_remaining_cycles
        )


class PremaPolicy(Policy):
    """The full PREMA policy (Algorithm 2) via the core implementation."""

    name = "PREMA"
    uses_predictor = True
    uses_tokens = True

    def __init__(self, core: Optional[PremaPolicyCore] = None) -> None:
        self.core = core or PremaPolicyCore()

    def on_period(self, table: ContextTable) -> None:
        self.core.grant_periodic_tokens(table)

    def select(self, ready: Sequence[TaskContext]) -> Optional[TaskContext]:
        if not ready:
            return None
        table_like = _ReadyView(ready)
        return self.core.select_candidate(table_like)

    def outranks(
        self,
        candidate: TaskContext,
        running: TaskContext,
        ready: Sequence[TaskContext] = (),
    ) -> bool:
        return self.core.should_preempt(candidate, running, ready)


class _ReadyView:
    """Adapter presenting a ready list through the ContextTable interface."""

    def __init__(self, ready: Sequence[TaskContext]) -> None:
        self._ready = list(ready)

    def ready(self) -> List[TaskContext]:
        return sorted(self._ready, key=lambda row: row.task_id)


POLICY_NAMES = ("FCFS", "RRB", "HPF", "TOKEN", "SJF", "PREMA")

_FACTORIES: Dict[str, type] = {
    "FCFS": FcfsPolicy,
    "RRB": RoundRobinPolicy,
    "HPF": HpfPolicy,
    "TOKEN": TokenPolicy,
    "SJF": SjfPolicy,
    "PREMA": PremaPolicy,
}


def make_policy(
    name: str, scheduler_config: Optional[SchedulerConfig] = None
) -> Policy:
    """Instantiate a policy by its paper name (case-insensitive)."""
    cls = _FACTORIES.get(name.upper())
    if cls is None:
        raise KeyError(f"unknown policy {name!r}; known: {POLICY_NAMES}")
    if cls in (TokenPolicy, PremaPolicy):
        core = PremaPolicyCore(scheduler_config)
        return cls(core)
    return cls()
