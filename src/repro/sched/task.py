"""Per-task runtime state for the multi-task simulator.

A :class:`TaskRuntime` binds together:

- the workload-level :class:`~repro.workloads.specs.TaskSpec` (which model,
  batch, priority, arrival time, sequence lengths);
- the ground-truth :class:`~repro.npu.engine.ExecutionProfile` (what really
  executes, including the true RNN unroll);
- the scheduler-visible :class:`~repro.core.context.TaskContext` row
  (estimated time, tokens, accounted progress);
- preemption bookkeeping: retained progress, pending restore cost, and
  per-mechanism event counters.

The scheduler never reads the ground-truth profile directly -- that is the
paper's information asymmetry between the predictor and reality.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.core.context import TaskContext, TaskState
from repro.npu.engine import ExecutionProfile
from repro.workloads.specs import TaskSpec


@dataclasses.dataclass
class TaskRuntime:
    """Mutable execution record of one dispatched inference task."""

    spec: TaskSpec
    profile: ExecutionProfile
    context: TaskContext

    #: Ground-truth progress retained across preemptions (profile cycles).
    retained_offset: float = 0.0
    #: Restore DMA cycles to pay at the next dispatch (CHECKPOINT resume).
    restore_pending: float = 0.0
    #: Wall-clock cycle of the current dispatch (None when not running).
    dispatch_time: Optional[float] = None
    #: Restore latency charged at the current dispatch.
    dispatch_restore: float = 0.0
    #: Monotonic dispatch counter; stale completion events compare epochs.
    epoch: int = 0

    #: Bytes of the most recent checkpoint still resident in DRAM -- what a
    #: cluster migration must ship.  Zero while running, after a KILL, or
    #: once the checkpoint is consumed by a dispatch-time restore.
    checkpoint_bytes_resident: float = 0.0

    #: Statistics.
    first_dispatch_time: Optional[float] = None
    completion_time: Optional[float] = None
    preemption_count: int = 0
    kill_count: int = 0
    checkpointed_bytes_total: float = 0.0
    wasted_cycles: float = 0.0
    #: Checkpoint migrations this task underwent (cluster layer).
    migration_count: int = 0
    #: Bytes shipped over the interconnect on this task's behalf.
    migrated_bytes_total: float = 0.0

    #: Churn bookkeeping (cluster layer): device failures that destroyed
    #: this task's in-flight state and sent it back to the frontier.
    restart_count: int = 0
    #: Ground-truth cycles of progress destroyed by device failures
    #: (subset of ``wasted_cycles``).
    lost_progress_cycles: float = 0.0
    #: When the last failure orphaned this task (None once re-dispatched).
    orphaned_at: Optional[float] = None
    #: Failure-to-redispatch delay of each completed recovery, cycles.
    recovery_delays: list = dataclasses.field(default_factory=list)

    @property
    def task_id(self) -> int:
        return self.spec.task_id

    @property
    def isolated_cycles(self) -> float:
        """C_single: uninterrupted, isolated execution time (ground truth)."""
        return self.profile.total_cycles

    @property
    def remaining_cycles(self) -> float:
        """Ground-truth work left (excludes any pending restore)."""
        return max(0.0, self.profile.total_cycles - self.retained_offset)

    @property
    def is_done(self) -> bool:
        return self.completion_time is not None

    # ------------------------------------------------------------------
    # Dispatch / progress transitions (driven by the simulator)
    # ------------------------------------------------------------------
    def dispatch(self, now: float) -> float:
        """Mark the task running; returns its completion wall-clock time.

        The ``accrue_wait`` call below is the per-row settlement point of
        the simulator's lazy wait accounting: it integrates the whole
        waiting span since ``context.last_update_cycles`` (arrival, last
        period tick, or preemption re-queue -- whichever came last), so
        the ready queue is never walked between wakes on this row's
        behalf.
        """
        if self.context.state == TaskState.RUNNING:
            raise RuntimeError(f"task {self.task_id} already running")
        if self.is_done:
            raise RuntimeError(f"task {self.task_id} already completed")
        self.context.accrue_wait(now)
        self.context.state = TaskState.RUNNING
        self.context.waited_since_grant = 0.0
        self.dispatch_time = now
        self.dispatch_restore = self.restore_pending
        self.restore_pending = 0.0
        self.checkpoint_bytes_resident = 0.0
        self.epoch += 1
        if self.first_dispatch_time is None:
            self.first_dispatch_time = now
        if self.orphaned_at is not None:
            self.recovery_delays.append(now - self.orphaned_at)
            self.orphaned_at = None
        return now + self.dispatch_restore + self.remaining_cycles

    def progress_at(self, now: float) -> float:
        """Ground-truth profile offset reached by wall-clock ``now``.

        Restore time at the head of the dispatch contributes no progress.
        """
        if self.dispatch_time is None:
            return self.retained_offset
        ran = now - self.dispatch_time - self.dispatch_restore
        if ran <= 0:
            return self.retained_offset
        return min(self.profile.total_cycles, self.retained_offset + ran)

    def wall_time_at_offset(self, offset: float) -> float:
        """Wall-clock cycle at which the current dispatch reaches ``offset``.

        Only meaningful while running; ``offset`` must be at or beyond the
        progress retained at dispatch.  Offsets at the retained point map
        to the end of the restore phase (a preemption request arriving
        mid-restore waits for the restore DMA to finish).
        """
        if self.dispatch_time is None:
            raise RuntimeError(f"task {self.task_id} is not running")
        if offset < self.retained_offset:
            raise ValueError("offset precedes the dispatched progress")
        return self.dispatch_time + self.dispatch_restore + (
            offset - self.retained_offset
        )

    def record_preemption(
        self,
        now: float,
        retained_offset: float,
        restore_latency: float,
        checkpoint_bytes: float,
        killed: bool,
    ) -> None:
        """Return the task to the ready queue after a preemption.

        Resets the wait-accounting baseline to the boundary commit and
        refreshes accounted progress; the simulator re-inserts the row
        into the policy's priority structures (``on_requeue``) right
        after, so ranking keys are recomputed exactly once per preemption.
        """
        if self.context.state != TaskState.RUNNING:
            raise RuntimeError(f"task {self.task_id} not running")
        progress = self.progress_at(now)
        if killed:
            self.wasted_cycles += progress
            self.kill_count += 1
        self.preemption_count += 1
        self.checkpointed_bytes_total += checkpoint_bytes
        self.checkpoint_bytes_resident = checkpoint_bytes
        self.retained_offset = retained_offset
        self.restore_pending = restore_latency
        self.dispatch_time = None
        self.dispatch_restore = 0.0
        self.context.state = TaskState.READY
        self.context.executed_cycles = retained_offset
        self.context.last_update_cycles = now
        self.epoch += 1

    def record_failure(self, now: float) -> float:
        """Destroy this task's device-resident state at a device failure.

        Everything resident on the failed device dies with its DRAM:
        running progress, durable checkpoints, pending restores.  The
        task itself survives (it goes back to the frontier for a fresh
        dispatch from offset zero), keeping its accrued wait and tokens
        -- fairness credit is the scheduler's, not the device's.  Returns
        the ground-truth progress cycles lost.
        """
        lost = self.progress_at(now)
        self.context.accrue_wait(now)  # settles READY/MIGRATING waiters
        self.retained_offset = 0.0
        self.restore_pending = 0.0
        self.checkpoint_bytes_resident = 0.0
        self.dispatch_time = None
        self.dispatch_restore = 0.0
        self.epoch += 1
        self.context.state = TaskState.READY
        self.context.executed_cycles = 0.0
        self.context.last_update_cycles = now
        self.wasted_cycles += lost
        self.lost_progress_cycles += lost
        self.restart_count += 1
        self.orphaned_at = now
        return lost

    def complete(self, now: float) -> None:
        """Mark the task finished at wall-clock ``now``."""
        if self.context.state != TaskState.RUNNING:
            raise RuntimeError(f"task {self.task_id} not running")
        self.retained_offset = self.profile.total_cycles
        self.context.executed_cycles = self.profile.total_cycles
        self.context.state = TaskState.DONE
        self.context.last_update_cycles = now
        self.dispatch_time = None
        self.completion_time = now

    # ------------------------------------------------------------------
    # Metrics accessors
    # ------------------------------------------------------------------
    @property
    def turnaround_cycles(self) -> float:
        """C_multi: completion minus arrival (raises before completion)."""
        if self.completion_time is None:
            raise RuntimeError(f"task {self.task_id} has not completed")
        return self.completion_time - self.spec.arrival_cycles

    @property
    def normalized_turnaround(self) -> float:
        """NTT = C_multi / C_single (Eq 1)."""
        return self.turnaround_cycles / self.isolated_cycles
