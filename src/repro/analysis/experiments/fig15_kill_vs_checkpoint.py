"""Fig 15: PREMA's sensitivity to CHECKPOINT vs KILL.

Re-runs the Fig 12 matrix -- {HPF, TOKEN, SJF, PREMA} x {static, dynamic}
-- with the preemption mechanism set to KILL and to CHECKPOINT, all
normalized to NP-FCFS.  The paper's takeaway: KILL occasionally matches
CHECKPOINT's ANTT but consistently loses on STP (wasted work), so
CHECKPOINT is the robust default (Sec VI-E).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from repro.analysis.experiments.fig12_preemptive import (
    POLICIES,
    VARIANTS,
    run_fig12,
)
from repro.analysis.reporting import format_table
from repro.npu.config import NPUConfig
from repro.sched.prepare import TaskFactory
from repro.workloads.specs import WorkloadSpec

MECHANISMS = ("KILL", "CHECKPOINT")


@dataclasses.dataclass(frozen=True)
class SensitivityRow:
    """One (mechanism, variant, policy) point of Fig 15."""

    mechanism: str
    variant: str
    policy: str
    antt_improvement: float
    fairness_improvement: float
    stp_improvement: float


def run_fig15(
    workloads: Sequence[WorkloadSpec],
    config: Optional[NPUConfig] = None,
    factory: Optional[TaskFactory] = None,
) -> List[SensitivityRow]:
    config = config or NPUConfig()
    factory = factory or TaskFactory(config)
    rows: List[SensitivityRow] = []
    for mechanism in MECHANISMS:
        for row in run_fig12(
            workloads, config=config, factory=factory, mechanism=mechanism
        ):
            rows.append(
                SensitivityRow(
                    mechanism=mechanism,
                    variant=row.variant,
                    policy=row.policy,
                    antt_improvement=row.antt_improvement,
                    fairness_improvement=row.fairness_improvement,
                    stp_improvement=row.stp_improvement,
                )
            )
    return rows


def checkpoint_advantage(rows: Sequence[SensitivityRow]) -> Dict[str, float]:
    """Mean CHECKPOINT-over-KILL ratio per metric (paper: 87%/24%/77%)."""
    ratios: Dict[str, List[float]] = {"antt": [], "stp": [], "fairness": []}
    by_key = {
        (r.mechanism, r.variant, r.policy): r for r in rows
    }
    for variant in VARIANTS:
        for policy in POLICIES:
            kill = by_key[("KILL", variant, policy)]
            ckpt = by_key[("CHECKPOINT", variant, policy)]
            ratios["antt"].append(ckpt.antt_improvement / kill.antt_improvement)
            ratios["stp"].append(ckpt.stp_improvement / kill.stp_improvement)
            ratios["fairness"].append(
                ckpt.fairness_improvement / kill.fairness_improvement
            )
    return {key: sum(vals) / len(vals) for key, vals in ratios.items()}


def format_fig15(rows: Sequence[SensitivityRow]) -> str:
    table = format_table(
        ("mechanism", "variant", "policy", "ANTT_impr", "fairness_impr",
         "STP_impr"),
        [
            (r.mechanism, r.variant, r.policy, r.antt_improvement,
             r.fairness_improvement, r.stp_improvement)
            for r in rows
        ],
        title="Fig 15: CHECKPOINT vs KILL sensitivity (vs NP-FCFS)",
    )
    advantage = checkpoint_advantage(rows)
    footer = (
        "  CHECKPOINT/KILL mean ratio: "
        + ", ".join(f"{k}={v:.2f}x" for k, v in advantage.items())
    )
    return table + "\n" + footer
