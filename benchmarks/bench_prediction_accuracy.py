"""Regenerates paper Sec VI-D: prediction accuracy vs the oracle."""

from repro.analysis.experiments.prediction_accuracy import (
    format_accuracy,
    run_prediction_accuracy,
)


def test_prediction_accuracy(benchmark, config, factory, workloads, emit):
    report = benchmark.pedantic(
        run_prediction_accuracy,
        kwargs=dict(workloads=workloads, config=config, factory=factory),
        rounds=1,
        iterations=1,
    )
    emit("prediction_accuracy", format_accuracy(report))
    # Paper: ~98% correlation, ~1.6% error; PREMA-with-model reaches ~99%
    # of the oracle's scheduling quality.
    assert report.correlation > 0.97
    assert report.mean_relative_error < 0.05
    assert report.stp_vs_oracle > 0.90
    assert report.antt_vs_oracle > 0.75
