"""Ensemble runner shared by the Figs 11-15 experiments."""

import pytest

from repro.analysis.runner import (
    FIG13_SETUPS,
    SchedulerSetup,
    run_ensemble,
    run_setup,
)
from repro.sched.simulator import PreemptionMode
from repro.workloads.generator import WorkloadGenerator


@pytest.fixture(scope="module")
def workloads():
    return WorkloadGenerator(seed=60).generate_many(3, num_tasks=5)


class TestSchedulerSetup:
    def test_builds_simulator(self, config):
        setup = SchedulerSetup("x", "PREMA", PreemptionMode.DYNAMIC)
        simulator = setup.build_simulator(config)
        assert simulator.policy.name == "PREMA"
        assert simulator.config.mode == PreemptionMode.DYNAMIC

    def test_fig13_setup_labels(self):
        labels = [setup.label for setup in FIG13_SETUPS]
        assert len(labels) == 9
        assert "NP-FCFS" in labels
        assert "Dynamic-PREMA" in labels


class TestRunSetup:
    def test_outcome_structure(self, config, factory, workloads):
        setup = SchedulerSetup("fcfs", "FCFS", PreemptionMode.NP)
        outcome = run_setup(setup, workloads, factory, config)
        assert outcome.metrics.num_workloads == len(workloads)
        assert len(outcome.tasks_per_workload) == len(workloads)
        assert len(outcome.all_tasks()) == sum(len(w) for w in workloads)
        assert all(task.is_done for task in outcome.all_tasks())

    def test_oracle_flag_changes_estimates(self, config, factory, workloads):
        setup = SchedulerSetup("prema", "PREMA", PreemptionMode.DYNAMIC)
        with_oracle = run_setup(setup, workloads, factory, config, oracle=True)
        for task in with_oracle.all_tasks():
            assert task.context.estimated_cycles == pytest.approx(
                task.isolated_cycles
            )


class TestRunEnsemble:
    def test_all_setups_run_same_workloads(self, config, factory, workloads):
        setups = [
            SchedulerSetup("a", "FCFS", PreemptionMode.NP),
            SchedulerSetup("b", "SJF", PreemptionMode.STATIC),
        ]
        outcomes = run_ensemble(setups, workloads, factory=factory, npu=config)
        assert set(outcomes) == {"a", "b"}
        # Same ground truth across setups (fresh runtimes, shared profiles).
        for tasks_a, tasks_b in zip(
            outcomes["a"].tasks_per_workload, outcomes["b"].tasks_per_workload
        ):
            for x, y in zip(tasks_a, tasks_b):
                assert x.isolated_cycles == y.isolated_cycles
                assert x is not y

    def test_defaults_constructed_when_omitted(self, workloads):
        setups = [SchedulerSetup("only", "FCFS", PreemptionMode.NP)]
        outcomes = run_ensemble(setups, workloads)
        assert outcomes["only"].metrics.mean_antt >= 1.0
