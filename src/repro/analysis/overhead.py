"""Hardware-overhead calculators (paper Secs VI-F and VI-G).

Closed-form models for the two overhead claims:

- the context table's on-chip SRAM (448 bits per co-located task; ~0.01
  mm^2 for 16 tasks in 32 nm per CACTI 6.5);
- the DRAM storage footprint of checkpointed context state (hundreds of
  MBs at batch 16, comfortably inside GBs of NPU local memory).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Sequence

from repro.npu.config import NPUConfig
from repro.npu.engine import ExecutionProfile

#: Fields of the inference task context table (paper Fig 4).
CONTEXT_TABLE_FIELDS = (
    "task_id",
    "priority",
    "token",
    "executed",
    "waited",
    "estimated",
    "state",
)

#: CACTI-6.5-anchored SRAM area density at 32 nm (mm^2 per bit).  The
#: paper reports 0.01 mm^2 for 16 x 448 bits; we anchor to that point.
SRAM_MM2_PER_BIT_32NM = 0.01 / (448 * 16)


@dataclasses.dataclass(frozen=True)
class ContextTableOverhead:
    """SRAM cost of tracking ``num_tasks`` co-located tasks (Sec VI-F)."""

    num_tasks: int
    bits_per_field: int = 64

    def __post_init__(self) -> None:
        if self.num_tasks <= 0:
            raise ValueError("num_tasks must be positive")
        if self.bits_per_field <= 0:
            raise ValueError("bits_per_field must be positive")

    @property
    def bits_per_task(self) -> int:
        return self.bits_per_field * len(CONTEXT_TABLE_FIELDS)

    @property
    def total_bits(self) -> int:
        return self.bits_per_task * self.num_tasks

    @property
    def area_mm2_32nm(self) -> float:
        return self.total_bits * SRAM_MM2_PER_BIT_32NM


def checkpoint_storage_bytes(
    profiles: Sequence[ExecutionProfile],
) -> Dict[str, float]:
    """Worst-case checkpoint footprint per task and in total (Sec VI-G).

    Returns per-model worst-case checkpoint sizes plus the total DRAM
    footprint if every task were checkpointed at its worst point at once.
    """
    if not profiles:
        raise ValueError("need at least one profile")
    per_model = {
        profile.name: profile.max_checkpoint_bytes() for profile in profiles
    }
    per_model["TOTAL"] = sum(per_model.values())
    return per_model


def oversubscription_migration_us(
    overflow_bytes: float, config: NPUConfig, cpu_link_bytes_per_sec: float = 32e9
) -> float:
    """Time to spill overflowing checkpoint state to CPU memory (Sec VI-G).

    Models the Rhu et al. style proactive migration over a PCIe-class link;
    the paper argues this hides under ongoing inference service time.
    """
    if overflow_bytes < 0:
        raise ValueError("overflow_bytes must be >= 0")
    if cpu_link_bytes_per_sec <= 0:
        raise ValueError("cpu_link_bytes_per_sec must be positive")
    return overflow_bytes / cpu_link_bytes_per_sec * 1e6
