"""Whole-stack integration: the public API, cross-policy consistency, and
paper-level end-to-end claims on a moderate ensemble."""

import pytest

from repro import (
    NPUSimulator,
    PreemptionMode,
    SimulationConfig,
    TaskFactory,
    WorkloadGenerator,
    aggregate_metrics,
    compute_metrics,
    make_policy,
    sla_violation_rate,
)


@pytest.fixture(scope="module")
def ensemble(config, factory):
    workloads = WorkloadGenerator(seed=21).generate_many(5, num_tasks=6)
    results = {}
    for label, policy, mode in [
        ("NP-FCFS", "FCFS", PreemptionMode.NP),
        ("P-SJF", "SJF", PreemptionMode.STATIC),
        ("PREMA", "PREMA", PreemptionMode.DYNAMIC),
    ]:
        simulator = NPUSimulator(
            SimulationConfig(npu=config, mode=mode), make_policy(policy)
        )
        runs = []
        for workload in workloads:
            tasks = factory.build_workload(workload)
            simulator.run(tasks)
            runs.append(tasks)
        results[label] = runs
    return results


class TestPublicApi:
    def test_quickstart_flow(self, config):
        factory = TaskFactory(config)
        workload = WorkloadGenerator(seed=1).generate(num_tasks=4)
        simulator = NPUSimulator(
            SimulationConfig(npu=config, mode=PreemptionMode.DYNAMIC),
            make_policy("PREMA"),
        )
        result = simulator.run(factory.build_workload(workload))
        metrics = compute_metrics(result.tasks)
        assert metrics.num_tasks == 4
        assert metrics.antt >= 1.0

    def test_version_exported(self):
        import repro

        assert repro.__version__


class TestCrossPolicyConsistency:
    def test_same_work_all_policies(self, ensemble):
        # Every policy completes the same tasks; isolated times agree.
        for label, runs in ensemble.items():
            for tasks in runs:
                assert all(task.is_done for task in tasks)
        fcfs = ensemble["NP-FCFS"]
        prema = ensemble["PREMA"]
        for fcfs_tasks, prema_tasks in zip(fcfs, prema):
            for a, b in zip(fcfs_tasks, prema_tasks):
                assert a.isolated_cycles == b.isolated_cycles

    def test_prema_improves_antt_and_sla(self, ensemble):
        fcfs = aggregate_metrics(ensemble["NP-FCFS"])
        prema = aggregate_metrics(ensemble["PREMA"])
        assert prema.mean_antt < fcfs.mean_antt
        fcfs_tasks = [t for run in ensemble["NP-FCFS"] for t in run]
        prema_tasks = [t for run in ensemble["PREMA"] for t in run]
        assert sla_violation_rate(prema_tasks, 6.0) <= sla_violation_rate(
            fcfs_tasks, 6.0
        )

    def test_sjf_at_least_matches_prema_antt(self, ensemble):
        sjf = aggregate_metrics(ensemble["P-SJF"])
        prema = aggregate_metrics(ensemble["PREMA"])
        # SJF is latency-optimal; PREMA trades a little ANTT for fairness
        # (Sec VI-A: PREMA reaches ~90% of SJF's ANTT).
        assert prema.mean_antt >= sjf.mean_antt * 0.95

    def test_prema_fairness_leads_sjf(self, ensemble):
        sjf = aggregate_metrics(ensemble["P-SJF"])
        prema = aggregate_metrics(ensemble["PREMA"])
        assert prema.mean_fairness >= sjf.mean_fairness * 0.8


class TestConservationAcrossStack:
    def test_busy_time_at_least_total_work(self, config, factory):
        workload = WorkloadGenerator(seed=30).generate(num_tasks=5)
        simulator = NPUSimulator(
            SimulationConfig(npu=config, mode=PreemptionMode.STATIC),
            make_policy("SJF"),
        )
        tasks = factory.build_workload(workload)
        result = simulator.run(tasks)
        total_work = sum(task.isolated_cycles for task in tasks)
        run_time = sum(result.timeline.run_cycles_by_task().values())
        assert run_time == pytest.approx(total_work, rel=1e-6)

    def test_makespan_bounds(self, config, factory):
        workload = WorkloadGenerator(seed=31).generate(num_tasks=5)
        simulator = NPUSimulator(
            SimulationConfig(npu=config), make_policy("FCFS")
        )
        tasks = factory.build_workload(workload)
        result = simulator.run(tasks)
        total_work = sum(task.isolated_cycles for task in tasks)
        first_arrival = min(task.spec.arrival_cycles for task in tasks)
        # Makespan at least the work, at most work + idle gaps + overheads.
        assert result.makespan_cycles >= total_work * 0.999
        assert result.makespan_cycles >= first_arrival
