"""Modeled inter-NPU interconnect for checkpoint migration.

The paper's preemption mechanisms (Sec IV) persist a preempted task's
context -- CONV/FC output activations resident in UBUF plus the in-flight
ACCQ tile, or an RNN cell state -- to the device's DRAM.  The cluster
layer's :class:`~repro.sched.cluster.RoutingPolicy.PREEMPTIVE_MIGRATION`
extends that: the saved checkpoint is *shipped* to another NPU's DRAM so
the victim can resume elsewhere.  This module models the fabric that
shipment crosses.

The model is deliberately at the same fidelity as the paper's memory
system (:mod:`repro.npu.memory`): fixed per-link bandwidth, fixed
propagation latency, and FIFO contention per link.  Two topologies:

``p2p``
    One dedicated full-duplex link per ordered device pair (an NVSwitch /
    PCIe-switch-with-independent-lanes abstraction).  Transfers between
    different pairs never contend.
``bus``
    One shared half-duplex medium: every transfer in the cluster
    serializes (a single host PCIe root complex under pressure).

Presets (:meth:`InterconnectConfig.pcie_gen3` and friends) express
real-fabric bandwidths in *cycles* of the NPU's PE clock so the cluster
event loop charges transfer time in its native unit.

Every completed transfer is recorded; :class:`Interconnect` exposes the
records plus per-link occupancy so tests can assert conservation (bytes
in == bytes out, per-link FIFO order, no overlapping occupancy) and
metrics can report bytes moved and transfer latency.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Tuple

#: Bytes of the Fig-4 context-table row that always travels with a task
#: (448 bits, Sec VI-F) -- the floor of any migration's payload.
CONTEXT_ROW_BYTES = 56.0

_TOPOLOGIES = ("p2p", "bus")


@dataclasses.dataclass(frozen=True)
class InterconnectConfig:
    """Link parameters, in PE-clock cycles (like every other model knob)."""

    #: Per-link bandwidth, bytes per PE-clock cycle (``math.inf`` allowed).
    bandwidth_bytes_per_cycle: float
    #: Propagation + protocol latency charged once per transfer, cycles.
    latency_cycles: float = 0.0
    #: ``p2p`` (per-pair links) or ``bus`` (one shared medium).
    topology: str = "p2p"
    name: str = "custom"

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_cycle <= 0:
            raise ValueError("bandwidth_bytes_per_cycle must be positive")
        if self.latency_cycles < 0:
            raise ValueError("latency_cycles must be >= 0")
        if self.topology not in _TOPOLOGIES:
            raise ValueError(f"topology must be one of {_TOPOLOGIES}")

    # ------------------------------------------------------------------
    # Presets (bandwidths are nominal effective rates, not headline ones)
    # ------------------------------------------------------------------
    @classmethod
    def from_bytes_per_sec(
        cls,
        bytes_per_sec: float,
        latency_us: float,
        frequency_hz: float = 700e6,
        topology: str = "p2p",
        name: str = "custom",
    ) -> "InterconnectConfig":
        return cls(
            bandwidth_bytes_per_cycle=bytes_per_sec / frequency_hz,
            latency_cycles=latency_us * 1e-6 * frequency_hz,
            topology=topology,
            name=name,
        )

    @classmethod
    def pcie_gen3(cls, frequency_hz: float = 700e6) -> "InterconnectConfig":
        """PCIe 3.0 x16: ~13 GB/s effective, ~1.5 us latency."""
        return cls.from_bytes_per_sec(
            13e9, 1.5, frequency_hz, topology="bus", name="pcie-gen3"
        )

    @classmethod
    def pcie_gen4(cls, frequency_hz: float = 700e6) -> "InterconnectConfig":
        """PCIe 4.0 x16: ~26 GB/s effective, ~1.0 us latency."""
        return cls.from_bytes_per_sec(
            26e9, 1.0, frequency_hz, topology="bus", name="pcie-gen4"
        )

    @classmethod
    def nvlink(cls, frequency_hz: float = 700e6) -> "InterconnectConfig":
        """NVLink-class point-to-point fabric: ~250 GB/s, ~0.5 us."""
        return cls.from_bytes_per_sec(
            250e9, 0.5, frequency_hz, topology="p2p", name="nvlink"
        )

    @classmethod
    def infinite(cls) -> "InterconnectConfig":
        """Zero-cost fabric: transfers complete instantaneously.

        The equivalence anchor: with this config a checkpoint migration
        charges no cycles, so interconnect modeling cannot perturb runs
        that never migrate.
        """
        return cls(
            bandwidth_bytes_per_cycle=math.inf,
            latency_cycles=0.0,
            topology="p2p",
            name="infinite",
        )

    def transfer_cycles(self, num_bytes: float) -> float:
        """Uncontended duration of one transfer (latency + serialization)."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be >= 0")
        return self.latency_cycles + num_bytes / self.bandwidth_bytes_per_cycle


@dataclasses.dataclass(frozen=True)
class TransferRecord:
    """One completed (or in-flight) link transfer."""

    task_id: int
    src_device: int
    dst_device: int
    num_bytes: float
    #: When the transfer was requested (migration decision instant).
    request_cycles: float
    #: When the link actually started serving it (>= request: contention).
    start_cycles: float
    #: When the payload is fully resident at the destination.
    end_cycles: float
    #: What the payload is: ``"checkpoint"`` (a migrating task's saved
    #: state + context row) or ``"activation"`` (a sharded job's
    #: inter-stage boundary tensor, the pipeline DMA-out).
    purpose: str = "checkpoint"
    #: True when the destination device failed mid-flight and the
    #: transfer was truncated at the cancellation instant -- the payload
    #: never landed, the link time past that instant was freed.
    cancelled: bool = False

    @property
    def queueing_cycles(self) -> float:
        return self.start_cycles - self.request_cycles

    @property
    def transfer_latency_cycles(self) -> float:
        """End-to-end latency the migrating task experienced."""
        return self.end_cycles - self.request_cycles


class Interconnect:
    """FIFO-contended links between the cluster's devices.

    The cluster event loop requests transfers in non-decreasing time
    order (it processes events chronologically), which the model turns
    into a hard guarantee: per link, transfers start in request order and
    never overlap -- the conservation property the seeded tests pin.
    """

    def __init__(self, config: InterconnectConfig, num_devices: int) -> None:
        if num_devices <= 0:
            raise ValueError("num_devices must be positive")
        self.config = config
        self.num_devices = num_devices
        self._free_at: Dict[object, float] = {}
        self._last_request: Dict[object, float] = {}
        self._records: List[TransferRecord] = []

    def _link_key(self, src: int, dst: int) -> object:
        return "bus" if self.config.topology == "bus" else (src, dst)

    def link_free_at(self, src: int, dst: int) -> float:
        """Earliest cycle a new (src -> dst) transfer could start."""
        return self._free_at.get(self._link_key(src, dst), 0.0)

    def estimate_arrival(self, src: int, dst: int, num_bytes: float, now: float) -> float:
        """Predicted delivery time of a transfer requested at ``now``
        (contention included) without committing it."""
        start = max(now, self.link_free_at(src, dst))
        return start + self.config.transfer_cycles(num_bytes)

    def transfer(
        self,
        src: int,
        dst: int,
        num_bytes: float,
        now: float,
        task_id: int = -1,
        purpose: str = "checkpoint",
    ) -> TransferRecord:
        """Commit one transfer; returns its scheduled record."""
        for device in (src, dst):
            if not 0 <= device < self.num_devices:
                raise ValueError(f"device {device} out of range")
        if src == dst:
            raise ValueError("transfer requires distinct devices")
        if num_bytes < 0:
            raise ValueError("num_bytes must be >= 0")
        key = self._link_key(src, dst)
        if now < self._last_request.get(key, 0.0):
            raise ValueError(
                "transfers on one link must be requested in time order"
            )
        self._last_request[key] = now
        start = max(now, self._free_at.get(key, 0.0))
        end = start + self.config.transfer_cycles(num_bytes)
        self._free_at[key] = end
        record = TransferRecord(
            task_id=task_id,
            src_device=src,
            dst_device=dst,
            num_bytes=num_bytes,
            request_cycles=now,
            start_cycles=start,
            end_cycles=end,
            purpose=purpose,
        )
        self._records.append(record)
        return record

    def cancel_transfers_to(self, device: int, now: float) -> float:
        """Cancel every undelivered transfer targeting ``device``.

        Called when the destination fails at ``now``: payloads still in
        flight (or queued) toward it will never land.  Each affected
        record is truncated -- its ``end_cycles`` is pulled back to
        ``max(start, min(end, now))`` and it is flagged ``cancelled`` --
        and each touched link's free-at horizon is recomputed, so the
        link time past the cancellation instant is genuinely freed for
        later transfers.  Returns the total link time freed (the sum of
        truncations, cycles).

        Conservation still holds afterwards: truncation only ever lowers
        end times, and every future transfer is requested at or after
        ``now``, which is at or after every truncated end -- so FIFO
        order and non-overlap survive.  ``verify_conservation`` accepts
        a cancelled record's short occupancy in place of the full
        serialization cost.
        """
        if not 0 <= device < self.num_devices:
            raise ValueError(f"device {device} out of range")
        freed = 0.0
        touched = set()
        for index, record in enumerate(self._records):
            if record.dst_device != device or record.cancelled:
                continue
            if record.end_cycles <= now:
                continue  # already delivered
            new_end = max(record.start_cycles, min(record.end_cycles, now))
            freed += record.end_cycles - new_end
            self._records[index] = dataclasses.replace(
                record, end_cycles=new_end, cancelled=True
            )
            touched.add(self._link_key(record.src_device, record.dst_device))
        for key in touched:
            self._free_at[key] = max(
                (
                    r.end_cycles
                    for r in self._records
                    if self._link_key(r.src_device, r.dst_device) == key
                ),
                default=0.0,
            )
        return freed

    # ------------------------------------------------------------------
    # Introspection (metrics / conservation tests)
    # ------------------------------------------------------------------
    @property
    def transfers(self) -> Tuple[TransferRecord, ...]:
        return tuple(self._records)

    def total_bytes(self) -> float:
        return sum(record.num_bytes for record in self._records)

    def busy_cycles_by_link(self) -> Dict[object, float]:
        busy: Dict[object, float] = {}
        for record in self._records:
            key = self._link_key(record.src_device, record.dst_device)
            busy[key] = busy.get(key, 0.0) + (
                record.end_cycles - record.start_cycles
            )
        return busy

    def verify_conservation(self) -> None:
        """Raise unless every link served its transfers FIFO, one at a time.

        Checks, per link: starts never precede requests, occupancy spans
        do not overlap, and service order equals request order (no
        reordering across a link).
        """
        per_link: Dict[object, List[TransferRecord]] = {}
        for record in self._records:
            key = self._link_key(record.src_device, record.dst_device)
            per_link.setdefault(key, []).append(record)
        for key, records in per_link.items():
            previous_end = 0.0
            previous_request = 0.0
            for record in records:  # append order == request order
                if record.request_cycles < previous_request:
                    raise AssertionError(f"link {key}: requests out of order")
                if record.start_cycles < record.request_cycles:
                    raise AssertionError(f"link {key}: start precedes request")
                if record.start_cycles < previous_end:
                    raise AssertionError(f"link {key}: overlapping service")
                expected_end = record.start_cycles + self.config.transfer_cycles(
                    record.num_bytes
                )
                if record.cancelled:
                    # A cancelled transfer occupies at most its full
                    # serialization cost (truncated at the failure).
                    if record.end_cycles > expected_end + 1e-6:
                        raise AssertionError(
                            f"link {key}: cancelled transfer overran"
                        )
                elif not math.isclose(
                    record.end_cycles, expected_end, rel_tol=1e-12, abs_tol=1e-6
                ):
                    raise AssertionError(f"link {key}: bytes in != bytes out")
                previous_end = record.end_cycles
                previous_request = record.request_cycles
