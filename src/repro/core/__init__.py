"""PREMA's core contribution: the predictive, token-based scheduler.

- :mod:`repro.core.regression` -- profile-driven sequence-length lookup
  table (Sec V-B, Fig 9).
- :mod:`repro.core.predictor` -- architecture-aware latency prediction,
  Algorithm 1.
- :mod:`repro.core.tokens` -- token accounting and the dynamic threshold.
- :mod:`repro.core.context` -- the inference task context table (Fig 4).
- :mod:`repro.core.scheduler` -- the PREMA scheduling policy, Algorithm 2.
- :mod:`repro.core.mechanism` -- dynamic preemption mechanism selection,
  Algorithm 3.
"""

from repro.core.context import TaskContext, TaskState
from repro.core.mechanism import MechanismChoice, select_mechanism
from repro.core.predictor import LatencyPredictor, OraclePredictor, predicted_layer_cycles
from repro.core.regression import SequenceLengthRegressor
from repro.core.scheduler import PremaPolicyCore, SchedulerConfig
from repro.core.tokens import PRIORITY_TOKENS, candidate_threshold, initial_tokens

__all__ = [
    "SequenceLengthRegressor",
    "LatencyPredictor",
    "OraclePredictor",
    "predicted_layer_cycles",
    "TaskContext",
    "TaskState",
    "PRIORITY_TOKENS",
    "initial_tokens",
    "candidate_threshold",
    "SchedulerConfig",
    "PremaPolicyCore",
    "MechanismChoice",
    "select_mechanism",
]
