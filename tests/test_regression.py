"""Sequence-length lookup-table regression (Sec V-B)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.regression import SequenceLengthRegressor
from repro.models.sequences import generate_profile, geomean


class TestConstruction:
    def test_from_table(self):
        reg = SequenceLengthRegressor({10: 11.0, 20: 22.0})
        assert reg.predict(10) == 11
        assert reg.predict(20) == 22

    def test_from_profile_uses_geomean(self):
        profile = generate_profile("en-de", num_samples=400)
        reg = SequenceLengthRegressor.from_profile(profile)
        input_len = profile.input_lengths[0]
        expected = geomean([float(o) for o in profile.outputs_for(input_len)])
        assert reg.predict(input_len) == max(1, int(round(expected)))

    def test_identity_regressor(self):
        reg = SequenceLengthRegressor.identity([5, 10, 15])
        assert reg.predict(10) == 10

    def test_rejects_empty_table(self):
        with pytest.raises(ValueError):
            SequenceLengthRegressor({})

    def test_rejects_nonpositive_entries(self):
        with pytest.raises(ValueError):
            SequenceLengthRegressor({0: 5.0})
        with pytest.raises(ValueError):
            SequenceLengthRegressor({5: 0.0})


class TestInterpolation:
    def test_exact_hit(self):
        reg = SequenceLengthRegressor({10: 20.0, 20: 40.0})
        assert reg.predict(10) == 20

    def test_midpoint(self):
        reg = SequenceLengthRegressor({10: 20.0, 20: 40.0})
        assert reg.predict(15) == 30

    def test_below_grid_scales_proportionally(self):
        reg = SequenceLengthRegressor({10: 20.0, 20: 40.0})
        assert reg.predict(5) == 10

    def test_above_grid_scales_proportionally(self):
        reg = SequenceLengthRegressor({10: 20.0, 20: 40.0})
        assert reg.predict(40) == 80

    def test_minimum_is_one(self):
        reg = SequenceLengthRegressor({100: 1.0})
        assert reg.predict(1) == 1

    def test_rejects_nonpositive_query(self):
        reg = SequenceLengthRegressor({10: 20.0})
        with pytest.raises(ValueError):
            reg.predict(0)

    @given(query=st.integers(min_value=1, max_value=500))
    @settings(max_examples=50, deadline=None)
    def test_prediction_always_positive_int(self, query):
        reg = SequenceLengthRegressor({10: 12.0, 30: 33.0, 50: 57.0})
        predicted = reg.predict(query)
        assert isinstance(predicted, int)
        assert predicted >= 1

    @given(
        a=st.integers(min_value=1, max_value=100),
        b=st.integers(min_value=1, max_value=100),
    )
    @settings(max_examples=40, deadline=None)
    def test_monotone_for_monotone_table(self, a, b):
        reg = SequenceLengthRegressor({10: 12.0, 30: 33.0, 50: 57.0})
        lo, hi = min(a, b), max(a, b)
        assert reg.predict(lo) <= reg.predict(hi)


class TestErrorMeasurement:
    def test_error_against_profile(self):
        profile = generate_profile("en-ko", num_samples=500)
        reg = SequenceLengthRegressor.from_profile(profile)
        mean_err, max_err = reg.error_against(profile)
        assert 0 <= mean_err <= max_err
        # The lognormal spread is ~10%, so the geomean fit stays tight.
        assert mean_err < 0.2

    def test_table_roundtrip(self):
        table = {10: 12.0, 20: 24.0}
        assert SequenceLengthRegressor(table).table == table
