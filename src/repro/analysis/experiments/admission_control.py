"""Extension experiment: SLA-aware admission control under overload.

The cluster frontend historically admits every arrival; once offered
load exceeds capacity the backlog grows without bound and *every* class
misses its SLO -- the failure mode PCS-style prediction-driven admission
exists to prevent.  This harness drives an overloaded 4-NPU open-arrival
trace (about 2x capacity) through three frontends:

- ``admit-all``: the status-quo baseline, no admission control;
- ``admission``: the :class:`~repro.serving.admission.AdmissionController`
  predicting with raw Algorithm-1 estimates;
- ``admission+feedback``: the same controller with the online
  prediction-correction EWMA
  (:class:`~repro.serving.feedback.PredictionFeedback`) learning the
  per-model estimate bias from observed completions.

The trace carries QoS class tags (25% interactive / 45% standard / 30%
batch) and a *systematic* per-model estimate bias (two of the four
benchmarks are 45% and 30% underestimated) on top of the usual +-30%
noise -- the miscalibration the feedback layer learns away online.

Headline claims (pinned by ``tests/test_admission_experiment.py``):
admission + feedback beats admit-all on **interactive-class SLA
attainment** -- counting every rejected arrival as a miss -- while
**goodput** (isolated cycles of SLA-met completions per makespan cycle)
does not degrade, and the feedback layer's corrected-estimate MAPE is
below the raw-estimate MAPE and *decreases* as completions accrue.
"""

from __future__ import annotations

import copy
import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.reporting import format_table
from repro.npu.config import NPUConfig
from repro.sched.cluster import ClusterScheduler, RoutingPolicy
from repro.sched.metrics import compute_cluster_metrics
from repro.sched.simulator import PreemptionMode, SimulationConfig
from repro.serving.admission import AdmissionConfig, AdmissionController
from repro.serving.feedback import PredictionFeedback
from repro.serving.slo import QoSClass, ServiceLevel, SLOPolicy
from repro.workloads.trace import (
    DEFAULT_MEAN_INTERARRIVAL_CYCLES,
    synthetic_trace_runtimes,
)

NUM_DEVICES = 4
#: Offered load vs cluster capacity (2x: half the work cannot be served
#: in time no matter what -- the regime where refusing work honestly
#: beats queueing it).
OVERLOAD = 2.0
#: Serving mix: a paid latency-critical tier, a broad standard tier, and
#: a throughput batch tier.
QOS_MIX: Dict[str, float] = {
    "interactive": 0.25,
    "standard": 0.45,
    "batch": 0.30,
}
#: Deterministic per-model estimate miscalibration (underestimates), on
#: top of the +-30% uniform noise.
ESTIMATE_BIAS: Dict[str, float] = {"CNN-AN": 0.55, "CNN-GN": 0.7}
ESTIMATE_ERROR = 0.3

#: The experiment's objectives: tighter than the library defaults so the
#: interactive tier is genuinely hard to protect at 2x overload.
SLOS = SLOPolicy(
    levels={
        QoSClass.INTERACTIVE: ServiceLevel(
            QoSClass.INTERACTIVE, slowdown_target=3.0, admission_share=1.0
        ),
        QoSClass.STANDARD: ServiceLevel(
            QoSClass.STANDARD, slowdown_target=6.0, admission_share=0.7
        ),
        QoSClass.BATCH: ServiceLevel(
            QoSClass.BATCH, slowdown_target=12.0, admission_share=0.4
        ),
    }
)

FULL_NUM_TASKS = 400
FULL_SEEDS: Tuple[int, ...] = tuple(range(3, 11))
QUICK_NUM_TASKS = 220
QUICK_SEEDS: Tuple[int, ...] = (5, 6, 7)

FRONTENDS = ("admit-all", "admission", "admission+feedback")


@dataclasses.dataclass(frozen=True)
class AdmissionRow:
    """One frontend's metrics, averaged over the seed ensemble."""

    frontend: str
    interactive_attainment: float
    overall_attainment: float
    batch_attainment: float
    rejection_rate: float
    deferrals: float
    goodput: float
    antt_completed: float


@dataclasses.dataclass(frozen=True)
class LearningCurve:
    """The feedback layer's accuracy trajectory, pooled over seeds.

    ``early_mape`` covers each run's first max(8, n/5) corrected
    estimates (the factor is still near its neutral 1.0 start);
    ``late_mape`` covers each run's second half, after the EWMA has seen
    most of that run's completions.  ``raw_mape`` scores the uncorrected
    estimates over everything; ``early_count`` is the mean early-window
    size across runs.
    """

    raw_mape: float
    early_mape: float
    late_mape: float
    early_count: int
    observations: int


def _build_frontend(name: str) -> Optional[AdmissionController]:
    if name == "admit-all":
        return None
    feedback = PredictionFeedback() if name == "admission+feedback" else None
    return AdmissionController(AdmissionConfig(slos=SLOS), feedback=feedback)


def run_admission_control(
    config: Optional[NPUConfig] = None,
    num_devices: int = NUM_DEVICES,
    num_tasks: Optional[int] = None,
    seeds: Optional[Sequence[int]] = None,
    overload: float = OVERLOAD,
    quick: bool = False,
) -> Tuple[List[AdmissionRow], LearningCurve]:
    config = config or NPUConfig()
    if seeds is None:
        seeds = QUICK_SEEDS if quick else FULL_SEEDS
    if num_tasks is None:
        num_tasks = QUICK_NUM_TASKS if quick else FULL_NUM_TASKS
    traces = [
        synthetic_trace_runtimes(
            num_tasks,
            seed=seed,
            mean_interarrival_cycles=(
                DEFAULT_MEAN_INTERARRIVAL_CYCLES / (num_devices * overload)
            ),
            estimate_error=ESTIMATE_ERROR,
            estimate_bias=ESTIMATE_BIAS,
            qos_mix=QOS_MIX,
        )
        for seed in seeds
    ]
    sim_config = SimulationConfig(npu=config, mode=PreemptionMode.DYNAMIC)
    rows: List[AdmissionRow] = []
    raw_apes: List[float] = []
    early_apes: List[float] = []
    late_apes: List[float] = []
    early_heads: List[int] = []
    observations = 0
    for frontend in FRONTENDS:
        per_seed: Dict[str, List[float]] = {
            key: []
            for key in (
                "interactive", "overall", "batch", "rejections",
                "deferrals", "goodput", "antt",
            )
        }
        for trace in traces:
            controller = _build_frontend(frontend)
            scheduler = ClusterScheduler(
                num_devices=num_devices,
                simulation_config=sim_config,
                policy_name="PREMA",
                routing=RoutingPolicy.ONLINE_PREDICTED,
                admission=controller,
            )
            # Fresh runtimes per run: the scheduler mutates them.
            result = scheduler.run([copy.deepcopy(t) for t in trace])
            metrics = compute_cluster_metrics(result, slos=SLOS)
            per_seed["interactive"].append(
                metrics.sla_attainment_by_class.get("interactive", 0.0)
            )
            per_seed["overall"].append(metrics.sla_attainment)
            per_seed["batch"].append(
                metrics.sla_attainment_by_class.get("batch", 0.0)
            )
            per_seed["rejections"].append(metrics.rejection_rate)
            per_seed["deferrals"].append(float(metrics.deferral_count))
            per_seed["goodput"].append(metrics.goodput)
            per_seed["antt"].append(metrics.antt)
            if controller is not None and controller.feedback is not None:
                history = controller.feedback.history
                head = max(8, len(history) // 5)
                early_heads.append(head)
                observations += len(history)
                raw_apes.extend(o.raw_ape for o in history)
                early_apes.extend(o.corrected_ape for o in history[:head])
                late_apes.extend(
                    o.corrected_ape for o in history[len(history) // 2:]
                )
        rows.append(
            AdmissionRow(
                frontend=frontend,
                interactive_attainment=float(np.mean(per_seed["interactive"])),
                overall_attainment=float(np.mean(per_seed["overall"])),
                batch_attainment=float(np.mean(per_seed["batch"])),
                rejection_rate=float(np.mean(per_seed["rejections"])),
                deferrals=float(np.mean(per_seed["deferrals"])),
                goodput=float(np.mean(per_seed["goodput"])),
                antt_completed=float(np.mean(per_seed["antt"])),
            )
        )
    curve = LearningCurve(
        raw_mape=float(np.mean(raw_apes)) if raw_apes else 0.0,
        early_mape=float(np.mean(early_apes)) if early_apes else 0.0,
        late_mape=float(np.mean(late_apes)) if late_apes else 0.0,
        early_count=int(round(np.mean(early_heads))) if early_heads else 0,
        observations=observations,
    )
    return rows, curve


def format_admission_control(
    rows: Sequence[AdmissionRow], curve: LearningCurve
) -> str:
    table = format_table(
        ("frontend", "interactive_SLA", "overall_SLA", "batch_SLA",
         "rejected", "deferrals", "goodput", "ANTT_completed"),
        [
            (r.frontend,
             f"{r.interactive_attainment:.1%}",
             f"{r.overall_attainment:.1%}",
             f"{r.batch_attainment:.1%}",
             f"{r.rejection_rate:.1%}",
             round(r.deferrals, 1),
             round(r.goodput, 3),
             round(r.antt_completed, 2))
            for r in rows
        ],
        title=(
            "Extension: PCS-style admission control + online prediction "
            f"correction ({NUM_DEVICES} NPUs at {OVERLOAD:.0f}x overload; "
            "attainment counts rejections as misses)"
        ),
    )
    learning = (
        f"prediction correction over {curve.observations} observed "
        f"completions: raw-estimate MAPE {curve.raw_mape:.1%} -> corrected "
        f"{curve.early_mape:.1%} (first {curve.early_count}/run) -> "
        f"{curve.late_mape:.1%} (second half/run)"
    )
    return f"{table}\n{learning}"
