"""The inference task context table (paper Fig 4).

One :class:`TaskContext` row per co-located task, tracking exactly the
fields of Fig 4: TaskID, priority, token count, executed time, waited
time, estimated time, and state.  The multi-task simulator owns a table of
these; the PREMA policy core reads/writes it.  The TaskID doubles as the
ASID the MMU uses for memory protection (Sec IV-A) -- modeled here as the
table key.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, Iterator, List, Optional

from repro.core.tokens import Priority, initial_tokens


class TaskState(enum.Enum):
    """Lifecycle of a dispatched inference task inside the NPU scheduler."""

    READY = "ready"
    RUNNING = "running"
    CHECKPOINTING = "checkpointing"
    DONE = "done"


@dataclasses.dataclass
class TaskContext:
    """One row of the inference task context table (Fig 4)."""

    task_id: int
    priority: Priority
    #: Benchmark/model name (scheduler-visible request metadata).
    benchmark: str = ""
    #: Scheduling tokens (Algorithm 2); initialized from the priority.
    tokens: float = 0.0
    #: Cycles of useful execution retained so far.
    executed_cycles: float = 0.0
    #: Cycles spent waiting in the ready queue.
    waited_cycles: float = 0.0
    #: Predicted network-wide execution time (Algorithm 1 output).
    estimated_cycles: float = 0.0
    state: TaskState = TaskState.READY
    #: Simulation timestamp of the last waited/executed accounting update.
    last_update_cycles: float = 0.0
    #: Waiting accrued since the last token grant (Algorithm 2 line 7).
    waited_since_grant: float = 0.0

    def __post_init__(self) -> None:
        if self.task_id < 0:
            raise ValueError("task_id must be >= 0")
        if self.tokens == 0.0:
            self.tokens = float(initial_tokens(self.priority))

    @property
    def estimated_remaining_cycles(self) -> float:
        """Estimated work left (Algorithm 3 lines 1-2), floored at zero."""
        return max(0.0, self.estimated_cycles - self.executed_cycles)

    def grant_tokens(self, amount: float) -> None:
        if amount < 0:
            raise ValueError("token grants must be >= 0")
        self.tokens += amount
        self.waited_since_grant = 0.0

    def accrue_wait(self, now_cycles: float) -> None:
        """Account waiting time up to ``now_cycles`` (READY tasks only).

        ``last_update_cycles`` may legitimately sit in the future: a task
        preempted at scheduler-wake time re-enters the ready queue at the
        (later) tile-boundary commit, so accruals before that instant are
        no-ops rather than negative waits.
        """
        delta = now_cycles - self.last_update_cycles
        if delta <= 0:
            return
        if self.state == TaskState.READY:
            self.waited_cycles += delta
            self.waited_since_grant += delta
        self.last_update_cycles = now_cycles


class ContextTable:
    """The preemption module's task table: id -> row (Fig 4)."""

    def __init__(self) -> None:
        self._rows: Dict[int, TaskContext] = {}

    def add(self, context: TaskContext) -> None:
        if context.task_id in self._rows:
            raise ValueError(f"duplicate task id {context.task_id}")
        self._rows[context.task_id] = context

    def remove(self, task_id: int) -> TaskContext:
        if task_id not in self._rows:
            raise KeyError(f"no such task {task_id}")
        return self._rows.pop(task_id)

    def __getitem__(self, task_id: int) -> TaskContext:
        return self._rows[task_id]

    def __contains__(self, task_id: int) -> bool:
        return task_id in self._rows

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[TaskContext]:
        return iter(self._rows.values())

    def ready(self) -> List[TaskContext]:
        """The ReadyQueue of Algorithm 2 (stable by task id = FCFS order)."""
        return sorted(
            (row for row in self._rows.values() if row.state == TaskState.READY),
            key=lambda row: row.task_id,
        )

    def running(self) -> Optional[TaskContext]:
        for row in self._rows.values():
            if row.state == TaskState.RUNNING:
                return row
        return None

    def sram_bits(self, bits_per_field: int = 64, fields: int = 7) -> int:
        """On-chip storage for the table (Sec VI-F: 448 bits/task)."""
        return bits_per_field * fields * len(self._rows)
