"""Open-arrival trace construction (the ROADMAP's trace-driven regime).

The paper evaluates closed 8-task workloads drawn over a fixed arrival
window (Sec III); production serving instead sees an *open* arrival
process: requests keep arriving for as long as the trace runs, and the
scheduler's per-event cost must not grow with the number of requests ever
seen.  This module builds such traces:

- :meth:`TraceGenerator.generate_poisson` -- memoryless arrivals at a
  configurable mean inter-arrival time (the M/G/1-style steady state);
- :meth:`TraceGenerator.generate_bursty` -- Poisson-arriving *bursts* of
  geometrically-sized request clusters, jittered over a small window (the
  flash-crowd regime that stresses ready-queue growth).

Per-task attributes (benchmark, batch, priority, RNN sequence lengths)
are drawn exactly like :class:`~repro.workloads.generator.WorkloadGenerator`
draws them, so traces compose with the existing ``TaskFactory`` pipeline.

For scheduler-hot-path benchmarking the module also builds *synthetic*
task runtimes: hand-made :class:`~repro.npu.engine.ExecutionProfile`
objects with a few uniform GEMM-like layers, skipping model construction,
compilation, and NPU profiling entirely.  A 5 000-task trace then costs
milliseconds to build, so a benchmark measures the event loop and not the
compiler.
"""

from __future__ import annotations

import dataclasses
import math
import random
from typing import Dict, List, Optional, Sequence

from repro.core.context import TaskContext
from repro.models.zoo import CNN_BENCHMARKS
from repro.npu.buffers import CheckpointProfile
from repro.npu.engine import ExecutionProfile, LayerTiming
from repro.models.layers import LayerKind
from repro.sched.task import TaskRuntime
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.specs import TaskSpec, WorkloadSpec

#: Default mean inter-arrival time: one request every 2.4 ms at 700 MHz.
#: Against the default synthetic service-time distribution (mean ~2 ms)
#: this puts one device at ~85% utilization -- heavily contended but
#: stable, so the steady-state ready queue stays bounded and per-event
#: cost measurements reflect the live set, not an unbounded backlog.
DEFAULT_MEAN_INTERARRIVAL_CYCLES = 2.4e-3 * 700e6


class TraceGenerator(WorkloadGenerator):
    """Seeded open-arrival trace generator (Poisson and bursty)."""

    def generate_poisson(
        self,
        num_tasks: int,
        mean_interarrival_cycles: float = DEFAULT_MEAN_INTERARRIVAL_CYCLES,
        start_cycles: float = 0.0,
        name: str = "",
    ) -> WorkloadSpec:
        """Memoryless arrivals: exponential inter-arrival gaps."""
        if num_tasks <= 0:
            raise ValueError("num_tasks must be positive")
        if mean_interarrival_cycles <= 0:
            raise ValueError("mean_interarrival_cycles must be positive")
        arrivals: List[float] = []
        now = start_cycles
        for _ in range(num_tasks):
            now += self._rng.expovariate(1.0 / mean_interarrival_cycles)
            arrivals.append(now)
        return self._build_tasks(arrivals, name or f"poisson-{num_tasks}")

    def generate_bursty(
        self,
        num_tasks: int,
        mean_interarrival_cycles: float = DEFAULT_MEAN_INTERARRIVAL_CYCLES,
        burst_size_mean: float = 8.0,
        burst_spread_cycles: float = 0.05e-3 * 700e6,
        start_cycles: float = 0.0,
        name: str = "",
    ) -> WorkloadSpec:
        """Flash-crowd arrivals: Poisson bursts of geometric size.

        Burst *clusters* arrive as a Poisson process whose rate is scaled
        so the long-run mean inter-arrival time per task still equals
        ``mean_interarrival_cycles``; each cluster holds on average
        ``burst_size_mean`` tasks jittered uniformly over
        ``burst_spread_cycles``.
        """
        if num_tasks <= 0:
            raise ValueError("num_tasks must be positive")
        if mean_interarrival_cycles <= 0:
            raise ValueError("mean_interarrival_cycles must be positive")
        if burst_size_mean < 1.0:
            raise ValueError("burst_size_mean must be >= 1")
        if burst_spread_cycles < 0:
            raise ValueError("burst_spread_cycles must be >= 0")
        cluster_gap = mean_interarrival_cycles * burst_size_mean
        arrivals: List[float] = []
        now = start_cycles
        while len(arrivals) < num_tasks:
            now += self._rng.expovariate(1.0 / cluster_gap)
            size = min(
                num_tasks - len(arrivals),
                1 + self._draw_geometric(burst_size_mean),
            )
            for _ in range(size):
                arrivals.append(now + self._rng.uniform(0.0, burst_spread_cycles))
        arrivals.sort()
        return self._build_tasks(arrivals, name or f"bursty-{num_tasks}")

    def _draw_geometric(self, mean: float) -> int:
        """True geometric extra-burst size with mean ``mean - 1``.

        Draws the number of *failures* before the first success of a
        Bernoulli(p) sequence with ``p = 1/mean`` via inversion
        sampling, so ``P(k) = (1-p)^k * p`` on support {0, 1, 2, ...}
        and ``E[k] = (1-p)/p = mean - 1`` exactly.  One uniform variate
        is consumed per draw, preserving the seeded RNG stream
        contract.  (The previous implementation floor-truncated an
        exponential, which biased the realized mean ~0.4-0.5 low.)
        """
        if mean <= 1.0:
            return 0
        success = 1.0 / mean
        # 1 - random() lies in (0, 1], keeping log() finite.
        draw = 1.0 - self._rng.random()
        return int(math.log(draw) / math.log(1.0 - success))


def assign_qos(
    workload: WorkloadSpec,
    mix: Dict[str, float],
    seed: int = 0,
    align_priority: bool = True,
) -> WorkloadSpec:
    """Tag each task with a QoS class drawn from ``mix`` (class -> weight).

    Returns a new :class:`WorkloadSpec` whose specs carry explicit
    ``qos`` tags; the draw uses its *own* RNG stream so tagging composes
    with any seeded trace without perturbing the arrival/attribute
    sequence (the seeded-reproducibility contract of ``_build_tasks``).
    Weights need not sum to 1.

    ``align_priority`` (default on) additionally rewrites each task's
    scheduler priority to its class's canonical one -- a serving frontend
    maps the pricing tier onto the paper's user-defined priorities
    (interactive -> HIGH, standard -> MEDIUM, batch -> LOW), so the
    per-device policy fights for the same tasks the SLOs protect.
    """
    from repro.serving.slo import PRIORITY_FOR_QOS, QoSClass

    if not mix:
        raise ValueError("mix must be non-empty")
    classes = sorted(mix)
    weights = [mix[name] for name in classes]
    if any(w < 0 for w in weights) or sum(weights) <= 0:
        raise ValueError("mix weights must be non-negative and sum > 0")
    rng = random.Random(seed ^ 0x0905)
    tagged = []
    for spec in workload.tasks:
        qos = rng.choices(classes, weights=weights)[0]
        replacements = {"qos": qos}
        if align_priority:
            replacements["priority"] = PRIORITY_FOR_QOS[QoSClass(qos)]
        tagged.append(dataclasses.replace(spec, **replacements))
    return dataclasses.replace(workload, tasks=tuple(tagged))


# ----------------------------------------------------------------------
# Synthetic runtimes: scheduler benchmarking without the compiler
# ----------------------------------------------------------------------
def synthetic_profile(
    name: str,
    total_cycles: float,
    num_layers: int = 4,
    tiles_per_layer: int = 32,
    checkpoint_bytes_per_layer: float = 256 * 1024,
) -> ExecutionProfile:
    """A hand-made GEMM-like execution profile of ``total_cycles``.

    Layers are uniform, each with ``tiles_per_layer`` preemption points
    and a flat checkpoint-size model, which exercises the same preemption
    machinery (tile-boundary snap, checkpoint DMA sizing) as a compiled
    model at none of the compilation cost.
    """
    if total_cycles <= 0:
        raise ValueError("total_cycles must be positive")
    if num_layers <= 0 or tiles_per_layer <= 0:
        raise ValueError("num_layers and tiles_per_layer must be positive")
    layer_cycles = total_cycles / num_layers
    checkpoint = CheckpointProfile(
        out_bytes_per_tile=checkpoint_bytes_per_layer / tiles_per_layer,
        total_tiles=tiles_per_layer,
        ubuf_cap_bytes=int(checkpoint_bytes_per_layer),
        accq_bytes=4096,
    )
    layers = tuple(
        LayerTiming(
            name=f"{name}-L{index}",
            kind=LayerKind.FC,
            cycles=layer_cycles,
            total_tiles=tiles_per_layer,
            tile_cycles=layer_cycles / tiles_per_layer,
            checkpoint=checkpoint,
            macs=int(layer_cycles) * 256,
        )
        for index in range(num_layers)
    )
    starts = tuple(index * layer_cycles for index in range(num_layers))
    return ExecutionProfile(
        name=name,
        batch=1,
        layers=layers,
        layer_starts=starts,
        total_cycles=layer_cycles * num_layers,
    )


def synthetic_runtime(
    spec: TaskSpec,
    isolated_cycles: float,
    estimated_cycles: Optional[float] = None,
    num_layers: int = 4,
    tiles_per_layer: int = 32,
) -> TaskRuntime:
    """Build one scheduler-ready task runtime around a synthetic profile."""
    profile = synthetic_profile(
        f"{spec.benchmark}-t{spec.task_id}",
        isolated_cycles,
        num_layers=num_layers,
        tiles_per_layer=tiles_per_layer,
    )
    context = TaskContext(
        task_id=spec.task_id,
        priority=spec.priority,
        benchmark=spec.benchmark,
        estimated_cycles=(
            profile.total_cycles if estimated_cycles is None else estimated_cycles
        ),
        last_update_cycles=spec.arrival_cycles,
    )
    return TaskRuntime(spec=spec, profile=profile, context=context)


def synthetic_trace_runtimes(
    num_tasks: int,
    seed: int = 0,
    mean_interarrival_cycles: float = DEFAULT_MEAN_INTERARRIVAL_CYCLES,
    mean_service_cycles: float = 1.5e-3 * 700e6,
    estimate_error: float = 0.15,
    bursty: bool = False,
    benchmarks: Sequence[str] = CNN_BENCHMARKS,
    qos_mix: Optional[Dict[str, float]] = None,
    estimate_bias: Optional[Dict[str, float]] = None,
) -> List[TaskRuntime]:
    """One ready-to-run open-arrival trace of synthetic tasks.

    Service times are drawn log-uniform over roughly one decade around
    ``mean_service_cycles``; the scheduler-visible estimate carries a
    uniform relative error of up to ``estimate_error`` (the Algorithm-1
    information asymmetry, without running Algorithm 1).  CNN benchmark
    names avoid the RNN sequence-length machinery, so building the trace
    touches no model, compiler, or profiler code.

    ``qos_mix`` tags tasks with serving QoS classes via :func:`assign_qos`
    (its own RNG stream -- arrivals and attributes are unchanged).
    ``estimate_bias`` multiplies the scheduler-visible estimate of the
    named benchmarks by a fixed factor (e.g. ``{"CNN-AN": 0.6}`` makes
    every CNN-AN estimate a systematic 40% underestimate) -- the
    deterministic per-model miscalibration the online feedback layer
    exists to learn away.  Both default to off, leaving existing traces
    bit-for-bit identical.
    """
    generator = TraceGenerator(
        seed=seed, benchmarks=tuple(benchmarks), profiles={}
    )
    if bursty:
        workload = generator.generate_bursty(
            num_tasks, mean_interarrival_cycles
        )
    else:
        workload = generator.generate_poisson(
            num_tasks, mean_interarrival_cycles
        )
    if qos_mix is not None:
        workload = assign_qos(workload, qos_mix, seed=seed)
    rng = random.Random(seed + 0x5EED)
    runtimes = []
    for spec in workload.tasks:
        isolated = mean_service_cycles * (10.0 ** rng.uniform(-0.6, 0.6))
        error = 1.0 + rng.uniform(-estimate_error, estimate_error)
        if estimate_bias is not None:
            error *= estimate_bias.get(spec.benchmark, 1.0)
        runtimes.append(
            synthetic_runtime(spec, isolated, estimated_cycles=isolated * error)
        )
    return runtimes
