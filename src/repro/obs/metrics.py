"""Streaming time-series metrics with bounded memory.

A :class:`MetricsSampler` owns a registry of named counters, gauges,
and histograms.  Emission sites in the cluster bump counters as events
happen (admission decisions, completions, SLA outcomes); on every
sampling tick -- the cluster loop calls :meth:`MetricsSampler.sample`
whenever simulated time crosses ``interval_cycles`` -- the current
value of every instrument is appended to that instrument's
:class:`RingBuffer`, so a run of any length holds at most
``capacity`` points per series.

Gauges sampled by the cluster (see ``docs/observability.md``):
per-device queue depth, corrected backlog, and busy flag (utilization
= mean of the 0/1 busy samples); per-rack aggregates of the same; and
cumulative uplink-busy cycles per rack.  Counters: admission
accept/defer/reject, completions, SLA met/missed (windowed attainment
falls out of the deltas between samples), steals, and migrations.

When a :class:`~repro.obs.trace.Tracer` is attached, each sampled
point is mirrored as a Chrome-trace counter event, so the series render
as line graphs in the Perfetto UI and ``repro.analysis.obs_report``
can rebuild them from the trace artifact alone.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Tuple


class RingBuffer:
    """Fixed-capacity append-only buffer keeping the newest items."""

    __slots__ = ("capacity", "_data", "_next", "total_appended")

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._data: List[object] = []
        self._next = 0
        self.total_appended = 0

    def append(self, item) -> None:
        if len(self._data) < self.capacity:
            self._data.append(item)
        else:
            self._data[self._next] = item
        self._next = (self._next + 1) % self.capacity
        self.total_appended += 1

    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self) -> Iterator:
        """Oldest to newest."""
        if len(self._data) < self.capacity:
            yield from self._data
        else:
            yield from self._data[self._next :]
            yield from self._data[: self._next]

    def last(self):
        if not self._data:
            raise IndexError("empty ring buffer")
        return self._data[self._next - 1]


class Counter:
    """Monotonic cumulative count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """Instantaneous value, overwritten by each set()."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Log2-bucketed distribution with O(1) observe and bounded state.

    Bucket ``b`` counts observations in ``[2**b, 2**(b+1))``; values
    below 1 share bucket 0.  At most ~64 buckets ever exist, so memory
    stays bounded no matter how many points are observed.
    """

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.buckets: Dict[int, int] = {}

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        bucket = max(0, int(value).bit_length() - 1) if value >= 1 else 0
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, fraction: float) -> float:
        """Upper bucket bound at the given quantile (coarse, log2)."""
        if not self.count:
            return 0.0
        target = fraction * self.count
        seen = 0
        for bucket in sorted(self.buckets):
            seen += self.buckets[bucket]
            if seen >= target:
                return float(2 ** (bucket + 1))
        return self.max


class MetricsSampler:
    """Registry + sampling clock for streaming cluster metrics.

    Construct with the sampling ``interval_cycles`` and pass via
    ``ClusterConfig(metrics_sampler=...)``.  ``capacity`` bounds every
    series; ``slos`` (an :class:`repro.serving.slo.SLOPolicy`) enables
    streaming SLA-attainment counters scored exactly like
    ``compute_cluster_metrics``; ``tracer`` mirrors samples into the
    trace artifact as Perfetto counter series.
    """

    def __init__(
        self,
        interval_cycles: float,
        capacity: int = 512,
        slos=None,
        tracer=None,
    ) -> None:
        if interval_cycles <= 0:
            raise ValueError("interval_cycles must be positive")
        self.interval_cycles = float(interval_cycles)
        self.capacity = capacity
        self.slos = slos
        self.tracer = tracer
        self.next_due = 0.0
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}
        self._series: Dict[str, RingBuffer] = {}

    # ------------------------------------------------------------------
    # Instruments
    # ------------------------------------------------------------------
    def inc(self, name: str, amount: float = 1.0) -> None:
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter()
        counter.inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        gauge = self.gauges.get(name)
        if gauge is None:
            gauge = self.gauges[name] = Gauge()
        gauge.set(value)

    def observe(self, name: str, value: float) -> None:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram()
        histogram.observe(value)

    # ------------------------------------------------------------------
    # Completion hook (called by the cluster loop per finished task)
    # ------------------------------------------------------------------
    def task_completed(self, task) -> None:
        """Score one finished task: latency histogram + SLA counters."""
        self.inc("tasks.completed")
        self.observe("task.latency_cycles", task.turnaround_cycles)
        if self.slos is not None:
            level = self.slos.level_for(task.spec)
            if level.met_by(task.turnaround_cycles, task.isolated_cycles):
                self.inc("sla.met")
            else:
                self.inc("sla.missed")

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def due(self, now: float) -> bool:
        return now >= self.next_due

    def sample(self, now: float) -> None:
        """Snapshot every instrument into its bounded series."""
        tracer = self.tracer
        emit = tracer is not None and tracer.enabled
        for name, counter in self.counters.items():
            self._record(name, now, counter.value)
            if emit:
                tracer.counter(name, now, counter.value)
        for name, gauge in self.gauges.items():
            self._record(name, now, gauge.value)
            if emit:
                tracer.counter(name, now, gauge.value)
        for name, histogram in self.histograms.items():
            self._record(name + ".mean", now, histogram.mean)
            if emit:
                tracer.counter(name + ".mean", now, histogram.mean)
        self.next_due = now + self.interval_cycles

    def _record(self, name: str, now: float, value: float) -> None:
        series = self._series.get(name)
        if series is None:
            series = self._series[name] = RingBuffer(self.capacity)
        series.append((now, value))

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def series(self, name: str) -> List[Tuple[float, float]]:
        """The sampled (cycle, value) points for one series, oldest first."""
        buffer = self._series.get(name)
        return list(buffer) if buffer is not None else []

    def series_names(self) -> List[str]:
        return sorted(self._series)

    def windowed_rate(self, name: str) -> List[Tuple[float, float]]:
        """Per-sample deltas of a cumulative counter series."""
        points = self.series(name)
        return [
            (t1, v1 - v0)
            for (_, v0), (t1, v1) in zip(points, points[1:])
        ]

    def attainment_series(self) -> List[Tuple[float, float]]:
        """Windowed SLA attainment: met / (met + missed) per interval."""
        met = dict(self.windowed_rate("sla.met"))
        missed = dict(self.windowed_rate("sla.missed"))
        out = []
        for t in sorted(set(met) | set(missed)):
            m, x = met.get(t, 0.0), missed.get(t, 0.0)
            if m + x > 0:
                out.append((t, m / (m + x)))
        return out


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsSampler",
    "RingBuffer",
]
