"""Golden-equivalence capture for the scheduler hot path.

The hot-path optimization PR (incremental ready/backlog accounting, lazy
wait settlement, policy priority structures) promises behavioral
equivalence: every (policy, mode, mechanism, routing) combination must
reproduce the pre-optimization scheduling decisions exactly.  This module
runs the sweep and encodes each run into a JSON-stable record; the golden
file committed at ``tests/data/golden_hotpath.json.gz`` was captured from
the **pre-optimization** simulator (run
``python tests/capture_hotpath_goldens.py`` to regenerate -- only ever
justified alongside an intentional, documented behavioral change).

Two comparison classes:

- *Behavioral* fields -- completion times, first-dispatch times, timeline
  digests, preemption/kill/drain counters, wasted cycles, checkpoint
  bytes, makespan, placements, migrations -- are compared **bit-for-bit**
  (floats travel as ``float.hex()``).  Any difference means a scheduling
  decision changed.
- *Accounting* fields -- ``waited_cycles``, ``waited_since_grant``,
  ``tokens`` -- are compared to 1e-9 relative tolerance.  Lazy wait
  settlement coalesces the per-wake accruals of idle waiters into one
  delta per read point; IEEE-754 addition is not associative, so these
  sums can legitimately differ in their last bits while every comparison
  the scheduler makes (token thresholds are exact small integers) is
  unchanged.  If a token-threshold comparison ever *did* flip, dispatch
  order would shift and the behavioral fields would catch it exactly.
"""

from __future__ import annotations

import gzip
import hashlib
import json
import pathlib
from typing import Dict, Iterator, Tuple

from repro.npu.config import NPUConfig
from repro.sched.cluster import ClusterScheduler, RoutingPolicy
from repro.sched.interconnect import InterconnectConfig
from repro.sched.policies import POLICY_NAMES
from repro.sched.prepare import TaskFactory
from repro.sched.simulator import (
    NPUSimulator,
    PreemptionMode,
    SimulationConfig,
)
from repro.sched.policies import make_policy
from repro.workloads.generator import WorkloadGenerator

GOLDEN_PATH = (
    pathlib.Path(__file__).parent / "data" / "golden_hotpath.json.gz"
)
CLUSTER_GOLDEN_PATH = (
    pathlib.Path(__file__).parent / "data" / "golden_cluster.json.gz"
)

SINGLE_SEED = 77
CLUSTER_SEED = 78
NUM_WORKLOADS = 25
CLUSTER_NUM_TASKS = 16
CLUSTER_DEVICES = 4

#: Every (mode, mechanism) pair with distinct behavior.  NP never touches
#: the mechanism, so one representative suffices.
MODE_MECHANISMS: Tuple[Tuple[str, str], ...] = (
    ("np", "CHECKPOINT"),
    ("static", "CHECKPOINT"),
    ("static", "KILL"),
    ("dynamic", "CHECKPOINT"),
    ("dynamic", "KILL"),
)

#: The routings the hot-path golden file was captured over -- pinned to
#: the pre-migration set so later routing additions (PREEMPTIVE_MIGRATION
#: and beyond) extend the *cluster* golden suite instead of invalidating
#: this one.
ROUTINGS: Tuple[RoutingPolicy, ...] = (
    RoutingPolicy.ROUND_ROBIN,
    RoutingPolicy.LEAST_LOADED,
    RoutingPolicy.RANDOM,
    RoutingPolicy.STATIC,
    RoutingPolicy.ONLINE_PREDICTED,
    RoutingPolicy.WORK_STEALING,
)

#: Accounting fields compared with tolerance instead of bit-for-bit.
TOLERANT_TASK_FIELDS = frozenset({"waited", "waited_since_grant", "tokens"})
RELATIVE_TOLERANCE = 1e-9


def _hex(value) -> str:
    return float(value).hex()


def _encode_timeline(timeline) -> str:
    digest = hashlib.sha256()
    for segment in timeline.segments:
        digest.update(
            (
                f"{segment.task_id}|{segment.kind.value}|"
                f"{_hex(segment.start_cycles)}|{_hex(segment.end_cycles)};"
            ).encode()
        )
    return digest.hexdigest()[:20]


def _encode_task(task) -> Dict[str, object]:
    context = task.context
    return {
        # Behavioral (exact)
        "completion": _hex(task.completion_time),
        "first_dispatch": _hex(task.first_dispatch_time),
        "preemptions": task.preemption_count,
        "kills": task.kill_count,
        "wasted": _hex(task.wasted_cycles),
        "checkpoint_bytes": _hex(task.checkpointed_bytes_total),
        "executed": _hex(context.executed_cycles),
        # Accounting (tolerance)
        "waited": _hex(context.waited_cycles),
        "waited_since_grant": _hex(context.waited_since_grant),
        "tokens": _hex(context.tokens),
    }


def _encode_result(result) -> Dict[str, object]:
    return {
        "makespan": _hex(result.makespan_cycles),
        "preemption_count": result.preemption_count,
        "drain_decisions": result.drain_decisions,
        "timeline": _encode_timeline(result.timeline),
        "tasks": {
            str(task.task_id): _encode_task(task)
            for task in sorted(result.tasks, key=lambda t: t.task_id)
        },
    }


def _encode_cluster(result) -> Dict[str, object]:
    return {
        "assignments": {
            str(task_id): device
            for task_id, device in sorted(result.assignments.items())
        },
        "migrations": [
            [m.task_id, m.from_device, m.to_device, _hex(m.time_cycles)]
            for m in result.migrations
        ],
        "makespan": _hex(result.makespan_cycles),
        "devices": [
            None if device is None else _encode_result(device)
            for device in result.device_results
        ],
        "tasks": {
            str(task.task_id): _encode_task(task)
            for task in sorted(result.tasks, key=lambda t: t.task_id)
        },
    }


def single_npu_runs(factory: TaskFactory) -> Iterator[Tuple[str, object]]:
    """The full single-NPU sweep: 25 workloads x policies x mode-mechs."""
    workloads = WorkloadGenerator(seed=SINGLE_SEED).generate_many(
        NUM_WORKLOADS, num_tasks=8
    )
    for index, workload in enumerate(workloads):
        for policy_name in POLICY_NAMES:
            for mode, mechanism in MODE_MECHANISMS:
                config = SimulationConfig(
                    npu=factory.config,
                    mode=PreemptionMode(mode),
                    mechanism=mechanism,
                )
                tasks = factory.build_workload(workload)
                result = NPUSimulator(config, make_policy(policy_name)).run(
                    tasks
                )
                yield (
                    f"single/{index:02d}/{policy_name}/{mode}/{mechanism}",
                    _encode_result(result),
                )


def cluster_runs(factory: TaskFactory) -> Iterator[Tuple[str, object]]:
    """The cluster sweep: 25 workloads x routings, rotating the device
    scheduler so every policy and every mode-mechanism pair appears."""
    workloads = WorkloadGenerator(seed=CLUSTER_SEED).generate_many(
        NUM_WORKLOADS, num_tasks=CLUSTER_NUM_TASKS
    )
    for index, workload in enumerate(workloads):
        policy_name = POLICY_NAMES[index % len(POLICY_NAMES)]
        mode, mechanism = MODE_MECHANISMS[index % len(MODE_MECHANISMS)]
        for routing in ROUTINGS:
            config = SimulationConfig(
                npu=factory.config,
                mode=PreemptionMode(mode),
                mechanism=mechanism,
            )
            scheduler = ClusterScheduler(
                num_devices=CLUSTER_DEVICES,
                simulation_config=config,
                policy_name=policy_name,
                routing=routing,
                seed=index,
            )
            tasks = factory.build_workload(workload)
            result = scheduler.run(tasks)
            yield (
                f"cluster/{index:02d}/{routing.value}/{policy_name}/"
                f"{mode}/{mechanism}",
                _encode_cluster(result),
            )


# ----------------------------------------------------------------------
# Cluster golden suite (PR 3): every routing policy -- checkpoint
# migration included -- on 2/4/8-device clusters
# ----------------------------------------------------------------------
CLUSTER_SUITE_SEED = 81
CLUSTER_SUITE_NUM_WORKLOADS = 6
CLUSTER_SUITE_NUM_TASKS = 16
CLUSTER_SUITE_DEVICE_COUNTS: Tuple[int, ...] = (2, 4, 8)
CLUSTER_SUITE_ROUTINGS: Tuple[RoutingPolicy, ...] = tuple(RoutingPolicy)


def _encode_migration(migration) -> list:
    return [
        migration.task_id,
        migration.from_device,
        migration.to_device,
        _hex(migration.time_cycles),
        migration.kind,
        _hex(migration.bytes_moved),
        _hex(migration.arrival_cycles),
    ]


def _encode_transfers(transfers) -> str:
    digest = hashlib.sha256()
    for record in transfers:
        digest.update(
            (
                f"{record.task_id}|{record.src_device}|{record.dst_device}|"
                f"{_hex(record.num_bytes)}|{_hex(record.request_cycles)}|"
                f"{_hex(record.start_cycles)}|{_hex(record.end_cycles)};"
            ).encode()
        )
    return digest.hexdigest()[:20]


def _encode_cluster_v2(result) -> Dict[str, object]:
    """Cluster encoding with the migration-era fields.

    Superset of :func:`_encode_cluster`: migrations carry kind, payload
    bytes, and delivery time; interconnect transfers are digested; tasks
    gain their migration counters (behavioral, compared exactly).
    """
    record = _encode_cluster(result)
    record["migrations"] = [
        _encode_migration(m) for m in result.migrations
    ]
    record["transfers"] = _encode_transfers(result.transfers)
    for task in result.tasks:
        encoded = record["tasks"][str(task.task_id)]
        encoded["migrations"] = task.migration_count
        encoded["migrated_bytes"] = _hex(task.migrated_bytes_total)
    return record


def cluster_suite_runs(
    factory: TaskFactory,
    interconnect: InterconnectConfig = None,
    global_tokens: bool = None,
    routings: Tuple[RoutingPolicy, ...] = CLUSTER_SUITE_ROUTINGS,
    device_counts: Tuple[int, ...] = CLUSTER_SUITE_DEVICE_COUNTS,
    num_workloads: int = CLUSTER_SUITE_NUM_WORKLOADS,
) -> Iterator[Tuple[str, object]]:
    """The cluster golden sweep: workloads x device counts x routings,
    rotating the device scheduler so every policy and mode-mechanism
    pair appears.  ``interconnect``/``global_tokens`` default to the
    scheduler's own defaults; passing explicit values replays the sweep
    under different fabric assumptions (the infinite-bandwidth
    equivalence test does)."""
    workloads = WorkloadGenerator(seed=CLUSTER_SUITE_SEED).generate_many(
        CLUSTER_SUITE_NUM_WORKLOADS, num_tasks=CLUSTER_SUITE_NUM_TASKS
    )[:num_workloads]
    for index, workload in enumerate(workloads):
        policy_name = POLICY_NAMES[index % len(POLICY_NAMES)]
        mode, mechanism = MODE_MECHANISMS[index % len(MODE_MECHANISMS)]
        config = SimulationConfig(
            npu=factory.config,
            mode=PreemptionMode(mode),
            mechanism=mechanism,
        )
        for num_devices in device_counts:
            for routing in routings:
                scheduler = ClusterScheduler(
                    num_devices=num_devices,
                    simulation_config=config,
                    policy_name=policy_name,
                    routing=routing,
                    seed=index,
                    interconnect=interconnect,
                    global_tokens=global_tokens,
                )
                tasks = factory.build_workload(workload)
                result = scheduler.run(tasks)
                yield (
                    f"cluster/{index:02d}/{num_devices}dev/{routing.value}/"
                    f"{policy_name}/{mode}/{mechanism}",
                    _encode_cluster_v2(result),
                )


def capture_cluster(factory: TaskFactory = None) -> Dict[str, object]:
    """Run the cluster sweep and return the golden payload."""
    if factory is None:
        factory = TaskFactory(NPUConfig())
    runs: Dict[str, object] = {}
    for key, record in cluster_suite_runs(factory):
        runs[key] = record
    return {
        "format": 1,
        "note": (
            "Cluster-routing golden suite (all routings, 2/4/8 devices); "
            "regenerate only alongside an intentional behavioral change "
            "(python tests/capture_cluster_goldens.py)."
        ),
        "runs": runs,
    }


def write_cluster_goldens(payload: Dict[str, object]) -> pathlib.Path:
    CLUSTER_GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    with gzip.GzipFile(CLUSTER_GOLDEN_PATH, "wb", mtime=0) as handle:
        handle.write(text.encode())
    return CLUSTER_GOLDEN_PATH


def load_cluster_goldens() -> Dict[str, object]:
    with gzip.open(CLUSTER_GOLDEN_PATH, "rt") as handle:
        return json.load(handle)


def capture(factory: TaskFactory = None) -> Dict[str, object]:
    """Run the whole sweep and return the golden payload."""
    if factory is None:
        factory = TaskFactory(NPUConfig())
    runs: Dict[str, object] = {}
    for key, record in single_npu_runs(factory):
        runs[key] = record
    for key, record in cluster_runs(factory):
        runs[key] = record
    return {
        "format": 1,
        "note": (
            "Captured from the pre-optimization scheduler; regenerate only "
            "alongside an intentional behavioral change "
            "(python tests/capture_hotpath_goldens.py)."
        ),
        "runs": runs,
    }


def write_goldens(payload: Dict[str, object]) -> pathlib.Path:
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    # mtime=0 keeps regeneration byte-reproducible.
    with gzip.GzipFile(GOLDEN_PATH, "wb", mtime=0) as handle:
        handle.write(text.encode())
    return GOLDEN_PATH


def load_goldens() -> Dict[str, object]:
    with gzip.open(GOLDEN_PATH, "rt") as handle:
        return json.load(handle)
