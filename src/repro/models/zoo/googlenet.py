"""GoogLeNet (CNN-GN): inception modules with parallel 1x1/3x3/5x5 branches.

The many small 1x1 reduce convolutions underutilize the 128x128 array
(low k or m relative to the array dims), producing the off-trend points in
the paper's Fig 10.  GoogLeNet is also the short-running CNN the paper
uses to motivate letting low-priority short jobs preempt long ones.
"""

from __future__ import annotations

import dataclasses

from repro.models.graph import Graph
from repro.models.layers import Concat, Conv2D, FullyConnected, InputSpec, Pool2D, Softmax


@dataclasses.dataclass(frozen=True)
class InceptionSpec:
    """Channel plan for one inception module (standard GoogLeNet notation)."""

    name: str
    c1x1: int
    c3x3_reduce: int
    c3x3: int
    c5x5_reduce: int
    c5x5: int
    pool_proj: int


#: The nine inception modules of GoogLeNet (3a..3b, 4a..4e, 5a..5b).
_INCEPTIONS = (
    InceptionSpec("3a", 64, 96, 128, 16, 32, 32),
    InceptionSpec("3b", 128, 128, 192, 32, 96, 64),
    InceptionSpec("4a", 192, 96, 208, 16, 48, 64),
    InceptionSpec("4b", 160, 112, 224, 24, 64, 64),
    InceptionSpec("4c", 128, 128, 256, 24, 64, 64),
    InceptionSpec("4d", 112, 144, 288, 32, 64, 64),
    InceptionSpec("4e", 256, 160, 320, 32, 128, 128),
    InceptionSpec("5a", 256, 160, 320, 32, 128, 128),
    InceptionSpec("5b", 384, 192, 384, 48, 128, 128),
)
_POOL_AFTER = frozenset(("3b", "4e"))


def _add_inception(graph: Graph, spec: InceptionSpec, input_name: str) -> str:
    """Wire one inception module; returns the concat output node name."""
    prefix = f"inc{spec.name}"
    b1 = graph.add(
        Conv2D(f"{prefix}_1x1", out_channels=spec.c1x1, kernel=1),
        inputs=[input_name],
    )
    graph.add(
        Conv2D(f"{prefix}_3x3r", out_channels=spec.c3x3_reduce, kernel=1),
        inputs=[input_name],
    )
    b2 = graph.add(
        Conv2D(f"{prefix}_3x3", out_channels=spec.c3x3, kernel=3, padding=1),
        inputs=[f"{prefix}_3x3r"],
    )
    graph.add(
        Conv2D(f"{prefix}_5x5r", out_channels=spec.c5x5_reduce, kernel=1),
        inputs=[input_name],
    )
    b3 = graph.add(
        Conv2D(f"{prefix}_5x5", out_channels=spec.c5x5, kernel=5, padding=2),
        inputs=[f"{prefix}_5x5r"],
    )
    graph.add(
        Pool2D(f"{prefix}_pool", kernel=3, stride=1, padding=1),
        inputs=[input_name],
    )
    b4 = graph.add(
        Conv2D(f"{prefix}_poolp", out_channels=spec.pool_proj, kernel=1),
        inputs=[f"{prefix}_pool"],
    )
    out = graph.add(
        Concat(f"{prefix}_out"),
        inputs=[b1.name, b2.name, b3.name, b4.name],
    )
    return out.name


def build_googlenet() -> Graph:
    graph = Graph("CNN-GN", InputSpec(channels=3, height=224, width=224))
    graph.add(Conv2D("conv1", out_channels=64, kernel=7, stride=2, padding=3))
    graph.add(Pool2D("pool1", kernel=3, stride=2, padding=1))
    graph.add(Conv2D("conv2_reduce", out_channels=64, kernel=1))
    graph.add(Conv2D("conv2", out_channels=192, kernel=3, padding=1))
    graph.add(Pool2D("pool2", kernel=3, stride=2, padding=1))
    current = "pool2"
    for spec in _INCEPTIONS:
        current = _add_inception(graph, spec, current)
        if spec.name in _POOL_AFTER:
            pool = graph.add(
                Pool2D(f"pool_{spec.name}", kernel=3, stride=2, padding=1),
                inputs=[current],
            )
            current = pool.name
    graph.add(Pool2D("avgpool", kernel=7, stride=1, mode="avg"), inputs=[current])
    graph.add(FullyConnected("fc", out_features=1000, fused_activation=None))
    graph.add(Softmax("prob"))
    graph.validate()
    return graph
