"""Token accounting for the PREMA scheduler (paper Sec V-C, Table II).

Each dispatched task starts with tokens equal to its user-defined priority
value (low/medium/high -> 1/3/9) and periodically earns additional tokens
proportional to its priority and the slowdown it has suffered while
waiting.  A task becomes a scheduling *candidate* when its tokens exceed a
dynamic threshold derived from the current maximum token count, rounded
down to the closest priority token value (the paper's max=8 -> threshold=3
example).
"""

from __future__ import annotations

import enum
import heapq
from typing import Dict, List, Tuple


class Priority(enum.IntEnum):
    """User-defined priority levels (Google-Cloud-style service tiers)."""

    LOW = 0
    MEDIUM = 1
    HIGH = 2


#: Tokens granted per priority level at dispatch (paper Table II).
PRIORITY_TOKENS: Dict[Priority, int] = {
    Priority.LOW: 1,
    Priority.MEDIUM: 3,
    Priority.HIGH: 9,
}

#: Priority token values, ascending (threshold quantization grid).
TOKEN_LEVELS: Tuple[int, ...] = tuple(sorted(PRIORITY_TOKENS.values()))


def initial_tokens(priority: Priority) -> int:
    """Tokens assigned when a task is dispatched (Algorithm 2, line 3)."""
    return PRIORITY_TOKENS[priority]


def token_increment(
    priority: Priority, waited_delta_cycles: float, estimated_cycles: float
) -> float:
    """Tokens earned over one scheduling period (Algorithm 2, line 7).

    ``Slowdown_normalized`` is the waiting time accrued since the last
    grant, normalized by the task's estimated isolated execution time, so
    short tasks accumulate tokens proportionally faster (DESIGN.md #3).
    """
    if waited_delta_cycles < 0:
        raise ValueError("waited_delta_cycles must be >= 0")
    if estimated_cycles <= 0:
        raise ValueError("estimated_cycles must be positive")
    slowdown_normalized = waited_delta_cycles / estimated_cycles
    return PRIORITY_TOKENS[priority] * slowdown_normalized


def candidate_threshold(max_tokens: float) -> float:
    """The dynamic candidate threshold (Algorithm 2, line 9).

    Returns the largest priority token value *strictly below*
    ``max_tokens`` (0 when even the lowest level is not below it), so the
    task holding the maximum always qualifies under the strict ``>``
    comparison -- the behaviour the paper's max=8 -> threshold=3 example
    requires (DESIGN.md deviation #2).
    """
    threshold = 0.0
    for level in TOKEN_LEVELS:
        if level < max_tokens:
            threshold = float(level)
    return threshold


def candidate_bucket(tokens: float) -> int:
    """Number of priority token levels strictly below ``tokens``.

    Buckets quantize token counts by the threshold grid: a row with
    ``tokens`` clears ``candidate_threshold(max_tokens)`` iff its bucket
    is >= the bucket of ``max_tokens`` (assuming ``tokens > 0``, which
    holds for every simulator-managed row -- initial tokens come from the
    priority levels and grants are non-negative).  Incremental schedulers
    keep one priority structure per bucket so the candidate group of
    Algorithm 2 line 9 is the union of the top buckets, never a scan.
    """
    bucket = 0
    for level in TOKEN_LEVELS:
        if level < tokens:
            bucket += 1
    return bucket


NUM_CANDIDATE_BUCKETS = len(TOKEN_LEVELS) + 1


class ClusterTokenLedger:
    """Cluster-global registry of ready tasks' token counts.

    Per-device token policies compute the Algorithm-2 candidate threshold
    from the maximum token count of *their own* ready queue; on a
    multi-NPU node that makes slowdown-normalized priority a per-device
    notion -- a task unlucky in placement competes against a different
    threshold than an identical task on the next device.  The ledger
    restores one cluster-wide grid: every token policy registers its
    ready rows' counts here, and selection/preemption thresholds are
    derived from ``max(local ready max, ledger max)``.

    Values are **lazily settled**: a row's entry reflects its token count
    as of the owning device's last settlement point (period re-rank,
    dispatch, requeue, or migration), exactly the staleness the
    single-device lazy accounting already accepts.  Entries are keyed by
    task id; a task is *active* while it sits in some device's ready
    queue (or is mid-migration between two of them).

    The max is answered from a lazy-deletion heap (amortized O(log n) per
    update), the same technique as the policies' priority structures.
    """

    def __init__(self) -> None:
        self._tokens: Dict[int, float] = {}
        self._heap: List[Tuple[float, int]] = []

    def __len__(self) -> int:
        return len(self._tokens)

    def __contains__(self, task_id: int) -> bool:
        return task_id in self._tokens

    def activate(self, task_id: int, tokens: float) -> None:
        """Register (or refresh) a ready task's settled token count."""
        self._tokens[task_id] = tokens
        heapq.heappush(self._heap, (-tokens, task_id))
        if len(self._heap) > 64 and len(self._heap) > 2 * len(self._tokens):
            self._compact()

    def deactivate(self, task_id: int) -> None:
        """Drop a task that left every ready queue (dispatch/completion)."""
        self._tokens.pop(task_id, None)

    def clear(self) -> None:
        self._tokens.clear()
        self._heap.clear()

    def ready_max_tokens(self) -> float:
        """Largest settled token count over active tasks (0.0 when none)."""
        heap = self._heap
        tokens = self._tokens
        while heap:
            negated, task_id = heap[0]
            if tokens.get(task_id) == -negated:
                return -negated
            heapq.heappop(heap)
        return 0.0

    def ready_total_tokens(self) -> float:
        """Exact sum of active settled counts (O(n); tests and metrics)."""
        return sum(self._tokens.values())

    def snapshot(self) -> Dict[int, float]:
        return dict(self._tokens)

    def _compact(self) -> None:
        self._heap = [
            (-tokens, task_id) for task_id, tokens in self._tokens.items()
        ]
        heapq.heapify(self._heap)


def select_candidates(tokens_by_task: Dict[int, float]) -> Tuple[int, ...]:
    """Task ids whose tokens exceed the dynamic threshold.

    Given the ready queue's token counts, returns the candidate group of
    Algorithm 2 line 9 (never empty when the queue is non-empty).
    """
    if not tokens_by_task:
        return ()
    threshold = candidate_threshold(max(tokens_by_task.values()))
    return tuple(
        task_id
        for task_id, tokens in tokens_by_task.items()
        if tokens > threshold
    )
