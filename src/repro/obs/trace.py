"""Structured event tracing for the cluster simulation.

A :class:`Tracer` collects typed span/instant events from every layer of
the stack -- device dispatch/preemption/checkpoint/restore
(``simulator.py``), routing, admission, stealing, migration, batching,
and rack picks (``cluster.py``), interconnect transfers
(``interconnect.py``), churn transitions (``faults.py``), and batch
merges (``job.py``) -- and exports them as Chrome-trace ("trace event
format") JSON that opens directly in the Perfetto UI
(https://ui.perfetto.dev) or ``chrome://tracing``.

Track layout (the part Perfetto renders as the left-hand tree):

- **racks are process groups**: every device thread lives under the pid
  of its rack (one synthetic "fleet" process when the run is unracked);
- **devices are threads**: one ``tid`` per device, named ``device N``;
- the **control plane** (router, admission, churn, batching, audit) is
  its own process with a single thread;
- the **interconnect** is a process with one thread per link, so each
  link's FIFO occupancy reads as a lane of back-to-back transfer spans.

Timestamps are simulation *cycles*, not microseconds -- the exported
``displayTimeUnit`` is "ns" purely so Perfetto shows compact numbers.
Events are exported sorted by timestamp (stable on emission order), so
every track is monotonic in the artifact; :func:`validate_chrome_trace`
checks that along with the schema.

The zero-cost-off contract: :data:`NULL_TRACER` is a slotted, stateless
singleton whose methods are no-ops and whose class attribute
``enabled`` is ``False``.  Every emission site in the simulator guards
with ``if tracer.enabled:`` *before* building the event's ``args``
dict, so a run without tracing performs one attribute load per
potential event and allocates nothing.
"""

from __future__ import annotations

import json
from typing import Callable, Dict, List, Optional, Tuple

#: Every event kind the stack emits, for validation and docs.  The
#: ``cat`` field of each exported event carries the kind, so Perfetto
#: queries can filter on it (`select * from slice where category = ...`).
EVENT_KINDS = frozenset(
    {
        "dispatch",  # device starts (or resumes) a task
        "run",  # executed span of one dispatch
        "restore",  # checkpoint-restore span preceding a resumed run
        "checkpoint",  # preemption trap DMA span
        "preemption",  # scheduler decision instant (victim + mechanism)
        "complete",  # task finished on a device
        "device_fail",  # fail-stop instant (churn)
        "migration",  # checkpoint shipped src -> dst (steal = zero bytes)
        "transfer",  # interconnect occupancy of one transfer
        "admission",  # accept / defer / reject decision
        "churn",  # availability phase transition (warn/down/restore)
        "batch_flush",  # coalescing window closed, gang dispatched
        "batch_merge",  # member runtimes merged into one proxy
        "rack_pick",  # two-tier frontend chose a rack
        "route_audit",  # decision audit: chosen device + runner-ups
        "metric",  # sampled counter series (MetricsSampler flush)
    }
)

#: Phases used from the Chrome trace event format.
_PHASES = frozenset({"X", "i", "C", "M"})

#: Synthetic pid for the control-plane (router) process.
CONTROL_PID = 1
#: Synthetic pid for the interconnect process.
FABRIC_PID = 2
#: Racks claim pids from here up (rack r -> RACK_PID_BASE + r).
RACK_PID_BASE = 10


class NullTracer:
    """Do-nothing tracer: the default wired through every layer.

    Stateless and slotted -- calling any method allocates nothing.
    Emission sites check :attr:`enabled` (a class attribute, one load)
    before building args, so the off path never constructs a dict.
    """

    __slots__ = ()

    enabled = False
    audit_routing = False

    def instant(self, kind, name, ts, device=-1, link=None, args=None):
        """No-op."""

    def span(self, kind, name, start, end, device=-1, link=None, args=None):
        """No-op."""

    def counter(self, name, ts, value):
        """No-op."""


#: The shared no-op singleton.  Identity-comparable: ``tracer is
#: NULL_TRACER`` is the cheap "is tracing off?" test.
NULL_TRACER = NullTracer()


class Tracer:
    """Collects typed events and exports Chrome-trace/Perfetto JSON.

    ``max_events`` bounds memory: once the buffer is full further
    events increment :attr:`dropped` instead of growing the list (the
    export records the drop count in trace metadata, so a truncated
    artifact is self-describing).

    ``audit_routing`` turns on decision auditing: the cluster router
    additionally emits a ``route_audit`` instant per routed arrival
    carrying the chosen device, the runner-up devices, and their
    corrected-backlog / lower-bound values.  Auditing is allowed to be
    expensive (it performs a full fleet scan per arrival); it exists to
    answer "why device 3?", not to run in production sweeps.
    """

    enabled = True

    def __init__(
        self,
        *,
        audit_routing: bool = False,
        max_events: int = 1_000_000,
    ) -> None:
        self.audit_routing = audit_routing
        self.max_events = max_events
        #: Emitted events: (phase, kind, name, ts, dur_or_value, device,
        #: link, args).  ``device`` < 0 means the control-plane track;
        #: ``link`` (any hashable) overrides onto an interconnect track.
        self.events: List[tuple] = []
        self.dropped = 0
        self._num_devices = 0
        self._rack_of: Optional[Callable[[int], int]] = None

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def bind_topology(
        self,
        num_devices: int,
        rack_of: Optional[Callable[[int], int]] = None,
    ) -> None:
        """Declare the fleet shape so export can map tracks to pids.

        ``rack_of`` maps device id -> rack id; ``None`` renders a single
        "fleet" process.  The cluster scheduler calls this at run start.
        """
        self._num_devices = max(self._num_devices, num_devices)
        if rack_of is not None:
            self._rack_of = rack_of

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def instant(
        self,
        kind: str,
        name: str,
        ts: float,
        device: int = -1,
        link=None,
        args: Optional[dict] = None,
    ) -> None:
        """Record a zero-duration event at cycle ``ts``."""
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(("i", kind, name, float(ts), 0.0, device, link, args))

    def span(
        self,
        kind: str,
        name: str,
        start: float,
        end: float,
        device: int = -1,
        link=None,
        args: Optional[dict] = None,
    ) -> None:
        """Record a complete span [start, end]; zero-length spans are
        stored as instants so they stay visible in the Perfetto UI."""
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        start = float(start)
        duration = float(end) - start
        if duration <= 0.0:
            self.events.append(("i", kind, name, start, 0.0, device, link, args))
        else:
            self.events.append(
                ("X", kind, name, start, duration, device, link, args)
            )

    def counter(self, name: str, ts: float, value: float) -> None:
        """Record one point of a counter series (Perfetto line graph)."""
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(
            ("C", "metric", name, float(ts), float(value), -1, None, None)
        )

    def __len__(self) -> int:
        return len(self.events)

    # ------------------------------------------------------------------
    # Shard merge
    # ------------------------------------------------------------------
    def merge_shards(self, shards: List[List[tuple]]) -> None:
        """Fold per-worker event shards into this tracer, in order.

        The parallel backend hands each worker its own buffer; merging
        renumbers emission deterministically by sorting the union on
        ``(ts, shard, local emission index)``, with this tracer's own
        events (the coordinator's shard) ordered first at equal
        timestamps.  The ``max_events`` cap is re-applied after the
        sort, so a merged trace drops exactly the events a capped
        serial run would have dropped last, and the drop count stays
        self-describing in the export.
        """
        tagged: List[Tuple[float, int, int, tuple]] = [
            (event[3], 0, local, event)
            for local, event in enumerate(self.events)
        ]
        for shard_idx, shard in enumerate(shards, start=1):
            tagged.extend(
                (event[3], shard_idx, local, event)
                for local, event in enumerate(shard)
            )
        tagged.sort(key=lambda entry: entry[:3])
        merged = [entry[3] for entry in tagged]
        if len(merged) > self.max_events:
            self.dropped += len(merged) - self.max_events
            merged = merged[: self.max_events]
        self.events = merged

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def chrome_trace(self) -> Dict[str, object]:
        """Render the collected events as a Chrome-trace JSON payload."""
        rack_of = self._rack_of
        link_tids: Dict[object, int] = {}
        metadata: List[dict] = []
        seen_pids: Dict[int, str] = {}
        seen_tids: Dict[Tuple[int, int], str] = {}

        def pid_of_device(device: int) -> int:
            if rack_of is None:
                return RACK_PID_BASE
            return RACK_PID_BASE + rack_of(device)

        def register(pid: int, tid: int, pname: str, tname: str) -> None:
            if pid not in seen_pids:
                seen_pids[pid] = pname
            if (pid, tid) not in seen_tids:
                seen_tids[(pid, tid)] = tname

        indexed = sorted(
            enumerate(self.events), key=lambda pair: (pair[1][3], pair[0])
        )
        trace_events: List[dict] = []
        for _, event in indexed:
            phase, kind, name, ts, dur_or_value, device, link, args = event
            if phase == "C":
                register(CONTROL_PID, 0, "control plane", "router")
                trace_events.append(
                    {
                        "name": name,
                        "cat": kind,
                        "ph": "C",
                        "ts": ts,
                        "pid": CONTROL_PID,
                        "tid": 0,
                        "args": {"value": dur_or_value},
                    }
                )
                continue
            if link is not None:
                pid = FABRIC_PID
                tid = link_tids.setdefault(link, len(link_tids))
                register(pid, tid, "interconnect", f"link {link}")
            elif device >= 0:
                pid = pid_of_device(device)
                tid = device
                pname = (
                    f"rack {pid - RACK_PID_BASE}"
                    if rack_of is not None
                    else "fleet"
                )
                register(pid, tid, pname, f"device {device}")
            else:
                pid, tid = CONTROL_PID, 0
                register(pid, tid, "control plane", "router")
            record = {
                "name": name,
                "cat": kind,
                "ph": phase,
                "ts": ts,
                "pid": pid,
                "tid": tid,
            }
            if phase == "X":
                record["dur"] = dur_or_value
            else:
                record["s"] = "t"  # thread-scoped instant
            if args:
                record["args"] = args
            trace_events.append(record)

        for pid, pname in sorted(seen_pids.items()):
            metadata.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": pname},
                }
            )
            metadata.append(
                {
                    "name": "process_sort_index",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"sort_index": pid},
                }
            )
        for (pid, tid), tname in sorted(seen_tids.items()):
            metadata.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": tname},
                }
            )
        return {
            "traceEvents": metadata + trace_events,
            "displayTimeUnit": "ns",
            "otherData": {
                "clock": "simulation cycles",
                "num_devices": self._num_devices,
                "dropped_events": self.dropped,
            },
        }

    def write(self, path) -> None:
        """Write the Chrome-trace JSON artifact to ``path``."""
        payload = self.chrome_trace()
        with open(path, "w") as handle:
            json.dump(payload, handle, separators=(",", ":"))


# ----------------------------------------------------------------------
# Loading / validation
# ----------------------------------------------------------------------
def load_chrome_trace(path) -> Dict[str, object]:
    """Load a trace artifact written by :meth:`Tracer.write`."""
    with open(path) as handle:
        return json.load(handle)


def validate_chrome_trace(
    payload: Dict[str, object],
    num_devices: Optional[int] = None,
) -> Dict[str, int]:
    """Schema-check a Chrome-trace payload; raise ``ValueError`` on the
    first malformed event.

    Checks: the container shape; every event's phase/name/pid/tid/ts
    types; non-negative durations; ``cat`` drawn from
    :data:`EVENT_KINDS`; per-(pid, tid) track monotonicity of
    timestamps; and that every track carrying events has a
    ``thread_name`` metadata record (the device/rack mapping Perfetto
    renders).  With ``num_devices``, additionally requires every device
    event's tid to be a valid device id.  Returns occurrence counts per
    phase for test assertions.
    """
    if not isinstance(payload, dict) or "traceEvents" not in payload:
        raise ValueError("payload is not a Chrome-trace object")
    events = payload["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("traceEvents is not a list")
    counts: Dict[str, int] = {"X": 0, "i": 0, "C": 0, "M": 0}
    last_ts: Dict[Tuple[int, int], float] = {}
    named_threads = set()
    named_processes = set()
    used_tracks = set()
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"event {index} is not an object")
        phase = event.get("ph")
        if phase not in _PHASES:
            raise ValueError(f"event {index} has unknown phase {phase!r}")
        counts[phase] += 1
        name = event.get("name")
        if not isinstance(name, str) or not name:
            raise ValueError(f"event {index} has no name")
        pid, tid = event.get("pid"), event.get("tid")
        if not isinstance(pid, int) or not isinstance(tid, int):
            raise ValueError(f"event {index} has non-integer pid/tid")
        if phase == "M":
            if name == "thread_name":
                named_threads.add((pid, tid))
            elif name == "process_name":
                named_processes.add(pid)
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            raise ValueError(f"event {index} has bad ts {ts!r}")
        category = event.get("cat")
        if category not in EVENT_KINDS:
            raise ValueError(f"event {index} has unknown cat {category!r}")
        if phase == "X":
            duration = event.get("dur")
            if not isinstance(duration, (int, float)) or duration < 0:
                raise ValueError(f"event {index} has bad dur {duration!r}")
        if phase == "C":
            args = event.get("args")
            if not isinstance(args, dict) or not all(
                isinstance(value, (int, float)) for value in args.values()
            ):
                raise ValueError(f"counter event {index} has bad args")
        track = (pid, tid)
        if ts < last_ts.get(track, 0.0):
            raise ValueError(
                f"event {index} breaks monotonicity on track {track}: "
                f"{ts} < {last_ts[track]}"
            )
        last_ts[track] = ts
        used_tracks.add(track)
        if (
            num_devices is not None
            and pid >= RACK_PID_BASE
            and not 0 <= tid < num_devices
        ):
            raise ValueError(f"event {index} names unknown device {tid}")
    missing = used_tracks - named_threads
    if missing:
        raise ValueError(f"tracks without thread_name metadata: {missing}")
    missing_pids = {pid for pid, _ in used_tracks} - named_processes
    if missing_pids:
        raise ValueError(f"pids without process_name metadata: {missing_pids}")
    return counts
