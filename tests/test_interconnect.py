"""The modeled interconnect: presets, contention, conservation.

The conservation property (seeded + hypothesis-driven): for any sequence
of time-ordered transfer requests, every link serves its transfers FIFO
without overlap, starts never precede requests, and every transfer's
duration equals latency + bytes/bandwidth -- bytes in == bytes out, no
event reordering across a link.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sched.interconnect import (
    CONTEXT_ROW_BYTES,
    Interconnect,
    InterconnectConfig,
    TransferRecord,
)


class TestConfig:
    def test_presets_are_ordered_by_speed(self):
        pcie3 = InterconnectConfig.pcie_gen3()
        pcie4 = InterconnectConfig.pcie_gen4()
        nvlink = InterconnectConfig.nvlink()
        assert pcie3.bandwidth_bytes_per_cycle < pcie4.bandwidth_bytes_per_cycle
        assert pcie4.bandwidth_bytes_per_cycle < nvlink.bandwidth_bytes_per_cycle
        assert nvlink.latency_cycles < pcie3.latency_cycles
        # PCIe shares one root complex; NVLink is point-to-point.
        assert pcie3.topology == "bus"
        assert nvlink.topology == "p2p"

    def test_preset_units_follow_the_clock(self):
        fast = InterconnectConfig.pcie_gen3(frequency_hz=1400e6)
        slow = InterconnectConfig.pcie_gen3(frequency_hz=700e6)
        # Same bytes/second means half the bytes per (faster) cycle.
        assert fast.bandwidth_bytes_per_cycle == pytest.approx(
            slow.bandwidth_bytes_per_cycle / 2
        )
        # Same seconds of latency means twice the cycles.
        assert fast.latency_cycles == pytest.approx(slow.latency_cycles * 2)

    def test_infinite_fabric_is_free(self):
        config = InterconnectConfig.infinite()
        assert config.transfer_cycles(10e9) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            InterconnectConfig(bandwidth_bytes_per_cycle=0.0)
        with pytest.raises(ValueError):
            InterconnectConfig(bandwidth_bytes_per_cycle=1.0, latency_cycles=-1)
        with pytest.raises(ValueError):
            InterconnectConfig(bandwidth_bytes_per_cycle=1.0, topology="mesh")


class TestTransfers:
    def _fabric(self, topology="p2p"):
        return Interconnect(
            InterconnectConfig(
                bandwidth_bytes_per_cycle=10.0,
                latency_cycles=100.0,
                topology=topology,
            ),
            num_devices=4,
        )

    def test_uncontended_transfer(self):
        fabric = self._fabric()
        record = fabric.transfer(0, 1, 1000.0, now=50.0, task_id=7)
        assert record.start_cycles == 50.0
        assert record.end_cycles == 50.0 + 100.0 + 100.0  # latency + bytes/bw
        assert record.queueing_cycles == 0.0
        assert record.transfer_latency_cycles == 200.0
        assert fabric.total_bytes() == 1000.0

    def test_same_link_contends_fifo(self):
        fabric = self._fabric()
        first = fabric.transfer(0, 1, 1000.0, now=0.0)
        second = fabric.transfer(0, 1, 1000.0, now=10.0)
        assert second.start_cycles == first.end_cycles
        assert second.queueing_cycles == first.end_cycles - 10.0

    def test_p2p_links_are_independent(self):
        fabric = self._fabric("p2p")
        fabric.transfer(0, 1, 10000.0, now=0.0)
        other = fabric.transfer(2, 3, 100.0, now=0.0)
        assert other.start_cycles == 0.0  # different pair, no contention

    def test_bus_serializes_everything(self):
        fabric = self._fabric("bus")
        first = fabric.transfer(0, 1, 10000.0, now=0.0)
        other = fabric.transfer(2, 3, 100.0, now=0.0)
        assert other.start_cycles == first.end_cycles

    def test_estimate_matches_commit(self):
        fabric = self._fabric()
        fabric.transfer(0, 1, 5000.0, now=0.0)
        estimate = fabric.estimate_arrival(0, 1, 300.0, now=20.0)
        record = fabric.transfer(0, 1, 300.0, now=20.0)
        assert record.end_cycles == estimate

    def test_validation(self):
        fabric = self._fabric()
        with pytest.raises(ValueError):
            fabric.transfer(0, 0, 10.0, now=0.0)
        with pytest.raises(ValueError):
            fabric.transfer(0, 9, 10.0, now=0.0)
        with pytest.raises(ValueError):
            fabric.transfer(0, 1, -1.0, now=0.0)
        fabric.transfer(0, 1, 10.0, now=100.0)
        with pytest.raises(ValueError):
            fabric.transfer(0, 1, 10.0, now=50.0)  # time went backwards


@given(
    data=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=3),   # src
            st.integers(min_value=0, max_value=3),   # dst
            st.floats(min_value=0.0, max_value=1e7), # bytes
            st.floats(min_value=0.0, max_value=1e4), # inter-request gap
        ),
        min_size=1,
        max_size=40,
    ),
    topology=st.sampled_from(["p2p", "bus"]),
    bandwidth=st.floats(min_value=0.5, max_value=500.0),
    latency=st.floats(min_value=0.0, max_value=5000.0),
)
@settings(max_examples=60, deadline=None)
def test_conservation_property(data, topology, bandwidth, latency):
    """Bytes in == bytes out and per-link FIFO, for arbitrary request
    sequences issued in time order (as the cluster loop issues them)."""
    fabric = Interconnect(
        InterconnectConfig(
            bandwidth_bytes_per_cycle=bandwidth,
            latency_cycles=latency,
            topology=topology,
        ),
        num_devices=4,
    )
    now = 0.0
    requested_bytes = 0.0
    for src, dst, num_bytes, gap in data:
        now += gap
        if src == dst:
            dst = (dst + 1) % 4
        fabric.transfer(src, dst, num_bytes, now)
        requested_bytes += num_bytes
    fabric.verify_conservation()
    assert fabric.total_bytes() == pytest.approx(requested_bytes)
    for record in fabric.transfers:
        assert record.end_cycles >= record.start_cycles + latency
        assert record.start_cycles >= record.request_cycles
    # Per-link delivery order equals request order: no reordering.
    per_link = {}
    for record in fabric.transfers:
        key = (
            "bus" if topology == "bus"
            else (record.src_device, record.dst_device)
        )
        per_link.setdefault(key, []).append(record)
    for records in per_link.values():
        ends = [r.end_cycles for r in records]
        assert ends == sorted(ends)


def test_context_row_floor():
    """The Fig-4 row (448 bits, Sec VI-F) is the minimum payload."""
    assert CONTEXT_ROW_BYTES == 448 / 8


def test_record_properties():
    record = TransferRecord(
        task_id=1, src_device=0, dst_device=1, num_bytes=10.0,
        request_cycles=5.0, start_cycles=8.0, end_cycles=20.0,
    )
    assert record.queueing_cycles == 3.0
    assert record.transfer_latency_cycles == 15.0
    assert math.isfinite(record.num_bytes)
