"""Regenerates paper Fig 5: preemption latency and preemptor wait time."""

from repro.analysis.experiments.fig05_preemption import (
    format_fig05,
    run_fig05,
    summarize,
)


def test_fig05_preemption(benchmark, config, factory, emit):
    rows = benchmark.pedantic(
        run_fig05,
        kwargs=dict(config=config, factory=factory, samples=25),
        rounds=1,
        iterations=1,
    )
    emit("fig05_preemption", format_fig05(rows))
    summary = summarize(rows)
    # Fig 5a: KILL/DRAIN checkpoint nothing; CHECKPOINT pays a usec-scale
    # DMA (paper: average ~12 usec, worst case 59 usec).
    assert summary["KILL"]["preemption_latency_us"] == 0.0
    assert 1.0 < summary["CHECKPOINT"]["preemption_latency_us"] < 60.0
    # Fig 5b: DRAIN's wait is msec-scale (paper: average 5.3 msec).
    assert summary["DRAIN"]["wait_time_us"] > 1000.0
