"""Model zoo: every benchmark builds, with sane footprints and shapes."""

import pytest

from repro.models.layers import LayerKind
from repro.models.zoo import (
    BENCHMARKS,
    CNN_BENCHMARKS,
    RNN_BENCHMARKS,
    build_benchmark,
    is_rnn,
)


class TestRegistry:
    def test_eight_benchmarks(self):
        assert len(BENCHMARKS) == 8
        assert set(CNN_BENCHMARKS) | set(RNN_BENCHMARKS) == set(BENCHMARKS)

    def test_is_rnn(self):
        assert is_rnn("RNN-MT1")
        assert not is_rnn("CNN-VN")

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError):
            build_benchmark("CNN-XX")

    @pytest.mark.parametrize("name", BENCHMARKS + ("RESNET",))
    def test_every_benchmark_builds_and_validates(self, name):
        graph = build_benchmark(name, input_len=10, output_len=10)
        graph.validate()
        assert len(graph) > 0


class TestCnnFootprints:
    def test_alexnet_parameters(self):
        graph = build_benchmark("CNN-AN")
        params = graph.total_weight_elems()
        # ~61M parameters (FC-dominated).
        assert 55e6 < params < 70e6

    def test_vggnet_parameters(self):
        graph = build_benchmark("CNN-VN")
        params = graph.total_weight_elems()
        # ~138M parameters.
        assert 125e6 < params < 150e6

    def test_vggnet_macs(self):
        graph = build_benchmark("CNN-VN")
        # ~15.5 GMACs at batch 1.
        assert 14e9 < graph.total_macs(1) < 17e9

    def test_googlenet_small_and_conv_heavy(self):
        graph = build_benchmark("CNN-GN")
        params = graph.total_weight_elems()
        assert 5e6 < params < 14e6
        assert 1.2e9 < graph.total_macs(1) < 2.2e9

    def test_mobilenet_small(self):
        graph = build_benchmark("CNN-MN")
        params = graph.total_weight_elems()
        assert 3e6 < params < 6e6
        assert 0.4e9 < graph.total_macs(1) < 0.8e9

    def test_mobilenet_has_depthwise(self):
        graph = build_benchmark("CNN-MN")
        depthwise = [
            n for n in graph.nodes_of_kind(LayerKind.CONV)
            if getattr(n.layer, "groups", 1) > 1
        ]
        assert len(depthwise) == 13

    def test_resnet50_parameters(self):
        graph = build_benchmark("RESNET")
        params = graph.total_weight_elems()
        # ~25M (ours omits batch-norm scale params).
        assert 18e6 < params < 30e6

    @pytest.mark.parametrize("name", CNN_BENCHMARKS)
    def test_cnn_classifier_outputs_1000(self, name):
        graph = build_benchmark(name)
        assert graph.output_spec.channels == 1000


class TestRnnUnrolling:
    def test_sa_node_count_scales_with_input(self):
        short = build_benchmark("RNN-SA", input_len=5)
        long = build_benchmark("RNN-SA", input_len=20)
        assert len(long) > len(short)

    def test_sa_recr_count(self):
        graph = build_benchmark("RNN-SA", input_len=7)
        assert len(graph.nodes_of_kind(LayerKind.RECR)) == 2 * 7

    def test_mt_encoder_decoder_counts(self):
        graph = build_benchmark("RNN-MT1", input_len=6, output_len=4)
        # 2 LSTM layers per step, encoder 6 + decoder 4 steps.
        assert len(graph.nodes_of_kind(LayerKind.RECR)) == 2 * (6 + 4)
        # one vocab projection per emitted token.
        assert len(graph.nodes_of_kind(LayerKind.FC)) == 4

    def test_mt_variants_differ_in_vocab(self):
        v1 = build_benchmark("RNN-MT1", input_len=4, output_len=4)
        v2 = build_benchmark("RNN-MT2", input_len=4, output_len=4)
        assert v1.total_weight_elems() != v2.total_weight_elems()

    def test_asr_pyramidal_encoder(self):
        graph = build_benchmark("RNN-ASR", input_len=16, output_len=4)
        # Encoder layers run 16 + 8 + 4 steps; decoder 2 * 4 steps.
        assert len(graph.nodes_of_kind(LayerKind.RECR)) == 16 + 8 + 4 + 8

    def test_asr_output_scales_decoder(self):
        short = build_benchmark("RNN-ASR", input_len=16, output_len=2)
        long = build_benchmark("RNN-ASR", input_len=16, output_len=10)
        assert len(long) > len(short)

    @pytest.mark.parametrize("name", RNN_BENCHMARKS)
    def test_rnn_rejects_bad_lengths(self, name):
        with pytest.raises(ValueError):
            build_benchmark(name, input_len=0, output_len=5)


class TestBuilderDeterminism:
    @pytest.mark.parametrize("name", BENCHMARKS)
    def test_two_builds_identical(self, name):
        a = build_benchmark(name, input_len=8, output_len=8)
        b = build_benchmark(name, input_len=8, output_len=8)
        assert len(a) == len(b)
        assert a.total_weight_elems() == b.total_weight_elems()
        assert a.total_macs(1) == b.total_macs(1)
