"""Secs VI-F/VI-G: implementation and storage overhead analyses.

Regenerates the paper's overhead arithmetic from our models: the context
table's SRAM bits/area for 16 co-located tasks, and the worst-case
checkpoint storage footprint of the eight benchmarks at batch 16.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Sequence

from repro.analysis.experiments.fig05_preemption import _lengths
from repro.analysis.overhead import (
    ContextTableOverhead,
    checkpoint_storage_bytes,
    oversubscription_migration_us,
)
from repro.analysis.reporting import format_mapping, format_table
from repro.npu.config import NPUConfig
from repro.sched.prepare import TaskFactory

BENCHMARKS = ("CNN-AN", "CNN-GN", "CNN-VN", "CNN-MN",
              "RNN-SA", "RNN-MT1", "RNN-MT2", "RNN-ASR")


@dataclasses.dataclass(frozen=True)
class OverheadReport:
    """All of Sec VI-F/G in one structure."""

    bits_per_task: int
    total_bits_16_tasks: int
    area_mm2_32nm: float
    checkpoint_bytes_by_model: Dict[str, float]
    migration_us_per_checkpoint: Dict[str, float]


def run_overhead(
    config: Optional[NPUConfig] = None,
    batch: int = 16,
    num_tasks: int = 16,
    factory: Optional[TaskFactory] = None,
    benchmarks: Sequence[str] = BENCHMARKS,
) -> OverheadReport:
    config = config or NPUConfig()
    factory = factory or TaskFactory(config)
    table = ContextTableOverhead(num_tasks=num_tasks)
    profiles = []
    for benchmark in benchmarks:
        input_len, output_len = _lengths(benchmark)
        profiles.append(
            factory.execution_profile(benchmark, batch, input_len, output_len)
        )
    storage = checkpoint_storage_bytes(profiles)
    migration = {
        name: oversubscription_migration_us(size, config)
        for name, size in storage.items()
        if name != "TOTAL"
    }
    return OverheadReport(
        bits_per_task=table.bits_per_task,
        total_bits_16_tasks=table.total_bits,
        area_mm2_32nm=table.area_mm2_32nm,
        checkpoint_bytes_by_model=storage,
        migration_us_per_checkpoint=migration,
    )


def format_overhead(report: OverheadReport) -> str:
    sram = format_mapping(
        "Sec VI-F: context-table overhead",
        {
            "bits per task": report.bits_per_task,
            "bits for 16 tasks": report.total_bits_16_tasks,
            "area mm^2 (32nm)": report.area_mm2_32nm,
        },
    )
    rows = [
        (name, size / 1e6, report.migration_us_per_checkpoint.get(name, 0.0))
        for name, size in report.checkpoint_bytes_by_model.items()
        if name != "TOTAL"
    ]
    rows.append(
        ("TOTAL", report.checkpoint_bytes_by_model["TOTAL"] / 1e6, 0.0)
    )
    storage = format_table(
        ("model", "worst_ckpt_MB", "spill_us"),
        rows,
        title="Sec VI-G: worst-case checkpoint storage (batch 16)",
    )
    return sram + "\n\n" + storage
