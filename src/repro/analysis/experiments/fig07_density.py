"""Fig 7: per-layer activation density stability (+ the SCNN latency claim).

The paper profiles VGGNet's per-layer activation density across 1000
ImageNet inferences and observes narrow bands, which is why even a
sparsity-optimized NPU (SCNN) has predictable latency (Sec V-B item 3:
<=14% max deviation, ~6% average).  We regenerate both halves from the
seeded synthetic density profiles (see DESIGN.md substitutions).
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

from repro.analysis.reporting import format_table
from repro.isa.compiler import compile_model
from repro.models.layers import LayerKind
from repro.models.zoo import build_benchmark
from repro.npu.config import NPUConfig
from repro.npu.sparse import (
    SCNNConfig,
    SparseLatencyModel,
    synthesize_density_profile,
)


@dataclasses.dataclass(frozen=True)
class DensityRow:
    """One layer's density band across the profiled inputs."""

    layer: str
    mean_density: float
    std_density: float


@dataclasses.dataclass(frozen=True)
class SparseLatencyRow:
    """SCNN latency stability for one pruned CNN."""

    benchmark: str
    mean_latency_ms: float
    max_relative_deviation: float


def run_fig07_density(
    num_inputs: int = 1000, seed: int = 7
) -> List[DensityRow]:
    """Per-layer density bands for VGGNet (conv + fc layers, Fig 7 x-axis)."""
    graph = build_benchmark("CNN-VN")
    names = [
        node.name
        for node in graph
        if node.kind in (LayerKind.CONV, LayerKind.FC)
    ]
    profile = synthesize_density_profile(
        "CNN-VN", names, num_inputs=num_inputs, seed=seed
    )
    return [
        DensityRow(layer=name, mean_density=mean, std_density=std)
        for name, mean, std in profile.per_layer_stats()
    ]


def run_fig07_scnn(
    config: Optional[NPUConfig] = None,
    benchmarks: Sequence[str] = ("CNN-AN", "CNN-GN", "CNN-VN"),
    num_inputs: int = 500,
    seed: int = 7,
) -> List[SparseLatencyRow]:
    """SCNN latency stability over profiled inputs (Sec V-B item 3)."""
    config = config or NPUConfig()
    scnn = SparseLatencyModel(SCNNConfig())
    rows: List[SparseLatencyRow] = []
    for benchmark in benchmarks:
        graph = build_benchmark(benchmark)
        model = compile_model(graph, config, batch=1)
        conv_names = [
            layer.name for layer in model.layers if layer.kind == LayerKind.CONV
        ]
        profile = synthesize_density_profile(
            benchmark, conv_names, num_inputs=num_inputs, seed=seed
        )
        mean_s, max_dev = scnn.latency_variation(model, profile)
        rows.append(
            SparseLatencyRow(
                benchmark=benchmark,
                mean_latency_ms=mean_s * 1e3,
                max_relative_deviation=max_dev,
            )
        )
    return rows


def format_fig07(
    density_rows: Sequence[DensityRow],
    scnn_rows: Sequence[SparseLatencyRow],
) -> str:
    density_table = format_table(
        ("layer", "mean_density", "std"),
        [(r.layer, r.mean_density, r.std_density) for r in density_rows],
        title="Fig 7: VGGNet per-layer activation density (1000 inputs)",
    )
    scnn_table = format_table(
        ("benchmark", "mean_latency_ms", "max_rel_dev"),
        [
            (r.benchmark, r.mean_latency_ms, r.max_relative_deviation)
            for r in scnn_rows
        ],
        title="Sec V-B item 3: SCNN latency stability (pruned CNNs)",
    )
    return density_table + "\n\n" + scnn_table
