"""Golden equivalence of the cluster routing layer.

``tests/data/golden_cluster.json.gz`` pins every routing policy --
checkpoint migration included -- on 2/4/8-device clusters with rotating
device schedulers, the same guarantee PR 2's hot-path goldens give the
single-device path: future cluster refactors must reproduce these runs.

- behavioral fields (completion/first-dispatch times, timeline digests,
  preemption counters, placements, migrations with their payload bytes
  and delivery times, interconnect transfer digests, per-task migration
  counters) compare **bit-for-bit**;
- accounting fields (waited cycles, tokens) compare to 1e-9 relative
  tolerance -- lazy settlement legally re-associates the same IEEE-754
  sums (see helpers_golden).

The infinite-bandwidth test is the acceptance anchor: with a zero-cost
link and migration disabled (its knobs forced to inert values), every
*pre-existing* routing policy reproduces the goldens bit-for-bit --
interconnect modeling and the cluster token ledger cannot perturb runs
that never use them.
"""

import math

import pytest

import helpers_golden
from repro.sched.cluster import RoutingPolicy
from repro.sched.interconnect import InterconnectConfig


@pytest.fixture(scope="module")
def goldens():
    assert helpers_golden.CLUSTER_GOLDEN_PATH.exists(), (
        "cluster golden file missing; regenerate via: "
        "python tests/capture_cluster_goldens.py"
    )
    return helpers_golden.load_cluster_goldens()["runs"]


def _assert_tasks_match(key, expected_tasks, actual_tasks):
    assert actual_tasks.keys() == expected_tasks.keys(), key
    for task_id, expected in expected_tasks.items():
        actual = actual_tasks[task_id]
        for field, value in expected.items():
            got = actual[field]
            if field in helpers_golden.TOLERANT_TASK_FIELDS:
                reference = float.fromhex(value)
                measured = float.fromhex(got)
                assert math.isclose(
                    measured,
                    reference,
                    rel_tol=helpers_golden.RELATIVE_TOLERANCE,
                    abs_tol=1e-6,
                ), f"{key}: task {task_id} {field}: {measured} != {reference}"
            else:
                assert got == value, (
                    f"{key}: task {task_id} {field}: {got} != {value}"
                )


def _assert_device_match(key, expected, actual):
    for field in ("makespan", "preemption_count", "drain_decisions",
                  "timeline"):
        assert actual[field] == expected[field], (
            f"{key}: {field}: {actual[field]} != {expected[field]}"
        )
    _assert_tasks_match(key, expected["tasks"], actual["tasks"])


def _assert_cluster_match(key, expected, actual):
    assert actual["assignments"] == expected["assignments"], key
    assert actual["migrations"] == expected["migrations"], key
    assert actual["transfers"] == expected["transfers"], key
    assert actual["makespan"] == expected["makespan"], key
    _assert_tasks_match(key, expected["tasks"], actual["tasks"])
    assert len(actual["devices"]) == len(expected["devices"]), key
    for index, expected_device in enumerate(expected["devices"]):
        actual_device = actual["devices"][index]
        if expected_device is None:
            assert actual_device is None, f"{key}: device {index}"
        else:
            _assert_device_match(
                f"{key}/device{index}", expected_device, actual_device
            )


def test_cluster_sweep_matches_goldens(goldens, factory):
    seen = 0
    for key, actual in helpers_golden.cluster_suite_runs(factory):
        assert key in goldens, f"golden missing for {key}"
        _assert_cluster_match(key, goldens[key], actual)
        seen += 1
    assert seen == len(goldens)


def test_sweep_covers_every_dimension(goldens):
    """The sweep spans every routing, device count, policy, and mode."""
    routings, device_counts, policies, modes, mechanisms = (
        set(), set(), set(), set(), set()
    )
    for key in goldens:
        _, _, devices, routing, policy, mode, mechanism = key.split("/")
        device_counts.add(devices)
        routings.add(routing)
        policies.add(policy)
        modes.add(mode)
        mechanisms.add(mechanism)
    assert routings == {r.value for r in RoutingPolicy}
    assert device_counts == {
        f"{n}dev" for n in helpers_golden.CLUSTER_SUITE_DEVICE_COUNTS
    }
    assert policies == set(helpers_golden.POLICY_NAMES)
    assert modes == {"np", "static", "dynamic"}
    assert mechanisms == {"CHECKPOINT", "KILL"}


def test_legacy_routings_immune_to_migration_knobs(goldens, factory):
    """Pre-existing routings reproduce the goldens bit-for-bit even with
    an infinite-bandwidth link configured and the ledger forced off:
    the migration machinery is provably inert off its own routing."""
    legacy = tuple(
        r for r in RoutingPolicy if r is not RoutingPolicy.PREEMPTIVE_MIGRATION
    )
    seen = 0
    for key, actual in helpers_golden.cluster_suite_runs(
        factory,
        interconnect=InterconnectConfig.infinite(),
        global_tokens=False,
        routings=legacy,
        device_counts=(2, 4),
        num_workloads=3,
    ):
        assert key in goldens, f"golden missing for {key}"
        _assert_cluster_match(key, goldens[key], actual)
        seen += 1
    assert seen == 3 * 2 * len(legacy)
