"""Prepare executable task runtimes from workload specifications.

This is the CPU-side runtime of the paper's system: for each dispatched
request it builds the model graph (with the *actual* data-dependent RNN
unroll), compiles and profiles it for ground truth, and separately derives
``Time_estimated`` the way the scheduler will see it -- Algorithm 1 over
the graph unrolled to the *predicted* output length from the regression
model.  An :class:`OraclePredictor` can replace the estimate with the
exact simulated time (Sec VI-D).

Compilation results are cached by (benchmark, batch, lengths): the model
zoo is finite and the profiled sequence grids are discrete, so ensembles
of workloads re-use almost every compilation.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.context import TaskContext
from repro.core.predictor import LatencyPredictor
from repro.core.regression import SequenceLengthRegressor
from repro.isa.compiler import CompiledModel, compile_model
from repro.models.sequences import BENCHMARK_PROFILE, SequenceProfile
from repro.models.zoo import build_benchmark, is_rnn
from repro.npu.config import NPUConfig
from repro.npu.engine import ExecutionProfile, profile_model
from repro.sched.task import TaskRuntime
from repro.workloads.generator import default_profiles
from repro.workloads.specs import TaskSpec, WorkloadSpec


@dataclasses.dataclass(frozen=True)
class _ModelKey:
    benchmark: str
    batch: int
    input_len: Optional[int]
    output_len: Optional[int]


class TaskFactory:
    """Builds :class:`TaskRuntime` objects with compilation caching."""

    def __init__(
        self,
        config: NPUConfig,
        profiles: Optional[Dict[str, SequenceProfile]] = None,
    ) -> None:
        self.config = config
        self.predictor = LatencyPredictor(config)
        self.profiles = profiles if profiles is not None else default_profiles()
        self.regressors: Dict[str, SequenceLengthRegressor] = {
            benchmark: SequenceLengthRegressor.from_profile(self.profiles[benchmark])
            for benchmark in BENCHMARK_PROFILE
            if benchmark in self.profiles
        }
        self._profile_cache: Dict[_ModelKey, ExecutionProfile] = {}
        self._estimate_cache: Dict[_ModelKey, float] = {}

    # ------------------------------------------------------------------
    # Ground truth
    # ------------------------------------------------------------------
    def execution_profile(
        self,
        benchmark: str,
        batch: int,
        input_len: Optional[int] = None,
        output_len: Optional[int] = None,
    ) -> ExecutionProfile:
        """Ground-truth profile of one (model, batch, unroll) instance."""
        key = _ModelKey(benchmark, batch, input_len, output_len)
        cached = self._profile_cache.get(key)
        if cached is None:
            model = self._compile(benchmark, batch, input_len, output_len)
            cached = profile_model(model, self.config)
            self._profile_cache[key] = cached
        return cached

    def isolated_cycles(self, spec: TaskSpec) -> float:
        """C_single for one task spec."""
        return self.execution_profile(
            spec.benchmark, spec.batch, spec.input_len, spec.actual_output_len
        ).total_cycles

    # ------------------------------------------------------------------
    # Prediction (what the scheduler sees)
    # ------------------------------------------------------------------
    def predicted_output_len(self, benchmark: str, input_len: int) -> int:
        """Regression-model output length (Sec V-B)."""
        if benchmark == "RNN-SA":
            return input_len  # linear app, Fig 8b
        regressor = self.regressors.get(benchmark)
        if regressor is None:
            raise KeyError(f"no regressor for benchmark {benchmark!r}")
        return regressor.predict(input_len)

    def estimated_cycles(self, spec: TaskSpec) -> float:
        """Time_estimated: Algorithm 1 over the *predicted* unroll."""
        if spec.is_rnn:
            assert spec.input_len is not None
            predicted_out = self.predicted_output_len(spec.benchmark, spec.input_len)
        else:
            predicted_out = None
        key = _ModelKey(spec.benchmark, spec.batch, spec.input_len, predicted_out)
        cached = self._estimate_cache.get(key)
        if cached is None:
            model = self._compile(
                spec.benchmark, spec.batch, spec.input_len, predicted_out
            )
            cached = self.predictor.predict_model(model)
            self._estimate_cache[key] = cached
        return cached

    # ------------------------------------------------------------------
    # Assembly
    # ------------------------------------------------------------------
    def build_task(
        self, spec: TaskSpec, oracle: bool = False
    ) -> TaskRuntime:
        """Build the runtime for one request.

        With ``oracle=True`` the context's estimate is the exact simulated
        isolated time (the Sec VI-D oracular PREMA).
        """
        profile = self.execution_profile(
            spec.benchmark, spec.batch, spec.input_len, spec.actual_output_len
        )
        estimated = (
            profile.total_cycles if oracle else self.estimated_cycles(spec)
        )
        context = TaskContext(
            task_id=spec.task_id,
            priority=spec.priority,
            benchmark=spec.benchmark,
            estimated_cycles=estimated,
            last_update_cycles=spec.arrival_cycles,
        )
        return TaskRuntime(spec=spec, profile=profile, context=context)

    def build_job(self, spec: TaskSpec, oracle: bool = False) -> "Job":
        """Build the job for one request (the gang-of-slices surface).

        ``spec.stages == 1`` yields a single-slice job that wraps the
        task runtime without copying -- the legacy-equivalent path.  For
        ``stages > 1`` the compiled model's profile is cut into balanced
        pipeline stage plans (clamped to the layer count); the cluster
        reserves one device per stage at dispatch.
        """
        from repro.sched.job import DeviceSlice, Job, partition_runtime

        runtime = self.build_task(spec, oracle=oracle)
        if spec.stages <= 1:
            return Job.single(runtime)
        plans = partition_runtime(runtime, spec.stages)
        if len(plans) == 1:
            return Job.single(runtime)
        return Job(
            job_id=runtime.task_id,
            source=runtime,
            requests=(runtime,),
            slices=[DeviceSlice(stage=plan) for plan in plans],
        )

    def build_workload(
        self, workload: WorkloadSpec, oracle: bool = False
    ) -> List[TaskRuntime]:
        """Build fresh runtimes for every task of a workload.

        Runtimes are mutable; each simulation run needs its own set, while
        the underlying profiles stay shared through the cache.
        """
        return [self.build_task(spec, oracle=oracle) for spec in workload.tasks]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _compile(
        self,
        benchmark: str,
        batch: int,
        input_len: Optional[int],
        output_len: Optional[int],
    ) -> CompiledModel:
        if is_rnn(benchmark):
            if input_len is None or output_len is None:
                raise ValueError(f"{benchmark}: RNN tasks need sequence lengths")
            graph = build_benchmark(
                benchmark, input_len=input_len, output_len=output_len
            )
        else:
            graph = build_benchmark(benchmark)
        return compile_model(graph, self.config, batch=batch)

    def prediction_pairs(
        self, specs: Sequence[TaskSpec]
    ) -> List[Tuple[float, float]]:
        """(estimated, actual isolated) pairs for accuracy analyses."""
        return [
            (self.estimated_cycles(spec), self.isolated_cycles(spec))
            for spec in specs
        ]
