"""Small statistics helpers shared by experiments and tests."""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values."""
    if not values:
        raise ValueError("geometric_mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric_mean requires positive values")
    return float(math.exp(sum(math.log(v) for v in values) / len(values)))


def pearson_correlation(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson correlation coefficient of two equal-length samples."""
    if len(xs) != len(ys):
        raise ValueError("samples must have equal length")
    if len(xs) < 2:
        raise ValueError("correlation needs at least two points")
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    if np.allclose(x.std(), 0) or np.allclose(y.std(), 0):
        raise ValueError("correlation undefined for constant samples")
    return float(np.corrcoef(x, y)[0, 1])


def percentile(values: Sequence[float], pct: float) -> float:
    """Percentile of a sample (numpy linear interpolation)."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= pct <= 100:
        raise ValueError("pct must be in [0, 100]")
    return float(np.percentile(np.asarray(values, dtype=float), pct))


def mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("mean of empty sequence")
    return float(np.mean(np.asarray(values, dtype=float)))


def relative_error(estimate: float, truth: float) -> float:
    """|estimate - truth| / truth (truth must be nonzero)."""
    if truth == 0:
        raise ValueError("relative_error undefined for zero truth")
    return abs(estimate - truth) / abs(truth)
