"""Modeled inter-NPU interconnect for checkpoint migration.

The paper's preemption mechanisms (Sec IV) persist a preempted task's
context -- CONV/FC output activations resident in UBUF plus the in-flight
ACCQ tile, or an RNN cell state -- to the device's DRAM.  The cluster
layer's :class:`~repro.sched.cluster.RoutingPolicy.PREEMPTIVE_MIGRATION`
extends that: the saved checkpoint is *shipped* to another NPU's DRAM so
the victim can resume elsewhere.  This module models the fabric that
shipment crosses.

The model is deliberately at the same fidelity as the paper's memory
system (:mod:`repro.npu.memory`): fixed per-link bandwidth, fixed
propagation latency, and FIFO contention per link.  Two topologies:

``p2p``
    One dedicated full-duplex link per ordered device pair (an NVSwitch /
    PCIe-switch-with-independent-lanes abstraction).  Transfers between
    different pairs never contend.
``bus``
    One shared half-duplex medium: every transfer in the cluster
    serializes (a single host PCIe root complex under pressure).

Presets (:meth:`InterconnectConfig.pcie_gen3` and friends) express
real-fabric bandwidths in *cycles* of the NPU's PE clock so the cluster
event loop charges transfer time in its native unit.

**Two-level (rack) fabric.** Passing ``rack_of`` to :class:`Interconnect`
partitions the fleet into racks.  Intra-rack transfers see exactly the
flat model above, scoped to the rack (a per-rack bus, or per-pair links
as before).  Cross-rack transfers cross *two* resources -- the source
device's rack-local egress link and the source rack's shared uplink --
and hold both for the transfer's duration (circuit style: the payload
streams at the bottleneck rate, so store-and-forward buffering is not
modeled separately).  The uplink is oversubscribed: its bandwidth is the
rack-local bandwidth divided by ``uplink_oversubscription``, and every
cross-rack transfer leaving a rack serializes on that rack's single
uplink.  That is the cost cliff locality-aware migration policies steer
around.  Cancellation of an in-flight cross-rack transfer truncates the
occupancy on *both* links (uplink and rack-local egress alike), and
:meth:`Interconnect.verify_conservation` checks FIFO/non-overlap per
link across every hop of every path.

Every completed transfer is recorded; :class:`Interconnect` exposes the
records plus per-link occupancy so tests can assert conservation (bytes
in == bytes out, per-link FIFO order, no overlapping occupancy) and
metrics can report bytes moved and transfer latency.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.trace import NULL_TRACER

#: Bytes of the Fig-4 context-table row that always travels with a task
#: (448 bits, Sec VI-F) -- the floor of any migration's payload.
CONTEXT_ROW_BYTES = 56.0

_TOPOLOGIES = ("p2p", "bus")


@dataclasses.dataclass(frozen=True)
class InterconnectConfig:
    """Link parameters, in PE-clock cycles (like every other model knob)."""

    #: Per-link bandwidth, bytes per PE-clock cycle (``math.inf`` allowed).
    bandwidth_bytes_per_cycle: float
    #: Propagation + protocol latency charged once per transfer, cycles.
    latency_cycles: float = 0.0
    #: ``p2p`` (per-pair links) or ``bus`` (one shared medium).
    topology: str = "p2p"
    name: str = "custom"
    #: Rack-uplink oversubscription ratio: the shared uplink's bandwidth
    #: is ``bandwidth_bytes_per_cycle / uplink_oversubscription``.  1.0
    #: is a uniform (non-blocking) fabric; datacenter fabrics commonly
    #: run 2:1 to 8:1.  Only consulted for cross-rack transfers.
    uplink_oversubscription: float = 1.0
    #: Propagation + protocol latency of the uplink hop, charged once
    #: per cross-rack transfer on top of the rack-local latency.  None
    #: means "same as the rack-local latency".
    uplink_latency_cycles: Optional[float] = None

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_cycle <= 0:
            raise ValueError("bandwidth_bytes_per_cycle must be positive")
        if self.latency_cycles < 0:
            raise ValueError("latency_cycles must be >= 0")
        if self.topology not in _TOPOLOGIES:
            raise ValueError(f"topology must be one of {_TOPOLOGIES}")
        if self.uplink_oversubscription <= 0:
            raise ValueError("uplink_oversubscription must be positive")
        if (
            self.uplink_latency_cycles is not None
            and self.uplink_latency_cycles < 0
        ):
            raise ValueError("uplink_latency_cycles must be >= 0")

    # ------------------------------------------------------------------
    # Presets (bandwidths are nominal effective rates, not headline ones)
    # ------------------------------------------------------------------
    @classmethod
    def from_bytes_per_sec(
        cls,
        bytes_per_sec: float,
        latency_us: float,
        frequency_hz: float = 700e6,
        topology: str = "p2p",
        name: str = "custom",
    ) -> "InterconnectConfig":
        return cls(
            bandwidth_bytes_per_cycle=bytes_per_sec / frequency_hz,
            latency_cycles=latency_us * 1e-6 * frequency_hz,
            topology=topology,
            name=name,
        )

    @classmethod
    def pcie_gen3(cls, frequency_hz: float = 700e6) -> "InterconnectConfig":
        """PCIe 3.0 x16: ~13 GB/s effective, ~1.5 us latency."""
        return cls.from_bytes_per_sec(
            13e9, 1.5, frequency_hz, topology="bus", name="pcie-gen3"
        )

    @classmethod
    def pcie_gen4(cls, frequency_hz: float = 700e6) -> "InterconnectConfig":
        """PCIe 4.0 x16: ~26 GB/s effective, ~1.0 us latency."""
        return cls.from_bytes_per_sec(
            26e9, 1.0, frequency_hz, topology="bus", name="pcie-gen4"
        )

    @classmethod
    def nvlink(cls, frequency_hz: float = 700e6) -> "InterconnectConfig":
        """NVLink-class point-to-point fabric: ~250 GB/s, ~0.5 us."""
        return cls.from_bytes_per_sec(
            250e9, 0.5, frequency_hz, topology="p2p", name="nvlink"
        )

    @classmethod
    def infinite(cls) -> "InterconnectConfig":
        """Zero-cost fabric: transfers complete instantaneously.

        The equivalence anchor: with this config a checkpoint migration
        charges no cycles, so interconnect modeling cannot perturb runs
        that never migrate.
        """
        return cls(
            bandwidth_bytes_per_cycle=math.inf,
            latency_cycles=0.0,
            topology="p2p",
            name="infinite",
        )

    def oversubscribed(
        self,
        ratio: float,
        uplink_latency_cycles: Optional[float] = None,
    ) -> "InterconnectConfig":
        """This fabric with an oversubscribed rack uplink tier."""
        return dataclasses.replace(
            self,
            uplink_oversubscription=ratio,
            uplink_latency_cycles=uplink_latency_cycles,
            name=f"{self.name}-uplink{ratio:g}x",
        )

    def transfer_cycles(self, num_bytes: float) -> float:
        """Uncontended duration of one transfer (latency + serialization)."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be >= 0")
        return self.latency_cycles + num_bytes / self.bandwidth_bytes_per_cycle

    @property
    def uplink_latency(self) -> float:
        return (
            self.latency_cycles
            if self.uplink_latency_cycles is None
            else self.uplink_latency_cycles
        )

    @property
    def uplink_bandwidth_bytes_per_cycle(self) -> float:
        return self.bandwidth_bytes_per_cycle / self.uplink_oversubscription

    def cross_rack_transfer_cycles(self, num_bytes: float) -> float:
        """Uncontended duration of one cross-rack transfer.

        Both latencies are paid (rack-local hop to the top-of-rack
        switch, then the uplink hop); the payload streams at the
        bottleneck bandwidth of the path.
        """
        if num_bytes < 0:
            raise ValueError("num_bytes must be >= 0")
        bottleneck = min(
            self.bandwidth_bytes_per_cycle,
            self.uplink_bandwidth_bytes_per_cycle,
        )
        return self.latency_cycles + self.uplink_latency + num_bytes / bottleneck

    def lookahead_cycles(self) -> float:
        """Conservative-PDES lookahead bound for the parallel backend.

        No cross-rack effect decided at cycle ``t`` can land on another
        rack before ``t + lookahead_cycles()``: even a zero-byte payload
        pays the rack-local hop plus the uplink hop on a path-aware
        fabric.  Shards may therefore simulate ``[t, t + lookahead)``
        without hearing from their peers.
        """
        return self.latency_cycles + self.uplink_latency


@dataclasses.dataclass(frozen=True)
class TransferRecord:
    """One completed (or in-flight) link transfer."""

    task_id: int
    src_device: int
    dst_device: int
    num_bytes: float
    #: When the transfer was requested (migration decision instant).
    request_cycles: float
    #: When the link actually started serving it (>= request: contention).
    start_cycles: float
    #: When the payload is fully resident at the destination.
    end_cycles: float
    #: What the payload is: ``"checkpoint"`` (a migrating task's saved
    #: state + context row) or ``"activation"`` (a sharded job's
    #: inter-stage boundary tensor, the pipeline DMA-out).
    purpose: str = "checkpoint"
    #: True when the destination device failed mid-flight and the
    #: transfer was truncated at the cancellation instant -- the payload
    #: never landed, the link time past that instant was freed.
    cancelled: bool = False
    #: The link keys the transfer occupies, in path order (one entry for
    #: flat/intra-rack, two for cross-rack: egress link then uplink).
    #: Empty means "the flat link for (src, dst)" so hand-built records
    #: stay valid.
    links: Tuple[object, ...] = ()
    #: True when the transfer crossed a rack boundary (charged the
    #: cross-rack path cost and occupied the rack uplink).
    cross_rack: bool = False

    @property
    def queueing_cycles(self) -> float:
        return self.start_cycles - self.request_cycles

    @property
    def transfer_latency_cycles(self) -> float:
        """End-to-end latency the migrating task experienced."""
        return self.end_cycles - self.request_cycles


class Interconnect:
    """FIFO-contended links between the cluster's devices.

    The cluster event loop requests transfers in non-decreasing time
    order (it processes events chronologically), which the model turns
    into a hard guarantee: per link, transfers start in request order and
    never overlap -- the conservation property the seeded tests pin.
    """

    def __init__(
        self,
        config: InterconnectConfig,
        num_devices: int,
        rack_of: Optional[Sequence[int]] = None,
    ) -> None:
        if num_devices <= 0:
            raise ValueError("num_devices must be positive")
        if rack_of is not None:
            if len(rack_of) != num_devices:
                raise ValueError("rack_of must name a rack per device")
            if any(rack < 0 for rack in rack_of):
                raise ValueError("rack ids must be >= 0")
        self.config = config
        self.num_devices = num_devices
        self.rack_of = tuple(rack_of) if rack_of is not None else None
        self._free_at: Dict[object, float] = {}
        self._last_request: Dict[object, float] = {}
        self._records: List[TransferRecord] = []
        #: Observability sink; the cluster scheduler replaces this with
        #: its tracer.  Default no-op singleton: zero cost when off.
        self.tracer = NULL_TRACER

    def is_cross_rack(self, src: int, dst: int) -> bool:
        return (
            self.rack_of is not None and self.rack_of[src] != self.rack_of[dst]
        )

    def _link_key(self, src: int, dst: int) -> object:
        """The rack-local link a (src -> dst) *intra-rack* transfer uses."""
        if self.config.topology == "bus":
            return (
                "bus"
                if self.rack_of is None
                else ("bus", self.rack_of[src])
            )
        return (src, dst)

    def _path(self, src: int, dst: int) -> Tuple[Tuple[object, ...], bool]:
        """Link keys a (src -> dst) transfer occupies, plus cross-rack."""
        if not self.is_cross_rack(src, dst):
            return (self._link_key(src, dst),), False
        src_rack = self.rack_of[src]
        egress = (
            ("bus", src_rack)
            if self.config.topology == "bus"
            else ("egress", src)
        )
        return (egress, ("uplink", src_rack)), True

    def _record_links(self, record: TransferRecord) -> Tuple[object, ...]:
        return record.links or (
            self._link_key(record.src_device, record.dst_device),
        )

    def path_transfer_cycles(self, src: int, dst: int, num_bytes: float) -> float:
        """Uncontended (src -> dst) duration, cross-rack aware."""
        if self.is_cross_rack(src, dst):
            return self.config.cross_rack_transfer_cycles(num_bytes)
        return self.config.transfer_cycles(num_bytes)

    def link_free_at(self, src: int, dst: int) -> float:
        """Earliest cycle a new (src -> dst) transfer could start."""
        links, _ = self._path(src, dst)
        return max(self._free_at.get(key, 0.0) for key in links)

    def estimate_arrival(self, src: int, dst: int, num_bytes: float, now: float) -> float:
        """Predicted delivery time of a transfer requested at ``now``
        (contention included) without committing it."""
        start = max(now, self.link_free_at(src, dst))
        return start + self.path_transfer_cycles(src, dst, num_bytes)

    def transfer(
        self,
        src: int,
        dst: int,
        num_bytes: float,
        now: float,
        task_id: int = -1,
        purpose: str = "checkpoint",
    ) -> TransferRecord:
        """Commit one transfer; returns its scheduled record."""
        for device in (src, dst):
            if not 0 <= device < self.num_devices:
                raise ValueError(f"device {device} out of range")
        if src == dst:
            raise ValueError("transfer requires distinct devices")
        if num_bytes < 0:
            raise ValueError("num_bytes must be >= 0")
        links, cross = self._path(src, dst)
        for key in links:
            if now < self._last_request.get(key, 0.0):
                raise ValueError(
                    "transfers on one link must be requested in time order"
                )
        start = max(now, *(self._free_at.get(key, 0.0) for key in links))
        end = start + self.path_transfer_cycles(src, dst, num_bytes)
        for key in links:
            self._last_request[key] = now
            self._free_at[key] = end
        record = TransferRecord(
            task_id=task_id,
            src_device=src,
            dst_device=dst,
            num_bytes=num_bytes,
            request_cycles=now,
            start_cycles=start,
            end_cycles=end,
            purpose=purpose,
            links=links,
            cross_rack=cross,
        )
        self._records.append(record)
        if self.tracer.enabled:
            # One occupancy span on the first-hop link's track (per-link
            # FIFO keeps each track monotonic); the full path -- uplink
            # included -- travels in args.
            self.tracer.span(
                "transfer",
                f"transfer t{task_id} d{src}->d{dst}",
                start,
                end,
                link=links[0],
                args={
                    "task": task_id,
                    "src": src,
                    "dst": dst,
                    "bytes": num_bytes,
                    "purpose": purpose,
                    "cross_rack": cross,
                    "queued_cycles": start - now,
                    "links": [str(key) for key in links],
                },
            )
        return record

    def cancel_transfers_to(self, device: int, now: float) -> float:
        """Cancel every undelivered transfer targeting ``device``.

        Called when the destination fails at ``now``: payloads still in
        flight (or queued) toward it will never land.  Each affected
        record is truncated -- its ``end_cycles`` is pulled back to
        ``max(start, min(end, now))`` and it is flagged ``cancelled`` --
        and each touched link's free-at horizon is recomputed, so the
        link time past the cancellation instant is genuinely freed for
        later transfers.  A cross-rack transfer occupies two links
        (rack-local egress plus the rack uplink) and cancellation
        releases *both*.  Returns the total link time freed (the sum of
        truncations per record, cycles).

        Conservation still holds afterwards: truncation only ever lowers
        end times, and every future transfer is requested at or after
        ``now``, which is at or after every truncated end -- so FIFO
        order and non-overlap survive.  ``verify_conservation`` accepts
        a cancelled record's short occupancy in place of the full
        serialization cost.
        """
        if not 0 <= device < self.num_devices:
            raise ValueError(f"device {device} out of range")
        freed = 0.0
        touched = set()
        for index, record in enumerate(self._records):
            if record.dst_device != device or record.cancelled:
                continue
            if record.end_cycles <= now:
                continue  # already delivered
            new_end = max(record.start_cycles, min(record.end_cycles, now))
            freed += record.end_cycles - new_end
            self._records[index] = dataclasses.replace(
                record, end_cycles=new_end, cancelled=True
            )
            touched.update(self._record_links(record))
        for key in touched:
            self._free_at[key] = max(
                (
                    r.end_cycles
                    for r in self._records
                    if key in self._record_links(r)
                ),
                default=0.0,
            )
        return freed

    # ------------------------------------------------------------------
    # Introspection (metrics / conservation tests)
    # ------------------------------------------------------------------
    @property
    def transfers(self) -> Tuple[TransferRecord, ...]:
        return tuple(self._records)

    def total_bytes(self) -> float:
        return sum(record.num_bytes for record in self._records)

    def busy_cycles_by_link(self) -> Dict[object, float]:
        busy: Dict[object, float] = {}
        for record in self._records:
            for key in self._record_links(record):
                busy[key] = busy.get(key, 0.0) + (
                    record.end_cycles - record.start_cycles
                )
        return busy

    def cross_rack_bytes(self, purpose: Optional[str] = None) -> float:
        """Total payload bytes that crossed a rack uplink."""
        return sum(
            record.num_bytes
            for record in self._records
            if record.cross_rack
            and (purpose is None or record.purpose == purpose)
        )

    def uplink_busy_cycles(self) -> Dict[int, float]:
        """Occupied cycles per rack uplink (rack id -> busy cycles)."""
        busy: Dict[int, float] = {}
        for key, cycles in self.busy_cycles_by_link().items():
            if isinstance(key, tuple) and key and key[0] == "uplink":
                busy[key[1]] = busy.get(key[1], 0.0) + cycles
        return busy

    def verify_conservation(self) -> None:
        """Raise unless every link served its transfers FIFO, one at a time.

        Checks, per link: starts never precede requests, occupancy spans
        do not overlap, and service order equals request order (no
        reordering across a link).  A cross-rack transfer is checked on
        *every* link of its path (rack-local egress and rack uplink), so
        a cancellation that freed one leg but not the other would trip
        the overlap check on the stale link.
        """
        per_link: Dict[object, List[TransferRecord]] = {}
        for record in self._records:
            for key in self._record_links(record):
                per_link.setdefault(key, []).append(record)
        for key, records in per_link.items():
            previous_end = 0.0
            previous_request = 0.0
            for record in records:  # append order == request order
                if record.request_cycles < previous_request:
                    raise AssertionError(f"link {key}: requests out of order")
                if record.start_cycles < record.request_cycles:
                    raise AssertionError(f"link {key}: start precedes request")
                if record.start_cycles < previous_end:
                    raise AssertionError(f"link {key}: overlapping service")
                expected_end = record.start_cycles + (
                    self.config.cross_rack_transfer_cycles(record.num_bytes)
                    if record.cross_rack
                    else self.config.transfer_cycles(record.num_bytes)
                )
                if record.cancelled:
                    # A cancelled transfer occupies at most its full
                    # serialization cost (truncated at the failure).
                    if record.end_cycles > expected_end + 1e-6:
                        raise AssertionError(
                            f"link {key}: cancelled transfer overran"
                        )
                elif not math.isclose(
                    record.end_cycles, expected_end, rel_tol=1e-12, abs_tol=1e-6
                ):
                    raise AssertionError(f"link {key}: bytes in != bytes out")
                previous_end = record.end_cycles
                previous_request = record.request_cycles
