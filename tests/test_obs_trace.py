"""Structured tracing (repro.obs.trace): schema round-trip, track
mapping, bounded memory, and the no-op-tracer bit-for-bit contract."""

import json

import pytest

from repro.obs import Tracer, MetricsSampler, HotPathProfiler
from repro.obs.trace import (
    CONTROL_PID,
    EVENT_KINDS,
    FABRIC_PID,
    NULL_TRACER,
    NullTracer,
    RACK_PID_BASE,
    load_chrome_trace,
    validate_chrome_trace,
)
from repro.sched.cluster import (
    ClusterConfig,
    ClusterScheduler,
    RoutingPolicy,
)
from repro.sched.rack import RackTopology
from repro.sched.simulator import PreemptionMode, SimulationConfig
from repro.workloads.generator import WorkloadGenerator

from helpers_golden import _encode_cluster_v2


def run_cluster(factory, config, routing=RoutingPolicy.PREEMPTIVE_MIGRATION,
                num_devices=4, num_tasks=16, seed=81, **extra):
    sim = SimulationConfig(npu=config, mode=PreemptionMode.DYNAMIC)
    workload = WorkloadGenerator(seed=seed).generate(num_tasks=num_tasks)
    scheduler = ClusterScheduler(
        num_devices, sim,
        config=ClusterConfig(routing=routing, seed=0, **extra),
    )
    return scheduler.run(factory.build_workload(workload))


class TestNullTracer:
    def test_disabled_and_stateless(self):
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.audit_routing is False
        # The zero-allocation contract: no instance dict to grow.
        assert NullTracer.__slots__ == ()
        assert NULL_TRACER.instant("dispatch", "x", 0.0) is None
        assert NULL_TRACER.span("run", "x", 0.0, 1.0) is None
        assert NULL_TRACER.counter("c", 0.0, 1.0) is None


class TestTracerBasics:
    def test_span_zero_duration_becomes_instant(self):
        tracer = Tracer()
        tracer.span("restore", "r", 5.0, 5.0)
        tracer.span("run", "r", 5.0, 7.0)
        phases = [event[0] for event in tracer.events]
        assert phases == ["i", "X"]

    def test_max_events_bounds_memory(self):
        tracer = Tracer(max_events=5)
        for index in range(12):
            tracer.instant("dispatch", f"e{index}", float(index))
        assert len(tracer) == 5
        assert tracer.dropped == 7
        payload = tracer.chrome_trace()
        assert payload["otherData"]["dropped_events"] == 7
        validate_chrome_trace(payload)

    def test_unsorted_emission_exports_monotonic(self):
        tracer = Tracer()
        tracer.instant("dispatch", "late", 10.0)
        tracer.instant("dispatch", "early", 1.0)
        payload = tracer.chrome_trace()
        validate_chrome_trace(payload)  # would raise on non-monotonic


class TestClusterTraceRoundTrip:
    def test_flat_fleet_round_trip(self, factory, config, tmp_path):
        tracer = Tracer()
        sampler = MetricsSampler(interval_cycles=100_000.0)
        run_cluster(
            factory, config, tracer=tracer, metrics_sampler=sampler
        )
        path = tmp_path / "trace.json"
        tracer.write(path)
        payload = load_chrome_trace(path)
        counts = validate_chrome_trace(payload, num_devices=4)
        assert counts["X"] > 0      # run spans
        assert counts["i"] > 0      # dispatch/complete instants
        assert counts["C"] > 0      # mirrored sampler series
        assert counts["M"] >= 3     # process + thread metadata
        cats = {
            event["cat"]
            for event in payload["traceEvents"]
            if event["ph"] != "M"
        }
        assert cats <= EVENT_KINDS
        assert {"dispatch", "run", "complete", "metric"} <= cats

    def test_device_and_rack_track_mapping(self, factory, config):
        tracer = Tracer()
        run_cluster(
            factory, config, num_devices=4, tracer=tracer,
            racks=RackTopology.uniform(2, 2),
        )
        payload = tracer.chrome_trace()
        validate_chrome_trace(payload, num_devices=4)
        events = payload["traceEvents"]
        process_names = {
            e["pid"]: e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert process_names[RACK_PID_BASE] == "rack 0"
        assert process_names[RACK_PID_BASE + 1] == "rack 1"
        assert process_names[CONTROL_PID] == "control plane"
        # Devices 0,1 -> rack 0; devices 2,3 -> rack 1; tid = device id.
        for event in events:
            if event["ph"] == "M" or event["pid"] < RACK_PID_BASE:
                continue
            expected_pid = RACK_PID_BASE + (0 if event["tid"] < 2 else 1)
            assert event["pid"] == expected_pid
        # The two-tier frontend documents its rack choices.
        assert any(
            e.get("cat") == "rack_pick" for e in events if e["ph"] != "M"
        )

    def test_interconnect_transfer_tracks(self, factory, config):
        tracer = Tracer()
        result = run_cluster(
            factory, config, num_devices=2, num_tasks=24, tracer=tracer
        )
        payload = tracer.chrome_trace()
        validate_chrome_trace(payload, num_devices=2)
        transfer_events = [
            e for e in payload["traceEvents"]
            if e["ph"] != "M" and e.get("cat") == "transfer"
        ]
        if result.transfers:
            assert len(transfer_events) == len(result.transfers)
            assert {e["pid"] for e in transfer_events} == {FABRIC_PID}

    def test_audit_mode_records_runner_ups(self, factory, config):
        tracer = Tracer(audit_routing=True)
        run_cluster(
            factory, config, routing=RoutingPolicy.ONLINE_PREDICTED,
            tracer=tracer,
        )
        audits = [
            event for event in tracer.events if event[1] == "route_audit"
        ]
        assert audits
        args = audits[0][7]
        assert {"tag", "chosen", "chosen_backlog", "runners_up"} <= set(args)
        for runner in args["runners_up"]:
            assert {"device", "backlog", "bound"} <= set(runner)
            assert runner["device"] != args["chosen"]

    def test_audit_off_by_default(self, factory, config):
        tracer = Tracer()
        run_cluster(
            factory, config, routing=RoutingPolicy.ONLINE_PREDICTED,
            tracer=tracer,
        )
        assert not any(e[1] == "route_audit" for e in tracer.events)


class TestNoopEquivalence:
    @pytest.mark.parametrize("routing", tuple(RoutingPolicy))
    def test_observed_run_is_bit_for_bit(self, factory, config, routing):
        """Full observability on must not move a single decision."""
        plain = _encode_cluster_v2(run_cluster(factory, config, routing))
        observed = _encode_cluster_v2(
            run_cluster(
                factory, config, routing,
                tracer=Tracer(audit_routing=True),
                metrics_sampler=MetricsSampler(interval_cycles=50_000.0),
                profiler=HotPathProfiler(),
            )
        )
        assert json.dumps(plain, sort_keys=True) == json.dumps(
            observed, sort_keys=True
        )


class TestValidation:
    def _minimal(self):
        tracer = Tracer()
        tracer.instant("dispatch", "e", 1.0, device=0)
        return tracer.chrome_trace()

    def test_rejects_unknown_phase(self):
        payload = self._minimal()
        payload["traceEvents"][-1]["ph"] = "Z"
        with pytest.raises(ValueError, match="phase"):
            validate_chrome_trace(payload)

    def test_rejects_unknown_category(self):
        payload = self._minimal()
        payload["traceEvents"][-1]["cat"] = "mystery"
        with pytest.raises(ValueError, match="cat"):
            validate_chrome_trace(payload)

    def test_rejects_non_monotonic_track(self):
        payload = self._minimal()
        events = payload["traceEvents"]
        clone = dict(events[-1])
        clone["ts"] = 0.5
        events.append(clone)
        with pytest.raises(ValueError, match="monotonicity"):
            validate_chrome_trace(payload)

    def test_rejects_unknown_device(self):
        payload = self._minimal()
        with pytest.raises(ValueError, match="unknown device"):
            validate_chrome_trace(payload, num_devices=0)

    def test_rejects_unnamed_track(self):
        payload = self._minimal()
        payload["traceEvents"] = [
            e for e in payload["traceEvents"]
            if not (e["ph"] == "M" and e["name"] == "thread_name")
        ]
        with pytest.raises(ValueError, match="thread_name"):
            validate_chrome_trace(payload)


class TestObsReport:
    def test_report_renders_from_artifact(self, factory, config, tmp_path,
                                          capsys):
        from repro.analysis.obs_report import main as report_main

        tracer = Tracer()
        sampler = MetricsSampler(interval_cycles=100_000.0)
        run_cluster(
            factory, config, tracer=tracer, metrics_sampler=sampler
        )
        path = tmp_path / "trace.json"
        tracer.write(path)
        assert report_main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "events by kind" in out
        assert "track occupancy" in out
        assert "counter series" in out
        assert "cluster.utilization" in out
        assert report_main([str(path), "--format", "ascii"]) == 0
        ascii_out = capsys.readouterr().out
        assert "|" in ascii_out and "---" in ascii_out
