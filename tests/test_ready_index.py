"""Incremental ready index + policy priority structures.

Seeded lifecycle property tests: drive a ContextTable and the policies'
incremental structures through randomized admit/dispatch/requeue/remove/
period-grant sequences (the exact hook protocol DeviceSim speaks) and
assert at every step that the O(log n) fast paths answer identically to
the reference scans over ``table.ready()``.
"""

import random

import pytest

from repro.core.context import ContextTable, TaskContext, TaskState
from repro.core.tokens import (
    NUM_CANDIDATE_BUCKETS,
    Priority,
    TOKEN_LEVELS,
    candidate_bucket,
    candidate_threshold,
)
from repro.sched.policies import POLICY_NAMES, make_policy


def make_row(task_id, rng=None):
    rng = rng or random.Random(task_id)
    row = TaskContext(
        task_id=task_id,
        priority=rng.choice(list(Priority)),
        benchmark=rng.choice(["CNN-AN", "CNN-GN", "RNN-SA"]),
        estimated_cycles=rng.uniform(1e4, 1e7),
    )
    return row


class TestCandidateBucket:
    def test_matches_threshold_semantics(self):
        for tokens in (0.5, 1.0, 1.1, 2.9, 3.0, 3.5, 8.0, 9.0, 9.4, 120.0):
            bucket = candidate_bucket(tokens)
            assert 0 <= bucket < NUM_CANDIDATE_BUCKETS
            # Definition: number of levels strictly below the count.
            assert bucket == sum(1 for level in TOKEN_LEVELS if level < tokens)

    def test_bucket_order_equals_candidate_group(self):
        """tokens > threshold(max)  <=>  bucket(tokens) >= bucket(max)."""
        rng = random.Random(0)
        for _ in range(500):
            tokens = rng.uniform(0.1, 30.0)
            max_tokens = rng.uniform(tokens, 40.0)
            threshold = candidate_threshold(max_tokens)
            assert (tokens > threshold) == (
                candidate_bucket(tokens) >= candidate_bucket(max_tokens)
            )


class TestContextTableIndex:
    def test_direct_state_assignment_updates_ready(self):
        table = ContextTable()
        rows = [make_row(i) for i in range(5)]
        for row in rows:
            table.add(row)
        assert [r.task_id for r in table.ready()] == [0, 1, 2, 3, 4]
        rows[2].state = TaskState.RUNNING
        assert [r.task_id for r in table.ready()] == [0, 1, 3, 4]
        assert table.running() is rows[2]
        rows[2].state = TaskState.READY
        assert [r.task_id for r in table.ready()] == [0, 1, 2, 3, 4]
        assert table.running() is None

    def test_remove_releases_ownership(self):
        table = ContextTable()
        row = make_row(7)
        table.add(row)
        table.remove(7)
        assert not table.has_ready
        # State changes after removal must not corrupt the old table.
        row.state = TaskState.RUNNING
        assert table.running() is None
        other = ContextTable()
        other.add(row)
        assert other.running() is row

    def test_has_ready_and_count(self):
        table = ContextTable()
        assert not table.has_ready
        assert table.ready_count == 0
        row = make_row(1)
        table.add(row)
        assert table.has_ready and table.ready_count == 1
        row.state = TaskState.DONE
        assert not table.has_ready

    def test_randomized_lifecycle_matches_scan(self):
        rng = random.Random(42)
        table = ContextTable()
        rows = {}
        next_id = 0
        for _ in range(400):
            action = rng.random()
            if action < 0.4 or not rows:
                row = make_row(next_id, rng)
                rows[next_id] = row
                table.add(row)
                next_id += 1
            elif action < 0.7:
                row = rng.choice(list(rows.values()))
                row.state = rng.choice(list(TaskState))
            else:
                task_id = rng.choice(list(rows))
                table.remove(task_id)
                del rows[task_id]
            expected = sorted(
                (r.task_id for r in rows.values()
                 if r.state is TaskState.READY),
            )
            assert [r.task_id for r in table.ready()] == expected


def _drive_lifecycle(policy_name, seed, steps=250):
    """Replay a DeviceSim-shaped lifecycle; yield after every step."""
    rng = random.Random(seed)
    policy = make_policy(policy_name)
    reference = make_policy(policy_name)
    table = ContextTable()
    ready_ids = set()
    running_id = [None]
    next_id = [0]

    def admit():
        row = make_row(next_id[0], rng)
        table.add(row)
        ready_ids.add(row.task_id)
        policy.on_admit(row, 0.0)
        next_id[0] += 1

    def dispatch():
        task_id = rng.choice(sorted(ready_ids))
        ready_ids.discard(task_id)
        row = table[task_id]
        row.state = TaskState.RUNNING
        running_id[0] = task_id
        policy.on_dispatch(row)

    def requeue():
        task_id = running_id[0]
        row = table[task_id]
        row.executed_cycles += rng.uniform(0.0, row.estimated_cycles)
        row.state = TaskState.READY
        ready_ids.add(task_id)
        running_id[0] = None
        policy.on_requeue(row)

    def complete():
        task_id = running_id[0]
        table[task_id].state = TaskState.DONE
        running_id[0] = None

    def remove():
        task_id = rng.choice(sorted(ready_ids))
        ready_ids.discard(task_id)
        row = table.remove(task_id)
        policy.on_remove(row, 0.0)

    def period():
        if policy.uses_tokens:
            for row in table.ready():
                row.waited_since_grant += rng.uniform(0.0, 5e5)
            policy.on_period(table)

    for _ in range(3):
        admit()
    for _ in range(steps):
        choices = [admit, period]
        if ready_ids and running_id[0] is None:
            choices.append(dispatch)
        if running_id[0] is not None:
            choices += [requeue, complete]
        if ready_ids:
            choices.append(remove)
        rng.choice(choices)()
        yield policy, reference, table, running_id[0]


@pytest.mark.parametrize("policy_name", POLICY_NAMES)
def test_select_ready_matches_reference_scan(policy_name):
    if policy_name == "RRB":
        pytest.skip("RRB's cursor advances per pick; select_ready IS select")
    for seed in range(5):
        for policy, reference, table, _running in _drive_lifecycle(
            policy_name, seed
        ):
            fast = policy.select_ready(table)
            slow = reference.select(table.ready())
            assert (fast is None) == (slow is None)
            if fast is not None:
                assert fast.task_id == slow.task_id, (
                    f"{policy_name} seed {seed}: fast pick {fast.task_id} "
                    f"!= reference {slow.task_id}"
                )


@pytest.mark.parametrize("policy_name", ["HPF", "SJF", "TOKEN", "PREMA"])
def test_outranks_running_matches_reference(policy_name):
    for seed in range(5):
        for policy, reference, table, running_id in _drive_lifecycle(
            policy_name, seed + 100
        ):
            if running_id is None:
                continue
            candidate = policy.select_ready(table)
            if candidate is None:
                continue
            running = table[running_id]
            fast = policy.outranks_running(candidate, running, table)
            slow = reference.outranks(candidate, running, table.ready())
            assert fast == slow, f"{policy_name} seed {seed}"


def test_select_ready_detects_stale_pick_at_equal_counts():
    """Paired external mutations that keep the ready count unchanged must
    not let the fast path return a stale (non-READY / evicted) row."""
    for policy_name in ("HPF", "SJF", "TOKEN", "PREMA"):
        policy = make_policy(policy_name)
        table = ContextTable()
        rows = [make_row(i) for i in range(4)]
        for row in rows:
            table.add(row)
            policy.on_admit(row, 0.0)
        picked = policy.select_ready(table)
        assert picked is not None
        # Retire the pick and admit a replacement behind the policy's
        # back: the ready count stays identical.
        rows[picked.task_id].state = TaskState.DONE
        fresh = make_row(10)
        table.add(fresh)
        reference = make_policy(policy_name).select(table.ready())
        picked2 = policy.select_ready(table)
        assert picked2 is not None
        assert picked2.state is TaskState.READY
        assert picked2.task_id == reference.task_id, policy_name


def test_select_ready_without_hooks_self_heals():
    """Driving select_ready with no lifecycle hooks (or after direct state
    mutation) must still return the reference answer via resync."""
    for policy_name in ("HPF", "SJF", "TOKEN", "PREMA"):
        policy = make_policy(policy_name)
        table = ContextTable()
        rows = [make_row(i) for i in range(6)]
        for row in rows:
            table.add(row)  # note: no on_admit
        picked = policy.select_ready(table)
        reference = make_policy(policy_name).select(table.ready())
        assert picked is not None and picked.task_id == reference.task_id
        # Mutate states behind the policy's back; it must resync.
        rows[picked.task_id].state = TaskState.DONE
        picked2 = policy.select_ready(table)
        reference2 = make_policy(policy_name).select(table.ready())
        assert picked2 is not None and picked2.task_id == reference2.task_id
