"""Execution engine: layer timings, profiles, preemption-point queries."""

import pytest

from repro.isa.compiler import compile_model
from repro.models.graph import Graph
from repro.models.layers import Conv2D, FullyConnected, InputSpec, Pool2D
from repro.npu.engine import (
    gemm_cycles_by_category,
    profile_model,
)
from repro.npu.systolic import tile_cycles
from repro.npu.tiling import GemmShape, TilePlan


@pytest.fixture(scope="module")
def simple_profile(config):
    # 64x64 spatial -> n = 4096 = 2 accumulator tiles for conv1.
    graph = Graph("simple", InputSpec(channels=3, height=64, width=64))
    graph.add(Conv2D("conv1", out_channels=32, kernel=3, padding=1))
    graph.add(Pool2D("pool1", kernel=2, stride=2))
    graph.add(FullyConnected("fc", out_features=10, fused_activation=None))
    model = compile_model(graph, config, batch=1)
    return profile_model(model, config)


class TestCategoryCounting:
    @pytest.mark.parametrize(
        "shape",
        [
            GemmShape(m=128, k=128, n=2048),
            GemmShape(m=300, k=200, n=4100),
            GemmShape(m=1, k=9, n=100),
            GemmShape(m=4096, k=4096, n=1),
        ],
    )
    def test_matches_per_tile_iteration(self, config, shape):
        steady, tiles, _cold = gemm_cycles_by_category(shape, config)
        plan = TilePlan(shape, config)
        reference = sum(tile_cycles(config, t) for t in plan.tiles())
        assert tiles == plan.total_tiles
        assert steady == pytest.approx(reference, rel=1e-9)


class TestExecutionProfile:
    def test_layer_starts_are_prefix_sums(self, simple_profile):
        clock = 0.0
        for start, layer in zip(simple_profile.layer_starts, simple_profile.layers):
            assert start == pytest.approx(clock)
            clock += layer.cycles
        assert simple_profile.total_cycles == pytest.approx(clock)

    def test_locate_start_and_end(self, simple_profile):
        assert simple_profile.locate(0.0) == (0, 0.0)
        index, intra = simple_profile.locate(simple_profile.total_cycles + 5)
        assert index == simple_profile.num_layers - 1
        assert intra == pytest.approx(simple_profile.layers[-1].cycles)

    def test_locate_interior(self, simple_profile):
        target = simple_profile.layer_starts[1] + 1.0
        index, intra = simple_profile.locate(target)
        assert index == 1
        assert intra == pytest.approx(1.0)

    def test_preemption_point_monotone(self, simple_profile):
        prev = 0.0
        total = simple_profile.total_cycles
        for frac in (0.0, 0.1, 0.33, 0.5, 0.77, 0.99):
            point = simple_profile.next_preemption_point(frac * total)
            assert point >= frac * total
            assert point >= prev
            assert point <= total
            prev = point

    def test_checkpoint_bytes_zero_after_completion(self, simple_profile):
        assert simple_profile.checkpoint_bytes_at(simple_profile.total_cycles) == 0.0

    def test_checkpoint_bytes_bounded(self, simple_profile, config):
        for frac in (0.1, 0.4, 0.9):
            offset = simple_profile.next_preemption_point(
                frac * simple_profile.total_cycles
            )
            size = simple_profile.checkpoint_bytes_at(offset)
            assert 0 <= size <= config.ubuf_bytes + config.accq_bytes

    def test_max_checkpoint_bytes_positive(self, simple_profile):
        assert simple_profile.max_checkpoint_bytes() > 0


class TestLayerTiming:
    def test_pool_layer_has_no_tiles_or_checkpoint(self, simple_profile):
        pool = simple_profile.layers[1]
        assert pool.total_tiles == 0
        assert pool.checkpoint is None
        assert pool.macs == 0

    def test_conv_layer_has_tiles_and_checkpoint(self, simple_profile):
        conv = simple_profile.layers[0]
        assert conv.total_tiles > 0
        assert conv.checkpoint is not None
        assert conv.macs > 0

    def test_tile_boundary_snapping(self, simple_profile):
        conv = simple_profile.layers[0]
        mid = conv.tile_cycles * 1.5
        boundary = conv.next_tile_boundary(mid)
        assert boundary == pytest.approx(conv.tile_cycles * 2)

    def test_tiles_done_monotone(self, simple_profile):
        conv = simple_profile.layers[0]
        done = [conv.tiles_done_at(f * conv.cycles) for f in (0, 0.25, 0.5, 1.0)]
        assert done == sorted(done)
        assert done[-1] == conv.total_tiles


class TestRealModelProfiles:
    def test_isolated_times_span_paper_range(self, factory, config):
        # Sec IV-D: isolated network latency spans ~0.5 to ~45 ms at the
        # canonical batch-1 settings; allow slack for the seq2seq models.
        times = []
        for benchmark, lengths in [
            ("CNN-AN", (None, None)), ("CNN-GN", (None, None)),
            ("CNN-VN", (None, None)), ("CNN-MN", (None, None)),
            ("RNN-SA", (20, 20)), ("RNN-MT1", (20, 22)),
            ("RNN-MT2", (20, 15)), ("RNN-ASR", (60, 27)),
        ]:
            profile = factory.execution_profile(benchmark, 1, *lengths)
            times.append(config.cycles_to_ms(profile.total_cycles))
        assert min(times) > 0.2
        assert max(times) < 120.0
        assert max(times) / min(times) > 10  # wide size spread

    def test_batch_increases_latency(self, factory):
        b1 = factory.execution_profile("CNN-AN", 1).total_cycles
        b16 = factory.execution_profile("CNN-AN", 16).total_cycles
        assert b16 > b1
        # Batching amortizes: less than 16x the batch-1 latency.
        assert b16 < 16 * b1

    def test_profile_deterministic(self, factory):
        first = factory.execution_profile("CNN-GN", 1)
        second = factory.execution_profile("CNN-GN", 1)
        assert first.total_cycles == second.total_cycles
