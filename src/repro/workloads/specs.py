"""Workload specifications: which tasks arrive, when, and how urgent.

A :class:`TaskSpec` is the CPU-side description of one inference request;
a :class:`WorkloadSpec` is the multi-tasked mix the paper constructs in
Sec III (N tasks drawn from the eight benchmarks, uniform-random arrival
times, random low/medium/high priorities).
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

from repro.core.tokens import Priority


@dataclasses.dataclass(frozen=True)
class TaskSpec:
    """One inference request as dispatched by the CPU.

    Task ids are assigned in arrival order, so FCFS ties resolve by id.
    Sequence lengths apply to RNN benchmarks only: ``input_len`` is
    statically known pre-inference; ``actual_output_len`` is the
    data-dependent ground truth the simulator executes (the scheduler
    never sees it -- it sees the regressor's prediction instead).
    """

    task_id: int
    benchmark: str
    batch: int
    priority: Priority
    arrival_cycles: float
    input_len: Optional[int] = None
    actual_output_len: Optional[int] = None
    #: Serving QoS class tag ("interactive" / "standard" / "batch", see
    #: :mod:`repro.serving.slo`).  None means priority-derived default;
    #: membership is validated at resolution (`qos_of`), not here, so the
    #: workload layer stays independent of the serving layer.
    qos: Optional[str] = None
    #: Requested pipeline-parallel stages.  1 (the default) is the paper's
    #: whole-model-on-one-NPU execution; >1 asks the cluster to cut the
    #: model into that many device slices (see :mod:`repro.sched.job`).
    #: A request, not a guarantee: the gang dispatcher clamps to the layer
    #: count and fleet size.
    stages: int = 1

    def __post_init__(self) -> None:
        if self.task_id < 0:
            raise ValueError("task_id must be >= 0")
        if self.batch <= 0:
            raise ValueError("batch must be positive")
        if self.arrival_cycles < 0:
            raise ValueError("arrival_cycles must be >= 0")
        if self.input_len is not None and self.input_len <= 0:
            raise ValueError("input_len must be positive")
        if self.actual_output_len is not None and self.actual_output_len <= 0:
            raise ValueError("actual_output_len must be positive")
        if self.stages < 1:
            raise ValueError("stages must be >= 1")

    @property
    def is_rnn(self) -> bool:
        return self.input_len is not None


@dataclasses.dataclass(frozen=True)
class WorkloadSpec:
    """A multi-tasked workload: the unit one simulation run executes."""

    name: str
    tasks: Tuple[TaskSpec, ...]

    def __post_init__(self) -> None:
        if not self.tasks:
            raise ValueError("workload must contain at least one task")
        ids = [task.task_id for task in self.tasks]
        if len(set(ids)) != len(ids):
            raise ValueError("task ids must be unique")
        arrivals = [task.arrival_cycles for task in self.tasks]
        if arrivals != sorted(arrivals):
            raise ValueError("tasks must be ordered by arrival time")

    def __len__(self) -> int:
        return len(self.tasks)

    @property
    def benchmarks(self) -> Tuple[str, ...]:
        return tuple(task.benchmark for task in self.tasks)
