"""Smoke tests: every shipped example runs clean and prints its story."""

import pathlib
import subprocess
import sys


EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name, *args):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=180,
    )


class TestExamples:
    def test_quickstart(self):
        result = run_example("quickstart.py", "7")
        assert result.returncode == 0, result.stderr
        for token in ("Workload", "NP-FCFS", "PREMA", "ANTT"):
            assert token in result.stdout

    def test_cloud_serving(self):
        result = run_example("cloud_serving.py")
        assert result.returncode == 0, result.stderr
        assert "online" in result.stdout
        assert "SLA met" in result.stdout
        assert "PREMA (preemptible NPU)" in result.stdout
        # Act two: QoS classes + admission on the overloaded cluster.
        assert "admit-all frontend" in result.stdout
        assert "admission + online feedback" in result.stdout
        assert "class attainment" in result.stdout
        assert "rejected" in result.stdout
        # Act three: router batching on the same overloaded cluster.
        assert "admission + router batching" in result.stdout
        assert "batched dispatches" in result.stdout
        # Act four: spot churn on the act-three cluster.  The reactive
        # arm destroys requests outright; evacuating on the revocation
        # warning loses nothing.
        assert "spot churn, reactive restart" in result.stdout
        assert "spot churn, proactive migration" in result.stdout
        lost = [
            int(line.split("tasks lost")[0].split(",")[-1])
            for line in result.stdout.splitlines()
            if "tasks lost" in line
        ]
        assert len(lost) == 2  # reactive first, proactive second
        assert lost[1] == 0 < lost[0]

    def test_preemption_lab(self):
        result = run_example("preemption_lab.py", "0.5")
        assert result.returncode == 0, result.stderr
        for token in ("KILL", "CHECKPOINT", "DRAIN", "high-pri NTT"):
            assert token in result.stdout

    def test_preemption_lab_rejects_bad_fraction(self):
        result = run_example("preemption_lab.py", "1.5")
        assert result.returncode != 0

    def test_latency_prediction(self):
        result = run_example("latency_prediction.py")
        assert result.returncode == 0, result.stderr
        assert "Algorithm 1" in result.stdout
        assert "Regression lookup table" in result.stdout

    def test_cluster_serving(self):
        result = run_example("cluster_serving.py", "2")
        assert result.returncode == 0, result.stderr
        assert "online + PREMA" in result.stdout
        assert "stealing + PREMA" in result.stdout
