"""Fig 9: input->output sequence-length characterization graphs.

Regenerates the four profile-driven characterization panels (En->De,
En->Ko, En->Zh translation and ASR): per input length, the interquartile
band of observed output lengths, plus the geomean the regression model
serves.  Also reports the regressor's relative prediction error, the
quantity that feeds PREMA's estimate quality for non-linear RNNs.
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence, Tuple

from repro.analysis.reporting import format_table
from repro.core.regression import SequenceLengthRegressor
from repro.models.sequences import PROFILE_SPECS, generate_profile


@dataclasses.dataclass(frozen=True)
class SeqLenRow:
    """One (application, input length) characterization point."""

    application: str
    input_len: int
    q25: float
    median: float
    q75: float
    geomean_prediction: int


@dataclasses.dataclass(frozen=True)
class RegressorQuality:
    application: str
    correlation: float
    mean_relative_error: float
    max_relative_error: float


def run_fig09(
    applications: Sequence[str] = tuple(PROFILE_SPECS),
    num_samples: int = 1500,
    seed: int = 2020,
) -> Tuple[List[SeqLenRow], List[RegressorQuality]]:
    rows: List[SeqLenRow] = []
    quality: List[RegressorQuality] = []
    for application in applications:
        profile = generate_profile(application, num_samples=num_samples, seed=seed)
        regressor = SequenceLengthRegressor.from_profile(profile)
        quartiles = profile.quartiles_by_input()
        for input_len in profile.input_lengths:
            q25, median, q75 = quartiles[input_len]
            rows.append(
                SeqLenRow(
                    application=application,
                    input_len=input_len,
                    q25=q25,
                    median=median,
                    q75=q75,
                    geomean_prediction=regressor.predict(input_len),
                )
            )
        mean_err, max_err = regressor.error_against(profile)
        quality.append(
            RegressorQuality(
                application=application,
                correlation=profile.correlation(),
                mean_relative_error=mean_err,
                max_relative_error=max_err,
            )
        )
    return rows, quality


def format_fig09(
    rows: Sequence[SeqLenRow], quality: Sequence[RegressorQuality]
) -> str:
    points = format_table(
        ("app", "in_len", "q25", "median", "q75", "geomean_pred"),
        [
            (r.application, r.input_len, r.q25, r.median, r.q75,
             r.geomean_prediction)
            for r in rows
        ],
        title="Fig 9: output-length characterization (per input length)",
    )
    fit = format_table(
        ("app", "corr", "mean_rel_err", "max_rel_err"),
        [
            (q.application, q.correlation, q.mean_relative_error,
             q.max_relative_error)
            for q in quality
        ],
        title="Regression-model quality",
    )
    return points + "\n\n" + fit
