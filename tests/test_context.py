"""The inference task context table (Fig 4)."""

import pytest

from repro.core.context import ContextTable, TaskContext, TaskState
from repro.core.tokens import Priority


def make_row(task_id=0, priority=Priority.MEDIUM, **kwargs):
    return TaskContext(task_id=task_id, priority=priority, **kwargs)


class TestTaskContext:
    def test_initial_tokens_from_priority(self):
        assert make_row(priority=Priority.LOW).tokens == 1.0
        assert make_row(priority=Priority.HIGH).tokens == 9.0

    def test_explicit_tokens_respected(self):
        assert make_row(tokens=5.0).tokens == 5.0

    def test_estimated_remaining_floors_at_zero(self):
        row = make_row(estimated_cycles=100.0)
        row.executed_cycles = 150.0
        assert row.estimated_remaining_cycles == 0.0

    def test_grant_tokens(self):
        row = make_row()
        row.waited_since_grant = 42.0
        row.grant_tokens(2.0)
        assert row.tokens == 5.0
        assert row.waited_since_grant == 0.0

    def test_grant_rejects_negative(self):
        with pytest.raises(ValueError):
            make_row().grant_tokens(-1.0)

    def test_accrue_wait_only_when_ready(self):
        row = make_row()
        row.accrue_wait(100.0)
        assert row.waited_cycles == 100.0
        row.state = TaskState.RUNNING
        row.accrue_wait(250.0)
        assert row.waited_cycles == 100.0
        assert row.last_update_cycles == 250.0

    def test_accrue_wait_future_baseline_noop(self):
        # A preempted task re-enters the queue at a future boundary time;
        # earlier accruals must be no-ops, not negative waits.
        row = make_row(last_update_cycles=500.0)
        row.accrue_wait(100.0)
        assert row.waited_cycles == 0.0
        assert row.last_update_cycles == 500.0

    def test_rejects_negative_task_id(self):
        with pytest.raises(ValueError):
            make_row(task_id=-1)


class TestContextTable:
    def test_add_get_remove(self):
        table = ContextTable()
        row = make_row(task_id=3)
        table.add(row)
        assert table[3] is row
        assert 3 in table
        assert len(table) == 1
        assert table.remove(3) is row
        assert 3 not in table

    def test_duplicate_add_raises(self):
        table = ContextTable()
        table.add(make_row(task_id=1))
        with pytest.raises(ValueError):
            table.add(make_row(task_id=1))

    def test_remove_missing_raises(self):
        with pytest.raises(KeyError):
            ContextTable().remove(9)

    def test_ready_filters_and_orders(self):
        table = ContextTable()
        ready_b = make_row(task_id=5)
        running = make_row(task_id=1)
        running.state = TaskState.RUNNING
        ready_a = make_row(task_id=2)
        for row in (ready_b, running, ready_a):
            table.add(row)
        assert [r.task_id for r in table.ready()] == [2, 5]

    def test_running_lookup(self):
        table = ContextTable()
        row = make_row(task_id=1)
        table.add(row)
        assert table.running() is None
        row.state = TaskState.RUNNING
        assert table.running() is row

    def test_sram_bits_match_paper(self):
        # Sec VI-F: 448 bits per task, 16 tasks -> 7168 bits.
        table = ContextTable()
        for task_id in range(16):
            table.add(make_row(task_id=task_id))
        assert table.sram_bits() == 448 * 16
