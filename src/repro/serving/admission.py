"""PCS-style predictive admission control for the cluster frontend.

Under overload an admit-everything frontend makes *every* request miss
its SLA -- the queue grows without bound and the paper's Fig-13 curves
collapse.  PCS ("Towards providing reliable job completion time
predictions using PCS") instead predicts each arrival's completion time
and refuses work it cannot serve in time.  This controller implements
that decision for the multi-NPU cluster:

1. **Predict**: the arrival's completion time is the best device's live
   predicted backlog (:meth:`DeviceSim.predicted_backlog`, the same
   estimate online routing uses) plus the request's own estimate --
   corrected by the online feedback layer
   (:class:`~repro.serving.feedback.PredictionFeedback`) when one is
   attached.
2. **Compare**: the predicted slowdown (turnaround / corrected estimate,
   including time already waited) is checked against the request's QoS
   class SLO, plus the per-class admission budget (a class over its
   share of outstanding admitted work is not accepted while the cluster
   is loaded -- batch cannot starve interactive).
3. **Decide**: within target and budget -> **accept** (the corrected
   estimate is written back into the scheduler-visible context, so
   predictive routing and migration run on corrected numbers too);
   over target with retries left -> **defer** (re-considered after a
   bounded delay, when the backlog may have drained); retries exhausted
   -> **reject** (the cluster never executes the task).

A deferral is never unbounded: each task gets at most
``max_defers`` re-considerations, after which the decision is forced to
accept-or-reject, so the defer loop always terminates.

Every decision is recorded (:class:`AdmissionRecord`) for the metrics
layer (rejection rate, deferral count, per-class attainment).
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, List, Optional, Tuple

from repro.serving.feedback import PredictionFeedback
from repro.serving.slo import DEFAULT_SLOS, ServiceLevel, SLOPolicy, qos_of


class AdmissionDecision(enum.Enum):
    ACCEPT = "accept"
    DEFER = "defer"
    REJECT = "reject"


@dataclasses.dataclass(frozen=True)
class AdmissionRecord:
    """One admission decision, as seen by the controller."""

    task_id: int
    qos: str
    decision: AdmissionDecision
    time_cycles: float
    predicted_slowdown: float
    attempt: int
    #: True when the decision was forced by the class budget, not the SLO.
    budget_limited: bool = False


@dataclasses.dataclass(frozen=True)
class AdmissionConfig:
    """Tunables of the admission state machine.

    ``defer_delay_cycles`` is how long a deferred arrival waits before
    re-consideration (0.5 ms at 700 MHz by default); ``max_defers``
    bounds re-considerations per task.  ``budget_floor_cycles`` keeps
    class budgets from binding while the cluster is nearly empty: shares
    are only enforced once outstanding admitted work exceeds the floor
    (default ~2 mean service times).
    """

    slos: SLOPolicy = dataclasses.field(default_factory=lambda: DEFAULT_SLOS)
    max_defers: int = 3
    defer_delay_cycles: float = 0.5e-3 * 700e6
    budget_floor_cycles: float = 2e6

    def __post_init__(self) -> None:
        if self.max_defers < 0:
            raise ValueError("max_defers must be >= 0")
        if self.defer_delay_cycles <= 0:
            raise ValueError("defer_delay_cycles must be positive")
        if self.budget_floor_cycles < 0:
            raise ValueError("budget_floor_cycles must be >= 0")


class AdmissionController:
    """Accept / defer / reject arrivals against per-class SLOs.

    Attach a :class:`PredictionFeedback` to make the controller
    learning-augmented: estimates are corrected before prediction, and
    every observed completion (:meth:`on_complete`) refines the
    correction.  Without feedback the controller runs on the raw
    Algorithm-1 estimates and never mutates them.
    """

    def __init__(
        self,
        config: Optional[AdmissionConfig] = None,
        feedback: Optional[PredictionFeedback] = None,
    ) -> None:
        self.config = config or AdmissionConfig()
        self.feedback = feedback
        self._records: List[AdmissionRecord] = []
        #: Outstanding admitted estimated cycles per QoS class value.
        self._outstanding: Dict[str, float] = {}
        #: Per-task charge to release at completion + raw estimate for
        #: the feedback observation.
        self._charges: Dict[int, Tuple[str, float, float]] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def records(self) -> Tuple[AdmissionRecord, ...]:
        return tuple(self._records)

    def decision_count(self, decision: AdmissionDecision) -> int:
        return sum(1 for r in self._records if r.decision == decision)

    def outstanding_cycles(self, qos: Optional[str] = None) -> float:
        """Admitted-but-uncompleted estimated cycles (one class or all)."""
        if qos is None:
            return sum(self._outstanding.values())
        return self._outstanding.get(qos, 0.0)

    # ------------------------------------------------------------------
    # The decision
    # ------------------------------------------------------------------
    def corrected_estimate(self, task) -> float:
        """The request's estimate after feedback correction (if any)."""
        raw = task.context.estimated_cycles
        if self.feedback is None:
            return raw
        return self.feedback.correct(task.spec.benchmark, raw)

    def placement_query(
        self, task, use_priority: bool, use_sjf: bool
    ) -> Tuple[Optional[int], Optional[float]]:
        """The routing surface: this arrival's class-aware backlog filters.

        Returns ``(min_priority, sjf_within_cycles)`` for
        :meth:`DeviceSim.predicted_backlog` -- the arrival's own priority
        level and feedback-corrected estimate, under the filters the
        cluster says its per-device policy honors
        (:meth:`ClusterScheduler.admission_prediction_filters`).
        ``(None, None)`` means the prediction is the plain total backlog,
        which the cluster may then serve from its O(log d) backlog index
        instead of the class-aware linear fallback.
        """
        min_priority = int(task.spec.priority) if use_priority else None
        sjf_within = self.corrected_estimate(task) if use_sjf else None
        return min_priority, sjf_within

    def decide(
        self,
        task,
        backlog_cycles: float,
        now: float,
        attempt: int = 0,
        marginal_scale: float = 1.0,
    ) -> AdmissionRecord:
        """Decide one (possibly re-considered) arrival.

        ``backlog_cycles`` is the predicted backlog of the best candidate
        device at ``now`` (in-flight deliveries included), exactly what
        online routing minimizes.  ``attempt`` counts prior deferrals of
        this task.  ``marginal_scale`` is the batch-aware cost factor: a
        request joining an open router batch occupies the device for only
        the marginal fraction of its corrected estimate (the rest rides
        the batch's shared work), so its predicted *turnaround* shrinks
        while the slowdown denominator -- what the user experiences
        relative to a solo run -- stays the full estimate.  The record is
        appended to :attr:`records`.
        """
        if marginal_scale <= 0:
            raise ValueError("marginal_scale must be positive")
        level = self.config.slos.level_for(task.spec)
        corrected = max(self.corrected_estimate(task), 1e-9)
        occupancy = corrected * marginal_scale
        waited = max(0.0, now - task.spec.arrival_cycles)
        predicted_turnaround = waited + backlog_cycles + occupancy
        slowdown = predicted_turnaround / corrected
        within_slo = slowdown <= level.slowdown_target
        if level.deadline_cycles is not None:
            within_slo = within_slo and (
                predicted_turnaround <= level.deadline_cycles
            )
        # Waiting only accumulates, so once the waited time *alone*
        # busts the target no future attempt can accept -- deferring
        # again would just delay the reject signal a frontend wants to
        # send fast.
        hopeless = (waited + occupancy) / corrected > level.slowdown_target
        if level.deadline_cycles is not None:
            hopeless = hopeless or (
                waited + occupancy > level.deadline_cycles
            )
        budget_ok = self._budget_allows(level, corrected)
        if within_slo and budget_ok:
            decision = AdmissionDecision.ACCEPT
        elif not hopeless and attempt < self.config.max_defers:
            decision = AdmissionDecision.DEFER
        else:
            decision = AdmissionDecision.REJECT
        record = AdmissionRecord(
            task_id=task.task_id,
            qos=level.qos.value,
            decision=decision,
            time_cycles=now,
            predicted_slowdown=slowdown,
            attempt=attempt,
            budget_limited=within_slo and not budget_ok,
        )
        self._records.append(record)
        return record

    def _budget_allows(self, level: ServiceLevel, corrected: float) -> bool:
        """May this class charge ``corrected`` more cycles right now?

        The budget is an isolation knob, not a quota: it only binds when
        admitting would crowd out *other* classes.  A class filling an
        otherwise-empty cluster is always allowed (work conservation),
        and nothing binds below the floor.
        """
        if level.admission_share >= 1.0:
            return True
        held_before = self._outstanding.get(level.qos.value, 0.0)
        others = sum(self._outstanding.values()) - held_before
        if others <= 0.0:
            return True  # nobody to starve
        total = held_before + others + corrected
        if total <= self.config.budget_floor_cycles:
            return True
        return held_before + corrected <= level.admission_share * total

    # ------------------------------------------------------------------
    # Lifecycle hooks (the cluster loop drives these)
    # ------------------------------------------------------------------
    def admit(self, task) -> None:
        """Charge an accepted task against its class budget.

        When feedback is attached, the corrected estimate is written into
        the scheduler-visible context row, so every downstream consumer
        -- predictive routing, migration candidate ranking, SJF/PREMA
        token thresholds -- runs on the learning-augmented number.  The
        raw estimate is stashed for the completion-time observation.
        """
        qos = qos_of(task.spec).value
        raw = task.context.estimated_cycles
        corrected = self.corrected_estimate(task)
        if self.feedback is not None:
            task.context.estimated_cycles = corrected
        self._outstanding[qos] = self._outstanding.get(qos, 0.0) + corrected
        self._charges[task.task_id] = (qos, corrected, raw)

    def _release_charge(self, task):
        """Pop and release a task's budget charge; returns it (or None).

        Unknown tasks are ignored (a cluster may complete tasks that were
        injected outside the controller, e.g. in admission-off baselines
        sharing a metrics pipeline).
        """
        charge = self._charges.pop(task.task_id, None)
        if charge is None:
            return None
        qos, corrected, _raw = charge
        remaining = self._outstanding.get(qos, 0.0) - corrected
        if remaining <= 1e-9:
            self._outstanding.pop(qos, None)
        else:
            self._outstanding[qos] = remaining
        return charge

    def on_complete(self, task) -> None:
        """Release the task's budget charge and feed the observation back."""
        charge = self._release_charge(task)
        if charge is None:
            return
        _qos, _corrected, raw = charge
        if self.feedback is not None:
            self.feedback.observe(task, predicted_cycles=raw)

    def on_lost(self, task) -> None:
        """Release the charge of a task destroyed by device failure.

        No feedback observation: the task never completed, so it has no
        turnaround to learn from -- feeding a failure-inflated (or
        truncated) sample into the EWMA would poison the corrector for
        every later task of the same model.
        """
        self._release_charge(task)
