"""SCNN-style sparsity-aware latency model + activation-density profiles.

Supports the paper's Sec V-B characterization item 3 and Fig 7: even on a
sparsity-optimized NPU, inference latency is predictable because (a)
weight sparsity is fixed after pruning and (b) per-layer *activation*
density varies little across inputs.

We model an SCNN-like accelerator analytically: effective work scales
with the product of weight and activation densities, divided over a PE
array with a multiplier-array utilization ceiling, plus a dense front-end
cost for the input layer.  Density profiles are seeded synthetic stand-ins
for the paper's ImageNet measurements (see DESIGN.md substitutions).
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence, Tuple

import numpy as np

from repro.isa.compiler import CompiledModel
from repro.models.layers import LayerKind


@dataclasses.dataclass(frozen=True)
class SCNNConfig:
    """SCNN-like accelerator parameters (Parashar et al., ISCA'17 scale)."""

    pe_rows: int = 8
    pe_cols: int = 8
    multipliers_per_pe: int = 16
    frequency_hz: float = 1e9
    #: Fraction of peak multiplier throughput reachable in practice
    #: (crossbar contention, halo overheads).
    efficiency: float = 0.6

    @property
    def macs_per_cycle(self) -> float:
        return self.pe_rows * self.pe_cols * self.multipliers_per_pe * self.efficiency


@dataclasses.dataclass(frozen=True)
class DensityProfile:
    """Per-layer activation densities across a set of inference inputs.

    ``densities[layer_index][input_index]`` is the fraction of non-zero
    output activations for that layer on that input.
    """

    model_name: str
    layer_names: Tuple[str, ...]
    densities: Tuple[Tuple[float, ...], ...]

    def __post_init__(self) -> None:
        if len(self.layer_names) != len(self.densities):
            raise ValueError("one density row per layer required")
        for row in self.densities:
            for value in row:
                if not 0.0 < value <= 1.0:
                    raise ValueError(f"density out of (0, 1]: {value}")

    @property
    def num_inputs(self) -> int:
        return len(self.densities[0]) if self.densities else 0

    def mean_density(self, layer_index: int) -> float:
        return float(np.mean(self.densities[layer_index]))

    def std_density(self, layer_index: int) -> float:
        return float(np.std(self.densities[layer_index]))

    def per_layer_stats(self) -> List[Tuple[str, float, float]]:
        """(layer, mean, std) rows -- the data behind Fig 7."""
        return [
            (name, self.mean_density(i), self.std_density(i))
            for i, name in enumerate(self.layer_names)
        ]


def synthesize_density_profile(
    model_name: str,
    layer_names: Sequence[str],
    num_inputs: int = 1000,
    seed: int = 7,
) -> DensityProfile:
    """Seeded synthetic stand-in for the paper's ImageNet profiling.

    ReLU activation density falls with depth (early layers fire broadly,
    deep layers specialize): mean density ramps ~0.9 down to ~0.35, with
    small per-input jitter (sigma ~3%), matching Fig 7's narrow bands.
    """
    if num_inputs <= 0:
        raise ValueError("num_inputs must be positive")
    if not layer_names:
        raise ValueError("layer_names must be non-empty")
    rng = np.random.default_rng(abs(hash((model_name, seed))) % (2**32))
    rows = []
    count = len(layer_names)
    for index in range(count):
        depth_frac = index / max(1, count - 1)
        mean = 0.90 - 0.55 * depth_frac
        jitter = rng.normal(loc=0.0, scale=0.03, size=num_inputs)
        row = np.clip(mean + jitter, 0.05, 1.0)
        rows.append(tuple(float(v) for v in row))
    return DensityProfile(
        model_name=model_name,
        layer_names=tuple(layer_names),
        densities=tuple(rows),
    )


@dataclasses.dataclass(frozen=True)
class SparseLatencyModel:
    """Analytical SCNN latency: work scales with density products."""

    config: SCNNConfig
    #: Fixed post-pruning weight density per model (deployment constant).
    weight_density: float = 0.35

    def __post_init__(self) -> None:
        if not 0.0 < self.weight_density <= 1.0:
            raise ValueError("weight_density must be in (0, 1]")

    def layer_cycles(self, macs: int, activation_density: float) -> float:
        """Cycles for one conv layer at the given activation density."""
        if macs < 0:
            raise ValueError("macs must be >= 0")
        if not 0.0 < activation_density <= 1.0:
            raise ValueError("activation_density must be in (0, 1]")
        effective = macs * self.weight_density * activation_density
        # Intersection/indexing overhead grows as density shrinks; model a
        # floor of 20% of dense-equivalent issue slots.
        overhead = 0.2 * macs / (
            self.config.pe_rows * self.config.pe_cols * self.config.multipliers_per_pe
        )
        return effective / self.config.macs_per_cycle + overhead

    def inference_seconds(
        self, model: CompiledModel, densities: Sequence[float]
    ) -> float:
        """End-to-end latency for one input's per-layer densities."""
        conv_layers = [
            layer for layer in model.layers if layer.kind == LayerKind.CONV
        ]
        if len(conv_layers) != len(densities):
            raise ValueError(
                "need one density per conv layer: "
                f"{len(conv_layers)} layers vs {len(densities)} densities"
            )
        cycles = sum(
            self.layer_cycles(layer.macs, density)
            for layer, density in zip(conv_layers, densities)
        )
        return cycles / self.config.frequency_hz

    def latency_variation(
        self, model: CompiledModel, profile: DensityProfile
    ) -> Tuple[float, float]:
        """(mean seconds, max relative deviation) across profiled inputs.

        The paper reports <=14% max deviation (average 6%) for pruned
        AlexNet/GoogLeNet/VGG on SCNN; tests assert our model stays in
        that predictability regime.
        """
        latencies = []
        for input_index in range(profile.num_inputs):
            densities = [row[input_index] for row in profile.densities]
            latencies.append(self.inference_seconds(model, densities))
        arr = np.asarray(latencies)
        mean = float(arr.mean())
        max_dev = float(np.max(np.abs(arr - mean)) / mean) if mean else 0.0
        return mean, max_dev
