#!/usr/bin/env python
"""Quickstart: simulate one multi-tasked workload under three schedulers.

Builds a random 8-task workload (the paper's Sec III methodology), runs it
under NP-FCFS (the TensorRT-server-style baseline), preemptive SJF, and
PREMA with dynamic mechanism selection, then prints the Eq 1-2 metrics and
a Fig 2-style timeline for each.

Run:  python examples/quickstart.py [seed]
"""

import sys

from repro import (
    NPUConfig,
    NPUSimulator,
    PreemptionMode,
    SimulationConfig,
    TaskFactory,
    WorkloadGenerator,
    compute_metrics,
    make_policy,
)

SCHEDULERS = (
    ("NP-FCFS", "FCFS", PreemptionMode.NP),
    ("P-SJF", "SJF", PreemptionMode.STATIC),
    ("PREMA", "PREMA", PreemptionMode.DYNAMIC),
)


def main(seed: int = 42) -> None:
    config = NPUConfig()
    factory = TaskFactory(config)
    workload = WorkloadGenerator(seed=seed).generate(num_tasks=8)

    print(f"Workload ({workload.name}):")
    for spec in workload.tasks:
        lengths = (
            f" in={spec.input_len} out={spec.actual_output_len}"
            if spec.is_rnn
            else ""
        )
        print(
            f"  T{spec.task_id}: {spec.benchmark:8s} b{spec.batch:02d} "
            f"{spec.priority.name.lower():6s} "
            f"arrives {config.cycles_to_ms(spec.arrival_cycles):6.2f} ms"
            f"{lengths}"
        )

    labels = {
        spec.task_id: f"{spec.benchmark}/{spec.priority.name[0]}"
        for spec in workload.tasks
    }
    for label, policy, mode in SCHEDULERS:
        simulator = NPUSimulator(
            SimulationConfig(npu=config, mode=mode), make_policy(policy)
        )
        tasks = factory.build_workload(workload)
        result = simulator.run(tasks)
        metrics = compute_metrics(result.tasks)
        print(f"\n=== {label} ===")
        print(
            f"  ANTT={metrics.antt:6.2f}  STP={metrics.stp:5.2f}  "
            f"fairness={metrics.fairness:6.3f}  "
            f"preemptions={result.preemption_count}  "
            f"drains={result.drain_decisions}  "
            f"makespan={config.cycles_to_ms(result.makespan_cycles):6.2f} ms"
        )
        print(result.timeline.render_ascii(width=72, label_by_task=labels))


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 42)
