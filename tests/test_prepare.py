"""TaskFactory: ground truth vs scheduler-visible estimates."""

import pytest

from repro.core.tokens import Priority
from repro.workloads.specs import TaskSpec


def cnn_spec(task_id=0, benchmark="CNN-AN", batch=1):
    return TaskSpec(task_id, benchmark, batch, Priority.MEDIUM, 0.0)


def rnn_spec(task_id=0, benchmark="RNN-MT1", input_len=20, output_len=25):
    return TaskSpec(task_id, benchmark, 1, Priority.MEDIUM, 0.0,
                    input_len=input_len, actual_output_len=output_len)


class TestGroundTruth:
    def test_profile_cache_hits(self, factory):
        first = factory.execution_profile("CNN-AN", 1)
        second = factory.execution_profile("CNN-AN", 1)
        assert first is second

    def test_rnn_requires_lengths(self, factory):
        with pytest.raises(ValueError):
            factory.execution_profile("RNN-MT1", 1)

    def test_isolated_cycles_positive(self, factory):
        assert factory.isolated_cycles(cnn_spec()) > 0


class TestEstimates:
    def test_cnn_estimate_close_to_truth(self, factory):
        # Sec VI-D regime: the architecture-aware model lands within a few
        # percent for static-topology networks.
        spec = cnn_spec(benchmark="CNN-VN")
        estimated = factory.estimated_cycles(spec)
        actual = factory.isolated_cycles(spec)
        assert abs(estimated - actual) / actual < 0.10

    def test_rnn_estimate_uses_predicted_length(self, factory):
        # The estimate is computed at the regressor's predicted output
        # length, not the actual one, so two tasks with the same input but
        # different true outputs share one estimate.
        a = factory.estimated_cycles(rnn_spec(output_len=20))
        b = factory.estimated_cycles(rnn_spec(output_len=30))
        assert a == b

    def test_actual_lengths_change_ground_truth(self, factory):
        a = factory.isolated_cycles(rnn_spec(output_len=20))
        b = factory.isolated_cycles(rnn_spec(output_len=30))
        assert b > a

    def test_rnn_sa_predicts_identity(self, factory):
        assert factory.predicted_output_len("RNN-SA", 17) == 17

    def test_mt_prediction_in_profile_range(self, factory):
        predicted = factory.predicted_output_len("RNN-MT1", 20)
        outs = factory.profiles["RNN-MT1"].outputs_for(20)
        assert min(outs) <= predicted <= max(outs)


class TestBuildTask:
    def test_context_populated(self, factory):
        task = factory.build_task(cnn_spec())
        assert task.context.task_id == 0
        assert task.context.benchmark == "CNN-AN"
        assert task.context.estimated_cycles > 0
        assert task.context.tokens == 3.0  # medium priority

    def test_oracle_estimate_is_exact(self, factory):
        spec = rnn_spec()
        task = factory.build_task(spec, oracle=True)
        assert task.context.estimated_cycles == task.profile.total_cycles

    def test_build_workload_fresh_runtimes(self, factory):
        from repro.workloads.generator import WorkloadGenerator

        workload = WorkloadGenerator(seed=2).generate(num_tasks=4)
        first = factory.build_workload(workload)
        second = factory.build_workload(workload)
        assert all(a is not b for a, b in zip(first, second))
        # ... but they share the cached immutable profiles.
        assert all(a.profile is b.profile for a, b in zip(first, second))

    def test_prediction_pairs_shape(self, factory):
        specs = [cnn_spec(0), rnn_spec(1)]
        pairs = factory.prediction_pairs(specs)
        assert len(pairs) == 2
        assert all(e > 0 and a > 0 for e, a in pairs)
