"""Regenerates paper Fig 15: PREMA sensitivity to CHECKPOINT vs KILL."""

from repro.analysis.experiments.fig15_kill_vs_checkpoint import (
    checkpoint_advantage,
    format_fig15,
    run_fig15,
)


def test_fig15_kill_vs_checkpoint(benchmark, config, factory, workloads, emit):
    rows = benchmark.pedantic(
        run_fig15,
        kwargs=dict(workloads=workloads, config=config, factory=factory),
        rounds=1,
        iterations=1,
    )
    emit("fig15_kill_vs_checkpoint", format_fig15(rows))
    advantage = checkpoint_advantage(rows)
    # Sec VI-E: CHECKPOINT is the robust default -- it never trails KILL
    # on STP (wasted work) and holds its own on ANTT.
    assert advantage["stp"] >= 1.0
    assert advantage["antt"] > 0.8
