"""Fig 13: SLA violation rate vs SLA target for nine policies.

The SLA target is (Time_isolated x N) with N swept from 2 to 20
(Sec VI-C).  The nine policies are NP-{FCFS,HPF,PREMA},
Static-{HPF,SJF,PREMA} (CHECKPOINT) and Dynamic-{HPF,SJF,PREMA}.
The violation rate covers *all* inference requests across the ensemble.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

from repro.analysis.reporting import format_table
from repro.analysis.runner import FIG13_SETUPS, run_ensemble
from repro.npu.config import NPUConfig
from repro.sched.metrics import sla_violation_rate
from repro.sched.prepare import TaskFactory
from repro.workloads.specs import WorkloadSpec

DEFAULT_TARGETS = tuple(range(2, 21, 2))


@dataclasses.dataclass(frozen=True)
class SlaCurve:
    """One policy's violation-rate curve over the SLA target sweep."""

    label: str
    targets: Tuple[int, ...]
    violation_rates: Tuple[float, ...]

    def rate_at(self, target: int) -> float:
        return self.violation_rates[self.targets.index(target)]


def run_fig13(
    workloads: Sequence[WorkloadSpec],
    config: Optional[NPUConfig] = None,
    factory: Optional[TaskFactory] = None,
    targets: Sequence[int] = DEFAULT_TARGETS,
) -> List[SlaCurve]:
    config = config or NPUConfig()
    factory = factory or TaskFactory(config)
    outcomes = run_ensemble(FIG13_SETUPS, workloads, factory=factory, npu=config)
    curves: List[SlaCurve] = []
    for setup in FIG13_SETUPS:
        tasks = outcomes[setup.label].all_tasks()
        rates = tuple(
            sla_violation_rate(tasks, float(target)) for target in targets
        )
        curves.append(
            SlaCurve(
                label=setup.label,
                targets=tuple(targets),
                violation_rates=rates,
            )
        )
    return curves


def format_fig13(curves: Sequence[SlaCurve]) -> str:
    if not curves:
        raise ValueError("no curves to format")
    headers = ["policy"] + [f"N={t}" for t in curves[0].targets]
    rows = [
        [curve.label] + [f"{rate:.1%}" for rate in curve.violation_rates]
        for curve in curves
    ]
    return format_table(headers, rows, title="Fig 13: SLA violation rate")
