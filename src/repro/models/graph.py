"""DNN computation graph: a DAG of layers (Sec II-A).

Inter-layer dependencies are extracted at compile time and encapsulated as
a directed acyclic graph; inference executes nodes in topological order.
The graph is shape-checked eagerly at construction so zoo builders fail
fast on dimension bugs.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.models.layers import InputSpec, Layer, LayerKind


def balanced_partition(
    weights: Sequence[float], num_stages: int
) -> Tuple[Tuple[int, int], ...]:
    """Cut a weight sequence into contiguous stages of near-equal mass.

    Returns ``num_stages`` half-open ``(start, end)`` index ranges that
    cover the sequence in order, each non-empty.  Cuts greedily track the
    ideal equal-mass boundaries, so a pipeline-parallel partition lands
    each stage within one item's weight of perfect balance -- good enough
    for stage graphs, where the item granularity (a whole layer) dominates
    any residual imbalance a DP-optimal cut could recover.
    """
    masses = [float(w) for w in weights]
    count = len(masses)
    if num_stages <= 0:
        raise ValueError("num_stages must be positive")
    if num_stages > count:
        raise ValueError(
            f"cannot cut {count} items into {num_stages} non-empty stages"
        )
    if any(mass < 0 for mass in masses):
        raise ValueError("weights must be non-negative")
    total = sum(masses)
    if total <= 0:
        # Degenerate mass: fall back to an even split by item count.
        masses = [1.0] * count
        total = float(count)
    cuts = [0]
    prefix = 0.0
    index = 0
    for stage in range(1, num_stages):
        target = total * stage / num_stages
        lowest = cuts[-1] + 1  # this stage keeps at least one item
        highest = count - (num_stages - stage)  # one item per later stage
        while index < lowest:
            prefix += masses[index]
            index += 1
        # Ties advance (<=): a zero-mass item never improves the distance
        # to target, but leaving it behind would pin the cut in front of
        # every zero-weight layer (pooling, softmax) for no benefit.
        while index < highest and (
            abs(prefix + masses[index] - target) <= abs(prefix - target)
        ):
            prefix += masses[index]
            index += 1
        cuts.append(index)
    cuts.append(count)
    return tuple((cuts[i], cuts[i + 1]) for i in range(num_stages))


@dataclasses.dataclass(frozen=True)
class Node:
    """A layer instance bound into a graph with resolved shapes."""

    index: int
    layer: Layer
    input_names: Sequence[str]
    input_specs: Sequence[InputSpec]
    output_spec: InputSpec

    @property
    def name(self) -> str:
        return self.layer.name

    @property
    def kind(self) -> LayerKind:
        return self.layer.kind


class Graph:
    """A shape-checked DAG of layers.

    Nodes are appended in topological order (builders construct networks
    front-to-back); ``add`` validates that every referenced input already
    exists, which structurally guarantees acyclicity.
    """

    def __init__(self, name: str, input_spec: InputSpec) -> None:
        if not name:
            raise ValueError("graph name must be non-empty")
        self.name = name
        self.input_spec = input_spec
        self._nodes: List[Node] = []
        self._by_name: Dict[str, Node] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    INPUT = "__input__"

    def add(self, layer: Layer, inputs: Optional[Sequence[str]] = None) -> Node:
        """Append ``layer``, wired to ``inputs`` (default: previous node).

        ``inputs`` entries name earlier nodes, or :data:`Graph.INPUT` for
        the graph input.  Returns the bound node.
        """
        if layer.name in self._by_name:
            raise ValueError(f"duplicate layer name: {layer.name}")
        if inputs is None:
            inputs = [self._nodes[-1].name] if self._nodes else [self.INPUT]
        if not inputs:
            raise ValueError(f"{layer.name}: needs at least one input")
        specs = [self._resolve_spec(name, layer.name) for name in inputs]
        out = layer.infer_shape(list(specs))
        node = Node(
            index=len(self._nodes),
            layer=layer,
            input_names=tuple(inputs),
            input_specs=tuple(specs),
            output_spec=out,
        )
        self._nodes.append(node)
        self._by_name[layer.name] = node
        return node

    def _resolve_spec(self, name: str, consumer: str) -> InputSpec:
        if name == self.INPUT:
            return self.input_spec
        node = self._by_name.get(name)
        if node is None:
            raise KeyError(
                f"{consumer}: input '{name}' does not name an earlier node"
            )
        return node.output_spec

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._nodes)

    def __getitem__(self, name: str) -> Node:
        return self._by_name[name]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    @property
    def nodes(self) -> Sequence[Node]:
        return tuple(self._nodes)

    @property
    def output_spec(self) -> InputSpec:
        if not self._nodes:
            return self.input_spec
        return self._nodes[-1].output_spec

    def nodes_of_kind(self, kind: LayerKind) -> List[Node]:
        return [n for n in self._nodes if n.kind == kind]

    def total_weight_elems(self) -> int:
        return sum(n.layer.weight_elems(list(n.input_specs)) for n in self._nodes)

    def total_macs(self, batch: int) -> int:
        if batch <= 0:
            raise ValueError("batch must be positive")
        return sum(n.layer.macs(list(n.input_specs), batch) for n in self._nodes)

    def consumers(self, name: str) -> List[Node]:
        """Nodes that read the named node's output (graph analysis helper)."""
        return [n for n in self._nodes if name in n.input_names]

    def partition(
        self, num_stages: int, batch: int = 1
    ) -> Tuple[Tuple[int, int], ...]:
        """Cut the graph into ``num_stages`` contiguous pipeline stages.

        Stages are balanced by per-node MAC mass (the dominant cost on a
        systolic NPU); vector-only nodes carry zero mass and ride with
        whichever neighbor the cut assigns them to.  Returns half-open
        ``(start, end)`` node-index ranges, in topological order --
        contiguity is what makes a stage a valid pipeline segment, since
        nodes only ever read earlier nodes' outputs.
        """
        if not self._nodes:
            raise ValueError("cannot partition an empty graph")
        weights = [
            node.layer.macs(list(node.input_specs), batch)
            for node in self._nodes
        ]
        return balanced_partition(weights, num_stages)

    def validate(self) -> None:
        """Re-run shape inference over the whole graph (defensive check)."""
        for node in self._nodes:
            inferred = node.layer.infer_shape(list(node.input_specs))
            if inferred != node.output_spec:
                raise AssertionError(
                    f"{node.name}: cached output spec {node.output_spec} "
                    f"!= inferred {inferred}"
                )

    def summary(self) -> str:
        """Human-readable per-node listing (examples/debugging)."""
        lines = [f"{self.name} (input {self.input_spec})"]
        for node in self._nodes:
            spec = node.output_spec
            lines.append(
                f"  [{node.index:3d}] {node.kind.value:8s} {node.name:28s} "
                f"-> {spec.channels}x{spec.height}x{spec.width}"
            )
        return "\n".join(lines)
