"""Timeline recording and rendering."""

import pytest

from repro.sched.timeline import Segment, SegmentKind, Timeline


class TestSegment:
    def test_duration(self):
        segment = Segment(0, SegmentKind.RUN, 10.0, 30.0)
        assert segment.duration_cycles == 20.0

    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            Segment(0, SegmentKind.RUN, 30.0, 10.0)


class TestTimeline:
    def test_zero_length_segments_kept_as_instants(self):
        # Zero-duration records used to vanish entirely; they now land
        # on the instants side list, leaving segments (and every golden
        # digest over them) untouched.
        timeline = Timeline()
        timeline.record(0, SegmentKind.RUN, 5.0, 5.0)
        assert len(timeline) == 0
        assert timeline.segments == ()
        assert len(timeline.instants) == 1
        instant = timeline.instants[0]
        assert instant.task_id == 0
        assert instant.kind is SegmentKind.RUN
        assert instant.start_cycles == instant.end_cycles == 5.0
        assert timeline.busy_cycles() == 0.0

    def test_instants_do_not_mix_with_segments(self):
        timeline = Timeline()
        timeline.record(0, SegmentKind.RESTORE, 1.0, 1.0)
        timeline.record(0, SegmentKind.RUN, 1.0, 3.0)
        assert len(timeline) == 1
        assert [s.kind for s in timeline.instants] == [SegmentKind.RESTORE]

    def test_busy_cycles(self):
        timeline = Timeline()
        timeline.record(0, SegmentKind.RUN, 0.0, 10.0)
        timeline.record(1, SegmentKind.CHECKPOINT, 10.0, 12.0)
        assert timeline.busy_cycles() == 12.0

    def test_run_cycles_by_task_excludes_overhead(self):
        timeline = Timeline()
        timeline.record(0, SegmentKind.RUN, 0.0, 10.0)
        timeline.record(0, SegmentKind.CHECKPOINT, 10.0, 12.0)
        timeline.record(0, SegmentKind.RUN, 20.0, 25.0)
        assert timeline.run_cycles_by_task() == {0: 15.0}

    def test_overlap_detection(self):
        timeline = Timeline()
        timeline.record(0, SegmentKind.RUN, 0.0, 10.0)
        timeline.record(1, SegmentKind.RUN, 5.0, 15.0)
        with pytest.raises(AssertionError):
            timeline.verify_no_overlap()

    def test_no_overlap_passes(self):
        timeline = Timeline()
        timeline.record(0, SegmentKind.RUN, 0.0, 10.0)
        timeline.record(1, SegmentKind.RUN, 10.0, 15.0)
        timeline.verify_no_overlap()

    def test_render_ascii_contains_tasks(self):
        timeline = Timeline()
        timeline.record(0, SegmentKind.RUN, 0.0, 50.0)
        timeline.record(1, SegmentKind.RUN, 50.0, 100.0)
        art = timeline.render_ascii(width=40)
        assert "T0" in art and "T1" in art
        assert "#" in art

    def test_render_empty(self):
        assert "empty" in Timeline().render_ascii()

    def test_render_with_labels(self):
        timeline = Timeline()
        timeline.record(0, SegmentKind.RUN, 0.0, 10.0)
        art = timeline.render_ascii(width=20, label_by_task={0: "VGG(low)"})
        assert "VGG(low)" in art
