"""Rack-scale fleets: two-tier routing over an oversubscribed fabric.

Two sweeps over the rack composition layer (``repro.sched.rack``):

1. **Cost** (`run_rack_scaling`): per-event cluster-loop cost as the
   fleet grows from hundreds to >1k devices composed into racks, at
   fixed per-device load.  The two-tier frontend (rack pick by
   aggregate corrected backlog, then in-rack device pick) costs
   O(log r + log d_rack) per event, so per-event cost should stay flat
   as racks are added -- the rack-scale analog of the
   `run_control_plane_scaling` story.
2. **Traffic** (`run_rack_traffic`): cross-rack migration bytes and
   uplink occupancy under preemptive checkpoint migration as the
   uplink oversubscription ratio grows.  The locality threshold
   defaults to the uncontended cross-rack cost of one context row, so
   a thinner fabric raises the bar for leaving the rack -- and what
   traffic still crosses keeps the uplink busy for longer (the cost
   cliff shows up as rising uplink occupancy, not falling migration
   counts, at these payload sizes).
"""

from __future__ import annotations

import dataclasses
import time
from typing import List, Sequence, Tuple

from repro.npu.config import NPUConfig
from repro.sched.cluster import (
    ClusterConfig,
    ClusterScheduler,
    RoutingPolicy,
)
from repro.sched.interconnect import InterconnectConfig
from repro.sched.metrics import compute_cluster_metrics
from repro.sched.rack import RackTopology
from repro.sched.simulator import PreemptionMode, SimulationConfig
from repro.workloads.trace import (
    DEFAULT_MEAN_INTERARRIVAL_CYCLES,
    synthetic_trace_runtimes,
)

from repro.analysis.reporting import format_table

#: Fleet shapes for the cost sweep, as (racks, devices_per_rack):
#: 256 devices in two compositions, then the >1k-device tier, then the
#: wide-rack headline (4 racks x 256 devices).
DEFAULT_SHAPES = ((8, 32), (16, 32), (32, 32), (4, 256))


def _simulation_config(config: NPUConfig) -> SimulationConfig:
    return SimulationConfig(
        npu=config,
        mode=PreemptionMode.DYNAMIC,
        mechanism="CHECKPOINT",
    )


@dataclasses.dataclass(frozen=True)
class RackScalingRow:
    """One fleet-shape measurement of the two-tier control plane."""

    num_racks: int
    devices_per_rack: int
    num_devices: int
    routing: str
    tasks: int
    events: int
    seconds: float
    us_per_event: float
    tasks_per_sec: float


def run_rack_scaling(
    shapes: Sequence[Tuple[int, int]] = DEFAULT_SHAPES,
    tasks_per_device: int = 8,
    routing: RoutingPolicy = RoutingPolicy.WORK_STEALING,
    oversubscription: float = 4.0,
    seed: int = 31,
) -> List[RackScalingRow]:
    """Per-event cost of the rack-composed cluster loop per fleet shape.

    Fixed per-device load (the arrival rate scales with the fleet), so
    any growth in per-event cost across shapes is two-tier control-plane
    overhead: the rack frontend's running sums, the per-rack device
    heaps, and the locality-gated steal scans.
    """
    config = NPUConfig()
    fabric = InterconnectConfig.pcie_gen3(
        config.frequency_hz
    ).oversubscribed(oversubscription)
    rows: List[RackScalingRow] = []
    for num_racks, devices_per_rack in shapes:
        topology = RackTopology.uniform(num_racks, devices_per_rack)
        num_devices = topology.num_devices
        num_tasks = num_devices * tasks_per_device
        runtimes = synthetic_trace_runtimes(
            num_tasks,
            seed=seed,
            mean_interarrival_cycles=(
                DEFAULT_MEAN_INTERARRIVAL_CYCLES / num_devices
            ),
        )
        scheduler = ClusterScheduler(
            num_devices=num_devices,
            simulation_config=_simulation_config(config),
            config=ClusterConfig(
                policy_name="PREMA",
                routing=routing,
                seed=seed,
                interconnect=fabric,
                racks=topology,
            ),
        )
        start = time.perf_counter()
        result = scheduler.run(runtimes)
        seconds = time.perf_counter() - start
        rows.append(
            RackScalingRow(
                num_racks=num_racks,
                devices_per_rack=devices_per_rack,
                num_devices=num_devices,
                routing=routing.value,
                tasks=num_tasks,
                events=result.events_processed,
                seconds=seconds,
                us_per_event=1e6 * seconds / result.events_processed,
                tasks_per_sec=num_tasks / seconds,
            )
        )
    return rows


@dataclasses.dataclass(frozen=True)
class RackTrafficRow:
    """One oversubscription-ratio measurement of cross-rack traffic."""

    num_racks: int
    devices_per_rack: int
    oversubscription: float
    routing: str
    migrations: int
    cross_rack_migration_bytes: float
    mean_uplink_utilization: float
    antt: float


def run_rack_traffic(
    num_racks: int = 2,
    devices_per_rack: int = 4,
    ratios: Sequence[float] = (1.0, 4.0, 16.0),
    tasks_per_device: int = 12,
    routing: RoutingPolicy = RoutingPolicy.PREEMPTIVE_MIGRATION,
    seed: int = 53,
) -> List[RackTrafficRow]:
    """Cross-rack bytes and uplink occupancy vs the uplink thinness.

    The locality threshold is derived from the fabric (the uncontended
    cross-rack cost of one context row); what still crosses a thinner
    uplink occupies it proportionally longer.
    """
    config = NPUConfig()
    topology = RackTopology.uniform(num_racks, devices_per_rack)
    num_devices = topology.num_devices
    num_tasks = num_devices * tasks_per_device
    rows: List[RackTrafficRow] = []
    for ratio in ratios:
        runtimes = synthetic_trace_runtimes(
            num_tasks,
            seed=seed,
            estimate_error=0.3,
            mean_interarrival_cycles=(
                DEFAULT_MEAN_INTERARRIVAL_CYCLES / num_devices
            ),
        )
        fabric = InterconnectConfig.pcie_gen3(
            config.frequency_hz
        ).oversubscribed(ratio)
        scheduler = ClusterScheduler(
            num_devices=num_devices,
            simulation_config=_simulation_config(config),
            config=ClusterConfig(
                policy_name="PREMA",
                routing=routing,
                seed=seed,
                interconnect=fabric,
                racks=topology,
            ),
        )
        result = scheduler.run(runtimes)
        metrics = compute_cluster_metrics(result)
        rows.append(
            RackTrafficRow(
                num_racks=num_racks,
                devices_per_rack=devices_per_rack,
                oversubscription=ratio,
                routing=routing.value,
                migrations=metrics.migration_count,
                cross_rack_migration_bytes=(
                    metrics.cross_rack_migration_bytes
                ),
                mean_uplink_utilization=metrics.mean_uplink_utilization,
                antt=metrics.antt,
            )
        )
    return rows


def format_rack_scaling(rows: Sequence[RackScalingRow]) -> str:
    return format_table(
        ("racks", "per_rack", "devices", "routing", "tasks", "events",
         "us_per_event", "tasks_per_sec"),
        [
            (r.num_racks, r.devices_per_rack, r.num_devices, r.routing,
             r.tasks, r.events, r.us_per_event, r.tasks_per_sec)
            for r in rows
        ],
        title=(
            "Rack-scale control plane: per-event cost vs fleet shape "
            "(two-tier O(log r) frontend)"
        ),
    )


def format_rack_traffic(rows: Sequence[RackTrafficRow]) -> str:
    return format_table(
        ("racks", "per_rack", "oversub", "routing", "migrations",
         "cross_rack_bytes", "uplink_util", "ANTT"),
        [
            (r.num_racks, r.devices_per_rack, r.oversubscription,
             r.routing, r.migrations, r.cross_rack_migration_bytes,
             r.mean_uplink_utilization, r.antt)
            for r in rows
        ],
        title=(
            "Oversubscribed fabric: cross-rack traffic vs uplink "
            "thinness (locality threshold derived from the fabric)"
        ),
    )
