"""Ablation benches: predictor-noise and trap-cost sweeps (DESIGN.md)."""

from repro.analysis.experiments.ablations import (
    format_noise_ablation,
    format_trap_ablation,
    run_noise_ablation,
    run_trap_ablation,
)


def test_noise_ablation(benchmark, config, factory, emit):
    rows = benchmark.pedantic(
        run_noise_ablation,
        kwargs=dict(config=config, factory=factory, num_workloads=8),
        rounds=1,
        iterations=1,
    )
    emit("ablation_noise", format_noise_ablation(rows))
    # Sec VI-D's thesis quantified: PREMA needs only *relative* accuracy,
    # so it degrades gracefully as the estimate gets noisy.
    assert rows[0].antt_vs_fcfs > 2.0
    assert rows[-1].antt_vs_fcfs > 0.9
    assert rows[0].antt <= min(row.antt for row in rows) * 1.15


def test_trap_ablation(benchmark, emit):
    rows = benchmark.pedantic(
        run_trap_ablation,
        kwargs=dict(num_workloads=6),
        rounds=1,
        iterations=1,
    )
    emit("ablation_trap", format_trap_ablation(rows))
    # Preemption pays off across the realistic trap-cost range (us-scale);
    # only ms-scale traps erode the advantage.
    assert rows[0].antt_vs_fcfs > 1.5
    assert rows[-1].antt_vs_fcfs <= rows[0].antt_vs_fcfs
