"""Regenerates paper Fig 1: co-location throughput/latency trade-off."""

from repro.analysis.experiments.fig01_colocation import (
    format_fig01,
    improvement_summary,
    run_fig01,
)


def test_fig01_colocation(benchmark, config, factory, emit):
    results = benchmark.pedantic(
        run_fig01,
        kwargs=dict(config=config, num_requests=40, factory=factory),
        rounds=1,
        iterations=1,
    )
    emit("fig01_colocation", format_fig01(results))
    summary = improvement_summary(results)
    assert summary["throughput_gain"] > 1.0
    assert summary["latency_degradation"] > 1.0
