"""Online prediction correction from observed completions.

Algorithm 1's estimates carry a small systematic error (vector-layer
blindness, partial-tile savings), and trace-driven serving adds its own:
the estimate attached to a request can be biased per model.  PCS-style
admission is only as reliable as those estimates, and "Learning-Augmented
Online Scheduling with Parsimonious Preemption" shows noisy predictions
are still useful *if corrected online*.  This module is that correction
layer: a per-model EWMA of the **multiplicative** estimate error

    r = C_single_observed / Time_estimated

learned from every completion the cluster observes.  A corrected
estimate is simply ``factor * estimate``; before any completion of a
model has been observed the factor falls back to the global EWMA, and
before *any* completion at all it is exactly 1.0 (neutral -- the
uncorrected Algorithm-1 behavior).

The layer also tracks its own accuracy: each observation first scores
the *pre-observation* corrected estimate against the observed truth
(absolute percentage error), so :meth:`PredictionFeedback.mape` shows
whether correction converges as completions accrue -- the
``admission_control`` experiment's learning curve.

:class:`~repro.core.predictor.OraclePredictor` shares the same
``observe(task)`` surface, so experiment code can swap the EWMA learner
for the oracle without touching call sites.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple


@dataclasses.dataclass(frozen=True)
class ErrorObservation:
    """One completion's scoring of the predictor (pre-update)."""

    key: str
    predicted_cycles: float
    corrected_cycles: float
    actual_cycles: float

    @property
    def raw_ape(self) -> float:
        """Absolute percentage error of the uncorrected estimate."""
        return abs(self.predicted_cycles - self.actual_cycles) / self.actual_cycles

    @property
    def corrected_ape(self) -> float:
        """Absolute percentage error of the corrected estimate."""
        return abs(self.corrected_cycles - self.actual_cycles) / self.actual_cycles


class PredictionFeedback:
    """Per-model multiplicative error EWMA, learned online.

    ``alpha`` is the EWMA weight of the newest observation; higher adapts
    faster but is noisier.  Keys are benchmark names by default (each
    model has its own bias structure); any string key works.
    """

    def __init__(self, alpha: float = 0.25) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self._factors: Dict[str, float] = {}
        self._global_factor: Optional[float] = None
        self._history: List[ErrorObservation] = []

    # ------------------------------------------------------------------
    # Reading corrections
    # ------------------------------------------------------------------
    @property
    def observations(self) -> int:
        return len(self._history)

    @property
    def history(self) -> Tuple[ErrorObservation, ...]:
        return tuple(self._history)

    def correction(self, key: str) -> float:
        """Multiplicative factor for ``key`` (1.0 before any completion)."""
        factor = self._factors.get(key)
        if factor is not None:
            return factor
        if self._global_factor is not None:
            return self._global_factor
        return 1.0

    def correct(self, key: str, estimated_cycles: float) -> float:
        """Corrected estimate: ``correction(key) * estimated_cycles``."""
        if estimated_cycles < 0:
            raise ValueError("estimated_cycles must be >= 0")
        return self.correction(key) * estimated_cycles

    # ------------------------------------------------------------------
    # Learning
    # ------------------------------------------------------------------
    def record(
        self, key: str, predicted_cycles: float, actual_cycles: float
    ) -> ErrorObservation:
        """Fold one (prediction, observation) pair into the EWMA.

        Scores the pre-update corrected estimate first, so the returned
        observation (and :meth:`mape`) measures the factor that was
        actually *used* for this request, not the factor it produced.
        """
        if predicted_cycles <= 0 or actual_cycles <= 0:
            raise ValueError("predicted and actual cycles must be positive")
        observation = ErrorObservation(
            key=key,
            predicted_cycles=predicted_cycles,
            corrected_cycles=self.correct(key, predicted_cycles),
            actual_cycles=actual_cycles,
        )
        self._history.append(observation)
        ratio = actual_cycles / predicted_cycles
        previous = self._factors.get(key)
        if previous is None:
            # First sighting of this model: seed from the global factor
            # (or the raw ratio) instead of decaying from 1.0 -- one
            # observation of a strongly biased model should move it most
            # of the way.
            seed = self._global_factor if self._global_factor is not None else ratio
            self._factors[key] = (1.0 - self.alpha) * seed + self.alpha * ratio
        else:
            self._factors[key] = (1.0 - self.alpha) * previous + self.alpha * ratio
        if self._global_factor is None:
            self._global_factor = ratio
        else:
            self._global_factor = (
                (1.0 - self.alpha) * self._global_factor + self.alpha * ratio
            )
        return observation

    def observe(self, task, predicted_cycles: Optional[float] = None) -> None:
        """Learn from a completed task (the shared observe() surface).

        ``predicted_cycles`` overrides the scheduler-visible estimate --
        the admission controller passes the *raw* Algorithm-1 estimate it
        stashed before overwriting the context with the corrected one.
        The observed truth is the task's ground-truth isolated time,
        which a real serving system measures from executed cycles.
        """
        if not task.is_done:
            raise ValueError(f"task {task.task_id} has not completed")
        predicted = (
            task.context.estimated_cycles
            if predicted_cycles is None
            else predicted_cycles
        )
        self.record(task.spec.benchmark, predicted, task.isolated_cycles)

    # ------------------------------------------------------------------
    # Accuracy reporting
    # ------------------------------------------------------------------
    def mape(
        self, first: Optional[int] = None, last: Optional[int] = None
    ) -> float:
        """Mean absolute percentage error of the corrected estimates.

        ``first=n`` restricts to the first n observations, ``last=n`` to
        the most recent n -- comparing the two shows whether online
        correction is converging.  Raises when the window is empty.
        """
        window: Sequence[ErrorObservation] = self._history
        if first is not None:
            window = window[:first]
        if last is not None:
            window = window[len(window) - last:] if last <= len(window) else window
        if not window:
            raise ValueError("no observations in the requested window")
        return sum(o.corrected_ape for o in window) / len(window)

    def raw_mape(self) -> float:
        """MAPE of the uncorrected estimates over every observation."""
        if not self._history:
            raise ValueError("no observations recorded")
        return sum(o.raw_ape for o in self._history) / len(self._history)
