"""Regenerates paper Fig 14: high-priority 95%-ile tail latency."""

from repro.analysis.experiments.fig14_tail_latency import (
    average_slowdowns,
    format_fig14,
    run_fig14,
)


def test_fig14_tail_latency(benchmark, config, factory, workloads, emit):
    rows = benchmark.pedantic(
        run_fig14,
        kwargs=dict(workloads=workloads, config=config, factory=factory),
        rounds=1,
        iterations=1,
    )
    emit("fig14_tail_latency", format_fig14(rows))
    slowdowns = average_slowdowns(rows)
    # Paper: NP-FCFS inflates the high-priority tail by ~21x on average;
    # PREMA stays within ~1.4x of isolated; P-SJF sits between.
    assert slowdowns["NP-FCFS"] > 3.0
    assert slowdowns["PREMA"] < slowdowns["NP-FCFS"]
    assert slowdowns["PREMA"] < 3.0
