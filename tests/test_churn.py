"""Device churn (repro.sched.faults): schedules, failure, recovery.

Four layers of coverage:

1. *Model units*: ChurnEvent/ChurnSchedule validation, seeded
   generation from the named churn RNG stream, and the
   FleetAvailability state machine.
2. *Mechanism units*: ``Interconnect.cancel_transfers_to`` (freed link
   time, conservation after cancellation) and the DeviceSim failure
   surface (``fail``, ``preview_checkpoint``, ``force_checkpoint``).
3. *Determinism contracts*: an empty schedule is bit-for-bit churn
   disabled across every routing, and generating a schedule never
   perturbs the arrival/runtime streams (the bit-identical-trace
   regression).
4. *Conservation property*: across seeded random churn schedules x all
   seven routings x both recovery modes, no task is ever silently lost
   -- offered == completed + rejected + lost-and-reaccounted, exactly.
"""

import copy
import math
import random

import pytest

from repro.npu.config import NPUConfig
from repro.sched.cluster import (
    ClusterConfig,
    ClusterScheduler,
    RoutingPolicy,
)
from repro.sched.faults import (
    CHURN_STREAM_SALT,
    ChurnEvent,
    ChurnSchedule,
    DeviceAvailability,
    FleetAvailability,
)
from repro.sched.interconnect import Interconnect, InterconnectConfig
from repro.sched.metrics import compute_cluster_metrics
from repro.sched.policies import make_policy
from repro.sched.simulator import (
    DeviceSim,
    PreemptionMode,
    SimulationConfig,
)
from repro.serving import AdmissionController, PredictionFeedback
from repro.workloads.specs import TaskSpec
from repro.workloads.trace import (
    DEFAULT_MEAN_INTERARRIVAL_CYCLES,
    synthetic_runtime,
    synthetic_trace_runtimes,
)
from repro.core.tokens import Priority

_CONFIG = NPUConfig()


def make_task(task_id, arrival, cycles, priority=Priority.MEDIUM):
    spec = TaskSpec(
        task_id=task_id, benchmark=f"syn{task_id}", batch=1,
        priority=priority, arrival_cycles=arrival,
    )
    return synthetic_runtime(spec, cycles)


def make_device(policy="HPF", device_id=0):
    return DeviceSim(
        SimulationConfig(
            npu=_CONFIG, mode=PreemptionMode.STATIC, mechanism="CHECKPOINT"
        ),
        make_policy(policy),
        device_id=device_id,
    )


def hog_trace(num_tasks=50, seed=5, num_devices=4):
    return synthetic_trace_runtimes(
        num_tasks,
        seed=seed,
        mean_interarrival_cycles=(
            DEFAULT_MEAN_INTERARRIVAL_CYCLES / num_devices
        ),
        estimate_error=0.5,
    )


def run_cluster(
    trace,
    routing=RoutingPolicy.ONLINE_PREDICTED,
    num_devices=4,
    churn=None,
    proactive=True,
    admission=None,
):
    scheduler = ClusterScheduler(
        num_devices,
        SimulationConfig(npu=_CONFIG, mode=PreemptionMode.DYNAMIC),
        config=ClusterConfig(
            policy_name="PREMA",
            routing=routing,
            churn=churn,
            proactive_migration=proactive,
            admission=admission,
        ),
    )
    return scheduler.run([copy.deepcopy(task) for task in trace])


def signature(result):
    """Bit-for-bit behavioral fingerprint of a cluster run."""
    return tuple(
        (
            task.task_id,
            task.completion_time,
            task.context.tokens,
            task.context.waited_cycles,
            result.assignments.get(task.task_id),
        )
        for task in result.tasks
    )


# ----------------------------------------------------------------------
# 1. Model units
# ----------------------------------------------------------------------
class TestChurnEvent:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            ChurnEvent(0, "meteor", 0.0, 1.0, 2.0)

    def test_rejects_negative_device(self):
        with pytest.raises(ValueError):
            ChurnEvent(-1, "fault", 1.0, 1.0, 2.0)

    def test_rejects_warning_after_outage(self):
        with pytest.raises(ValueError):
            ChurnEvent(0, "revocation", 5.0, 1.0, 9.0)

    def test_rejects_restore_before_outage(self):
        with pytest.raises(ValueError):
            ChurnEvent(0, "revocation", 0.0, 2.0, 2.0)

    def test_fault_carries_no_warning(self):
        with pytest.raises(ValueError):
            ChurnEvent(0, "fault", 0.0, 1.0, 2.0)

    def test_drain_must_restore(self):
        with pytest.raises(ValueError):
            ChurnEvent(0, "drain", 0.0, 1.0, math.inf)

    def test_windows(self):
        event = ChurnEvent(1, "revocation", 2.0, 5.0, 11.0)
        assert event.warning_window_cycles == 3.0
        assert event.outage_cycles == 6.0
        forever = ChurnEvent(1, "fault", 5.0, 5.0, math.inf)
        assert forever.warning_window_cycles == 0.0
        assert math.isinf(forever.outage_cycles)


class TestChurnSchedule:
    def test_rejects_overlapping_events_on_one_device(self):
        first = ChurnEvent(0, "drain", 0.0, 2.0, 10.0)
        second = ChurnEvent(0, "drain", 5.0, 6.0, 12.0)
        with pytest.raises(ValueError):
            ChurnSchedule(events=(first, second))
        # Different devices may overlap freely.
        ChurnSchedule(events=(first, ChurnEvent(1, "drain", 5.0, 6.0, 12.0)))

    def test_events_for_sorts_by_warning(self):
        late = ChurnEvent(0, "drain", 20.0, 21.0, 30.0)
        early = ChurnEvent(0, "drain", 0.0, 1.0, 10.0)
        schedule = ChurnSchedule(events=(late, early))
        assert schedule.events_for(0) == (early, late)
        assert schedule.events_for(3) == ()

    def test_generate_is_deterministic(self):
        kwargs = dict(
            num_devices=4,
            horizon_cycles=1e8,
            fault_rate=2e-8,
            revocation_rate=3e-8,
            drain_rate=1e-8,
            mean_outage_cycles=1e7,
            mean_warning_cycles=5e5,
            never_restore_probability=0.2,
        )
        one = ChurnSchedule.generate(seed=13, **kwargs)
        two = ChurnSchedule.generate(seed=13, **kwargs)
        assert one == two
        assert len(one) > 0
        other = ChurnSchedule.generate(seed=14, **kwargs)
        assert other != one

    def test_generate_caps_concurrent_outages(self):
        schedule = ChurnSchedule.generate(
            4,
            horizon_cycles=1e8,
            seed=3,
            fault_rate=1e-6,  # far too many faults to all coexist
            mean_outage_cycles=5e7,
            max_concurrent_down=2,
        )
        boundaries = sorted(
            {e.warn_cycles for e in schedule}
            | {e.restore_cycles for e in schedule if not
               math.isinf(e.restore_cycles)}
        )
        for when in boundaries:
            concurrent = sum(
                1 for e in schedule
                if e.warn_cycles <= when < e.restore_cycles
            )
            assert concurrent <= 2

    def test_generate_validates_arguments(self):
        with pytest.raises(ValueError):
            ChurnSchedule.generate(0, 1e6)
        with pytest.raises(ValueError):
            ChurnSchedule.generate(2, 0.0)

    def test_never_restore_revocations(self):
        schedule = ChurnSchedule.generate(
            8,
            horizon_cycles=1e8,
            seed=5,
            revocation_rate=1e-7,
            never_restore_probability=1.0,
        )
        assert schedule.num_revocations > 0
        assert all(math.isinf(e.restore_cycles) for e in schedule)

    def test_partition_stable_across_fleet_growth(self):
        # Per-device substreams: growing the fleet must not reshuffle
        # the outages of the devices that were already there.  The cap
        # is made explicitly non-binding so arbitration cannot couple
        # the old devices to the new ones.
        kwargs = dict(
            horizon_cycles=1e8,
            seed=21,
            fault_rate=2e-8,
            revocation_rate=3e-8,
            drain_rate=1e-8,
            mean_outage_cycles=1e7,
            mean_warning_cycles=5e5,
            never_restore_probability=0.2,
            max_concurrent_down=1024,
        )
        small = ChurnSchedule.generate(4, **kwargs)
        large = ChurnSchedule.generate(16, **kwargs)
        assert len(small) > 0
        for device in range(4):
            assert small.events_for(device) == large.events_for(device)

    def test_rack_partition_reproduces_global_draw(self):
        # Per-rack substreams: a shard that regenerates only its own
        # racks' schedules must see exactly the events the global draw
        # assigned those racks (non-binding cap, as above).
        kwargs = dict(
            horizon_cycles=1e8,
            seed=22,
            fault_rate=2e-8,
            revocation_rate=3e-8,
            drain_rate=1e-8,
            mean_outage_cycles=1e7,
            mean_warning_cycles=5e5,
            never_restore_probability=0.2,
            max_concurrent_down_racks=1024,
        )
        # 4 racks x 3 devices globally; the shard owns racks 0-1 only.
        global_map = tuple(d // 3 for d in range(12))
        shard_map = tuple(d // 3 for d in range(6))
        whole = ChurnSchedule.generate_rack_correlated(global_map, **kwargs)
        shard = ChurnSchedule.generate_rack_correlated(shard_map, **kwargs)
        assert len(shard) > 0
        for device in range(6):
            assert whole.events_for(device) == shard.events_for(device)


class TestFleetAvailability:
    def test_state_machine_through_one_drain(self):
        event = ChurnEvent(1, "drain", 10.0, 20.0, 50.0)
        fleet = FleetAvailability(3, ChurnSchedule(events=(event,)))
        assert fleet.state(1) is DeviceAvailability.HEALTHY
        assert not fleet.is_doomed(1)
        assert list(fleet.surviving()) == [0, 1, 2]

        warn = fleet.pop()
        assert (warn.phase, warn.time_cycles) == ("warn", 10.0)
        fleet.apply(warn)
        assert fleet.state(1) is DeviceAvailability.DRAINING
        assert fleet.is_doomed(1)
        assert list(fleet.surviving()) == [0, 1, 2]  # still serving

        down = fleet.pop()
        assert (down.phase, down.time_cycles) == ("down", 20.0)
        fleet.apply(down)
        assert fleet.state(1) is DeviceAvailability.DOWN
        assert list(fleet.surviving()) == [0, 2]

        restore = fleet.pop()
        assert (restore.phase, restore.time_cycles) == ("restore", 50.0)
        fleet.apply(restore)
        assert fleet.state(1) is DeviceAvailability.HEALTHY
        assert not fleet

    def test_fault_warns_as_warned_not_draining(self):
        event = ChurnEvent(0, "revocation", 5.0, 9.0, math.inf)
        fleet = FleetAvailability(1, ChurnSchedule(events=(event,)))
        warn = fleet.pop()
        fleet.apply(warn)
        assert fleet.state(0) is DeviceAvailability.WARNED
        down = fleet.pop()
        fleet.apply(down)
        assert fleet.state(0) is DeviceAvailability.DOWN
        assert not fleet  # inf restore never enqueued

    def test_push_check_interleaves_by_time(self):
        event = ChurnEvent(0, "drain", 10.0, 30.0, 60.0)
        fleet = FleetAvailability(1, ChurnSchedule(events=(event,)))
        fleet.push_check(20.0, 0)
        fleet.apply(fleet.pop())  # warn @10
        check = fleet.pop()
        assert (check.phase, check.time_cycles) == ("check", 20.0)
        state_before = fleet.state(0)
        fleet.apply(check)  # no state change
        assert fleet.state(0) is state_before
        assert fleet.pop().phase == "down"

    def test_events_beyond_fleet_size_are_ignored(self):
        event = ChurnEvent(7, "drain", 10.0, 30.0, 60.0)
        fleet = FleetAvailability(2, ChurnSchedule(events=(event,)))
        assert not fleet


# ----------------------------------------------------------------------
# 2. Mechanism units
# ----------------------------------------------------------------------
class TestInterconnectCancellation:
    def make_fabric(self):
        return Interconnect(InterconnectConfig.pcie_gen3(), 4)

    def test_cancel_truncates_inflight_transfer(self):
        fabric = self.make_fabric()
        record = fabric.transfer(0, 1, 64 * 1024 * 1024, 0.0, task_id=1)
        cut = record.start_cycles + (record.end_cycles -
                                     record.start_cycles) / 2
        freed = fabric.cancel_transfers_to(1, cut)
        assert freed == pytest.approx(record.end_cycles - cut)
        (truncated,) = fabric.transfers
        assert truncated.cancelled
        assert truncated.end_cycles == pytest.approx(cut)
        fabric.verify_conservation()

    def test_cancel_frees_the_link_for_later_transfers(self):
        fabric = self.make_fabric()
        doomed = fabric.transfer(0, 1, 64 * 1024 * 1024, 0.0, task_id=1)
        cut = doomed.start_cycles + 10.0
        fabric.cancel_transfers_to(1, cut)
        assert fabric.link_free_at(0, 1) == pytest.approx(cut)
        follow = fabric.transfer(0, 1, 1024.0, cut, task_id=2)
        assert follow.start_cycles == pytest.approx(cut)
        assert follow.end_cycles < doomed.end_cycles
        fabric.verify_conservation()

    def test_cancel_queued_transfer_occupies_nothing(self):
        fabric = self.make_fabric()
        first = fabric.transfer(0, 1, 64 * 1024 * 1024, 0.0, task_id=1)
        queued = fabric.transfer(0, 1, 64 * 1024 * 1024, 5.0, task_id=2)
        assert queued.start_cycles == pytest.approx(first.end_cycles)
        freed = fabric.cancel_transfers_to(1, first.end_cycles)
        # Only the queued transfer is undelivered; it collapses to zero
        # occupancy at its own (never reached) start.
        assert freed == pytest.approx(
            queued.end_cycles - queued.start_cycles
        )
        records = fabric.transfers
        assert not records[0].cancelled
        assert records[1].cancelled
        assert records[1].end_cycles == pytest.approx(
            records[1].start_cycles
        )
        fabric.verify_conservation()

    def test_cancel_skips_delivered_and_other_destinations(self):
        fabric = self.make_fabric()
        delivered = fabric.transfer(0, 1, 1024.0, 0.0, task_id=1)
        elsewhere = fabric.transfer(0, 2, 64 * 1024 * 1024, 0.0, task_id=2)
        freed = fabric.cancel_transfers_to(1, delivered.end_cycles + 1.0)
        assert freed == 0.0
        assert not any(record.cancelled for record in fabric.transfers)
        assert fabric.link_free_at(0, 2) == pytest.approx(
            elsewhere.end_cycles
        )
        fabric.verify_conservation()

    def test_cancel_rejects_bad_device(self):
        with pytest.raises(ValueError):
            self.make_fabric().cancel_transfers_to(9, 0.0)


class TestDeviceFail:
    def test_fail_orphans_everything_resident(self):
        device = make_device()
        running = make_task(0, 0.0, 500_000.0, Priority.LOW)
        queued = make_task(1, 0.0, 300_000.0, Priority.LOW)
        device.inject(running)
        device.inject(queued)
        device.step()  # arrivals -> dispatch of task 0
        now = 200_000.0
        orphans = device.fail(now)
        assert {task.task_id for task in orphans} == {0, 1}
        for task in orphans:
            assert task.restart_count == 1
            assert task.orphaned_at == now
            assert task.retained_offset == 0.0
            assert task.dispatch_time is None
        by_id = {task.task_id for task in orphans}
        assert 0 in by_id
        lost = next(t for t in orphans if t.task_id == 0)
        assert lost.lost_progress_cycles > 0.0  # it was running
        waiting = next(t for t in orphans if t.task_id == 1)
        assert waiting.lost_progress_cycles == 0.0
        # The corpse: no events, accepts nothing, never idle-candidate.
        assert not device.accepts_work
        assert device.next_event_time() is None
        assert not device.is_idle(now)

    def test_fail_preserves_completed_tasks(self):
        device = make_device()
        done = make_task(0, 0.0, 50_000.0)
        device.inject(done)
        while device.has_live_tasks and device.next_event_time() is not None:
            device.step()
        assert done.is_done
        orphans = device.fail(done.completion_time + 1.0)
        assert orphans == []
        result = device.result()
        assert [task.task_id for task in result.tasks] == [0]

    def test_recovery_delay_recorded_on_redispatch(self):
        device = make_device()
        task = make_task(0, 0.0, 100_000.0)
        device.inject(task)
        device.step()
        (orphan,) = device.fail(50_000.0)
        fresh = make_device(device_id=1)
        fresh.inject(orphan, arrival=80_000.0)
        fresh.step()  # arrival -> dispatch
        assert orphan.orphaned_at is None
        assert orphan.recovery_delays == [pytest.approx(30_000.0)]
        assert orphan.restart_count == 1

    def test_force_checkpoint_matches_preview(self):
        device = make_device()
        task = make_task(0, 0.0, 500_000.0, Priority.LOW)
        device.inject(task)
        device.step()  # dispatch
        now = 150_000.0
        preview = device.preview_checkpoint(now)
        assert preview is not None
        free_at, checkpoint_bytes = device.force_checkpoint(now)
        assert (free_at, checkpoint_bytes) == preview
        assert free_at >= now
        assert checkpoint_bytes > 0
        # The checkpoint becomes durable (hence migratable) at free_at,
        # and no successor was promised the array.
        assert device.migratable_preempted_tasks(now) == []
        migratable = device.migratable_preempted_tasks(free_at)
        assert [t.task_id for t in migratable] == [0]
        assert task.retained_offset > 0.0

    def test_force_checkpoint_requires_a_running_task(self):
        with pytest.raises(RuntimeError):
            make_device().force_checkpoint(0.0)
        assert make_device().preview_checkpoint(0.0) is None


# ----------------------------------------------------------------------
# 3. Determinism contracts
# ----------------------------------------------------------------------
class TestDeterminismContracts:
    @pytest.mark.parametrize("routing", tuple(RoutingPolicy))
    def test_empty_schedule_is_bit_for_bit_churn_disabled(self, routing):
        trace = hog_trace(40)
        baseline = run_cluster(trace, routing=routing, churn=None)
        empty = run_cluster(trace, routing=routing, churn=ChurnSchedule())
        assert signature(baseline) == signature(empty)

    def test_generating_churn_never_perturbs_the_trace_streams(self):
        """The bit-identical-trace regression: the churn schedule draws
        from its own named RNG stream (seed ^ CHURN_STREAM_SALT), so
        interleaving schedule generation with trace generation changes
        neither -- and never touches the global ``random`` stream."""
        global_state = random.getstate()
        before = synthetic_trace_runtimes(40, seed=9, qos_mix={
            "interactive": 0.3, "standard": 0.4, "batch": 0.3,
        })
        schedule = ChurnSchedule.generate(
            4, 1e8, seed=9, revocation_rate=5e-8, fault_rate=2e-8,
        )
        after = synthetic_trace_runtimes(40, seed=9, qos_mix={
            "interactive": 0.3, "standard": 0.4, "batch": 0.3,
        })
        assert random.getstate() == global_state
        assert [task.spec for task in before] == [
            task.spec for task in after
        ]
        assert [task.profile.total_cycles for task in before] == [
            task.profile.total_cycles for task in after
        ]
        again = ChurnSchedule.generate(
            4, 1e8, seed=9, revocation_rate=5e-8, fault_rate=2e-8,
        )
        assert schedule == again

    def test_churn_stream_is_salted_off_the_raw_seed(self):
        """Seed s churn must not replay the raw Random(s) stream another
        subsystem seeded the same way would see."""
        raw = random.Random(9)
        salted = random.Random(9 ^ CHURN_STREAM_SALT)
        assert [raw.random() for _ in range(4)] != [
            salted.random() for _ in range(4)
        ]

    def test_churn_enabled_runs_are_seeded_reproducible(self):
        trace = hog_trace(40)
        schedule = ChurnSchedule.generate(
            4, 1e8, seed=2,
            revocation_rate=4e-8, mean_outage_cycles=3e7,
            mean_warning_cycles=5e5,
        )
        one = run_cluster(trace, churn=schedule)
        two = run_cluster(trace, churn=schedule)
        assert signature(one) == signature(two)


# ----------------------------------------------------------------------
# 4. Conservation property: no task silently lost, ever
# ----------------------------------------------------------------------
def random_schedule(churn_seed, num_devices, horizon):
    return ChurnSchedule.generate(
        num_devices,
        horizon_cycles=horizon,
        seed=churn_seed,
        fault_rate=1.5 / horizon,
        revocation_rate=1.5 / horizon,
        drain_rate=0.75 / horizon,
        mean_outage_cycles=horizon / 5.0,
        mean_warning_cycles=horizon / 60.0,
        never_restore_probability=0.25,
    )


def assert_conserved(trace, result):
    offered = {task.task_id for task in trace}
    completed = {task.task_id for task in result.tasks}
    rejected = {task.task_id for task in result.rejected_tasks}
    lost = {task.task_id for task in result.lost_tasks}
    assert completed.isdisjoint(rejected)
    assert completed.isdisjoint(lost)
    assert rejected.isdisjoint(lost)
    assert completed | rejected | lost == offered
    for task in result.tasks:
        assert task.is_done
    for task in result.lost_tasks:
        assert not task.is_done
    metrics = compute_cluster_metrics(result)
    assert metrics.lost_task_count == len(result.lost_tasks)
    return metrics


class TestNoTaskSilentlyLost:
    @pytest.mark.parametrize("routing", tuple(RoutingPolicy))
    @pytest.mark.parametrize("churn_seed", (0, 1, 2))
    def test_offered_equals_completed_plus_rejected_plus_lost(
        self, routing, churn_seed
    ):
        num_devices = 4
        trace = hog_trace(45, seed=11 + churn_seed, num_devices=num_devices)
        horizon = max(task.spec.arrival_cycles for task in trace)
        schedule = random_schedule(churn_seed, num_devices, horizon)
        assert len(schedule) > 0  # the property must actually bite
        proactive = churn_seed % 2 == 0  # alternate recovery modes
        result = run_cluster(
            trace,
            routing=routing,
            num_devices=num_devices,
            churn=schedule,
            proactive=proactive,
        )
        assert_conserved(trace, result)

    @pytest.mark.parametrize("churn_seed", (0, 1, 2))
    def test_conservation_holds_under_admission_control(self, churn_seed):
        num_devices = 3
        trace = synthetic_trace_runtimes(
            45,
            seed=23 + churn_seed,
            mean_interarrival_cycles=(
                DEFAULT_MEAN_INTERARRIVAL_CYCLES / (num_devices * 1.5)
            ),
            qos_mix={"interactive": 0.3, "standard": 0.4, "batch": 0.3},
        )
        horizon = max(task.spec.arrival_cycles for task in trace)
        controller = AdmissionController(feedback=PredictionFeedback())
        result = run_cluster(
            trace,
            num_devices=num_devices,
            churn=random_schedule(churn_seed, num_devices, horizon),
            admission=controller,
        )
        assert_conserved(trace, result)
        # Every admission charge was released -- completions, rejections
        # and churn losses all settle the outstanding-budget ledger.
        assert sum(controller._outstanding.values()) == pytest.approx(
            0.0, abs=1e-6
        )


# ----------------------------------------------------------------------
# Cluster integration: the recovery disciplines
# ----------------------------------------------------------------------
class TestClusterChurnIntegration:
    def test_fleet_wide_permanent_outage_loses_the_tail(self):
        trace = hog_trace(30, seed=7, num_devices=2)
        horizon = max(task.spec.arrival_cycles for task in trace)
        apocalypse = ChurnSchedule(events=tuple(
            ChurnEvent(d, "fault", horizon / 3, horizon / 3, math.inf)
            for d in range(2)
        ))
        result = run_cluster(
            trace, num_devices=2, churn=apocalypse, proactive=False
        )
        metrics = assert_conserved(trace, result)
        assert len(result.lost_tasks) > 0
        assert len(result.tasks) > 0  # early arrivals completed
        # Lost tasks count against offered attainment, like rejections.
        offered = len(result.tasks) + len(result.lost_tasks)
        assert metrics.goodput_under_churn < offered

    def hog_and_revocation(self):
        """A 5M-cycle hog pinned on device 0 of 2, revoked mid-run.

        The warning lands at 1M cycles with the outage at 2.5M: the hog
        cannot finish inside the window, but a forced checkpoint plus a
        PCIe shipment comfortably can -- the canonical Parcae decision.
        Short fillers keep device 1 alive as the evacuation target.
        """
        tasks = [make_task(0, 0.0, 5e6, Priority.LOW)] + [
            make_task(i, 1000.0 * i, 1e6, Priority.MEDIUM)
            for i in range(1, 5)
        ]
        schedule = ChurnSchedule(events=(
            ChurnEvent(0, "revocation", 1e6, 2.5e6, math.inf),
        ))
        return tasks, schedule

    def test_reactive_restart_loses_work_and_counts_restarts(self):
        tasks, schedule = self.hog_and_revocation()
        result = run_cluster(
            tasks, num_devices=2, churn=schedule, proactive=False
        )
        metrics = assert_conserved(tasks, result)
        assert not result.lost_tasks  # device 1 survived to restart on
        # The hog ran [0, 2.5M) and died with the device: all of it lost.
        assert metrics.work_lost_cycles == pytest.approx(2.5e6, rel=1e-6)
        assert metrics.restarts_per_task == pytest.approx(1 / 5)
        assert metrics.recovery_p99_cycles > 0.0

    def test_proactive_mode_stops_routing_to_a_warned_device(self):
        trace = hog_trace(40, seed=3, num_devices=2)
        horizon = max(task.spec.arrival_cycles for task in trace)
        warn_at = horizon / 4
        revocation = ChurnSchedule(events=(
            ChurnEvent(0, "revocation", warn_at, horizon * 10.0,
                       math.inf),
        ))
        result = run_cluster(
            trace, num_devices=2, churn=revocation, proactive=True
        )
        assert_conserved(trace, result)
        late = [
            task for task in trace if task.spec.arrival_cycles > warn_at
        ]
        assert late
        for task in late:
            assert result.assignments[task.task_id] == 1
        # Reactive mode keeps using the device until it actually dies.
        reactive = run_cluster(
            trace, num_devices=2, churn=revocation, proactive=False
        )
        assert any(
            reactive.assignments[task.task_id] == 0 for task in late
        )

    def test_proactive_evacuation_checkpoint_migrates_the_running_hog(self):
        tasks, schedule = self.hog_and_revocation()
        proactive = run_cluster(
            tasks, num_devices=2, churn=schedule, proactive=True
        )
        pro_metrics = assert_conserved(tasks, proactive)
        # The hog was force-checkpointed and shipped before the deadline:
        # one checkpoint migration over the fabric, zero work destroyed.
        assert proactive.migration_count >= 1
        moved = [m for m in proactive.migrations if m.task_id == 0]
        assert moved and moved[0].kind == "checkpoint"
        assert moved[0].bytes_moved > 0
        assert len(proactive.transfers) >= 1
        assert pro_metrics.work_lost_cycles == 0.0
        assert pro_metrics.restarts_per_task == 0.0
        assert proactive.assignments[0] == 1  # the hog finished on dev 1
        reactive = run_cluster(
            tasks, num_devices=2, churn=schedule, proactive=False
        )
        rea_metrics = assert_conserved(tasks, reactive)
        assert pro_metrics.work_lost_cycles < rea_metrics.work_lost_cycles

    def test_drain_restores_and_the_device_serves_again(self):
        trace = hog_trace(50, seed=13)
        horizon = max(task.spec.arrival_cycles for task in trace)
        drain = ChurnSchedule(events=(
            ChurnEvent(0, "drain", horizon / 4, horizon / 3,
                       horizon / 2),
        ))
        result = run_cluster(trace, churn=drain, proactive=True)
        assert_conserved(trace, result)
        post_restore = [
            task for task in trace
            if task.spec.arrival_cycles > horizon / 2
        ]
        assert post_restore
        # At least one post-restore arrival lands back on device 0.
        assert any(
            result.assignments[task.task_id] == 0 for task in post_restore
        )
