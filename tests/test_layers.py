"""Layer shape inference, footprints, and GEMM lowering metadata."""

import pytest

from repro.models.layers import (
    Activation,
    Concat,
    Conv2D,
    Embedding,
    FullyConnected,
    InputSpec,
    LayerKind,
    LSTMCell,
    Pool2D,
    Softmax,
)


class TestInputSpec:
    def test_elems_and_spatial(self):
        spec = InputSpec(channels=3, height=4, width=5)
        assert spec.elems == 60
        assert spec.spatial == 20

    def test_vector_shaped_default(self):
        assert InputSpec(channels=7).elems == 7

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            InputSpec(channels=0)
        with pytest.raises(ValueError):
            InputSpec(channels=1, height=0)


class TestConv2D:
    def test_same_padding_shape(self):
        conv = Conv2D("c", out_channels=16, kernel=3, padding=1)
        out = conv.infer_shape([InputSpec(channels=3, height=32, width=32)])
        assert (out.channels, out.height, out.width) == (16, 32, 32)

    def test_stride_halves(self):
        conv = Conv2D("c", out_channels=8, kernel=3, stride=2, padding=1)
        out = conv.infer_shape([InputSpec(channels=3, height=32, width=32)])
        assert (out.height, out.width) == (16, 16)

    def test_alexnet_conv1_shape(self):
        conv = Conv2D("c", out_channels=64, kernel=11, stride=4, padding=2)
        out = conv.infer_shape([InputSpec(channels=3, height=224, width=224)])
        assert (out.height, out.width) == (55, 55)

    def test_im2col_gemm_shape(self):
        conv = Conv2D("c", out_channels=16, kernel=3, padding=1)
        gemms = conv.gemms([InputSpec(channels=3, height=32, width=32)], batch=2)
        assert len(gemms) == 1
        assert gemms[0].m == 16
        assert gemms[0].k == 27
        assert gemms[0].n == 32 * 32 * 2

    def test_depthwise_groups(self):
        conv = Conv2D("c", out_channels=32, kernel=3, padding=1, groups=32)
        inputs = [InputSpec(channels=32, height=14, width=14)]
        gemms = conv.gemms(inputs, batch=1)
        assert len(gemms) == 32
        assert all(g.m == 1 and g.k == 9 for g in gemms)

    def test_weight_elems(self):
        conv = Conv2D("c", out_channels=16, kernel=3)
        assert conv.weight_elems([InputSpec(channels=4, height=8, width=8)]) == (
            16 * 4 * 3 * 3
        )

    def test_macs_equal_gemm_macs(self):
        conv = Conv2D("c", out_channels=16, kernel=3, padding=1)
        inputs = [InputSpec(channels=3, height=32, width=32)]
        assert conv.macs(inputs, 2) == sum(g.macs for g in conv.gemms(inputs, 2))

    def test_fused_activation_vector_work(self):
        conv = Conv2D("c", out_channels=8, kernel=1)
        inputs = [InputSpec(channels=4, height=4, width=4)]
        assert conv.vector_elems(inputs, 3) == 8 * 4 * 4 * 3
        no_fuse = Conv2D("c2", out_channels=8, kernel=1, fused_activation=None)
        assert no_fuse.vector_elems(inputs, 3) == 0

    def test_invalid_geometry_raises(self):
        conv = Conv2D("c", out_channels=8, kernel=7)
        with pytest.raises(ValueError):
            conv.infer_shape([InputSpec(channels=3, height=4, width=4)])

    def test_groups_must_divide_channels(self):
        conv = Conv2D("c", out_channels=8, kernel=1, groups=4)
        with pytest.raises(ValueError):
            conv.infer_shape([InputSpec(channels=6, height=4, width=4)])

    def test_kind(self):
        assert Conv2D("c", out_channels=1).kind == LayerKind.CONV


class TestFullyConnected:
    def test_flattens_input(self):
        fc = FullyConnected("fc", out_features=10)
        out = fc.infer_shape([InputSpec(channels=4, height=3, width=3)])
        assert out.channels == 10
        assert out.spatial == 1

    def test_gemm_shape(self):
        fc = FullyConnected("fc", out_features=100)
        gemms = fc.gemms([InputSpec(channels=50)], batch=8)
        assert gemms[0].m == 100 and gemms[0].k == 50 and gemms[0].n == 8

    def test_weight_elems(self):
        fc = FullyConnected("fc", out_features=10)
        assert fc.weight_elems([InputSpec(channels=4, height=2, width=2)]) == 160

    def test_kind(self):
        assert FullyConnected("fc", out_features=1).kind == LayerKind.FC


class TestLSTMCell:
    def test_gemm_fuses_four_gates(self):
        cell = LSTMCell("l", hidden=64)
        gemms = cell.gemms([InputSpec(channels=32)], batch=2)
        assert gemms[0].m == 4 * 64
        assert gemms[0].k == 32 + 64
        assert gemms[0].n == 2

    def test_weight_elems(self):
        cell = LSTMCell("l", hidden=64)
        assert cell.weight_elems([InputSpec(channels=32)]) == 4 * 64 * 96

    def test_output_is_hidden_size(self):
        cell = LSTMCell("l", hidden=64)
        assert cell.infer_shape([InputSpec(channels=32)]).channels == 64

    def test_gate_math_vector_work(self):
        cell = LSTMCell("l", hidden=64)
        assert cell.vector_elems([InputSpec(channels=32)], 2) == 7 * 64 * 2

    def test_kind_is_recr(self):
        assert LSTMCell("l", hidden=1).kind == LayerKind.RECR


class TestPool2D:
    def test_shape(self):
        pool = Pool2D("p", kernel=2, stride=2)
        out = pool.infer_shape([InputSpec(channels=16, height=8, width=8)])
        assert (out.channels, out.height, out.width) == (16, 4, 4)

    def test_vector_work_is_output_elems(self):
        pool = Pool2D("p", kernel=3, stride=2)
        inputs = [InputSpec(channels=4, height=9, width=9)]
        out = pool.infer_shape(inputs)
        assert pool.vector_elems(inputs, 2) == out.elems * 2

    def test_mode_validated(self):
        with pytest.raises(ValueError):
            Pool2D("p", mode="median")

    def test_no_weights_no_macs(self):
        pool = Pool2D("p")
        inputs = [InputSpec(channels=4, height=8, width=8)]
        assert pool.weight_elems(inputs) == 0
        assert pool.macs(inputs, 1) == 0
        assert pool.gemms(inputs, 1) == []


class TestOtherLayers:
    def test_activation_in_place(self):
        act = Activation("a", function="relu")
        spec = InputSpec(channels=8, height=2, width=2)
        assert act.infer_shape([spec]) == spec
        assert act.vector_elems([spec], 2) == spec.elems * 2

    def test_softmax_three_passes(self):
        soft = Softmax("s")
        assert soft.vector_elems([InputSpec(channels=10)], 2) == 60

    def test_concat_sums_channels(self):
        concat = Concat("cat")
        out = concat.infer_shape(
            [
                InputSpec(channels=3, height=4, width=4),
                InputSpec(channels=5, height=4, width=4),
            ]
        )
        assert out.channels == 8

    def test_concat_rejects_spatial_mismatch(self):
        concat = Concat("cat")
        with pytest.raises(ValueError):
            concat.infer_shape(
                [
                    InputSpec(channels=3, height=4, width=4),
                    InputSpec(channels=5, height=2, width=2),
                ]
            )

    def test_embedding_outputs_dim(self):
        embed = Embedding("e", vocab=1000, dim=64)
        assert embed.infer_shape([InputSpec(channels=1)]).channels == 64
        assert embed.weight_elems([InputSpec(channels=1)]) == 64000

    def test_single_input_layers_reject_multiple(self):
        act = Activation("a")
        specs = [InputSpec(channels=2), InputSpec(channels=2)]
        with pytest.raises(ValueError):
            act.infer_shape(specs)
