"""Scheduling policies (paper Sec VI-A).

Six policies, matching the evaluation's x-axes:

=======  ==========  ===============================================
Name     Predictor?  Selection rule
=======  ==========  ===============================================
FCFS     no          earliest arrival first (TensorRT-server baseline)
RRB      no          round-robin across ready tasks
HPF      no          highest priority first, FCFS among equals
TOKEN    yes         token candidate group, FCFS among candidates
SJF      yes         shortest estimated remaining job first
PREMA    yes         token candidate group + shortest estimated job
=======  ==========  ===============================================

Each policy also defines ``outranks`` -- whether a would-be candidate
should preempt the running task under a preemptive scheduler.  FCFS and
RRB have no urgency ordering, so they never preempt (they exist as
non-preemptive baselines).

Two selection surfaces exist:

- ``select(ready)`` / ``outranks(candidate, running, ready)`` operate on
  an explicit ready list -- the reference semantics, used directly by
  tests and ad-hoc callers.
- ``select_ready(table)`` / ``outranks_running(candidate, running,
  table)`` are the simulator's hot path.  Policies with an ordering
  (HPF, SJF, TOKEN, PREMA) back these with **incrementally maintained
  priority structures** (lazy-deletion heaps; token policies bucket rows
  by the Algorithm-2 candidate threshold grid), updated through the
  lifecycle hooks (``on_admit``/``on_dispatch``/``on_requeue``/
  ``on_remove``) and rebuilt wholesale at each period re-rank
  (``on_period``), when every ready row's token count moves at once.
  Every selection rule ranks by a strict total order (ties break on task
  id), so the structures return exactly the row the reference scan
  returns -- they change the cost of a wake from O(ready) to O(log
  ready), never the decision.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.context import ContextTable, TaskContext, TaskState
from repro.core.scheduler import PremaPolicyCore, SchedulerConfig
from repro.core.tokens import (
    NUM_CANDIDATE_BUCKETS,
    ClusterTokenLedger,
    candidate_bucket,
    candidate_threshold,
)


class Policy:
    """Interface consumed by the simulator."""

    name: str = "abstract"
    #: Does the policy read Time_estimated (Algorithm 1 output)?
    uses_predictor: bool = False
    #: Does the policy maintain tokens on period ticks?
    uses_tokens: bool = False
    #: Cluster-global token ledger (token policies only; None = the
    #: per-device threshold semantics of the single-NPU paper setting).
    _ledger: Optional[ClusterTokenLedger] = None

    def _ledger_max(self, local_max: float) -> float:
        """Fold the cluster ledger's maximum into a local token maximum."""
        if self._ledger is None:
            return local_max
        return max(local_max, self._ledger.ready_max_tokens())

    def on_period(self, table: ContextTable) -> None:
        """Hook invoked at each scheduling-period tick."""

    def on_admit(self, context: TaskContext, now: float) -> None:
        """Hook: ``context`` joined this device's table (READY).

        Fires at every processed arrival -- both fresh requests and
        work-stealing migrations in.  Token state lives on the context
        row, so tokens earned elsewhere travel with a migrated task and
        the default is a no-op.
        """

    def on_remove(self, context: TaskContext, now: float) -> None:
        """Hook: ``context`` left this device (migration out).

        Waiting time has already been settled up to ``now``; policies
        keeping per-device aggregate state should forget the row here.
        """

    def on_dispatch(self, context: TaskContext) -> None:
        """Hook: ``context`` left the ready queue to run."""

    def on_requeue(self, context: TaskContext) -> None:
        """Hook: ``context`` re-entered the ready queue (preempted);
        its accounted progress has just been refreshed."""

    def select(self, ready: Sequence[TaskContext]) -> Optional[TaskContext]:
        """Pick the next task among the ready queue (None when empty)."""
        raise NotImplementedError

    def select_ready(self, table: ContextTable) -> Optional[TaskContext]:
        """Hot-path selection against the live table.

        Equivalent to ``select(table.ready())`` whenever the lifecycle
        hooks above are honored (the simulator always does); policies
        with incremental structures override this with an O(log n) path
        that validates its pick and falls back to the reference scan on
        any detectable staleness.
        """
        return self.select(table.ready())

    def outranks(
        self,
        candidate: TaskContext,
        running: TaskContext,
        ready: Sequence[TaskContext] = (),
    ) -> bool:
        """Should ``candidate`` preempt ``running``?

        ``ready`` is the full ready queue (the candidate included), needed
        by token-threshold policies whose preemption intent depends on the
        whole queue's token state.
        """
        return False

    def outranks_running(
        self,
        candidate: TaskContext,
        running: TaskContext,
        table: ContextTable,
    ) -> bool:
        """Hot-path preemption check against the live table.

        Equivalent to ``outranks(candidate, running, table.ready())``.
        """
        return self.outranks(candidate, running, table.ready())

    def reset(self) -> None:
        """Clear any cross-run state (round-robin cursors and the like)."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


# ----------------------------------------------------------------------
# Incremental priority structures
# ----------------------------------------------------------------------
class _LazyMinHeap:
    """Min-heap over context rows with O(1) lazy deletion.

    ``_live`` maps task id -> (key, row) for resident rows; heap entries
    are (key, task_id, tie) and are validated against ``_live`` when they
    surface, so ``discard`` never searches the heap.  Keys must be stable
    while a row is resident (re-adding with a fresh key supersedes the
    stale entries).  The integer tie-breaker keeps tuple comparison away
    from the unorderable row objects when duplicate (key, id) entries
    coexist.
    """

    __slots__ = ("_key", "_heap", "_live", "_tie")

    def __init__(self, key: Callable[[TaskContext], object]) -> None:
        self._key = key
        self._heap: List[Tuple[object, int, int]] = []
        self._live: Dict[int, Tuple[object, TaskContext]] = {}
        self._tie = itertools.count()

    def __len__(self) -> int:
        return len(self._live)

    def add(self, row: TaskContext) -> None:
        key = self._key(row)
        self._live[row.task_id] = (key, row)
        heapq.heappush(self._heap, (key, row.task_id, next(self._tie)))
        if len(self._heap) > 64 and len(self._heap) > 2 * len(self._live):
            self._compact()

    def discard(self, task_id: int) -> None:
        self._live.pop(task_id, None)

    def clear(self) -> None:
        self._heap.clear()
        self._live.clear()

    def rebuild(self, rows: Sequence[TaskContext]) -> None:
        self.clear()
        for row in rows:
            self.add(row)

    def peek(self) -> Optional[TaskContext]:
        """The live row with the smallest key (None when empty)."""
        heap = self._heap
        live = self._live
        while heap:
            key, task_id, _ = heap[0]
            entry = live.get(task_id)
            if entry is not None and entry[0] == key:
                return entry[1]
            heapq.heappop(heap)
        return None

    def _compact(self) -> None:
        """Drop accumulated stale entries (amortized O(1) per operation)."""
        self._heap = [
            (key, task_id, next(self._tie))
            for task_id, (key, _row) in self._live.items()
        ]
        heapq.heapify(self._heap)


class _TokenBuckets:
    """Candidate-group structure for the token policies (Algorithm 2).

    Ready rows are bucketed by :func:`candidate_bucket` -- the number of
    priority token levels strictly below their token count -- with one
    lazy min-heap per bucket ordered by the policy's selection key, plus
    one lazy max-heap on token count.  The candidate group ("tokens above
    the dynamic threshold") is then exactly the union of the buckets at
    or above the maximum row's bucket, so selection inspects at most
    ``NUM_CANDIDATE_BUCKETS`` heap tops.  Token counts only move at
    period re-ranks, which rebuild the structure wholesale.
    """

    __slots__ = ("_select_key", "_buckets", "_max_heap", "_bucket_of")

    def __init__(self, select_key: Callable[[TaskContext], object]) -> None:
        self._select_key = select_key
        self._buckets = [
            _LazyMinHeap(select_key) for _ in range(NUM_CANDIDATE_BUCKETS)
        ]
        self._max_heap = _LazyMinHeap(
            lambda row: (-row.tokens, row.task_id)
        )
        self._bucket_of: Dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._bucket_of)

    def add(self, row: TaskContext) -> None:
        bucket = candidate_bucket(row.tokens)
        self._bucket_of[row.task_id] = bucket
        self._buckets[bucket].add(row)
        self._max_heap.add(row)

    def discard(self, task_id: int) -> None:
        bucket = self._bucket_of.pop(task_id, None)
        if bucket is not None:
            self._buckets[bucket].discard(task_id)
            self._max_heap.discard(task_id)

    def clear(self) -> None:
        for bucket in self._buckets:
            bucket.clear()
        self._max_heap.clear()
        self._bucket_of.clear()

    def rebuild(self, rows: Sequence[TaskContext]) -> None:
        self.clear()
        for row in rows:
            self.add(row)

    def max_tokens_row(self) -> Optional[TaskContext]:
        return self._max_heap.peek()

    def _best_in(self, buckets) -> Optional[TaskContext]:
        best: Optional[TaskContext] = None
        best_key: object = None
        for bucket in buckets:
            row = bucket.peek()
            if row is None:
                continue
            key = self._select_key(row)
            if best is None or key < best_key:  # type: ignore[operator]
                best, best_key = row, key
        return best

    def select(self, external_max_tokens: float = 0.0) -> Optional[TaskContext]:
        """Best candidate row, or None to fall back to the reference scan.

        ``external_max_tokens`` raises the threshold to a cluster-global
        maximum (ledger-aware policies).  When that cluster maximum
        excludes every local row, the Algorithm-2 fallback serves the
        best local row outright -- exactly the reference semantics, still
        from bucket-top peeks.
        """
        top = self._max_heap.peek()
        if top is None:
            return None
        effective_max = max(top.tokens, external_max_tokens)
        threshold = candidate_threshold(effective_max)
        start = candidate_bucket(effective_max)
        best = self._best_in(self._buckets[start:])
        if best is not None and best.tokens > threshold:
            return best
        if external_max_tokens > top.tokens:
            # The threshold is driven by a remote device's maximum and no
            # local row clears it: serve the best local row regardless
            # (the device must not idle on account of a remote task).
            return self._best_in(self._buckets)
        # Degenerate token states (non-positive counts) exist only in
        # hand-built tables; let the caller rescan.
        return None


class _IncrementalReadyPolicy(Policy):
    """Lifecycle plumbing shared by the structure-backed policies.

    Structures are advisory with two safety nets for callers that drive
    ``select_ready`` without the lifecycle hooks (or mutate row states
    directly): a population-count check rebuilds the structure from the
    table before use, and every fast-path pick is validated to be a
    READY row still resident in the table (stale picks trigger a rebuild
    and fall back to the reference scan).  What the nets cannot promise
    to catch is hookless mutation that leaves both the count and the
    structure's top pick intact -- ranking-input edits (tokens,
    estimates) on resident ready rows, or count-preserving paired
    membership changes where the stale pick stays valid.  The simulator
    always speaks the full hook protocol, and direct ``select()``
    callers bypass the structures entirely.
    """

    def _structure(self):
        raise NotImplementedError

    def on_admit(self, context: TaskContext, now: float) -> None:
        self._structure().add(context)
        if self._ledger is not None:
            self._ledger.activate(context.task_id, context.tokens)

    def on_remove(self, context: TaskContext, now: float) -> None:
        self._structure().discard(context.task_id)
        if self._ledger is not None:
            self._ledger.deactivate(context.task_id)

    def on_dispatch(self, context: TaskContext) -> None:
        self._structure().discard(context.task_id)
        if self._ledger is not None:
            self._ledger.deactivate(context.task_id)

    def on_requeue(self, context: TaskContext) -> None:
        self._structure().add(context)
        if self._ledger is not None:
            self._ledger.activate(context.task_id, context.tokens)

    def reset(self) -> None:
        self._structure().clear()

    def _sync(self, table: ContextTable) -> None:
        structure = self._structure()
        if len(structure) != table.ready_count:
            structure.rebuild(table.ready())

    def _validated(
        self, row: Optional[TaskContext], table: ContextTable
    ) -> Optional[TaskContext]:
        """Accept a fast-path pick only if it is still a live ready row."""
        if (
            row is not None
            and row.state is TaskState.READY
            and row.task_id in table
            and table[row.task_id] is row
        ):
            return row
        if row is not None:
            # Stale structure despite matching counts: resync for next time.
            self._structure().rebuild(table.ready())
        return None


class FcfsPolicy(Policy):
    """Non-preemptive first-come first-serve (the NP-FCFS baseline)."""

    name = "FCFS"

    def select(self, ready: Sequence[TaskContext]) -> Optional[TaskContext]:
        if not ready:
            return None
        return min(ready, key=lambda row: row.task_id)

    def select_ready(self, table: ContextTable) -> Optional[TaskContext]:
        # The table's ready index is id-sorted, and FCFS order *is* id
        # order (ids are assigned in arrival order).
        ready = table.ready()
        return ready[0] if ready else None


class RoundRobinPolicy(Policy):
    """Round-robin among the DNN *models* (Sec VI-A).

    Run-to-completion round-robin over tasks degenerates to FCFS, so the
    rotation is over benchmark names: each pick serves the next model in
    alphabetical rotation that has a ready task (FCFS within a model).
    The ready queue is at most the live task set, so the per-pick scan
    stays O(live); no incremental structure is needed for a policy whose
    cursor state changes at every pick.
    """

    name = "RRB"

    def __init__(self) -> None:
        self._last_model: str = ""

    def select(self, ready: Sequence[TaskContext]) -> Optional[TaskContext]:
        if not ready:
            return None
        models = sorted({row.benchmark for row in ready})
        chosen_model = next(
            (m for m in models if m > self._last_model), models[0]
        )
        self._last_model = chosen_model
        return min(
            (row for row in ready if row.benchmark == chosen_model),
            key=lambda row: row.task_id,
        )

    def reset(self) -> None:
        self._last_model = ""


class HpfPolicy(_IncrementalReadyPolicy):
    """High-priority first; FCFS among equal priorities."""

    name = "HPF"

    def __init__(self) -> None:
        self._heap = _LazyMinHeap(
            lambda row: (-int(row.priority), row.task_id)
        )

    def _structure(self):
        return self._heap

    def select(self, ready: Sequence[TaskContext]) -> Optional[TaskContext]:
        if not ready:
            return None
        return min(ready, key=lambda row: (-int(row.priority), row.task_id))

    def select_ready(self, table: ContextTable) -> Optional[TaskContext]:
        if not table.has_ready:
            return None
        self._sync(table)
        row = self._validated(self._heap.peek(), table)
        return row if row is not None else self.select(table.ready())

    def outranks(
        self,
        candidate: TaskContext,
        running: TaskContext,
        ready: Sequence[TaskContext] = (),
    ) -> bool:
        return int(candidate.priority) > int(running.priority)

    def outranks_running(
        self,
        candidate: TaskContext,
        running: TaskContext,
        table: ContextTable,
    ) -> bool:
        return self.outranks(candidate, running)


class TokenPolicy(_IncrementalReadyPolicy):
    """Token-based candidate group, naive FCFS among candidates (Sec VI-A)."""

    name = "TOKEN"
    uses_predictor = True
    uses_tokens = True

    def __init__(
        self,
        core: Optional[PremaPolicyCore] = None,
        ledger: Optional[ClusterTokenLedger] = None,
    ) -> None:
        self._core = core or PremaPolicyCore()
        self._ledger = ledger
        self._buckets = _TokenBuckets(lambda row: row.task_id)

    def _structure(self):
        return self._buckets

    def on_period(self, table: ContextTable) -> None:
        self._core.grant_periodic_tokens(table)
        # Every ready row's tokens may have moved: period re-ranks
        # invalidate the buckets wholesale -- and are the settlement
        # point where the cluster ledger learns the new counts.
        ready = table.ready()
        self._buckets.rebuild(ready)
        if self._ledger is not None:
            for row in ready:
                self._ledger.activate(row.task_id, row.tokens)

    def select(self, ready: Sequence[TaskContext]) -> Optional[TaskContext]:
        if not ready:
            return None
        threshold = candidate_threshold(
            self._ledger_max(max(row.tokens for row in ready))
        )
        candidates = [row for row in ready if row.tokens > threshold]
        if not candidates:
            candidates = list(ready)
        return min(candidates, key=lambda row: row.task_id)

    def select_ready(self, table: ContextTable) -> Optional[TaskContext]:
        if not table.has_ready:
            return None
        self._sync(table)
        external = (
            self._ledger.ready_max_tokens() if self._ledger is not None else 0.0
        )
        row = self._validated(self._buckets.select(external), table)
        return row if row is not None else self.select(table.ready())

    def outranks(
        self,
        candidate: TaskContext,
        running: TaskContext,
        ready: Sequence[TaskContext] = (),
    ) -> bool:
        # The running task competes in the candidate group: preemption
        # fires only when it falls below the dynamic token threshold while
        # a waiting task clears it.
        pool = list(ready) + [running]
        threshold = candidate_threshold(
            self._ledger_max(max(row.tokens for row in pool))
        )
        return running.tokens <= threshold < candidate.tokens

    def outranks_running(
        self,
        candidate: TaskContext,
        running: TaskContext,
        table: ContextTable,
    ) -> bool:
        self._sync(table)
        top = self._buckets.max_tokens_row()
        ready_max = top.tokens if top is not None else running.tokens
        threshold = candidate_threshold(
            self._ledger_max(max(ready_max, running.tokens))
        )
        return running.tokens <= threshold < candidate.tokens


class SjfPolicy(_IncrementalReadyPolicy):
    """Shortest estimated job first: latency-optimal, priority-blind."""

    name = "SJF"
    uses_predictor = True

    def __init__(self) -> None:
        # estimated_remaining_cycles is stable while a row sits in the
        # ready queue (progress only moves while running, and a preempted
        # row re-enters through on_requeue with a fresh key).
        self._heap = _LazyMinHeap(
            lambda row: (row.estimated_remaining_cycles, row.task_id)
        )

    def _structure(self):
        return self._heap

    def select(self, ready: Sequence[TaskContext]) -> Optional[TaskContext]:
        if not ready:
            return None
        return min(
            ready, key=lambda row: (row.estimated_remaining_cycles, row.task_id)
        )

    def select_ready(self, table: ContextTable) -> Optional[TaskContext]:
        if not table.has_ready:
            return None
        self._sync(table)
        row = self._validated(self._heap.peek(), table)
        return row if row is not None else self.select(table.ready())

    def outranks(
        self,
        candidate: TaskContext,
        running: TaskContext,
        ready: Sequence[TaskContext] = (),
    ) -> bool:
        return (
            candidate.estimated_remaining_cycles
            < running.estimated_remaining_cycles
        )

    def outranks_running(
        self,
        candidate: TaskContext,
        running: TaskContext,
        table: ContextTable,
    ) -> bool:
        return self.outranks(candidate, running)


class PremaPolicy(_IncrementalReadyPolicy):
    """The full PREMA policy (Algorithm 2) via the core implementation."""

    name = "PREMA"
    uses_predictor = True
    uses_tokens = True

    def __init__(
        self,
        core: Optional[PremaPolicyCore] = None,
        ledger: Optional[ClusterTokenLedger] = None,
    ) -> None:
        self.core = core or PremaPolicyCore()
        self._ledger = ledger
        self._buckets = _TokenBuckets(
            lambda row: (row.estimated_remaining_cycles, row.task_id)
        )

    def _structure(self):
        return self._buckets

    def on_period(self, table: ContextTable) -> None:
        self.core.grant_periodic_tokens(table)
        ready = table.ready()
        self._buckets.rebuild(ready)
        if self._ledger is not None:
            for row in ready:
                self._ledger.activate(row.task_id, row.tokens)

    def select(self, ready: Sequence[TaskContext]) -> Optional[TaskContext]:
        if not ready:
            return None
        table_like = _ReadyView(ready)
        external = (
            self._ledger.ready_max_tokens() if self._ledger is not None else 0.0
        )
        return self.core.select_candidate(table_like, external)

    def select_ready(self, table: ContextTable) -> Optional[TaskContext]:
        if not table.has_ready:
            return None
        self._sync(table)
        external = (
            self._ledger.ready_max_tokens() if self._ledger is not None else 0.0
        )
        row = self._validated(self._buckets.select(external), table)
        return row if row is not None else self.select(table.ready())

    def outranks(
        self,
        candidate: TaskContext,
        running: TaskContext,
        ready: Sequence[TaskContext] = (),
    ) -> bool:
        external = (
            self._ledger.ready_max_tokens() if self._ledger is not None else 0.0
        )
        return self.core.should_preempt(candidate, running, ready, external)

    def outranks_running(
        self,
        candidate: TaskContext,
        running: TaskContext,
        table: ContextTable,
    ) -> bool:
        self._sync(table)
        top = self._buckets.max_tokens_row()
        ready_max = top.tokens if top is not None else running.tokens
        return self.core.should_preempt_given_max(
            candidate,
            running,
            self._ledger_max(max(ready_max, running.tokens)),
        )


class _ReadyView:
    """Adapter presenting a ready list through the ContextTable interface."""

    def __init__(self, ready: Sequence[TaskContext]) -> None:
        self._ready = list(ready)

    def ready(self) -> List[TaskContext]:
        return sorted(self._ready, key=lambda row: row.task_id)


POLICY_NAMES = ("FCFS", "RRB", "HPF", "TOKEN", "SJF", "PREMA")

_FACTORIES: Dict[str, type] = {
    "FCFS": FcfsPolicy,
    "RRB": RoundRobinPolicy,
    "HPF": HpfPolicy,
    "TOKEN": TokenPolicy,
    "SJF": SjfPolicy,
    "PREMA": PremaPolicy,
}


def make_policy(
    name: str,
    scheduler_config: Optional[SchedulerConfig] = None,
    ledger: Optional[ClusterTokenLedger] = None,
) -> Policy:
    """Instantiate a policy by its paper name (case-insensitive).

    ``ledger`` attaches a cluster-global token ledger to the token
    policies (TOKEN/PREMA); the predictor-free policies ignore it.
    """
    cls = _FACTORIES.get(name.upper())
    if cls is None:
        raise KeyError(f"unknown policy {name!r}; known: {POLICY_NAMES}")
    if cls in (TokenPolicy, PremaPolicy):
        core = PremaPolicyCore(scheduler_config)
        return cls(core, ledger=ledger)
    return cls()
