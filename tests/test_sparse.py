"""SCNN-style sparse latency model and density profiles (Fig 7 support)."""

import pytest

from repro.isa.compiler import compile_model
from repro.models.layers import LayerKind
from repro.models.zoo import build_benchmark
from repro.npu.sparse import (
    DensityProfile,
    SCNNConfig,
    SparseLatencyModel,
    synthesize_density_profile,
)


@pytest.fixture(scope="module")
def alexnet_model(config):
    return compile_model(build_benchmark("CNN-AN"), config, batch=1)


@pytest.fixture(scope="module")
def alexnet_profile(alexnet_model):
    conv_names = [
        layer.name for layer in alexnet_model.layers
        if layer.kind == LayerKind.CONV
    ]
    return synthesize_density_profile("CNN-AN", conv_names, num_inputs=200)


class TestDensityProfile:
    def test_shape_consistency(self, alexnet_profile):
        assert alexnet_profile.num_inputs == 200
        assert len(alexnet_profile.layer_names) == len(alexnet_profile.densities)

    def test_densities_in_unit_interval(self, alexnet_profile):
        for row in alexnet_profile.densities:
            assert all(0.0 < v <= 1.0 for v in row)

    def test_density_declines_with_depth(self, alexnet_profile):
        stats = alexnet_profile.per_layer_stats()
        assert stats[0][1] > stats[-1][1]

    def test_small_per_input_variance(self, alexnet_profile):
        # The Fig 7 claim: narrow per-layer bands.
        for _, _, std in alexnet_profile.per_layer_stats():
            assert std < 0.06

    def test_deterministic_by_seed(self):
        a = synthesize_density_profile("m", ["l1", "l2"], num_inputs=50, seed=1)
        b = synthesize_density_profile("m", ["l1", "l2"], num_inputs=50, seed=1)
        assert a.densities == b.densities

    def test_validation(self):
        with pytest.raises(ValueError):
            DensityProfile("m", ("l1",), ((0.5,), (0.5,)))
        with pytest.raises(ValueError):
            DensityProfile("m", ("l1",), ((1.5,),))
        with pytest.raises(ValueError):
            synthesize_density_profile("m", [], num_inputs=10)
        with pytest.raises(ValueError):
            synthesize_density_profile("m", ["l1"], num_inputs=0)


class TestSparseLatencyModel:
    def test_latency_scales_with_density(self):
        model = SparseLatencyModel(SCNNConfig())
        dense = model.layer_cycles(int(1e9), 1.0)
        sparse = model.layer_cycles(int(1e9), 0.3)
        assert sparse < dense

    def test_indexing_overhead_floor(self):
        model = SparseLatencyModel(SCNNConfig())
        # Even near-zero density pays the intersection overhead.
        assert model.layer_cycles(int(1e9), 0.01) > 0

    def test_latency_variation_within_paper_bound(self, alexnet_model, alexnet_profile):
        model = SparseLatencyModel(SCNNConfig())
        mean_s, max_dev = model.latency_variation(alexnet_model, alexnet_profile)
        assert mean_s > 0
        # Sec V-B item 3: execution time never deviated more than 14%.
        assert max_dev <= 0.14

    def test_density_count_must_match_layers(self, alexnet_model):
        model = SparseLatencyModel(SCNNConfig())
        with pytest.raises(ValueError):
            model.inference_seconds(alexnet_model, [0.5])

    def test_weight_density_validated(self):
        with pytest.raises(ValueError):
            SparseLatencyModel(SCNNConfig(), weight_density=0.0)

    def test_activation_density_validated(self):
        model = SparseLatencyModel(SCNNConfig())
        with pytest.raises(ValueError):
            model.layer_cycles(100, 0.0)
        with pytest.raises(ValueError):
            model.layer_cycles(-1, 0.5)
