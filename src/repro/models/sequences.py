"""Sequence-length profile datasets (the paper's Fig 9 substitute).

The paper profiles Google Translate over WMT-2016 and the Google Speech
API over LibriSpeech to characterize how a seq2seq model's *output*
sequence length relates to its (statically known) *input* sequence length.
Neither service is available offline, so we generate seeded synthetic
profiles whose ratio and spread match the paper's boxplots:

- En->De: output ~ 1.1x input, tight spread (Fig 9a);
- En->Ko: output ~ 0.75x input, moderate spread (Fig 9b);
- En->Zh: output ~ 5x input (character-level), wide spread (Fig 9c);
- ASR:    transcript ~ 0.45x audio frames, moderate spread (Fig 9d).

PREMA only ever consumes the resulting (input_len -> observed output
lengths) table -- the regression model of Sec V-B -- so a correlated
synthetic profile exercises the identical code path as the real services.
"""

from __future__ import annotations

import dataclasses
import math
import zlib
from typing import Dict, List, Sequence, Tuple

import numpy as np


@dataclasses.dataclass(frozen=True)
class SequenceProfile:
    """Characterization of one seq2seq application.

    ``samples`` holds (input_len, output_len) observations, the synthetic
    analogue of the paper's 1500 profiled translations/recognitions.
    """

    application: str
    samples: Tuple[Tuple[int, int], ...]

    def __post_init__(self) -> None:
        if not self.samples:
            raise ValueError("profile must contain at least one sample")
        for input_len, output_len in self.samples:
            if input_len <= 0 or output_len <= 0:
                raise ValueError("sequence lengths must be positive")

    @property
    def input_lengths(self) -> List[int]:
        return sorted({input_len for input_len, _ in self.samples})

    def outputs_for(self, input_len: int) -> List[int]:
        """All observed output lengths for a given input length."""
        outs = [o for i, o in self.samples if i == input_len]
        if not outs:
            raise KeyError(f"no profiled samples for input length {input_len}")
        return outs

    def quartiles_by_input(self) -> Dict[int, Tuple[float, float, float]]:
        """(q25, median, q75) of output length per input length (Fig 9)."""
        result = {}
        for input_len in self.input_lengths:
            outs = np.asarray(self.outputs_for(input_len), dtype=float)
            result[input_len] = (
                float(np.percentile(outs, 25)),
                float(np.percentile(outs, 50)),
                float(np.percentile(outs, 75)),
            )
        return result

    def correlation(self) -> float:
        """Pearson correlation between input and output lengths."""
        arr = np.asarray(self.samples, dtype=float)
        if len(arr) < 2:
            return 1.0
        return float(np.corrcoef(arr[:, 0], arr[:, 1])[0, 1])


@dataclasses.dataclass(frozen=True)
class _ProfileSpec:
    """Generator parameters for one synthetic application profile."""

    ratio: float
    sigma: float
    input_min: int
    input_max: int
    input_step: int


#: Application name -> generator parameters (ratio/spread per Fig 9).
PROFILE_SPECS: Dict[str, _ProfileSpec] = {
    "en-de": _ProfileSpec(ratio=1.10, sigma=0.08, input_min=5, input_max=50, input_step=5),
    "en-ko": _ProfileSpec(ratio=0.75, sigma=0.10, input_min=5, input_max=50, input_step=5),
    "en-zh": _ProfileSpec(ratio=5.00, sigma=0.18, input_min=5, input_max=50, input_step=5),
    "asr": _ProfileSpec(ratio=0.45, sigma=0.12, input_min=20, input_max=100, input_step=5),
}

#: Which profile backs each RNN benchmark.  RNN-MT1 serves En->De, RNN-MT2
#: serves En->Ko (fixed for reproducibility; the paper picks randomly among
#: De/Ko/Zh).  RNN-SA is linear: output length == input length (Fig 8b).
BENCHMARK_PROFILE = {
    "RNN-MT1": "en-de",
    "RNN-MT2": "en-ko",
    "RNN-ASR": "asr",
}


def generate_profile(
    application: str, num_samples: int = 1500, seed: int = 2020
) -> SequenceProfile:
    """Generate the seeded synthetic profile for ``application``.

    Output lengths are lognormal around ``ratio * input_len`` so they stay
    positive and right-skewed (long translations happen, absurdly short
    ones do not), matching the min-max whiskers of the paper's boxplots.
    """
    spec = PROFILE_SPECS.get(application)
    if spec is None:
        raise KeyError(
            f"unknown application {application!r}; "
            f"known: {sorted(PROFILE_SPECS)}"
        )
    if num_samples <= 0:
        raise ValueError("num_samples must be positive")
    # Stable across processes: str hash() is randomized by PYTHONHASHSEED,
    # which silently reseeded every "seeded" profile per interpreter run.
    rng = np.random.default_rng(
        zlib.crc32(f"{application}:{seed}".encode()) & 0xFFFFFFFF
    )
    grid = list(range(spec.input_min, spec.input_max + 1, spec.input_step))
    samples: List[Tuple[int, int]] = []
    for index in range(num_samples):
        input_len = grid[index % len(grid)]
        noise = rng.lognormal(mean=0.0, sigma=spec.sigma)
        output_len = max(1, int(round(spec.ratio * input_len * noise)))
        samples.append((input_len, output_len))
    return SequenceProfile(application=application, samples=tuple(samples))


def linear_profile(
    input_lengths: Sequence[int], application: str = "linear"
) -> SequenceProfile:
    """Profile for linear RNN apps (Fig 8b): output length == input length."""
    samples = tuple((length, length) for length in input_lengths)
    return SequenceProfile(application=application, samples=samples)


def geomean(values: Sequence[float]) -> float:
    """Geometric mean (the paper's lookup-table aggregate, Sec V-B)."""
    if not values:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return float(math.exp(sum(math.log(v) for v in values) / len(values)))
