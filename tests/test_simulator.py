"""Event-driven multi-task simulator: invariants and scenario behaviour."""

import pytest

from repro.core.tokens import Priority
from repro.sched.metrics import compute_metrics
from repro.sched.policies import make_policy
from repro.sched.simulator import (
    NPUSimulator,
    PreemptionMode,
    SimulationConfig,
)
from repro.sched.timeline import SegmentKind
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.specs import TaskSpec


def spec(task_id, benchmark, priority, arrival_ms, config, **kw):
    return TaskSpec(
        task_id=task_id,
        benchmark=benchmark,
        batch=1,
        priority=priority,
        arrival_cycles=config.ms_to_cycles(arrival_ms),
        **kw,
    )


def run(config, factory, specs, policy="FCFS", mode=PreemptionMode.NP,
        mechanism="CHECKPOINT"):
    simulator = NPUSimulator(
        SimulationConfig(npu=config, mode=mode, mechanism=mechanism),
        make_policy(policy),
    )
    tasks = [factory.build_task(s) for s in specs]
    return simulator.run(tasks)


@pytest.fixture(scope="module")
def pair(config):
    """A long low-priority task then a short high-priority arrival."""
    return [
        spec(0, "CNN-VN", Priority.LOW, 0.0, config),
        spec(1, "CNN-GN", Priority.HIGH, 1.0, config),
    ]


class TestBasicInvariants:
    def test_all_tasks_complete(self, config, factory, pair):
        result = run(config, factory, pair)
        assert all(task.is_done for task in result.tasks)

    def test_task_by_id_lookup(self, config, factory, pair):
        result = run(config, factory, pair)
        assert result.task_by_id(1).task_id == 1
        with pytest.raises(KeyError):
            result.task_by_id(99)

    def test_no_overlapping_busy_segments(self, config, factory, pair):
        result = run(config, factory, pair, policy="HPF",
                     mode=PreemptionMode.STATIC)
        result.timeline.verify_no_overlap()

    def test_completion_after_arrival_plus_isolated(self, config, factory, pair):
        result = run(config, factory, pair)
        for task in result.tasks:
            assert task.turnaround_cycles >= task.isolated_cycles * 0.999

    def test_run_time_conservation_without_kill(self, config, factory, pair):
        result = run(config, factory, pair, policy="HPF",
                     mode=PreemptionMode.STATIC, mechanism="CHECKPOINT")
        by_task = result.timeline.run_cycles_by_task()
        for task in result.tasks:
            assert by_task[task.task_id] == pytest.approx(
                task.isolated_cycles, rel=1e-6
            )

    def test_kill_reruns_work(self, config, factory, pair):
        result = run(config, factory, pair, policy="HPF",
                     mode=PreemptionMode.STATIC, mechanism="KILL")
        low = result.task_by_id(0)
        if low.kill_count:
            by_task = result.timeline.run_cycles_by_task()
            assert by_task[0] > low.isolated_cycles
            assert low.wasted_cycles > 0

    def test_empty_workload_rejected(self, config):
        simulator = NPUSimulator(
            SimulationConfig(npu=config), make_policy("FCFS")
        )
        with pytest.raises(ValueError):
            simulator.run([])

    def test_duplicate_task_ids_rejected(self, config, factory, pair):
        simulator = NPUSimulator(
            SimulationConfig(npu=config), make_policy("FCFS")
        )
        tasks = [factory.build_task(pair[0]), factory.build_task(pair[0])]
        with pytest.raises(ValueError):
            simulator.run(tasks)


class TestNonPreemptive:
    def test_np_never_preempts(self, config, factory, pair):
        result = run(config, factory, pair, policy="HPF", mode=PreemptionMode.NP)
        assert result.preemption_count == 0
        assert all(task.preemption_count == 0 for task in result.tasks)

    def test_fcfs_serves_in_arrival_order(self, config, factory, pair):
        result = run(config, factory, pair, policy="FCFS")
        low, high = result.task_by_id(0), result.task_by_id(1)
        assert low.completion_time < high.completion_time

    def test_high_priority_waits_under_fcfs(self, config, factory, pair):
        result = run(config, factory, pair, policy="FCFS")
        high = result.task_by_id(1)
        # Queued behind the long VGG run: severe slowdown (the Fig 2a story).
        assert high.normalized_turnaround > 3.0


class TestPreemptive:
    def test_hpf_preempts_for_high_priority(self, config, factory, pair):
        result = run(config, factory, pair, policy="HPF",
                     mode=PreemptionMode.STATIC)
        assert result.preemption_count == 1
        high = result.task_by_id(1)
        # Near-isolated latency for the preemptor (the Fig 2c story).
        assert high.normalized_turnaround < 1.5

    def test_preempted_task_resumes_and_finishes_last(self, config, factory, pair):
        result = run(config, factory, pair, policy="HPF",
                     mode=PreemptionMode.STATIC)
        low, high = result.task_by_id(0), result.task_by_id(1)
        assert low.preemption_count == 1
        assert low.completion_time > high.completion_time

    def test_checkpoint_segments_recorded(self, config, factory, pair):
        result = run(config, factory, pair, policy="HPF",
                     mode=PreemptionMode.STATIC)
        kinds = {segment.kind for segment in result.timeline.segments}
        assert SegmentKind.CHECKPOINT in kinds
        assert SegmentKind.RESTORE in kinds

    def test_kill_faster_preemptor_worse_total(self, config, factory, pair):
        ckpt = run(config, factory, pair, policy="HPF",
                   mode=PreemptionMode.STATIC, mechanism="CHECKPOINT")
        kill = run(config, factory, pair, policy="HPF",
                   mode=PreemptionMode.STATIC, mechanism="KILL")
        high_ckpt = ckpt.task_by_id(1).turnaround_cycles
        high_kill = kill.task_by_id(1).turnaround_cycles
        # KILL's preemptor is at least as fast (no checkpoint DMA wait).
        assert high_kill <= high_ckpt * 1.001
        # ... but system throughput suffers (Fig 6a).
        assert compute_metrics(kill.tasks).stp <= compute_metrics(ckpt.tasks).stp

    def test_dynamic_mode_can_drain(self, config, factory):
        # Candidate long, running near its end: Algorithm 3 drains.
        specs = [
            spec(0, "CNN-GN", Priority.LOW, 0.0, config),
            spec(1, "CNN-VN", Priority.HIGH, 0.5, config),
        ]
        result = run(config, factory, specs, policy="HPF",
                     mode=PreemptionMode.DYNAMIC)
        assert result.drain_decisions >= 1
        assert result.task_by_id(0).preemption_count == 0


class TestEnsembleInvariants:
    @pytest.mark.parametrize("policy,mode", [
        ("FCFS", PreemptionMode.NP),
        ("RRB", PreemptionMode.NP),
        ("HPF", PreemptionMode.STATIC),
        ("TOKEN", PreemptionMode.STATIC),
        ("SJF", PreemptionMode.STATIC),
        ("PREMA", PreemptionMode.DYNAMIC),
    ])
    def test_random_workloads_complete_under_every_policy(
        self, config, factory, policy, mode
    ):
        workload = WorkloadGenerator(seed=99).generate(num_tasks=6)
        simulator = NPUSimulator(
            SimulationConfig(npu=config, mode=mode), make_policy(policy)
        )
        tasks = factory.build_workload(workload)
        result = simulator.run(tasks)
        assert all(task.is_done for task in result.tasks)
        result.timeline.verify_no_overlap()
        for task in result.tasks:
            # Starvation freedom: everything eventually finishes with a
            # finite slowdown.
            assert task.normalized_turnaround < 1000

    def test_same_seed_same_results(self, config, factory):
        workload = WorkloadGenerator(seed=7).generate(num_tasks=5)
        sim = NPUSimulator(
            SimulationConfig(npu=config, mode=PreemptionMode.DYNAMIC),
            make_policy("PREMA"),
        )
        first = sim.run(factory.build_workload(workload))
        second = sim.run(factory.build_workload(workload))
        for a, b in zip(first.tasks, second.tasks):
            assert a.completion_time == b.completion_time
