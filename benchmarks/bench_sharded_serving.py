"""Extension bench: router batching + pipeline-sharded gang dispatch.

Runs the ``sharded_serving`` experiment's quick ensemble (3 seeds, 200
tasks, 4 NPUs at 2.5x overload over an NVLink-class fabric) and asserts
its headline ordering: batching -- with and without pipeline sharding on
top -- beats one-task-one-device dispatch on aggregate throughput, and
sharding does not give the tail latency back.  The row set lands in
``benchmarks/results/BENCH_sharded_serving.json`` (uploaded as a CI
artifact by the bench-smoke job, like ``BENCH_cluster_scaling.json``).
"""

import json
import pathlib

from repro.analysis.experiments.sharded_serving import (
    format_sharded_serving,
    run_sharded_serving,
)

RESULTS = (
    pathlib.Path(__file__).parent / "results" / "BENCH_sharded_serving.json"
)


def test_sharded_serving(benchmark, config, emit):
    rows = benchmark.pedantic(
        run_sharded_serving,
        kwargs=dict(config=config, quick=True),
        rounds=1,
        iterations=1,
    )
    emit("sharded_serving", format_sharded_serving(rows))
    RESULTS.parent.mkdir(exist_ok=True)
    RESULTS.write_text(
        json.dumps(
            [row.__dict__ for row in rows], indent=2, sort_keys=True
        )
        + "\n"
    )
    by_mode = {r.mode: r for r in rows}
    single = by_mode["single-device"]
    # Router batching pays for itself at overload...
    assert by_mode["batched"].tasks_per_sec > single.tasks_per_sec
    # ...and sharding the merged dispatches keeps the win while
    # recovering the tail that batching alone gives up.
    assert by_mode["sharded+batched"].tasks_per_sec > single.tasks_per_sec
    assert by_mode["sharded+batched"].p99_turnaround_ms <= \
        by_mode["batched"].p99_turnaround_ms * 1.05
    # The levers actually engaged (guards against silently measuring
    # three identical configurations).
    assert by_mode["batched"].mean_batch_size > 1.2
    assert by_mode["sharded+batched"].sharded_dispatches > 0.0
