"""On-chip buffer occupancy model: UBUF, ACCQ, weight buffer (Sec II-B/IV-B).

The preemption mechanisms need to know, for any point within a layer's
execution, how many bytes of *distinct context state* must be checkpointed
to resume later.  Per Sec IV-B:

- weights never change during inference -> never checkpointed;
- CONV/FC/RECR are out-of-place -> the checkpointable state is the newly
  derived output activations resident in UBUF plus the in-flight partial
  output tile in ACCQ;
- fused ACTV/POOL are in-place -> they add no extra state.

Output activations of the running layer stay in UBUF (they feed the next
layer without a DRAM round-trip), so the resident output footprint grows
with layer progress and is capped by the UBUF capacity.
"""

from __future__ import annotations

import dataclasses

from repro.npu.config import NPUConfig


@dataclasses.dataclass(frozen=True)
class CheckpointProfile:
    """Checkpoint-size model of a single layer.

    ``bytes_at(tiles_done)`` returns the checkpointable state size when the
    layer has committed ``tiles_done`` of its ``total_tiles`` output tiles.
    """

    #: Bytes of output activations committed per completed tile.
    out_bytes_per_tile: float
    #: Total output tiles in the layer.
    total_tiles: int
    #: Cap on resident output bytes (UBUF capacity).
    ubuf_cap_bytes: int
    #: In-flight partial-tile bytes held in the accumulator queue.
    accq_bytes: int

    def __post_init__(self) -> None:
        if self.out_bytes_per_tile < 0:
            raise ValueError("out_bytes_per_tile must be >= 0")
        if self.total_tiles < 0:
            raise ValueError("total_tiles must be >= 0")
        if self.ubuf_cap_bytes < 0 or self.accq_bytes < 0:
            raise ValueError("capacities must be >= 0")

    def bytes_at(self, tiles_done: int) -> float:
        """Checkpointable bytes after ``tiles_done`` committed tiles."""
        if tiles_done < 0:
            raise ValueError("tiles_done must be >= 0")
        tiles_done = min(tiles_done, self.total_tiles)
        resident = min(tiles_done * self.out_bytes_per_tile, self.ubuf_cap_bytes)
        # A partial output tile sits in ACCQ only while the layer is running.
        in_flight = self.accq_bytes if tiles_done < self.total_tiles else 0
        return resident + in_flight

    @property
    def max_bytes(self) -> float:
        """Worst-case checkpoint size for this layer."""
        if self.total_tiles == 0:
            return 0.0
        full = min(
            self.total_tiles * self.out_bytes_per_tile, float(self.ubuf_cap_bytes)
        )
        # Worst case is just before the final tile commits: near-full UBUF
        # plus the in-flight ACCQ tile.
        near_full = min(
            (self.total_tiles - 1) * self.out_bytes_per_tile,
            float(self.ubuf_cap_bytes),
        )
        return max(full, near_full + self.accq_bytes)


def layer_checkpoint_profile(
    config: NPUConfig,
    out_elems_per_tile: float,
    total_tiles: int,
) -> CheckpointProfile:
    """Build a :class:`CheckpointProfile` for a layer.

    ``out_elems_per_tile`` is the average number of output elements a tile
    commits (output tiles are SW x ACC at most; reduction (k) tiles commit
    only on the last k step -- callers fold that in).
    """
    accq = min(
        config.output_tile_elems * config.accum_bytes,
        config.accq_bytes,
    )
    return CheckpointProfile(
        out_bytes_per_tile=out_elems_per_tile * config.data_bytes,
        total_tiles=total_tiles,
        ubuf_cap_bytes=config.ubuf_bytes,
        accq_bytes=accq,
    )


@dataclasses.dataclass
class BufferTracker:
    """Mutable occupancy tracker for tests and the cycle simulator.

    Tracks bytes resident in each on-chip structure and raises when a
    producer would overflow a buffer -- the compiler sizes tiles so this
    never happens on the shipped models, and tests assert that.
    """

    config: NPUConfig
    ubuf_used: int = 0
    wbuf_used: int = 0
    accq_used: int = 0

    def allocate_ubuf(self, num_bytes: int) -> None:
        if num_bytes < 0:
            raise ValueError("num_bytes must be >= 0")
        if self.ubuf_used + num_bytes > self.config.ubuf_bytes:
            raise OverflowError(
                f"UBUF overflow: {self.ubuf_used} + {num_bytes} "
                f"> {self.config.ubuf_bytes}"
            )
        self.ubuf_used += num_bytes

    def free_ubuf(self, num_bytes: int) -> None:
        if num_bytes < 0 or num_bytes > self.ubuf_used:
            raise ValueError("invalid UBUF free")
        self.ubuf_used -= num_bytes

    def allocate_wbuf(self, num_bytes: int) -> None:
        if num_bytes < 0:
            raise ValueError("num_bytes must be >= 0")
        if self.wbuf_used + num_bytes > self.config.wbuf_bytes:
            raise OverflowError(
                f"weight buffer overflow: {self.wbuf_used} + {num_bytes} "
                f"> {self.config.wbuf_bytes}"
            )
        self.wbuf_used += num_bytes

    def free_wbuf(self, num_bytes: int) -> None:
        if num_bytes < 0 or num_bytes > self.wbuf_used:
            raise ValueError("invalid weight buffer free")
        self.wbuf_used -= num_bytes

    def fill_accq(self, num_bytes: int) -> None:
        if num_bytes < 0:
            raise ValueError("num_bytes must be >= 0")
        if self.accq_used + num_bytes > self.config.accq_bytes:
            raise OverflowError("ACCQ overflow")
        self.accq_used += num_bytes

    def drain_accq(self) -> int:
        drained = self.accq_used
        self.accq_used = 0
        return drained

    def reset(self) -> None:
        self.ubuf_used = 0
        self.wbuf_used = 0
        self.accq_used = 0
