"""Extension experiment: proactive migration vs reactive restart under churn.

The churn subsystem (:mod:`repro.sched.faults`) revokes devices out from
under the cluster: spot revocations announce the reclaim a short warning
window in advance, then the device goes down for an outage far longer
than any single request.  Two recovery disciplines compete at *matched*
churn (the same seeded :class:`ChurnSchedule` drives both arms):

- **reactive restart** (``proactive_migration=False``) -- the device
  keeps executing until the deadline; everything resident is killed,
  non-durable progress is lost, and orphans restart from scratch on the
  survivors.
- **proactive migration** (``proactive_migration=True``) -- the Parcae
  discipline: a warned device immediately stops accepting work, drains
  durable checkpoints and queued tasks over the interconnect, and
  checkpoint-then-migrates its running task when the window affords the
  transfer.

The regime mirrors ``cluster_migration``'s hog setup (4 devices, ~85%
per-device utilization, 60% estimate error) with spot-style churn on
top: ~0.5 ms warnings against ~50 ms outages, a few revocations per run.
Short warnings keep the proactive arm honest -- a drained device idles
for the rest of its window, so evacuation only pays when the outage it
dodges is much longer than the warning it wastes.

Headline claim (pinned by ``tests/test_churn_experiment.py``): at the
same churn schedule, proactive migration beats reactive restart on
**goodput under churn** and on **work lost per run**, while the no-churn
baseline row calibrates how much goodput the churn itself costs.
"""

from __future__ import annotations

import copy
import dataclasses
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.reporting import format_table
from repro.npu.config import NPUConfig
from repro.sched.cluster import ClusterConfig, ClusterScheduler, RoutingPolicy
from repro.sched.faults import ChurnSchedule
from repro.sched.metrics import compute_cluster_metrics
from repro.sched.simulator import PreemptionMode, SimulationConfig
from repro.workloads.trace import (
    DEFAULT_MEAN_INTERARRIVAL_CYCLES,
    synthetic_trace_runtimes,
)

#: Trace regime: same hog setup as ``cluster_migration`` -- ~85%
#: per-device utilization on 4 devices, 60% estimate error.
NUM_DEVICES = 4
NUM_TASKS = 120
ESTIMATE_ERROR = 0.6
FULL_SEEDS: Tuple[int, ...] = tuple(range(3, 19))
#: Quick mode (CI / tier-1): a seed subset that keeps the headline
#: ordering while running in a couple of seconds.
QUICK_SEEDS: Tuple[int, ...] = (8, 9, 10, 11)

#: Spot-style churn: ~0.5 ms advance warning (0.35M cycles at 700 MHz)
#: against ~50 ms outages (35M cycles), ~3 revocations per run.  The
#: asymmetry is the point -- evacuation wastes the warning window but
#: dodges the outage, so warnings must be short relative to outages for
#: proactive migration to pay (see the module docstring).
MEAN_WARNING_CYCLES = 0.35e6
MEAN_OUTAGE_CYCLES = 35e6
REVOCATIONS_PER_RUN = 3.0


@dataclasses.dataclass(frozen=True)
class ChurnRow:
    """One recovery-discipline measurement, averaged over seeds."""

    mode: str
    goodput_under_churn: float
    work_lost_mcycles: float
    restarts_per_task: float
    recovery_p99_ms: float
    lost_tasks: float
    migrations: float
    makespan_ms: float


def _churn_schedule(seed: int, horizon_cycles: float,
                    num_devices: int) -> ChurnSchedule:
    """The matched schedule both arms run under (pure function of seed)."""
    return ChurnSchedule.generate(
        num_devices,
        horizon_cycles=horizon_cycles,
        seed=seed,
        revocation_rate=REVOCATIONS_PER_RUN / horizon_cycles,
        mean_outage_cycles=MEAN_OUTAGE_CYCLES,
        mean_warning_cycles=MEAN_WARNING_CYCLES,
    )


def run_device_churn(
    config: Optional[NPUConfig] = None,
    num_devices: int = NUM_DEVICES,
    num_tasks: int = NUM_TASKS,
    seeds: Optional[Sequence[int]] = None,
    quick: bool = False,
) -> List[ChurnRow]:
    config = config or NPUConfig()
    if seeds is None:
        seeds = QUICK_SEEDS if quick else FULL_SEEDS
    traces = [
        synthetic_trace_runtimes(
            num_tasks,
            seed=seed,
            mean_interarrival_cycles=(
                DEFAULT_MEAN_INTERARRIVAL_CYCLES / num_devices
            ),
            estimate_error=ESTIMATE_ERROR,
        )
        for seed in seeds
    ]
    schedules = [
        _churn_schedule(
            seed, max(t.spec.arrival_cycles for t in trace), num_devices
        )
        for seed, trace in zip(seeds, traces)
    ]
    arms: Tuple[Tuple[str, bool, bool], ...] = (
        ("no-churn", False, False),
        ("reactive-restart", True, False),
        ("proactive-migration", True, True),
    )
    rows: List[ChurnRow] = []
    for mode, churned, proactive in arms:
        goodputs, lost_work, restarts = [], [], []
        recoveries, lost_counts, moves, makespans = [], [], [], []
        for trace, schedule in zip(traces, schedules):
            scheduler = ClusterScheduler(
                num_devices,
                SimulationConfig(npu=config, mode=PreemptionMode.DYNAMIC),
                config=ClusterConfig(
                    policy_name="PREMA",
                    routing=RoutingPolicy.ONLINE_PREDICTED,
                    churn=schedule if churned else None,
                    proactive_migration=proactive,
                ),
            )
            # Fresh runtimes per run: the scheduler mutates them.
            result = scheduler.run([copy.deepcopy(t) for t in trace])
            metrics = compute_cluster_metrics(result)
            goodputs.append(metrics.goodput_under_churn)
            lost_work.append(metrics.work_lost_cycles / 1e6)
            restarts.append(metrics.restarts_per_task)
            recoveries.append(
                config.cycles_to_ms(metrics.recovery_p99_cycles)
            )
            lost_counts.append(metrics.lost_task_count)
            moves.append(result.migration_count)
            makespans.append(config.cycles_to_ms(metrics.makespan_cycles))
        rows.append(
            ChurnRow(
                mode=mode,
                goodput_under_churn=float(np.mean(goodputs)),
                work_lost_mcycles=float(np.mean(lost_work)),
                restarts_per_task=float(np.mean(restarts)),
                recovery_p99_ms=float(np.mean(recoveries)),
                lost_tasks=float(np.mean(lost_counts)),
                migrations=float(np.mean(moves)),
                makespan_ms=float(np.mean(makespans)),
            )
        )
    return rows


def format_device_churn(rows: Sequence[ChurnRow]) -> str:
    return format_table(
        ("mode", "goodput", "work_lost_Mcyc", "restarts/task",
         "recovery_p99_ms", "lost", "moves", "makespan_ms"),
        [
            (r.mode, r.goodput_under_churn, r.work_lost_mcycles,
             r.restarts_per_task, r.recovery_p99_ms, r.lost_tasks,
             r.migrations, r.makespan_ms)
            for r in rows
        ],
        title=(
            "Extension: proactive migration vs reactive restart under "
            "matched spot churn (4 NPUs, hog regime)"
        ),
    )
