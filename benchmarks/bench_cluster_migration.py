"""Extension bench: checkpoint migration over a modeled interconnect."""

from repro.analysis.experiments.cluster_migration import (
    format_cluster_migration,
    run_cluster_migration,
)


def test_cluster_migration(benchmark, config, emit):
    rows = benchmark.pedantic(
        run_cluster_migration,
        kwargs=dict(config=config, quick=True),
        rounds=1,
        iterations=1,
    )
    emit("cluster_migration", format_cluster_migration(rows))
    by_key = {(r.routing, r.interconnect): r for r in rows}
    stealing = by_key[("work-stealing", "pcie-gen3")]
    migration = by_key[("preemptive-migration", "pcie-gen3")]
    # The headline: shipping preempted tasks' checkpoints beats moving
    # only never-dispatched work on high-priority tail latency, even on
    # the bandwidth-constrained fabric.
    assert migration.hp_p99_ms < stealing.hp_p99_ms
    # And it actually used the fabric.
    assert migration.checkpoint_migrations > 0
    assert migration.migrated_mb > 0
    # A faster fabric never hurts the tail.
    nvlink = by_key[("preemptive-migration", "nvlink")]
    assert nvlink.hp_p99_ms <= migration.hp_p99_ms * 1.10
