"""Cluster control-plane cost must not grow with the fleet size.

The companion to `tests/test_hotpath_scaling.py` one level up: that test
pins per-event cost flat in *trace length* on one device; this one pins
it flat in *device count* across the cluster loop.  At fixed per-device
load (arrival rate scaled with the fleet) the work an O(log d) control
plane does per event is dominated by the per-device scheduler, so the
measured cost from 4 to 64 devices must stay within a small constant --
the pre-index loop's O(d) next-event scan, O(d x live) routing scan, and
O(d) termination sum made it grow roughly linearly instead.

Runs the *default* configuration, which resolves the control plane per
fleet size (linear loop below INDEXED_CONTROL_PLANE_MIN_DEVICES,
indexes at and above it) -- the flatness claim is about what users get
without tuning anything.
"""

import time

from repro.npu.config import NPUConfig
from repro.sched.cluster import ClusterScheduler, RoutingPolicy
from repro.sched.simulator import PreemptionMode, SimulationConfig
from repro.workloads.trace import (
    DEFAULT_MEAN_INTERARRIVAL_CYCLES,
    synthetic_trace_runtimes,
)

#: Generous bound: post-index the measured 4 -> 64 device ratio is ~1x;
#: the pre-index loop measured >5x.  Anything above this means per-event
#: control-plane cost has started scaling with the fleet again.
MAX_PER_EVENT_GROWTH = 3.0

TASKS_PER_DEVICE = 50


def _config() -> SimulationConfig:
    return SimulationConfig(
        npu=NPUConfig(),
        mode=PreemptionMode.DYNAMIC,
        mechanism="CHECKPOINT",
    )


def _us_per_event(num_devices: int, seed: int = 31) -> float:
    best = float("inf")
    for attempt in range(2):  # best-of-2 absorbs scheduler hiccups
        runtimes = synthetic_trace_runtimes(
            num_devices * TASKS_PER_DEVICE,
            seed=seed + attempt,
            mean_interarrival_cycles=(
                DEFAULT_MEAN_INTERARRIVAL_CYCLES / num_devices
            ),
        )
        scheduler = ClusterScheduler(
            num_devices=num_devices,
            simulation_config=_config(),
            policy_name="PREMA",
            routing=RoutingPolicy.WORK_STEALING,
            seed=seed,
        )
        start = time.perf_counter()
        result = scheduler.run(runtimes)
        elapsed = time.perf_counter() - start
        assert len(result.tasks) == num_devices * TASKS_PER_DEVICE
        best = min(best, 1e6 * elapsed / result.events_processed)
    return best


def test_per_event_cost_flat_from_4_to_64_devices():
    small = _us_per_event(4)
    large = _us_per_event(64)
    assert large <= small * MAX_PER_EVENT_GROWTH, (
        f"per-event cost grew {large / small:.1f}x from 4 to 64 devices "
        f"({small:.1f} -> {large:.1f} us/event): the cluster control "
        "plane is scaling with the fleet size again"
    )
