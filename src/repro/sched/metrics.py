"""Multi-program scheduling metrics (paper Sec III "Metrics", Eq 1-2).

Implements Eyerman & Eeckhout's system-level metrics plus the paper's
QoS measures:

- NTT_i   = C_multi_i / C_single_i           (per-task slowdown)
- ANTT    = (1/n) * sum_i NTT_i              (lower is better)
- STP     = sum_i C_single_i / C_multi_i     (higher is better)
- Fairness = min_{i,j} PP_i / PP_j, with priority-weighted progress
  PP_i = (C_single_i / C_multi_i) / (Priority_i / sum_j Priority_j)
- SLA violation rate at target N: fraction of tasks whose turnaround
  exceeds N x C_single (Sec VI-C)
- percentile tail latency of (high-priority) tasks (Fig 14)
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.tokens import PRIORITY_TOKENS, Priority
from repro.sched.task import TaskRuntime
from repro.serving.slo import DEFAULT_SLOS, QoSClass, SLOPolicy, qos_of

#: QoS class by its tag value, for the per-class metric dictionaries.
_QOS_BY_VALUE = {qos.value: qos for qos in QoSClass}


@dataclasses.dataclass(frozen=True)
class WorkloadMetrics:
    """Aggregate metrics of one completed multi-tasked workload."""

    antt: float
    stp: float
    fairness: float
    ntt_by_task: Dict[int, float]
    turnaround_by_task: Dict[int, float]

    @property
    def num_tasks(self) -> int:
        return len(self.ntt_by_task)


def tail_percentile(samples: Sequence[float], percentile: float) -> float:
    """Conservative tail percentile for small samples.

    ``np.percentile``'s default linear interpolation blends the two
    order statistics around the target rank, which *understates* the
    tail whenever fewer than ~100 samples exist (a 10-sample p99 lands
    a hair above the 9th-largest value instead of on the maximum).
    Tail metrics are alarms, so they pin ``method="higher"``: take the
    first order statistic at or above the target rank, never below it.
    """
    return float(np.percentile(np.asarray(samples), percentile, method="higher"))


def _require_completed(tasks: Sequence[TaskRuntime]) -> None:
    for task in tasks:
        if not task.is_done:
            raise ValueError(f"task {task.task_id} has not completed")


def priority_weight(priority: Priority) -> int:
    """Priority_i in Eq 2: the user-defined token value (1/3/9)."""
    return PRIORITY_TOKENS[priority]


def compute_metrics(tasks: Sequence[TaskRuntime]) -> WorkloadMetrics:
    """ANTT / STP / fairness for one completed workload (Eq 1-2)."""
    _require_completed(tasks)
    if not tasks:
        raise ValueError("need at least one task")
    ntts = {task.task_id: task.normalized_turnaround for task in tasks}
    turnarounds = {task.task_id: task.turnaround_cycles for task in tasks}
    antt = sum(ntts.values()) / len(ntts)
    stp = sum(1.0 / ntt for ntt in ntts.values())
    total_weight = sum(priority_weight(task.spec.priority) for task in tasks)
    progress = []
    for task in tasks:
        speedup = task.isolated_cycles / task.turnaround_cycles
        share = priority_weight(task.spec.priority) / total_weight
        progress.append(speedup / share)
    fairness = min(progress) / max(progress) if len(progress) > 1 else 1.0
    return WorkloadMetrics(
        antt=antt,
        stp=stp,
        fairness=fairness,
        ntt_by_task=ntts,
        turnaround_by_task=turnarounds,
    )


def sla_violation_rate(
    tasks: Sequence[TaskRuntime], sla_multiplier: float
) -> float:
    """Fraction of tasks violating SLA target N x C_single (Sec VI-C)."""
    _require_completed(tasks)
    if sla_multiplier <= 0:
        raise ValueError("sla_multiplier must be positive")
    if not tasks:
        raise ValueError("need at least one task")
    violations = sum(
        1
        for task in tasks
        if task.turnaround_cycles > sla_multiplier * task.isolated_cycles
    )
    return violations / len(tasks)


def tail_latency_cycles(
    tasks: Sequence[TaskRuntime],
    percentile: float = 95.0,
    priority: Optional[Priority] = Priority.HIGH,
    benchmark: Optional[str] = None,
) -> float:
    """Percentile turnaround of the selected tasks (Fig 14's 95%-ile).

    ``priority``/``benchmark`` filter the population; pass None to keep
    all.  Raises when the filter selects nothing.
    """
    _require_completed(tasks)
    if not 0 < percentile <= 100:
        raise ValueError("percentile must be in (0, 100]")
    selected = [
        task.turnaround_cycles
        for task in tasks
        if (priority is None or task.spec.priority == priority)
        and (benchmark is None or task.spec.benchmark == benchmark)
    ]
    if not selected:
        raise ValueError("no tasks match the tail-latency filter")
    return float(np.percentile(np.asarray(selected), percentile))


@dataclasses.dataclass(frozen=True)
class EnsembleMetrics:
    """Metrics averaged over an ensemble of workloads (25 runs, Sec VI)."""

    mean_antt: float
    mean_stp: float
    mean_fairness: float
    per_workload: Tuple[WorkloadMetrics, ...]

    @property
    def num_workloads(self) -> int:
        return len(self.per_workload)


def aggregate_metrics(
    workload_results: Iterable[Sequence[TaskRuntime]],
) -> EnsembleMetrics:
    """Average metrics across independently simulated workloads."""
    per_workload: List[WorkloadMetrics] = [
        compute_metrics(tasks) for tasks in workload_results
    ]
    if not per_workload:
        raise ValueError("need at least one workload")
    return EnsembleMetrics(
        mean_antt=float(np.mean([m.antt for m in per_workload])),
        mean_stp=float(np.mean([m.stp for m in per_workload])),
        mean_fairness=float(np.mean([m.fairness for m in per_workload])),
        per_workload=tuple(per_workload),
    )


def improvement_over_baseline(
    metrics: EnsembleMetrics, baseline: EnsembleMetrics
) -> Dict[str, float]:
    """Normalized improvements the paper's Figs 11/12/15 report.

    ANTT improves when it *drops*, so its improvement is baseline/policy;
    STP and fairness improve when they *rise*, so policy/baseline.
    """
    return {
        "antt": baseline.mean_antt / metrics.mean_antt,
        "stp": metrics.mean_stp / baseline.mean_stp,
        "fairness": metrics.mean_fairness / baseline.mean_fairness,
    }


# ----------------------------------------------------------------------
# Cluster-level metrics (node-level scheduling over many NPUs)
# ----------------------------------------------------------------------
def queueing_delay_by_task(tasks: Sequence[TaskRuntime]) -> Dict[int, float]:
    """Cycles each task waited from arrival to its *first* dispatch.

    This is the router-visible queueing delay: time spent pending before
    any NPU started the task (later preemption stalls are not counted).
    """
    _require_completed(tasks)
    delays: Dict[int, float] = {}
    for task in tasks:
        assert task.first_dispatch_time is not None  # completed => dispatched
        delays[task.task_id] = (
            task.first_dispatch_time - task.spec.arrival_cycles
        )
    return delays


def mean_queueing_delay(tasks: Sequence[TaskRuntime]) -> float:
    """Average first-dispatch queueing delay, cycles."""
    delays = queueing_delay_by_task(tasks)
    if not delays:
        raise ValueError("need at least one task")
    return float(np.mean(list(delays.values())))


@dataclasses.dataclass(frozen=True)
class ClusterMetrics:
    """Aggregate metrics of one completed cluster run."""

    makespan_cycles: float
    antt: float
    stp: float
    fairness: float
    mean_queueing_delay_cycles: float
    p95_queueing_delay_cycles: float
    migration_count: int
    mean_utilization: float
    utilization_spread: float
    #: Checkpoint migrations (preempted tasks shipped over the fabric).
    checkpoint_migration_count: int = 0
    #: Total bytes moved over the interconnect (checkpoints + rows).
    migration_bytes_total: float = 0.0
    #: Mean in-flight latency of checkpoint migrations (0 when none).
    mean_migration_latency_cycles: float = 0.0
    #: p99 turnaround of HIGH-priority tasks (0 when the workload has
    #: none) -- the QoS headline checkpoint migration targets.
    p99_high_priority_turnaround_cycles: float = 0.0
    #: Mean NTT of tasks that migrated at least once (0 when none): how
    #: much slowdown a migrated task still ends up with.
    post_migration_antt: float = 0.0
    # -- Serving-control-plane metrics (repro.serving) ------------------
    #: Fraction of *offered* tasks that completed within their QoS class
    #: SLO.  Rejected arrivals count against attainment: refusing a task
    #: is still a missed request, it just fails fast.
    sla_attainment: float = 0.0
    #: Attainment by QoS class value (classes with offered tasks only).
    sla_attainment_by_class: Dict[str, float] = dataclasses.field(
        default_factory=dict
    )
    #: :func:`sla_violation_rate` at each class's slowdown target, over
    #: that class's *completed* tasks (how the executed population fared,
    #: regardless of admission).
    sla_violation_rate_by_class: Dict[str, float] = dataclasses.field(
        default_factory=dict
    )
    #: Fraction of offered tasks the admission frontend refused.
    rejection_rate: float = 0.0
    #: Total defer decisions across the run.
    deferral_count: int = 0
    #: Useful work per cycle: isolated cycles of SLA-met completions
    #: divided by the makespan (in [0, num_devices]).  The PCS-style
    #: throughput measure admission must not sacrifice.
    goodput: float = 0.0
    # -- Job-surface metrics (router batching + pipeline sharding) ------
    #: Dispatches that coalesced more than one request.
    batch_count: int = 0
    #: Mean requests per dispatch (1.0 when nothing coalesced; 0 when the
    #: run completed no work).
    mean_batch_size: float = 0.0
    #: Dispatches executed as multi-device pipeline gangs.
    sharded_job_count: int = 0
    #: Inter-stage activation bytes shipped over the fabric.
    activation_bytes_total: float = 0.0
    # -- Churn metrics (repro.sched.faults) -----------------------------
    #: Useful work per cycle while devices churn: isolated cycles of
    #: *all* completions divided by the makespan -- Parcae's liveput.
    #: (``goodput`` keeps its SLA-met filter; this one asks only
    #: "did the work finish despite the churn".)
    goodput_under_churn: float = 0.0
    #: Ground-truth progress cycles destroyed by device failures.
    work_lost_cycles: float = 0.0
    #: Mean device-failure restarts per offered task.
    restarts_per_task: float = 0.0
    #: p99 failure-to-redispatch delay over all completed recoveries
    #: (0 when the run had no recoveries).
    recovery_p99_cycles: float = 0.0
    #: Tasks destroyed with no surviving capacity to restart on.
    lost_task_count: int = 0
    # -- Rack metrics (repro.sched.rack) --------------------------------
    #: Bytes shipped across the oversubscribed uplink tier (checkpoint
    #: migrations, activation handoffs, evacuations crossing racks).
    cross_rack_migration_bytes: float = 0.0
    #: Mean busy fraction of the per-rack uplinks over the makespan
    #: (0 when the run was flat or moved nothing cross-rack).
    mean_uplink_utilization: float = 0.0
    #: SLA attainment per rack id (racked runs only): completions are
    #: attributed to their final device's rack, so a rack that starved
    #: or churned shows up directly.
    per_rack_attainment: Dict[int, float] = dataclasses.field(
        default_factory=dict
    )


def _serving_metrics(
    result,
    completed: Sequence[TaskRuntime],
    rejected: Sequence[TaskRuntime],
    slos: SLOPolicy,
    lost: Sequence[TaskRuntime] = (),
) -> Dict[str, object]:
    """Per-class SLA attainment, rejection rate, and goodput fields.

    Attainment is measured over *offered* tasks (rejections and
    churn-lost tasks count as missed); the violation-rate view covers
    completed tasks only, at each class's own slowdown target, through
    the same :func:`sla_violation_rate` the fig13 experiment uses.
    """
    offered_by_class: Dict[str, int] = {}
    met_by_class: Dict[str, int] = {}
    completed_by_class: Dict[str, List[TaskRuntime]] = {}
    met_isolated_cycles = 0.0
    for task in completed:
        level = slos.level_for(task.spec)
        qos = level.qos.value
        offered_by_class[qos] = offered_by_class.get(qos, 0) + 1
        completed_by_class.setdefault(qos, []).append(task)
        if level.met_by(task.turnaround_cycles, task.isolated_cycles):
            met_by_class[qos] = met_by_class.get(qos, 0) + 1
            met_isolated_cycles += task.isolated_cycles
    for task in tuple(rejected) + tuple(lost):
        qos = qos_of(task.spec).value
        offered_by_class[qos] = offered_by_class.get(qos, 0) + 1
    attainment_by_class = {
        qos: met_by_class.get(qos, 0) / count
        for qos, count in sorted(offered_by_class.items())
    }
    violation_by_class = {
        qos: sla_violation_rate(
            tasks, slos.levels[_QOS_BY_VALUE[qos]].slowdown_target
        )
        for qos, tasks in sorted(completed_by_class.items())
    }
    offered_total = sum(offered_by_class.values())
    makespan = result.makespan_cycles if completed else 0.0
    # Prefer the result's own properties (ClusterResult defines both) so
    # there is one definition of "offered"; fall back for result-likes.
    rejection_rate = getattr(result, "rejection_rate", None)
    if rejection_rate is None:
        rejection_rate = (
            len(rejected) / offered_total if offered_total else 0.0
        )
    return {
        "sla_attainment": (
            sum(met_by_class.values()) / offered_total if offered_total else 0.0
        ),
        "sla_attainment_by_class": attainment_by_class,
        "sla_violation_rate_by_class": violation_by_class,
        "rejection_rate": float(rejection_rate),
        "deferral_count": int(getattr(result, "deferral_count", 0)),
        "goodput": met_isolated_cycles / makespan if makespan > 0 else 0.0,
    }


def _churn_metrics(
    result,
    completed: Sequence[TaskRuntime],
    rejected: Sequence[TaskRuntime],
    lost: Sequence[TaskRuntime],
) -> Dict[str, object]:
    """Goodput-under-churn, lost work, restart, and recovery fields.

    Duck-typed like the rest of this module: results predating the churn
    fields (or churn-free runs) yield zeros -- every counter below reads
    through ``getattr`` with a zero default.
    """
    makespan = result.makespan_cycles if completed else 0.0
    survivors = tuple(completed) + tuple(lost)
    offered = len(completed) + len(rejected) + len(lost)
    work_lost = sum(
        getattr(task, "lost_progress_cycles", 0.0) for task in survivors
    )
    restarts = sum(getattr(task, "restart_count", 0) for task in survivors)
    recoveries = [
        delay
        for task in survivors
        for delay in getattr(task, "recovery_delays", ())
    ]
    completed_isolated = sum(task.isolated_cycles for task in completed)
    return {
        "goodput_under_churn": (
            completed_isolated / makespan if makespan > 0 else 0.0
        ),
        "work_lost_cycles": float(work_lost),
        "restarts_per_task": restarts / offered if offered else 0.0,
        "recovery_p99_cycles": (
            tail_percentile(recoveries, 99.0) if recoveries else 0.0
        ),
        "lost_task_count": len(lost),
    }


def _rack_metrics(
    result,
    completed: Sequence[TaskRuntime],
    slos: SLOPolicy,
) -> Dict[str, object]:
    """Cross-rack traffic, uplink utilization, and per-rack attainment.

    Duck-typed like the rest of this module: flat results (``rack_of``
    absent or None) yield zeros and an empty per-rack map.  Uplink busy
    time comes from the transfer records themselves -- each cross-rack
    record holds its source rack's uplink for ``[start, end)`` and the
    fabric serializes records per link, so summing durations never
    double-counts.
    """
    rack_of = getattr(result, "rack_of", None)
    if not rack_of:
        return {
            "cross_rack_migration_bytes": 0.0,
            "mean_uplink_utilization": 0.0,
            "per_rack_attainment": {},
        }
    num_racks = max(rack_of) + 1
    transfers = tuple(getattr(result, "transfers", ()))
    cross = [t for t in transfers if getattr(t, "cross_rack", False)]
    cross_bytes = float(sum(t.num_bytes for t in cross))
    busy = [0.0] * num_racks
    for record in cross:
        busy[rack_of[record.src_device]] += (
            record.end_cycles - record.start_cycles
        )
    makespan = result.makespan_cycles if completed else 0.0
    mean_uplink = (
        sum(busy) / (num_racks * makespan) if makespan > 0 else 0.0
    )
    assignments = getattr(result, "assignments", {})
    completed_by_rack: Dict[int, int] = {}
    met_by_rack: Dict[int, int] = {}
    for task in completed:
        device = assignments.get(task.task_id)
        if device is None:
            continue
        rack = rack_of[device]
        completed_by_rack[rack] = completed_by_rack.get(rack, 0) + 1
        level = slos.level_for(task.spec)
        if level.met_by(task.turnaround_cycles, task.isolated_cycles):
            met_by_rack[rack] = met_by_rack.get(rack, 0) + 1
    return {
        "cross_rack_migration_bytes": cross_bytes,
        "mean_uplink_utilization": mean_uplink,
        "per_rack_attainment": {
            rack: met_by_rack.get(rack, 0) / count
            for rack, count in sorted(completed_by_rack.items())
        },
    }


def _job_metrics(result) -> Dict[str, object]:
    """Batching/sharding fields from the result's ``batches`` records.

    Duck-typed like the rest of this module: results without a job
    surface (plain task runs, older result-likes) yield zeros.
    """
    batches = tuple(getattr(result, "batches", ()))
    transfers = tuple(getattr(result, "transfers", ()))
    sizes = [b.batch_size for b in batches]
    if sizes:
        mean_size = float(sum(sizes)) / len(sizes)
    else:
        mean_size = 1.0 if tuple(getattr(result, "tasks", ())) else 0.0
    return {
        "batch_count": sum(1 for b in batches if b.batch_size > 1),
        "mean_batch_size": mean_size,
        "sharded_job_count": sum(1 for b in batches if b.num_stages > 1),
        "activation_bytes_total": float(
            sum(
                t.num_bytes
                for t in transfers
                if getattr(t, "purpose", "checkpoint") == "activation"
            )
        ),
    }


def compute_cluster_metrics(
    result, slos: Optional[SLOPolicy] = None
) -> ClusterMetrics:
    """Summarize a :class:`~repro.sched.cluster.ClusterResult`.

    Duck-typed on the result's ``tasks``/``migrations``/
    ``device_utilization()`` surface so this module stays import-light.
    ``slos`` sets the QoS-class objectives the serving fields are scored
    against (default: :data:`repro.serving.slo.DEFAULT_SLOS`).  A result
    whose admission frontend rejected *every* arrival yields zeroed
    workload metrics instead of raising.
    """
    slos = slos or DEFAULT_SLOS
    completed = tuple(result.tasks)
    rejected = tuple(getattr(result, "rejected_tasks", ()))
    lost = tuple(getattr(result, "lost_tasks", ()))
    serving = _serving_metrics(result, completed, rejected, slos, lost)
    serving.update(_job_metrics(result))
    serving.update(_churn_metrics(result, completed, rejected, lost))
    serving.update(_rack_metrics(result, completed, slos))
    if not completed:
        return ClusterMetrics(
            makespan_cycles=0.0,
            antt=0.0,
            stp=0.0,
            fairness=0.0,
            mean_queueing_delay_cycles=0.0,
            p95_queueing_delay_cycles=0.0,
            migration_count=0,
            mean_utilization=0.0,
            utilization_spread=0.0,
            **serving,
        )
    workload = compute_metrics(result.tasks)
    delays = list(queueing_delay_by_task(result.tasks).values())
    utilization = result.device_utilization()
    migrations = getattr(result, "migrations", ())
    checkpoint_moves = [
        m for m in migrations if getattr(m, "kind", "steal") == "checkpoint"
    ]
    bytes_total = getattr(
        result,
        "migrated_bytes_total",
        sum(getattr(m, "bytes_moved", 0.0) for m in migrations),
    )
    high_priority = [
        task.turnaround_cycles
        for task in result.tasks
        if task.spec.priority == Priority.HIGH
    ]
    migrated_ntts = [
        task.normalized_turnaround
        for task in result.tasks
        if getattr(task, "migration_count", 0) > 0
    ]
    return ClusterMetrics(
        makespan_cycles=result.makespan_cycles,
        antt=workload.antt,
        stp=workload.stp,
        fairness=workload.fairness,
        mean_queueing_delay_cycles=float(np.mean(delays)),
        p95_queueing_delay_cycles=float(np.percentile(np.asarray(delays), 95.0)),
        migration_count=len(migrations),
        mean_utilization=float(np.mean(utilization)),
        utilization_spread=float(np.max(utilization) - np.min(utilization)),
        checkpoint_migration_count=len(checkpoint_moves),
        migration_bytes_total=float(bytes_total),
        mean_migration_latency_cycles=(
            float(np.mean([m.latency_cycles for m in checkpoint_moves]))
            if checkpoint_moves
            else 0.0
        ),
        p99_high_priority_turnaround_cycles=(
            tail_percentile(high_priority, 99.0) if high_priority else 0.0
        ),
        post_migration_antt=(
            float(np.mean(migrated_ntts)) if migrated_ntts else 0.0
        ),
        **serving,
    )
