"""Open-arrival trace generation (repro.workloads.trace)."""

import pytest

from repro.models.zoo import CNN_BENCHMARKS
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.trace import (
    DEFAULT_MEAN_INTERARRIVAL_CYCLES,
    TraceGenerator,
    synthetic_profile,
    synthetic_runtime,
    synthetic_trace_runtimes,
)


def make_generator(seed=0):
    return TraceGenerator(seed=seed, benchmarks=CNN_BENCHMARKS, profiles={})


class TestPoissonTrace:
    def test_shape_and_ordering(self):
        trace = make_generator().generate_poisson(500)
        assert len(trace) == 500
        arrivals = [task.arrival_cycles for task in trace.tasks]
        assert arrivals == sorted(arrivals)
        assert [task.task_id for task in trace.tasks] == list(range(500))

    def test_mean_interarrival_close_to_requested(self):
        mean = 1e6
        trace = make_generator(seed=3).generate_poisson(4000, mean)
        arrivals = [task.arrival_cycles for task in trace.tasks]
        gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
        measured = sum(gaps) / len(gaps)
        assert measured == pytest.approx(mean, rel=0.1)

    def test_seeded_determinism(self):
        one = make_generator(seed=7).generate_poisson(100)
        two = make_generator(seed=7).generate_poisson(100)
        assert one == two
        other = make_generator(seed=8).generate_poisson(100)
        assert other != one

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            make_generator().generate_poisson(0)
        with pytest.raises(ValueError):
            make_generator().generate_poisson(10, mean_interarrival_cycles=0)


class TestBurstyTrace:
    def test_burstier_than_poisson(self):
        """Bursty traces concentrate arrivals: the squared coefficient of
        variation of inter-arrival gaps clearly exceeds the ~1 of a
        Poisson process."""
        seed = 11
        poisson = make_generator(seed).generate_poisson(3000)
        bursty = make_generator(seed).generate_bursty(3000)

        def scv(workload):
            arrivals = [task.arrival_cycles for task in workload.tasks]
            gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
            mean = sum(gaps) / len(gaps)
            var = sum((g - mean) ** 2 for g in gaps) / len(gaps)
            return var / mean**2

        assert scv(bursty) > 2.0 * scv(poisson)

    def test_long_run_rate_matches_requested(self):
        mean = 1e6
        trace = make_generator(seed=5).generate_bursty(4000, mean)
        span = trace.tasks[-1].arrival_cycles - trace.tasks[0].arrival_cycles
        assert span / len(trace) == pytest.approx(mean, rel=0.25)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            make_generator().generate_bursty(10, burst_size_mean=0.5)
        with pytest.raises(ValueError):
            make_generator().generate_bursty(10, burst_spread_cycles=-1.0)


class TestGeometricBurstDraw:
    """Statistical regression pin for the geometric burst-size draw.

    The pre-fix draw floor-truncated an exponential with mean
    ``mean - 1``, whose floor has mean ``1/(e^(1/(m-1)) - 1)`` -- biased
    ~0.4-0.5 low at any mean (e.g. 7.02 extra tasks instead of 7.00 only
    after the fix; the old draw gave ~6.52 at ``mean=8``).  A true
    geometric draw ``floor(ln(1-U)/ln(1-p))`` with ``p = 1/mean`` has
    the exact extra-burst mean ``mean - 1``.
    """

    def test_extra_burst_mean_is_unbiased(self):
        for mean in (2.0, 4.0, 8.0):
            gen = make_generator(seed=int(mean))
            draws = [gen._draw_geometric(mean) for _ in range(200_000)]
            measured = sum(draws) / len(draws)
            # The old floor-truncated-exponential draw sat ~0.42-0.48
            # below mean - 1 -- far outside this 2% band.
            assert measured == pytest.approx(mean - 1.0, rel=0.02), mean

    def test_distribution_is_geometric(self):
        """P(K >= k) must decay as (1 - p)^k -- memoryless in k."""
        mean = 8.0
        gen = make_generator(seed=12)
        draws = [gen._draw_geometric(mean) for _ in range(200_000)]
        n = len(draws)
        p = 1.0 / mean
        for k in (1, 3, 6, 10):
            tail = sum(1 for d in draws if d >= k) / n
            assert tail == pytest.approx((1.0 - p) ** k, rel=0.05), k

    def test_degenerate_mean_yields_no_extras(self):
        gen = make_generator(seed=1)
        assert all(gen._draw_geometric(1.0) == 0 for _ in range(100))

    def test_burst_sizes_average_to_requested_mean(self):
        """End to end: clusters in a bursty trace now really average
        ``burst_size_mean`` tasks (the fixed draw feeds generate_bursty)."""
        mean_size = 8.0
        trace = make_generator(seed=9).generate_bursty(
            40_000, burst_size_mean=mean_size, burst_spread_cycles=0.0
        )
        arrivals = [task.arrival_cycles for task in trace.tasks]
        clusters = 1
        for a, b in zip(arrivals, arrivals[1:]):
            if b != a:  # zero spread: same-cluster tasks share a stamp
                clusters += 1
        assert len(arrivals) / clusters == pytest.approx(mean_size, rel=0.1)


class TestTaskAttributeDrawing:
    def test_trace_tasks_share_workload_generator_vocabulary(self):
        trace = make_generator(seed=2).generate_poisson(200)
        assert {task.benchmark for task in trace.tasks} <= set(CNN_BENCHMARKS)
        assert all(task.batch in (1, 4, 16) for task in trace.tasks)

    def test_uniform_workloads_unchanged_by_refactor(self):
        """The shared _build_tasks refactor must not disturb the seeded
        paper workloads (same RNG call order)."""
        workload = WorkloadGenerator(seed=11).generate(num_tasks=8)
        assert workload.name == "workload-8tasks"
        assert len(workload) == 8
        arrivals = [task.arrival_cycles for task in workload.tasks]
        assert arrivals == sorted(arrivals)


class TestSyntheticRuntimes:
    def test_profile_shape(self):
        profile = synthetic_profile("t", 1000.0, num_layers=4,
                                    tiles_per_layer=10)
        assert profile.total_cycles == pytest.approx(1000.0)
        assert profile.num_layers == 4
        # Preemption points snap to tile boundaries.
        assert profile.next_preemption_point(130.0) == pytest.approx(150.0)
        assert profile.checkpoint_bytes_at(250.0) > 0

    def test_runtime_estimate_error_bounded(self):
        runtimes = synthetic_trace_runtimes(300, seed=1, estimate_error=0.2)
        assert len(runtimes) == 300
        for runtime in runtimes:
            ratio = (
                runtime.context.estimated_cycles / runtime.isolated_cycles
            )
            assert 0.8 <= ratio <= 1.2

    def test_runtime_context_anchored_at_arrival(self):
        trace = make_generator(seed=4).generate_poisson(5)
        runtime = synthetic_runtime(trace.tasks[3], 5000.0)
        assert runtime.context.last_update_cycles == \
            trace.tasks[3].arrival_cycles
        assert runtime.task_id == 3

    def test_default_utilization_is_stable(self):
        """Mean service demand stays below the mean inter-arrival time:
        the default trace regime is contended but stable."""
        runtimes = synthetic_trace_runtimes(2000, seed=6)
        mean_service = sum(r.isolated_cycles for r in runtimes) / len(runtimes)
        assert 0.5 < mean_service / DEFAULT_MEAN_INTERARRIVAL_CYCLES < 1.0


class TestQosTagging:
    def test_assign_qos_tags_every_task(self):
        from repro.workloads.trace import assign_qos

        workload = make_generator(seed=3).generate_poisson(40)
        tagged = assign_qos(
            workload, {"interactive": 1.0, "batch": 1.0}, seed=5
        )
        assert all(t.qos in ("interactive", "batch") for t in tagged.tasks)
        assert {t.qos for t in tagged.tasks} == {"interactive", "batch"}

    def test_tagging_preserves_arrivals_and_attributes(self):
        from repro.workloads.trace import assign_qos

        workload = make_generator(seed=3).generate_poisson(40)
        tagged = assign_qos(workload, {"standard": 1.0}, seed=5)
        for before, after in zip(workload.tasks, tagged.tasks):
            assert after.arrival_cycles == before.arrival_cycles
            assert after.benchmark == before.benchmark
            assert after.batch == before.batch

    def test_align_priority_matches_class(self):
        from repro.core.tokens import Priority
        from repro.workloads.trace import assign_qos

        workload = make_generator(seed=3).generate_poisson(30)
        tagged = assign_qos(
            workload, {"interactive": 1.0, "batch": 2.0}, seed=7
        )
        expected = {"interactive": Priority.HIGH, "batch": Priority.LOW}
        for task in tagged.tasks:
            assert task.priority is expected[task.qos]

    def test_align_priority_off_keeps_priorities(self):
        from repro.workloads.trace import assign_qos

        workload = make_generator(seed=3).generate_poisson(30)
        tagged = assign_qos(
            workload, {"batch": 1.0}, seed=7, align_priority=False
        )
        for before, after in zip(workload.tasks, tagged.tasks):
            assert after.priority is before.priority

    def test_bad_mix_rejected(self):
        from repro.workloads.trace import assign_qos

        workload = make_generator(seed=3).generate_poisson(4)
        with pytest.raises(ValueError):
            assign_qos(workload, {}, seed=1)
        with pytest.raises(ValueError):
            assign_qos(workload, {"batch": -1.0}, seed=1)

    def test_synthetic_runtimes_unchanged_without_tagging(self):
        """qos_mix/estimate_bias default off => bit-identical traces."""
        plain = synthetic_trace_runtimes(20, seed=11)
        again = synthetic_trace_runtimes(20, seed=11)
        for a, b in zip(plain, again):
            assert a.spec == b.spec
            assert a.context.estimated_cycles == b.context.estimated_cycles
            assert a.spec.qos is None

    def test_estimate_bias_scales_named_benchmarks_only(self):
        plain = synthetic_trace_runtimes(40, seed=11)
        biased = synthetic_trace_runtimes(
            40, seed=11, estimate_bias={"CNN-AN": 0.5}
        )
        for a, b in zip(plain, biased):
            assert a.spec == b.spec
            if a.spec.benchmark == "CNN-AN":
                assert b.context.estimated_cycles == pytest.approx(
                    a.context.estimated_cycles * 0.5
                )
            else:
                assert b.context.estimated_cycles == \
                    a.context.estimated_cycles

    def test_qos_mix_keeps_arrival_stream(self):
        plain = synthetic_trace_runtimes(25, seed=13)
        tagged = synthetic_trace_runtimes(
            25, seed=13, qos_mix={"interactive": 1.0, "standard": 1.0}
        )
        for a, b in zip(plain, tagged):
            assert b.spec.arrival_cycles == a.spec.arrival_cycles
            assert b.spec.benchmark == a.spec.benchmark
            assert b.spec.qos in ("interactive", "standard")
