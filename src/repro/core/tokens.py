"""Token accounting for the PREMA scheduler (paper Sec V-C, Table II).

Each dispatched task starts with tokens equal to its user-defined priority
value (low/medium/high -> 1/3/9) and periodically earns additional tokens
proportional to its priority and the slowdown it has suffered while
waiting.  A task becomes a scheduling *candidate* when its tokens exceed a
dynamic threshold derived from the current maximum token count, rounded
down to the closest priority token value (the paper's max=8 -> threshold=3
example).
"""

from __future__ import annotations

import enum
from typing import Dict, Tuple


class Priority(enum.IntEnum):
    """User-defined priority levels (Google-Cloud-style service tiers)."""

    LOW = 0
    MEDIUM = 1
    HIGH = 2


#: Tokens granted per priority level at dispatch (paper Table II).
PRIORITY_TOKENS: Dict[Priority, int] = {
    Priority.LOW: 1,
    Priority.MEDIUM: 3,
    Priority.HIGH: 9,
}

#: Priority token values, ascending (threshold quantization grid).
TOKEN_LEVELS: Tuple[int, ...] = tuple(sorted(PRIORITY_TOKENS.values()))


def initial_tokens(priority: Priority) -> int:
    """Tokens assigned when a task is dispatched (Algorithm 2, line 3)."""
    return PRIORITY_TOKENS[priority]


def token_increment(
    priority: Priority, waited_delta_cycles: float, estimated_cycles: float
) -> float:
    """Tokens earned over one scheduling period (Algorithm 2, line 7).

    ``Slowdown_normalized`` is the waiting time accrued since the last
    grant, normalized by the task's estimated isolated execution time, so
    short tasks accumulate tokens proportionally faster (DESIGN.md #3).
    """
    if waited_delta_cycles < 0:
        raise ValueError("waited_delta_cycles must be >= 0")
    if estimated_cycles <= 0:
        raise ValueError("estimated_cycles must be positive")
    slowdown_normalized = waited_delta_cycles / estimated_cycles
    return PRIORITY_TOKENS[priority] * slowdown_normalized


def candidate_threshold(max_tokens: float) -> float:
    """The dynamic candidate threshold (Algorithm 2, line 9).

    Returns the largest priority token value *strictly below*
    ``max_tokens`` (0 when even the lowest level is not below it), so the
    task holding the maximum always qualifies under the strict ``>``
    comparison -- the behaviour the paper's max=8 -> threshold=3 example
    requires (DESIGN.md deviation #2).
    """
    threshold = 0.0
    for level in TOKEN_LEVELS:
        if level < max_tokens:
            threshold = float(level)
    return threshold


def candidate_bucket(tokens: float) -> int:
    """Number of priority token levels strictly below ``tokens``.

    Buckets quantize token counts by the threshold grid: a row with
    ``tokens`` clears ``candidate_threshold(max_tokens)`` iff its bucket
    is >= the bucket of ``max_tokens`` (assuming ``tokens > 0``, which
    holds for every simulator-managed row -- initial tokens come from the
    priority levels and grants are non-negative).  Incremental schedulers
    keep one priority structure per bucket so the candidate group of
    Algorithm 2 line 9 is the union of the top buckets, never a scan.
    """
    bucket = 0
    for level in TOKEN_LEVELS:
        if level < tokens:
            bucket += 1
    return bucket


NUM_CANDIDATE_BUCKETS = len(TOKEN_LEVELS) + 1


def select_candidates(tokens_by_task: Dict[int, float]) -> Tuple[int, ...]:
    """Task ids whose tokens exceed the dynamic threshold.

    Given the ready queue's token counts, returns the candidate group of
    Algorithm 2 line 9 (never empty when the queue is non-empty).
    """
    if not tokens_by_task:
        return ()
    threshold = candidate_threshold(max(tokens_by_task.values()))
    return tuple(
        task_id
        for task_id, tokens in tokens_by_task.items()
        if tokens > threshold
    )
