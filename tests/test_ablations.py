"""Ablation harnesses: predictor noise and trap-cost sweeps."""

import pytest

from repro.analysis.experiments.ablations import (
    format_noise_ablation,
    format_trap_ablation,
    run_noise_ablation,
    run_trap_ablation,
)


class TestNoiseAblation:
    @pytest.fixture(scope="class")
    def rows(self, config, factory):
        return run_noise_ablation(
            config=config, factory=factory, num_workloads=4,
            sigmas=(0.0, 0.3, 1.5),
        )

    def test_noiseless_prema_beats_fcfs(self, rows):
        assert rows[0].antt_vs_fcfs > 1.5

    def test_degradation_is_graceful(self, rows):
        # Even with sigma=1.5 (multiplicative noise routinely 3-4x off),
        # PREMA should not collapse below the NP-FCFS baseline: relative
        # ordering of jobs survives moderate multiplicative noise.
        assert rows[-1].antt_vs_fcfs > 0.9

    def test_noise_never_helps_much(self, rows):
        # The noiseless predictor is (near-)optimal among the levels.
        best = max(row.antt_vs_fcfs for row in rows)
        assert rows[0].antt_vs_fcfs >= 0.85 * best

    def test_format(self, rows):
        assert "predictor noise" in format_noise_ablation(rows)


class TestTrapAblation:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_trap_ablation(
            num_workloads=3, trap_cycles=(1_000, 1_000_000)
        )

    def test_cheap_trap_wins(self, rows):
        assert rows[0].antt_vs_fcfs > 1.5

    def test_expensive_trap_reduces_benefit(self, rows):
        # A ~1.4 ms trap makes each preemption cost as much as a short
        # inference; the advantage over NP-FCFS must shrink.
        assert rows[-1].antt_vs_fcfs <= rows[0].antt_vs_fcfs

    def test_format(self, rows):
        assert "trap cost" in format_trap_ablation(rows)
