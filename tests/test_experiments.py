"""End-to-end experiment harnesses on small ensembles.

Each figure module runs on a reduced configuration and its output shape is
checked against the paper's qualitative claims.  The full-scale versions
live in benchmarks/.
"""

import pytest

from repro.workloads.generator import WorkloadGenerator


@pytest.fixture(scope="module")
def workloads(config):
    return WorkloadGenerator(seed=42).generate_many(4, num_tasks=6)


class TestFig01:
    def test_colocation_tradeoff(self, config, factory):
        from repro.analysis.experiments.fig01_colocation import (
            format_fig01,
            improvement_summary,
            run_fig01,
        )

        results = run_fig01(config=config, num_requests=12, factory=factory)
        summary = improvement_summary(results)
        # The Fig 1 shape: throughput up, latency worse.
        assert summary["throughput_gain"] > 1.0
        assert summary["latency_degradation"] > 1.0
        assert "co-located" in format_fig01(results)

    def test_utilization_validated(self, config, factory):
        from repro.analysis.experiments.fig01_colocation import run_fig01

        with pytest.raises(ValueError):
            run_fig01(config=config, utilization=1.5, factory=factory)


class TestFig05:
    def test_mechanism_ordering(self, config, factory):
        from repro.analysis.experiments.fig05_preemption import (
            format_fig05,
            run_fig05,
            summarize,
        )

        rows = run_fig05(
            config=config, factory=factory, samples=6,
            benchmarks=("CNN-AN", "CNN-GN"), batches=(1, 4),
        )
        summary = summarize(rows)
        # KILL/DRAIN have zero preemption latency; CHECKPOINT pays DMA.
        assert summary["KILL"]["preemption_latency_us"] == 0.0
        assert summary["DRAIN"]["preemption_latency_us"] == 0.0
        assert summary["CHECKPOINT"]["preemption_latency_us"] > 0.0
        # DRAIN's wait dwarfs both preempting mechanisms (Fig 5b).
        assert summary["DRAIN"]["wait_time_us"] > 10 * \
            summary["CHECKPOINT"]["wait_time_us"]
        assert "Fig 5" in format_fig05(rows)

    def test_checkpoint_wait_grows_with_batch(self, config, factory):
        from repro.analysis.experiments.fig05_preemption import run_fig05

        rows = run_fig05(
            config=config, factory=factory, samples=6,
            benchmarks=("CNN-VN",), batches=(1, 16),
        )
        by_batch = {
            row.batch: row.preemption_latency_us
            for row in rows if row.mechanism == "CHECKPOINT"
        }
        assert by_batch[16] > by_batch[1]


class TestFig06:
    def test_ntt_and_stp_shape(self, config, factory):
        from repro.analysis.experiments.fig06_mechanism_impact import (
            format_fig06,
            run_fig06,
            summarize,
        )

        rows = run_fig06(
            config=config, factory=factory, samples=3,
            benchmarks=("CNN-GN", "CNN-VN"), batches=(1,),
        )
        summary = summarize(rows)
        # Preempting mechanisms beat DRAIN (== NP-FCFS) on the
        # preemptor's NTT; KILL >= CHECKPOINT >= DRAIN (Fig 6b).
        assert summary["KILL"]["ntt_improvement"] >= \
            summary["CHECKPOINT"]["ntt_improvement"] * 0.999
        assert summary["CHECKPOINT"]["ntt_improvement"] > \
            summary["DRAIN"]["ntt_improvement"]
        # CHECKPOINT keeps more system throughput than KILL (Fig 6a).
        assert summary["CHECKPOINT"]["stp_improvement"] >= \
            summary["KILL"]["stp_improvement"]
        assert "Fig 6" in format_fig06(rows)


class TestFig07:
    def test_density_and_scnn(self, config):
        from repro.analysis.experiments.fig07_density import (
            format_fig07,
            run_fig07_density,
            run_fig07_scnn,
        )

        density = run_fig07_density(num_inputs=100)
        assert len(density) == 13 + 3  # c01..c13 + fc1..fc3
        scnn = run_fig07_scnn(config=config, num_inputs=50)
        assert all(r.max_relative_deviation <= 0.14 for r in scnn)
        assert "Fig 7" in format_fig07(density, scnn)


class TestFig09:
    def test_characterization_and_fit(self):
        from repro.analysis.experiments.fig09_seqlen import format_fig09, run_fig09

        rows, quality = run_fig09(num_samples=300)
        assert {q.application for q in quality} == {"en-de", "en-ko", "en-zh", "asr"}
        assert all(q.correlation > 0.8 for q in quality)
        for row in rows:
            assert row.q25 <= row.median <= row.q75
        assert "Fig 9" in format_fig09(rows, quality)


class TestFig10:
    def test_underutilized_outliers_exist(self, config, factory):
        from repro.analysis.experiments.fig10_macs_vs_time import (
            format_fig10,
            run_fig10,
            underutilized_points,
        )

        points = run_fig10(
            config=config, factory=factory, benchmarks=("CNN-GN", "CNN-MN")
        )
        assert points
        outliers = underutilized_points(points, config)
        # Depthwise and small 1x1 layers must appear off-trend.
        assert any("dw" in p.layer for p in outliers)
        assert "Fig 10" in format_fig10(points)


class TestFig11:
    def test_predictor_policies_win(self, config, factory, workloads):
        from repro.analysis.experiments.fig11_nonpreemptive import (
            format_fig11,
            run_fig11,
        )

        rows = run_fig11(workloads, config=config, factory=factory)
        by_policy = {row.policy: row for row in rows}
        assert by_policy["FCFS"].antt_improvement == pytest.approx(1.0)
        # Predictor-based policies beat the naive baselines on ANTT.
        assert by_policy["SJF"].antt_improvement > 1.2
        assert by_policy["PREMA"].antt_improvement > 1.2
        # PREMA is the fairness leader (priority-aware + predictive).
        assert by_policy["PREMA"].fairness_improvement >= max(
            by_policy[p].fairness_improvement for p in ("FCFS", "RRB", "HPF")
        )
        assert "Fig 11" in format_fig11(rows)


class TestFig12:
    def test_preemption_shape(self, config, factory, workloads):
        from repro.analysis.experiments.fig12_preemptive import (
            format_fig12,
            headline,
            run_fig12,
        )

        rows = run_fig12(workloads, config=config, factory=factory)
        by_key = {(r.variant, r.policy): r for r in rows}
        top = headline(rows)
        # Preemptive PREMA delivers multi-x ANTT and fairness gains.
        assert top["antt_improvement"] > 2.0
        assert top["fairness_improvement"] > 1.5
        assert top["stp_improvement"] > 1.0
        # Dynamic PREMA >= static PREMA on ANTT (Algorithm 3's payoff).
        assert by_key[("Dynamic", "PREMA")].antt_improvement >= \
            by_key[("Static", "PREMA")].antt_improvement * 0.999
        # Dynamic PREMA's drain decisions actually fire.
        assert by_key[("Dynamic", "PREMA")].drains > 0
        assert "Fig 12" in format_fig12(rows)


class TestFig13:
    def test_sla_curves(self, config, factory, workloads):
        from repro.analysis.experiments.fig13_sla import format_fig13, run_fig13

        curves = run_fig13(
            workloads, config=config, factory=factory, targets=(2, 6, 10, 20)
        )
        by_label = {c.label: c for c in curves}
        assert len(curves) == 9
        for curve in curves:
            # Monotone non-increasing in the SLA target (Fig 13).
            assert list(curve.violation_rates) == sorted(
                curve.violation_rates, reverse=True
            )
        # PREMA dominates NP-FCFS at moderate targets.
        assert by_label["Dynamic-PREMA"].rate_at(6) <= by_label["NP-FCFS"].rate_at(6)
        assert "Fig 13" in format_fig13(curves)


class TestFig14:
    def test_tail_latency_shape(self, config, factory):
        # A bigger ensemble so every benchmark draws high-priority tasks.
        workloads = WorkloadGenerator(seed=14).generate_many(6, num_tasks=8)
        from repro.analysis.experiments.fig14_tail_latency import (
            average_slowdowns,
            format_fig14,
            run_fig14,
        )

        rows = run_fig14(workloads, config=config, factory=factory)
        assert rows
        slowdowns = average_slowdowns(rows)
        # NP-FCFS inflates the high-priority tail far more than PREMA.
        assert slowdowns["NP-FCFS"] > slowdowns["PREMA"]
        assert "Fig 14" in format_fig14(rows)


class TestFig15:
    def test_checkpoint_beats_kill_on_stp(self, config, factory, workloads):
        from repro.analysis.experiments.fig15_kill_vs_checkpoint import (
            checkpoint_advantage,
            format_fig15,
            run_fig15,
        )

        rows = run_fig15(workloads, config=config, factory=factory)
        advantage = checkpoint_advantage(rows)
        assert advantage["stp"] > 0.99
        assert "Fig 15" in format_fig15(rows)


class TestAccuracyAndSensitivity:
    def test_prediction_accuracy_report(self, config, factory, workloads):
        from repro.analysis.experiments.prediction_accuracy import (
            format_accuracy,
            run_prediction_accuracy,
        )

        report = run_prediction_accuracy(workloads, config=config, factory=factory)
        # Sec VI-D: ~98% correlation, small relative error.
        assert report.correlation > 0.95
        assert report.mean_relative_error < 0.10
        assert report.stp_vs_oracle > 0.9
        assert "correlation" in format_accuracy(report)

    def test_overhead_report(self, config, factory):
        from repro.analysis.experiments.overhead_analysis import (
            format_overhead,
            run_overhead,
        )

        report = run_overhead(
            config=config, factory=factory, batch=4,
            benchmarks=("CNN-AN", "RNN-SA"),
        )
        assert report.bits_per_task == 448
        assert report.checkpoint_bytes_by_model["TOTAL"] > 0
        assert "Sec VI-F" in format_overhead(report)
