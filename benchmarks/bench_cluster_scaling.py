"""Extension bench: multi-NPU node-level scheduling (Sec II-C future work).

Two measurements: the original quality sweep (ANTT/makespan across
router x device-scheduler combinations on 1/2/4 NPUs) and, since the
O(log d) control-plane PR, a datacenter-tier cost sweep -- per-event
cluster-loop cost at 4/64/256 devices under fixed per-device load,
indexed loop vs the preserved pre-index linear-scan loop.  The cost
sweep's JSON lands in ``benchmarks/results/BENCH_cluster_scaling.json``
(uploaded as a CI artifact by the bench-smoke job).
"""

import json
import pathlib

from repro.analysis.experiments.cluster_scaling import (
    format_cluster_scaling,
    format_control_plane,
    run_cluster_scaling,
    run_control_plane_scaling,
)

CONTROL_PLANE_RESULTS = (
    pathlib.Path(__file__).parent / "results" / "BENCH_cluster_scaling.json"
)


def test_cluster_scaling(benchmark, config, factory, emit):
    rows = benchmark.pedantic(
        run_cluster_scaling,
        kwargs=dict(config=config, factory=factory, num_tasks=24,
                    num_workloads=4),
        rounds=1,
        iterations=1,
    )
    emit("cluster_scaling", format_cluster_scaling(rows))
    by_key = {(r.num_devices, r.routing, r.device_policy): r for r in rows}
    for devices in (1, 2, 4):
        # PREMA devices beat NP-FCFS devices at every cluster size.
        assert by_key[(devices, "round-robin", "PREMA")].antt <= \
            by_key[(devices, "round-robin", "FCFS")].antt
        # Predictive routing never loses to blind round-robin.
        assert by_key[(devices, "static", "PREMA")].antt <= \
            by_key[(devices, "round-robin", "PREMA")].antt * 1.05
        # Online dispatch targets device start times, so it never loses
        # to the static up-front pass on *makespan*; its ANTT may trade
        # a few percent for that.  Work stealing never loses to plain
        # online dispatch.
        assert by_key[(devices, "online-predicted", "PREMA")].makespan_ms <= \
            by_key[(devices, "static", "PREMA")].makespan_ms * 1.01
        assert by_key[(devices, "online-predicted", "PREMA")].antt <= \
            by_key[(devices, "static", "PREMA")].antt * 1.05
        assert by_key[(devices, "work-stealing", "PREMA")].makespan_ms <= \
            by_key[(devices, "online-predicted", "PREMA")].makespan_ms * 1.01
    # Scaling out helps: 4 devices strictly beat 1 on ANTT.
    assert by_key[(4, "work-stealing", "PREMA")].antt < \
        by_key[(1, "work-stealing", "PREMA")].antt


def test_control_plane_scaling(benchmark, emit):
    """Per-event cost flat in d; the 256-device tier beats the pre-index
    loop by the PR's >= 5x acceptance margin (measured ~40x)."""
    rows = benchmark.pedantic(
        run_control_plane_scaling,
        rounds=1,
        iterations=1,
    )
    emit("cluster_control_plane", format_control_plane(rows))
    CONTROL_PLANE_RESULTS.parent.mkdir(exist_ok=True)
    CONTROL_PLANE_RESULTS.write_text(
        json.dumps(
            [row.__dict__ for row in rows], indent=2, sort_keys=True
        )
        + "\n"
    )
    by_key = {(r.num_devices, r.indexed): r for r in rows}
    # Flat per-event cost in the fleet size (fixed per-device load): the
    # indexed loop may not grow beyond 3x from 4 to 64 devices.
    assert by_key[(64, True)].us_per_event <= \
        3.0 * by_key[(4, True)].us_per_event
    # The 256-device tier: >= 5x throughput over the pre-index loop.
    assert by_key[(256, True)].tasks_per_sec >= \
        5.0 * by_key[(256, False)].tasks_per_sec
