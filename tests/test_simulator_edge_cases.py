"""Simulator edge cases: degenerate arrivals, bursts, and mid-trap events."""

import pytest

from repro.core.tokens import Priority
from repro.sched.metrics import compute_metrics
from repro.sched.policies import make_policy
from repro.sched.simulator import NPUSimulator, PreemptionMode, SimulationConfig
from repro.workloads.specs import TaskSpec


def run(config, factory, specs, policy="PREMA", mode=PreemptionMode.DYNAMIC,
        mechanism="CHECKPOINT"):
    simulator = NPUSimulator(
        SimulationConfig(npu=config, mode=mode, mechanism=mechanism),
        make_policy(policy),
    )
    tasks = [factory.build_task(s) for s in specs]
    return simulator.run(tasks)


class TestDegenerateArrivals:
    def test_single_task_runs_isolated(self, config, factory):
        spec = TaskSpec(0, "CNN-GN", 1, Priority.LOW, 0.0)
        result = run(config, factory, [spec])
        task = result.task_by_id(0)
        assert task.normalized_turnaround == pytest.approx(1.0, rel=1e-9)
        assert result.preemption_count == 0

    def test_simultaneous_arrivals(self, config, factory):
        specs = [
            TaskSpec(i, benchmark, 1, Priority.MEDIUM, 0.0)
            for i, benchmark in enumerate(("CNN-AN", "CNN-GN", "CNN-MN"))
        ]
        result = run(config, factory, specs, policy="FCFS",
                     mode=PreemptionMode.NP)
        assert all(task.is_done for task in result.tasks)
        result.timeline.verify_no_overlap()
        # FCFS ties broken by task id.
        completions = [result.task_by_id(i).completion_time for i in range(3)]
        assert completions == sorted(completions)

    def test_late_burst_after_idle(self, config, factory):
        # NPU drains fully, idles, then a burst arrives much later.
        specs = [
            TaskSpec(0, "CNN-GN", 1, Priority.LOW, 0.0),
            TaskSpec(1, "CNN-AN", 1, Priority.HIGH,
                     config.ms_to_cycles(500.0)),
            TaskSpec(2, "CNN-MN", 1, Priority.LOW,
                     config.ms_to_cycles(500.0)),
        ]
        result = run(config, factory, specs)
        assert all(task.is_done for task in result.tasks)
        late = result.task_by_id(1)
        assert late.first_dispatch_time >= config.ms_to_cycles(500.0)

    def test_identical_tasks(self, config, factory):
        specs = [
            TaskSpec(i, "CNN-AN", 1, Priority.MEDIUM, float(i))
            for i in range(4)
        ]
        result = run(config, factory, specs, policy="SJF",
                     mode=PreemptionMode.STATIC)
        assert all(task.is_done for task in result.tasks)
        # Equal lengths: SJF must not preempt (strict inequality).
        assert result.preemption_count == 0


class TestMidTrapEvents:
    def test_arrival_during_checkpoint_trap(self, config, factory):
        """A task arriving while the NPU checkpoints must queue cleanly."""
        low_iso = factory.execution_profile("CNN-VN", 16).total_cycles
        specs = [
            TaskSpec(0, "CNN-VN", 16, Priority.LOW, 0.0),
            TaskSpec(1, "CNN-GN", 1, Priority.HIGH, 0.3 * low_iso),
            # Arrives ~1 us after the preemption trap starts.
            TaskSpec(2, "CNN-AN", 1, Priority.HIGH,
                     0.3 * low_iso + config.us_to_cycles(1.0)),
        ]
        result = run(config, factory, specs, policy="HPF",
                     mode=PreemptionMode.STATIC)
        assert all(task.is_done for task in result.tasks)
        result.timeline.verify_no_overlap()

    def test_repeated_preemptions_converge(self, config, factory):
        """A long task preempted by several short arrivals still finishes."""
        long_iso = factory.execution_profile("CNN-VN", 16).total_cycles
        specs = [TaskSpec(0, "CNN-VN", 16, Priority.LOW, 0.0)]
        for i in range(1, 6):
            specs.append(
                TaskSpec(i, "CNN-GN", 1, Priority.HIGH,
                         i * 0.15 * long_iso)
            )
        result = run(config, factory, specs, policy="HPF",
                     mode=PreemptionMode.STATIC)
        long_task = result.task_by_id(0)
        assert long_task.is_done
        assert long_task.preemption_count >= 2
        # CHECKPOINT preserves progress: total run time stays the work.
        by_task = result.timeline.run_cycles_by_task()
        assert by_task[0] == pytest.approx(long_task.isolated_cycles, rel=1e-6)

    def test_kill_storm_still_terminates(self, config, factory):
        """KILL restarts must not livelock even under repeated preemption."""
        long_iso = factory.execution_profile("CNN-AN", 16).total_cycles
        specs = [TaskSpec(0, "CNN-AN", 16, Priority.LOW, 0.0)]
        for i in range(1, 4):
            specs.append(
                TaskSpec(i, "CNN-GN", 1, Priority.HIGH, i * 0.2 * long_iso)
            )
        result = run(config, factory, specs, policy="HPF",
                     mode=PreemptionMode.STATIC, mechanism="KILL")
        assert all(task.is_done for task in result.tasks)
        victim = result.task_by_id(0)
        if victim.kill_count:
            assert victim.wasted_cycles > 0


class TestPriorityExtremes:
    def test_all_high_priority(self, config, factory):
        specs = [
            TaskSpec(i, b, 1, Priority.HIGH, float(i))
            for i, b in enumerate(("CNN-AN", "CNN-GN", "CNN-VN"))
        ]
        result = run(config, factory, specs)
        metrics = compute_metrics(result.tasks)
        assert metrics.num_tasks == 3
        assert 0 < metrics.fairness <= 1.0

    def test_all_low_priority_short_jobs_first(self, config, factory):
        specs = [
            TaskSpec(0, "CNN-VN", 1, Priority.LOW, 0.0),
            TaskSpec(1, "CNN-GN", 1, Priority.LOW,
                     config.ms_to_cycles(0.2)),
        ]
        result = run(config, factory, specs)
        short = result.task_by_id(1)
        long = result.task_by_id(0)
        # PREMA's shortest-estimated-job rule lets GN through first.
        assert short.completion_time < long.completion_time
