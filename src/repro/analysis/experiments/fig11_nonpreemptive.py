"""Fig 11: ANTT/fairness/STP of six schedulers on a non-preemptive NPU.

Isolates the value of the prediction model from preemption itself: FCFS,
RRB and HPF schedule without the predictor; TOKEN, SJF and PREMA use it.
All results are improvements normalized to NP-FCFS, averaged across the
workload ensemble (the paper's 25 simulation runs).
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

from repro.analysis.reporting import format_table
from repro.analysis.runner import SchedulerSetup, run_ensemble
from repro.npu.config import NPUConfig
from repro.sched.metrics import improvement_over_baseline
from repro.sched.prepare import TaskFactory
from repro.sched.simulator import PreemptionMode
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.specs import WorkloadSpec

POLICIES = ("FCFS", "RRB", "HPF", "TOKEN", "SJF", "PREMA")


@dataclasses.dataclass(frozen=True)
class SchedulerRow:
    """One scheduler's ensemble metrics, normalized to NP-FCFS."""

    policy: str
    antt_improvement: float
    fairness_improvement: float
    stp_improvement: float
    raw_antt: float
    raw_stp: float
    raw_fairness: float


def default_workloads(
    num_workloads: int = 25, num_tasks: int = 8, seed: int = 11
) -> Sequence[WorkloadSpec]:
    return WorkloadGenerator(seed=seed).generate_many(
        num_workloads, num_tasks=num_tasks
    )


def run_fig11(
    workloads: Optional[Sequence[WorkloadSpec]] = None,
    config: Optional[NPUConfig] = None,
    factory: Optional[TaskFactory] = None,
) -> List[SchedulerRow]:
    config = config or NPUConfig()
    factory = factory or TaskFactory(config)
    workloads = workloads if workloads is not None else default_workloads()
    setups = [
        SchedulerSetup(policy, policy, PreemptionMode.NP) for policy in POLICIES
    ]
    outcomes = run_ensemble(setups, workloads, factory=factory, npu=config)
    baseline = outcomes["FCFS"].metrics
    rows: List[SchedulerRow] = []
    for policy in POLICIES:
        metrics = outcomes[policy].metrics
        improvement = improvement_over_baseline(metrics, baseline)
        rows.append(
            SchedulerRow(
                policy=policy,
                antt_improvement=improvement["antt"],
                fairness_improvement=improvement["fairness"],
                stp_improvement=improvement["stp"],
                raw_antt=metrics.mean_antt,
                raw_stp=metrics.mean_stp,
                raw_fairness=metrics.mean_fairness,
            )
        )
    return rows


def format_fig11(rows: Sequence[SchedulerRow]) -> str:
    return format_table(
        ("policy", "ANTT_impr", "fairness_impr", "STP_impr",
         "raw_ANTT", "raw_STP", "raw_fairness"),
        [
            (r.policy, r.antt_improvement, r.fairness_improvement,
             r.stp_improvement, r.raw_antt, r.raw_stp, r.raw_fairness)
            for r in rows
        ],
        title="Fig 11: non-preemptive schedulers, normalized to NP-FCFS",
    )
