"""Hot-path self-profiling (repro.obs.profile): accumulation semantics
and the cluster control-plane section wiring."""

from repro.obs import HotPathProfiler
from repro.sched.cluster import (
    ClusterConfig,
    ClusterScheduler,
    RoutingPolicy,
)
from repro.sched.faults import ChurnSchedule
from repro.sched.simulator import PreemptionMode, SimulationConfig
from repro.workloads.generator import WorkloadGenerator

#: Every section the cluster control plane can attribute time to.
KNOWN_SECTIONS = {"route", "steal", "migrate", "admission", "index", "churn"}


class TestHotPathProfiler:
    def test_add_accumulates(self):
        profiler = HotPathProfiler()
        profiler.add("route", 1_000)
        profiler.add("route", 2_000)
        profiler.add("steal", 500)
        report = profiler.report()
        assert report["route"]["calls"] == 2
        assert report["route"]["total_ms"] == 3_000 / 1e6
        assert report["route"]["mean_us"] == 1_500 / 1e3
        assert report["steal"]["calls"] == 1

    def test_section_context_manager(self):
        profiler = HotPathProfiler()
        with profiler.section("index"):
            sum(range(100))
        assert profiler.counts["index"] == 1
        assert profiler.nanos["index"] > 0

    def test_merge(self):
        left, right = HotPathProfiler(), HotPathProfiler()
        left.add("route", 10)
        right.add("route", 5)
        right.add("churn", 7)
        left.merge(right)
        assert left.nanos == {"route": 15, "churn": 7}
        assert left.counts == {"route": 2, "churn": 1}

    def test_render_sorted_by_cost(self):
        profiler = HotPathProfiler()
        profiler.add("cheap", 10)
        profiler.add("dear", 10_000_000)
        lines = profiler.render().splitlines()
        assert "section" in lines[0]
        assert lines[1].startswith("dear")
        assert lines[2].startswith("cheap")


class TestClusterProfiling:
    def run_profiled(self, factory, config,
                     routing=RoutingPolicy.PREEMPTIVE_MIGRATION,
                     num_devices=4, **extra):
        sim = SimulationConfig(npu=config, mode=PreemptionMode.DYNAMIC)
        workload = WorkloadGenerator(seed=81).generate(num_tasks=24)
        profiler = HotPathProfiler()
        scheduler = ClusterScheduler(
            num_devices, sim,
            config=ClusterConfig(
                routing=routing, profiler=profiler, seed=0, **extra
            ),
        )
        scheduler.run(factory.build_workload(workload))
        return profiler

    def test_migration_run_attributes_sections(self, factory, config):
        profiler = self.run_profiled(factory, config)
        assert set(profiler.counts) <= KNOWN_SECTIONS
        assert profiler.counts["route"] > 0
        assert profiler.counts["migrate"] > 0

    def test_stealing_run_times_steal_scans(self, factory, config):
        profiler = self.run_profiled(
            factory, config, routing=RoutingPolicy.WORK_STEALING
        )
        assert profiler.counts["steal"] > 0
        assert "migrate" not in profiler.counts

    def test_indexed_fleet_times_index_maintenance(self, factory, config):
        profiler = self.run_profiled(factory, config, num_devices=8)
        assert profiler.counts["index"] > 0

    def test_churn_run_times_churn_handling(self, factory, config):
        horizon = 5_000_000.0
        churn = ChurnSchedule.generate(
            num_devices=4,
            horizon_cycles=horizon,
            seed=3,
            revocation_rate=1.0 / horizon,
            mean_outage_cycles=horizon / 4.0,
        )
        profiler = self.run_profiled(
            factory, config, routing=RoutingPolicy.ONLINE_PREDICTED,
            churn=churn,
        )
        assert profiler.counts["churn"] > 0
        assert profiler.counts["route"] > 0
