"""Fast-path self-healing under migration-induced staleness.

The PR 2 lazy-deletion heaps / token buckets are advisory: the simulator
keeps them honest through the lifecycle hooks, but a migration can yank
a task out of a device *between* hook-driven updates (the "task leaves
one device mid-re-rank" race).  These tests force exactly that staleness
and assert the safety nets -- the population-count resync and the
validated-pick fallback -- still produce the reference scan's pick.

The ledger-aware paths get the same treatment: with a cluster-global
token maximum in play, the fast bucket selection and the reference scan
must agree in every regime, including the fallback where no local row
clears the cluster-wide threshold.
"""

import pytest

from repro.core.context import ContextTable, TaskContext, TaskState
from repro.core.tokens import ClusterTokenLedger, Priority
from repro.sched.policies import (
    HpfPolicy,
    PremaPolicy,
    SjfPolicy,
    TokenPolicy,
)


def make_row(task_id, tokens=0.0, estimated=1e6, priority=Priority.MEDIUM):
    row = TaskContext(
        task_id=task_id, priority=priority, estimated_cycles=estimated
    )
    if tokens:
        row.tokens = tokens
    return row


def admitted(policy, rows):
    table = ContextTable()
    for row in rows:
        table.add(row)
        policy.on_admit(row, 0.0)
    return table


@pytest.mark.parametrize(
    "policy_factory", [HpfPolicy, SjfPolicy, TokenPolicy, PremaPolicy]
)
class TestDepartureMidRerank:
    def test_hookless_departure_self_heals(self, policy_factory):
        """A task leaves the device without on_remove (migration racing a
        re-rank): the count mismatch triggers a rebuild and the pick
        equals the reference scan."""
        policy = policy_factory()
        rows = [
            make_row(0, estimated=5e6, priority=Priority.LOW),
            make_row(1, estimated=1e6, priority=Priority.HIGH),
            make_row(2, estimated=3e6, priority=Priority.MEDIUM),
        ]
        table = admitted(policy, rows)
        best = policy.select_ready(table)
        # The would-be pick departs behind the structure's back.
        table.remove(best.task_id)
        healed = policy.select_ready(table)
        assert healed is policy.select(table.ready())
        assert healed is not best

    def test_count_preserving_swap_self_heals(self, policy_factory):
        """Departure + arrival with no hooks keeps the population count
        identical, so only pick validation can catch it -- and does,
        because the stale pick is no longer resident."""
        policy = policy_factory()
        rows = [
            make_row(0, estimated=5e6, priority=Priority.LOW),
            make_row(1, estimated=1e6, priority=Priority.HIGH),
            make_row(2, estimated=3e6, priority=Priority.MEDIUM),
        ]
        table = admitted(policy, rows)
        best = policy.select_ready(table)
        table.remove(best.task_id)
        replacement = make_row(7, estimated=2e6, priority=Priority.MEDIUM)
        table.add(replacement)  # no on_admit: structure never sees it
        healed = policy.select_ready(table)
        assert healed is policy.select(table.ready())
        # And the heal is durable: the next pick needs no fallback.
        assert policy.select_ready(table) is policy.select(table.ready())

    def test_departed_pick_does_not_resurface(self, policy_factory):
        policy = policy_factory()
        rows = [make_row(i, estimated=(i + 1) * 1e6) for i in range(4)]
        table = admitted(policy, rows)
        victim = policy.select_ready(table)
        table.remove(victim.task_id)
        for _ in range(3):
            pick = policy.select_ready(table)
            assert pick is not victim
            assert pick is policy.select(table.ready())


@pytest.mark.parametrize("policy_factory", [TokenPolicy, PremaPolicy])
class TestLedgerConsistency:
    def _two_devices(self, policy_factory, ledger):
        local = policy_factory(ledger=ledger)
        remote = policy_factory(ledger=ledger)
        local_table = admitted(
            local,
            [
                make_row(0, tokens=1.0, estimated=4e6, priority=Priority.LOW),
                make_row(1, tokens=1.0, estimated=2e6, priority=Priority.LOW),
            ],
        )
        remote_table = admitted(
            remote,
            [make_row(10, tokens=9.0, estimated=8e6, priority=Priority.HIGH)],
        )
        return local, local_table, remote, remote_table

    def test_remote_max_raises_local_threshold(self, policy_factory):
        """With a token-9 row on the other device, no local token-1 row
        clears the cluster threshold; the fallback still serves the best
        local row, identically on the fast and reference paths."""
        ledger = ClusterTokenLedger()
        local, local_table, _, _ = self._two_devices(policy_factory, ledger)
        fast = local.select_ready(local_table)
        reference = local.select(local_table.ready())
        assert fast is reference
        assert fast.task_id in (0, 1)

    def test_without_ledger_local_threshold_rules(self, policy_factory):
        policy = policy_factory()
        table = admitted(
            policy,
            [
                make_row(0, tokens=1.0, estimated=4e6, priority=Priority.LOW),
                make_row(1, tokens=1.0, estimated=2e6, priority=Priority.LOW),
            ],
        )
        assert policy.select_ready(table) is policy.select(table.ready())

    def test_remote_departure_lowers_threshold_again(self, policy_factory):
        """The remote high-token task dispatches (ledger deactivate):
        local selection falls back to the local threshold, fast path and
        reference agreeing throughout."""
        ledger = ClusterTokenLedger()
        local, local_table, remote, remote_table = self._two_devices(
            policy_factory, ledger
        )
        high = remote_table[10]
        high.state = TaskState.RUNNING
        remote.on_dispatch(high)
        assert ledger.ready_max_tokens() <= 1.0
        fast = local.select_ready(local_table)
        assert fast is local.select(local_table.ready())

    def test_mid_migration_staleness_with_ledger(self, policy_factory):
        """Hookless departure *while* the ledger holds a remote max:
        both safety nets compose -- rebuild + ledger-aware fallback still
        equal the reference."""
        ledger = ClusterTokenLedger()
        local, local_table, _, _ = self._two_devices(policy_factory, ledger)
        pick = local.select_ready(local_table)
        local_table.remove(pick.task_id)  # migration raced the re-rank
        healed = local.select_ready(local_table)
        assert healed is local.select(local_table.ready())

    def test_outranks_running_respects_remote_max(self, policy_factory):
        """A running token-1 task is below the cluster threshold set by a
        remote token-9 row: the fast preemption check and the reference
        agree a token-3 candidate outranks it."""
        ledger = ClusterTokenLedger()
        local, local_table, _, _ = self._two_devices(policy_factory, ledger)
        running = make_row(5, tokens=1.0, estimated=6e6, priority=Priority.LOW)
        running.state = TaskState.RUNNING
        candidate = make_row(
            6, tokens=4.0, estimated=1e6, priority=Priority.MEDIUM
        )
        local_table.add(candidate)
        local.on_admit(candidate, 0.0)
        fast = local.outranks_running(candidate, running, local_table)
        reference = local.outranks(candidate, running, local_table.ready())
        assert fast == reference
        assert fast  # running below threshold 3 < candidate's tokens... preempt

    def test_outranks_consistency_without_remote_max(self, policy_factory):
        policy = policy_factory()
        table = admitted(
            policy,
            [make_row(0, tokens=3.0, estimated=2e6, priority=Priority.MEDIUM)],
        )
        running = make_row(5, tokens=9.0, estimated=6e6, priority=Priority.HIGH)
        running.state = TaskState.RUNNING
        candidate = table[0]
        assert policy.outranks_running(candidate, running, table) == \
            policy.outranks(candidate, running, table.ready())
