"""Cycle-stepping reference simulator for a tiled GEMM.

Plays the role SCALE-Sim plays in the paper's methodology: an independent,
finer-grained model the closed-form engine is cross-validated against.
It steps two pipelined units -- the DMA engine fetching tile operands and
the systolic array computing tiles -- cycle by cycle with a one-deep
prefetch queue (double buffering), and reports the makespan.

Only used by tests and the validation example; the multi-task simulator
always uses the closed-form engine.
"""

from __future__ import annotations

import dataclasses
import math
from typing import List, Optional

from repro.npu.config import NPUConfig
from repro.npu.systolic import tile_compute_cycles, tile_memory_cycles
from repro.npu.tiling import GemmShape, Tile, TilePlan


@dataclasses.dataclass
class _TileJob:
    tile: Tile
    fetch_cycles: int
    compute_cycles: int
    fetch_done: Optional[int] = None
    compute_start: Optional[int] = None
    compute_done: Optional[int] = None


@dataclasses.dataclass(frozen=True)
class CycleSimResult:
    """Outcome of one cycle-stepped GEMM execution."""

    total_cycles: int
    tile_count: int
    #: Cycles during which the systolic array had a tile in flight.
    busy_cycles: int
    jobs: tuple

    @property
    def compute_utilization(self) -> float:
        if self.total_cycles == 0:
            return 0.0
        return self.busy_cycles / self.total_cycles


def simulate_gemm(shape: GemmShape, config: NPUConfig) -> CycleSimResult:
    """Cycle-step one tiled GEMM with double-buffered fetch.

    Semantics: the DMA engine fetches operands for at most one tile ahead
    of the array; a tile's compute starts when (a) its fetch completed and
    (b) the previous tile's compute finished.  An initial DRAM access
    latency precedes the first fetch.
    """
    plan = TilePlan(shape=shape, config=config)
    jobs: List[_TileJob] = []
    for tile in plan.tiles():
        jobs.append(
            _TileJob(
                tile=tile,
                fetch_cycles=int(math.ceil(tile_memory_cycles(config, tile))),
                compute_cycles=tile_compute_cycles(config, tile),
            )
        )
    # Event-free cycle accounting: fetch of job i may begin once fetch of
    # job i-1 is done AND compute of job i-1 has started (the prefetch
    # buffer it lands in frees when the previous tile enters the array).
    clock_fetch_free = config.memory_latency_cycles
    prev_compute_done = 0
    busy = 0
    for index, job in enumerate(jobs):
        fetch_start = clock_fetch_free
        if index >= 1:
            prev = jobs[index - 1]
            assert prev.compute_start is not None
            fetch_start = max(fetch_start, prev.compute_start)
        job.fetch_done = fetch_start + job.fetch_cycles
        job.compute_start = max(job.fetch_done, prev_compute_done)
        job.compute_done = job.compute_start + job.compute_cycles
        prev_compute_done = job.compute_done
        clock_fetch_free = job.fetch_done
        busy += job.compute_cycles
    total = jobs[-1].compute_done if jobs else 0
    return CycleSimResult(
        total_cycles=int(total),
        tile_count=len(jobs),
        busy_cycles=busy,
        jobs=tuple(jobs),
    )


def validate_against_closed_form(
    shape: GemmShape, config: NPUConfig
) -> float:
    """Relative gap between the cycle sim and the engine's closed form.

    Returns ``abs(engine - sim) / sim``.  Tests assert this stays within a
    few percent across a wide shape range -- our analogue of the paper's
    SCALE-Sim cross-validation.
    """
    from repro.npu.engine import gemm_cycles_by_category

    sim = simulate_gemm(shape, config)
    steady, _tiles, cold = gemm_cycles_by_category(shape, config)
    closed = steady + cold + config.memory_latency_cycles
    if sim.total_cycles == 0:
        return 0.0
    return abs(closed - sim.total_cycles) / sim.total_cycles
