"""RNN-MT: seq2seq machine translation (non-linear input->output lengths).

Encoder-decoder LSTM stacks (Fig 8c of the paper): the encoder unrolls
over the *input* sequence length, the decoder over the *output* sequence
length, and each decoder step projects through a vocabulary-sized softmax
FC -- the memory-bound GEMM that dominates MT latency at batch 1.

Two instances are deployed as different translation services (Sec III):
variant 1 is English->German (output ~= input length), variant 2 is
English->Korean (output shorter than input).  The output length is the
input-data-dependent quantity PREMA's regression model predicts.
"""

from __future__ import annotations

from repro.models.graph import Graph
from repro.models.layers import Embedding, FullyConnected, InputSpec, LSTMCell, Softmax

EMBED_DIM = 512
HIDDEN = 1024
NUM_LAYERS = 2
#: Per-variant target vocabulary size (German word-level vs Korean subword).
VOCAB = {1: 32000, 2: 24000}


def build_rnn_mt(input_len: int = 20, output_len: int = 20, variant: int = 1) -> Graph:
    """Build the seq2seq model unrolled for one (input, output) pair."""
    if input_len <= 0 or output_len <= 0:
        raise ValueError("sequence lengths must be positive")
    if variant not in VOCAB:
        raise ValueError(f"variant must be one of {sorted(VOCAB)}")
    vocab = VOCAB[variant]
    graph = Graph(f"RNN-MT{variant}", InputSpec(channels=EMBED_DIM))
    prev = Graph.INPUT
    # Encoder: unrolled over the source sentence.
    for step in range(input_len):
        emb = graph.add(
            Embedding(f"enc_embed_t{step}", vocab=vocab, dim=EMBED_DIM),
            inputs=[prev],
        )
        current = emb.name
        for layer in range(NUM_LAYERS):
            cell = graph.add(
                LSTMCell(f"enc_lstm{layer}_t{step}", hidden=HIDDEN),
                inputs=[current],
            )
            current = cell.name
        prev = current
    # Decoder: unrolled over the generated sentence, one vocab projection
    # (the expensive part) per emitted token.
    for step in range(output_len):
        emb = graph.add(
            Embedding(f"dec_embed_t{step}", vocab=vocab, dim=EMBED_DIM),
            inputs=[prev],
        )
        current = emb.name
        for layer in range(NUM_LAYERS):
            cell = graph.add(
                LSTMCell(f"dec_lstm{layer}_t{step}", hidden=HIDDEN),
                inputs=[current],
            )
            current = cell.name
        proj = graph.add(
            FullyConnected(f"dec_proj_t{step}", out_features=vocab, fused_activation=None),
            inputs=[current],
        )
        soft = graph.add(Softmax(f"dec_softmax_t{step}"), inputs=[proj.name])
        prev = soft.name
    graph.validate()
    return graph
