"""The device_churn experiment's headline claims (quick ensemble)."""

import pytest

from repro.analysis.experiments.device_churn import (
    format_device_churn,
    run_device_churn,
)


@pytest.fixture(scope="module")
def rows():
    return run_device_churn(quick=True)


class TestDeviceChurnExperiment:
    def test_headline_goodput_under_churn(self, rows):
        """At matched churn schedules, the Parcae discipline -- evacuate
        on the revocation warning -- beats restart-after-the-fact on
        goodput under churn, and the no-churn row bounds both."""
        by_mode = {r.mode: r for r in rows}
        proactive = by_mode["proactive-migration"]
        reactive = by_mode["reactive-restart"]
        assert proactive.goodput_under_churn > reactive.goodput_under_churn
        assert (
            by_mode["no-churn"].goodput_under_churn
            > proactive.goodput_under_churn
        )

    def test_headline_work_lost_per_revocation(self, rows):
        """Evacuation dodges the kill: proactive migration destroys
        clearly less ground-truth progress at the same churn rate."""
        by_mode = {r.mode: r for r in rows}
        proactive = by_mode["proactive-migration"]
        reactive = by_mode["reactive-restart"]
        assert proactive.work_lost_mcycles < reactive.work_lost_mcycles
        assert proactive.restarts_per_task < reactive.restarts_per_task

    def test_mechanisms_actually_engage(self, rows):
        """Guards against silently measuring identical configurations:
        churn really bites the churned arms, and only the proactive arm
        migrates."""
        by_mode = {r.mode: r for r in rows}
        baseline = by_mode["no-churn"]
        assert baseline.work_lost_mcycles == 0.0
        assert baseline.restarts_per_task == 0.0
        assert baseline.migrations == 0.0
        assert by_mode["reactive-restart"].work_lost_mcycles > 0.0
        assert by_mode["reactive-restart"].migrations == 0.0
        assert by_mode["proactive-migration"].migrations > 0.0

    def test_format(self, rows):
        text = format_device_churn(rows)
        assert "no-churn" in text
        assert "reactive-restart" in text
        assert "proactive-migration" in text
        assert "churn" in text
