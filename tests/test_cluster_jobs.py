"""Gang lifecycle on the cluster: equivalence, sharding, batching.

The PR-6 compatibility contract and the new mechanics, end to end:

1. *Equivalence*: a stream of single-slice jobs with batching disabled
   replays the legacy task path bit-for-bit across every routing policy
   (same encoder the golden suites use); with a degenerate batching
   config (no window, no sharding) the gang event loop itself reproduces
   the legacy online-routing decisions exactly.
2. *Pipeline sharding*: stage cutting over real devices -- activation
   transfers on the fabric, DMA-in restores, distinct device
   reservations, slice-level preemption, and checkpoint migration of
   gangs straddling a contended link.
3. *Router batching*: window coalescing, max-batch flush, class
   separation, member settlement, and batch dissolution when admission
   rejects a would-be member.
"""

import dataclasses

import pytest

from helpers_golden import _encode_cluster_v2
from repro.core.tokens import Priority
from repro.npu.config import NPUConfig
from repro.sched.cluster import (
    ClusterConfig,
    ClusterScheduler,
    RoutingPolicy,
)
from repro.sched.interconnect import InterconnectConfig
from repro.sched.job import (
    BatchConfig,
    DeviceSlice,
    Job,
    JobState,
    partition_runtime,
)
from repro.sched.metrics import compute_cluster_metrics
from repro.sched.simulator import PreemptionMode, SimulationConfig
from repro.serving.admission import (
    AdmissionController,
    AdmissionDecision,
    AdmissionRecord,
)
from repro.workloads.specs import TaskSpec
from repro.workloads.trace import synthetic_runtime, synthetic_trace_runtimes

_CONFIG = NPUConfig()


def sim_config(mode=PreemptionMode.DYNAMIC, mechanism="CHECKPOINT"):
    return SimulationConfig(npu=_CONFIG, mode=mode, mechanism=mechanism)


def compat_task(task_id, arrival, cycles, priority=Priority.MEDIUM):
    """A task whose batch key matches every other compat_task of the
    same priority (benchmark/batch/lengths/qos all identical)."""
    spec = TaskSpec(
        task_id=task_id, benchmark="CNN-AN", batch=1,
        priority=priority, arrival_cycles=arrival,
    )
    return synthetic_runtime(spec, cycles)


def sharded_job(task_id, arrival, cycles, num_stages, priority=Priority.LOW):
    runtime = compat_task(task_id, arrival, cycles, priority)
    plans = partition_runtime(runtime, num_stages)
    return Job(
        job_id=task_id,
        source=runtime,
        requests=(runtime,),
        slices=[DeviceSlice(stage=plan) for plan in plans],
    )


def trace(num_tasks=16, seed=21, **kwargs):
    return synthetic_trace_runtimes(num_tasks, seed=seed, **kwargs)


# ----------------------------------------------------------------------
# 1. Equivalence
# ----------------------------------------------------------------------
class TestLegacyEquivalence:
    @pytest.mark.parametrize("routing", list(RoutingPolicy))
    def test_single_slice_jobs_replay_task_path(self, routing):
        """run_jobs(single-slice, batching off) == run(tasks), all 7
        routings, bit-for-bit under the golden encoder."""
        config = sim_config()
        baseline = ClusterScheduler(
            3, config, config=ClusterConfig(routing=routing, seed=5)
        ).run(trace())
        jobs = [Job.single(task) for task in trace()]
        via_jobs = ClusterScheduler(
            3, config, config=ClusterConfig(routing=routing, seed=5)
        ).run_jobs(jobs)
        assert _encode_cluster_v2(via_jobs) == _encode_cluster_v2(baseline)
        assert all(job.state is JobState.DONE for job in via_jobs.jobs)
        for job in via_jobs.jobs:
            assert job.completion_time == job.source.completion_time
            assert job.dispatch_time == job.source.first_dispatch_time
            assert (
                via_jobs.assignments[job.source.task_id]
                == job.slices[0].device_id
            )

    @pytest.mark.parametrize(
        "routing",
        [
            RoutingPolicy.ONLINE_PREDICTED,
            RoutingPolicy.WORK_STEALING,
            RoutingPolicy.PREEMPTIVE_MIGRATION,
        ],
    )
    def test_gang_loop_degenerate_batching_is_bit_exact(self, routing):
        """With window=0 and shard_stages=1 the gang loop itself makes
        the same decisions as the legacy loop -- same routing calls at
        the same instants, so the encodings match exactly."""
        config = sim_config()
        baseline = ClusterScheduler(
            3, config, config=ClusterConfig(routing=routing, seed=2)
        ).run(trace(seed=33))
        degenerate = BatchConfig(window_cycles=0.0, max_batch=1)
        gang = ClusterScheduler(
            3, config,
            config=ClusterConfig(
                routing=routing, seed=2, batching=degenerate
            ),
        ).run(trace(seed=33))
        assert _encode_cluster_v2(gang) == _encode_cluster_v2(baseline)
        # The gang run carries the job surface on top.
        assert len(gang.jobs) == len(gang.tasks)
        assert len(gang.batches) == len(gang.tasks)
        assert all(b.batch_size == 1 for b in gang.batches)
        assert gang.batch_count == 0


# ----------------------------------------------------------------------
# 2. Pipeline sharding
# ----------------------------------------------------------------------
class TestShardedPipeline:
    def test_two_stage_gang_ships_activations(self):
        job = sharded_job(0, arrival=0.0, cycles=2_000_000.0, num_stages=2)
        expected_bytes = job.slices[0].stage.activation_bytes
        scheduler = ClusterScheduler(
            2, sim_config(),
            config=ClusterConfig(
                routing=RoutingPolicy.ONLINE_PREDICTED,
                interconnect=InterconnectConfig.nvlink(),
            ),
        )
        result = scheduler.run_jobs([job])
        assert job.state is JobState.DONE
        devices = [s.device_id for s in job.slices]
        assert None not in devices and devices[0] != devices[1]
        for device_slice in job.slices:
            assert device_slice.runtime is not None
            assert device_slice.runtime.is_done
        activations = [
            t for t in result.transfers if t.purpose == "activation"
        ]
        assert len(activations) == 1
        assert activations[0].num_bytes == expected_bytes
        # DMA-in: stage 1 paid the landing cost as its dispatch restore.
        stage1 = job.slices[1].runtime
        assert stage1.dispatch_restore == pytest.approx(
            expected_bytes / _CONFIG.bandwidth_bytes_per_cycle
        )
        # The source settles at the final stage's completion.
        assert job.source.is_done
        assert job.source.completion_time == stage1.completion_time
        assert job.completion_time == stage1.completion_time
        metrics = compute_cluster_metrics(result)
        assert metrics.sharded_job_count == 1
        assert metrics.activation_bytes_total == expected_bytes

    def test_same_device_stages_skip_the_fabric(self):
        # A 2-stage gang on a 1-device fleet wraps around: both stages
        # land on device 0 and the boundary tensor never ships.
        job = sharded_job(0, arrival=0.0, cycles=1_000_000.0, num_stages=2)
        result = ClusterScheduler(
            1, sim_config(),
            config=ClusterConfig(routing=RoutingPolicy.ONLINE_PREDICTED),
        ).run_jobs([job])
        assert job.state is JobState.DONE
        assert [s.device_id for s in job.slices] == [0, 0]
        assert not result.transfers
        assert job.slices[1].runtime.dispatch_restore == 0.0

    def test_preempting_one_slice_of_a_gang(self):
        # Both stages of a LOW job run on the lone device; a HIGH task
        # arrives mid-stage-0 and preempts just that slice under HPF.
        job = sharded_job(
            0, arrival=0.0, cycles=2_000_000.0, num_stages=2,
            priority=Priority.LOW,
        )
        interloper = Job.single(
            compat_task(1, arrival=200_000.0, cycles=400_000.0,
                        priority=Priority.HIGH)
        )
        scheduler = ClusterScheduler(
            1, sim_config(),
            config=ClusterConfig(
                policy_name="HPF",
                routing=RoutingPolicy.ONLINE_PREDICTED,
            ),
        )
        result = scheduler.run_jobs([job, interloper])
        assert job.state is JobState.DONE
        assert interloper.state is JobState.DONE
        stage0 = job.slices[0].runtime
        stage1 = job.slices[1].runtime
        assert stage0.preemption_count >= 1
        assert stage1.preemption_count == 0
        # The interloper cut ahead: it finished before the gang did.
        assert (
            interloper.source.completion_time < job.source.completion_time
        )
        assert len(result.tasks) == 2

    def test_gang_straddling_contended_link_migrates(self):
        # Overloaded 4-device fleet, every dispatch sharded over the
        # shared PCIe bus, checkpoint migration on: activation shipments
        # and checkpoint migrations interleave on one contended link and
        # every gang still completes exactly once.
        tasks = trace(
            num_tasks=40, seed=5,
            mean_interarrival_cycles=0.8e-3 * 700e6,
        )
        scheduler = ClusterScheduler(
            4, sim_config(),
            config=ClusterConfig(
                routing=RoutingPolicy.PREEMPTIVE_MIGRATION,
                interconnect=InterconnectConfig.pcie_gen3(),
                batching=BatchConfig(
                    window_cycles=1e6, max_batch=4, shard_stages=2
                ),
            ),
        )
        result = scheduler.run(tasks)
        assert len(result.tasks) == 40
        assert all(job.state is JobState.DONE for job in result.jobs)
        kinds = {t.purpose for t in result.transfers}
        assert kinds == {"checkpoint", "activation"}
        assert any(m.kind == "checkpoint" for m in result.migrations)
        # The bus serves FIFO, one transfer at a time, causally.
        previous_end = 0.0
        previous_request = 0.0
        for record in result.transfers:
            assert record.request_cycles >= previous_request
            assert record.start_cycles >= record.request_cycles
            assert record.start_cycles >= previous_end
            previous_end = record.end_cycles
            previous_request = record.request_cycles


# ----------------------------------------------------------------------
# 3. Router batching
# ----------------------------------------------------------------------
class TestRouterBatching:
    def cluster(self, batching, num_devices=2, admission=None):
        return ClusterScheduler(
            num_devices, sim_config(),
            config=ClusterConfig(
                routing=RoutingPolicy.ONLINE_PREDICTED,
                batching=batching,
                admission=admission,
            ),
        )

    def test_window_coalesces_compatible_requests(self):
        tasks = [
            compat_task(0, 0.0, 1_000_000.0),
            compat_task(1, 1_000.0, 800_000.0),
            compat_task(2, 2_000.0, 600_000.0),
        ]
        result = self.cluster(
            BatchConfig(window_cycles=10_000.0, max_batch=8)
        ).run(tasks)
        assert len(result.batches) == 1
        batch = result.batches[0]
        assert batch.member_task_ids == (0, 1, 2)
        assert batch.dispatch_cycles == 10_000.0  # window, not arrival
        assert result.mean_batch_size == 3.0
        # Members settle together, back-dated to the proxy's dispatch.
        completions = {t.completion_time for t in result.tasks}
        assert len(completions) == 1
        dispatches = {t.first_dispatch_time for t in result.tasks}
        assert len(dispatches) == 1

    def test_max_batch_flushes_early(self):
        tasks = [
            compat_task(0, 0.0, 500_000.0),
            compat_task(1, 1_000.0, 500_000.0),
            compat_task(2, 2_000.0, 500_000.0),
        ]
        result = self.cluster(
            BatchConfig(window_cycles=50_000.0, max_batch=2)
        ).run(tasks)
        sizes = sorted(b.batch_size for b in result.batches)
        assert sizes == [1, 2]
        full = next(b for b in result.batches if b.batch_size == 2)
        assert full.dispatch_cycles == 1_000.0  # second arrival, not window

    def test_expired_window_starts_a_new_batch(self):
        tasks = [
            compat_task(0, 0.0, 500_000.0),
            compat_task(1, 50_000.0, 500_000.0),
        ]
        result = self.cluster(
            BatchConfig(window_cycles=10_000.0, max_batch=8)
        ).run(tasks)
        assert [b.batch_size for b in result.batches] == [1, 1]
        assert result.batch_count == 0

    def test_classes_never_blend(self):
        tasks = [
            compat_task(0, 0.0, 500_000.0, priority=Priority.LOW),
            compat_task(1, 100.0, 500_000.0, priority=Priority.HIGH),
        ]
        result = self.cluster(
            BatchConfig(window_cycles=10_000.0, max_batch=8)
        ).run(tasks)
        assert len(result.batches) == 2
        assert all(b.batch_size == 1 for b in result.batches)

    def test_batch_amortizes_device_time(self):
        # 4 identical requests, alpha=0.5: the merged dispatch occupies
        # max + 0.5 * 3 * c = 2.5c of device time instead of 4c.
        tasks = [
            compat_task(i, float(i), 1_000_000.0) for i in range(4)
        ]
        result = self.cluster(
            BatchConfig(
                window_cycles=10_000.0, max_batch=8,
                marginal_fraction=0.5,
            ),
            num_devices=1,
        ).run(tasks)
        assert result.mean_batch_size == 4.0
        makespan = result.makespan_cycles
        assert makespan == pytest.approx(10_000.0 + 2_500_000.0, rel=1e-6)

    def test_rejected_member_dissolves_from_batch(self):
        class RejectOne(AdmissionController):
            """Force-reject one task id; admit everything else."""

            def __init__(self, victim):
                super().__init__()
                self.victim = victim

            def decide(self, task, backlog_cycles, now, attempt=0,
                       marginal_scale=1.0):
                if task.task_id == self.victim:
                    record = AdmissionRecord(
                        task_id=task.task_id, qos="standard",
                        decision=AdmissionDecision.REJECT,
                        time_cycles=now, predicted_slowdown=99.0,
                        attempt=attempt,
                    )
                    self._records.append(record)
                    return record
                return super().decide(
                    task, backlog_cycles, now, attempt, marginal_scale
                )

        tasks = [
            compat_task(0, 0.0, 500_000.0),
            compat_task(1, 1_000.0, 500_000.0),
            compat_task(2, 2_000.0, 500_000.0),
        ]
        result = self.cluster(
            BatchConfig(window_cycles=10_000.0, max_batch=8),
            admission=RejectOne(victim=1),
        ).run(tasks)
        # The batch flushed with the surviving members only.
        assert len(result.batches) == 1
        assert result.batches[0].member_task_ids == (0, 2)
        assert [t.task_id for t in result.rejected_tasks] == [1]
        rejected_job = next(
            job for job in result.jobs if job.job_id == 1
        )
        assert rejected_job.state is JobState.REJECTED
        assert not rejected_job.source.is_done
        assert {t.task_id for t in result.tasks} == {0, 2}
        assert all(t.is_done for t in result.tasks)

    def test_admission_settles_batched_members(self):
        # Every admitted member's budget charge is released at the
        # *batch* completion -- outstanding work returns to zero.
        admission = AdmissionController()
        tasks = [
            compat_task(0, 0.0, 500_000.0),
            compat_task(1, 1_000.0, 500_000.0),
        ]
        result = self.cluster(
            BatchConfig(window_cycles=10_000.0, max_batch=8),
            admission=admission,
        ).run(tasks)
        assert len(result.tasks) == 2
        assert result.mean_batch_size == 2.0
        assert admission.outstanding_cycles() == 0.0
