"""NPU CISC ISA and the DNN-graph-to-instruction compiler (Sec II-B)."""

from repro.isa.compiler import CompiledLayer, CompiledModel, compile_model
from repro.isa.instructions import (
    ConvOp,
    GemmOp,
    Instruction,
    InstructionStream,
    LoadTile,
    Opcode,
    StoreTile,
    VectorOp,
)

__all__ = [
    "Opcode",
    "Instruction",
    "LoadTile",
    "GemmOp",
    "ConvOp",
    "VectorOp",
    "StoreTile",
    "InstructionStream",
    "CompiledLayer",
    "CompiledModel",
    "compile_model",
]
