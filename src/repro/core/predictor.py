"""Architecture-aware inference-time prediction (paper Algorithm 1).

The predictor walks the GEMM layers (CONV/FC/RECR) of a compiled model and
sums, per layer, the double-buffered inner-tile and outer-tile costs:

    C1 = ACC + SH + 2*SW
    M1 = (SH*SW + SH*ACC) / BW
    T_inner = max(C1, M1)
    C2/M2   = same with the partial-n remainder
    T_layer = inner_count*T_inner + outer_count*T_outer

Vector-only layers (ACTV/POOL/SOFTMAX) are invisible to the predictor --
they are the deliberate blind spot that, together with partial-tile
savings in the engine, yields the paper's small-but-nonzero prediction
error.  For RNNs, the number of unrolled nodes is itself predicted from
the input sequence length via :class:`SequenceLengthRegressor`.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

from repro.isa.compiler import CompiledModel
from repro.npu.config import NPUConfig
from repro.npu.systolic import predicted_gemm_cycles


def predicted_layer_cycles(shape, config: NPUConfig) -> float:
    """Algorithm 1's estimate for one (m, k, n) GEMM layer."""
    return predicted_gemm_cycles(shape, config)


@dataclasses.dataclass(frozen=True)
class PredictionBreakdown:
    """Per-model prediction with layer-level detail for analysis."""

    model_name: str
    batch: int
    total_cycles: float
    layer_cycles: Dict[str, float]


class LatencyPredictor:
    """Network-wide inference time estimation (Algorithm 1, line 12).

    The CPU derives ``Time_estimated`` from the model topology before
    dispatching the request (Sec V-B "Putting Everything Together"); the
    scheduler then treats it as part of the task's context state.
    """

    def __init__(self, config: NPUConfig) -> None:
        self.config = config
        self._cache: Dict[tuple, float] = {}

    def predict_model(self, model: CompiledModel) -> float:
        """Estimated cycles for a compiled model (CNN or unrolled RNN)."""
        key = self._cache_key(model)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        total = 0.0
        for layer in model.layers:
            for shape in layer.gemm_shapes:
                total += predicted_gemm_cycles(shape, self.config)
        self._cache[key] = total
        return total

    def breakdown(self, model: CompiledModel) -> PredictionBreakdown:
        """Per-layer estimates (Fig 10 and accuracy analyses)."""
        layer_cycles: Dict[str, float] = {}
        for layer in model.layers:
            if not layer.gemm_shapes:
                continue
            layer_cycles[layer.name] = sum(
                predicted_gemm_cycles(shape, self.config)
                for shape in layer.gemm_shapes
            )
        return PredictionBreakdown(
            model_name=model.name,
            batch=model.batch,
            total_cycles=sum(layer_cycles.values()),
            layer_cycles=layer_cycles,
        )

    @staticmethod
    def _cache_key(model: CompiledModel) -> tuple:
        return (model.name, model.batch, len(model.layers))


class OraclePredictor:
    """Oracular variant for Sec VI-D: returns the exact simulated time.

    Built by experiments that already know each task's ground-truth
    isolated execution profile; lets us measure how far PREMA-with-model
    sits from PREMA-with-perfect-knowledge.
    """

    def __init__(self) -> None:
        self._truth: Dict[int, float] = {}

    def register(self, task_id: int, true_cycles: float) -> None:
        if true_cycles < 0:
            raise ValueError("true_cycles must be >= 0")
        self._truth[task_id] = true_cycles

    def observe(self, task) -> None:
        """Learn a completed task's ground truth (shared observe surface).

        Mirrors :meth:`repro.serving.feedback.PredictionFeedback.observe`
        so experiment code can plug either learner into the same
        completion hook: the oracle simply *becomes* exact for every task
        it has watched finish.  Duck-typed on ``task_id`` /
        ``isolated_cycles`` / ``is_done``.
        """
        if not task.is_done:
            raise ValueError(f"task {task.task_id} has not completed")
        self.register(task.task_id, task.isolated_cycles)

    def predict_task(self, task_id: int) -> float:
        if task_id not in self._truth:
            raise KeyError(f"oracle has no ground truth for task {task_id}")
        return self._truth[task_id]

    def __contains__(self, task_id: int) -> bool:
        return task_id in self._truth
