"""Systolic GEMM timing: Algorithm-1 closed forms and engine tile costs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.npu.config import NPUConfig
from repro.npu.systolic import (
    compute_cycles_full,
    compute_cycles_partial_n,
    engine_gemm_timing,
    memory_cycles_full,
    memory_cycles_partial_n,
    predicted_gemm_cycles,
    store_cycles,
    tile_compute_cycles,
    tile_memory_cycles,
    vector_op_cycles,
)
from repro.npu.tiling import GemmShape, TilePlan


class TestAlgorithmOneTerms:
    def test_c1_formula(self, config):
        # C1 = ACC + SH + 2*SW (Algorithm 1 line 3).
        assert compute_cycles_full(config) == config.acc_depth + 128 + 256

    def test_c2_shrinks_with_remainder(self, config):
        assert compute_cycles_partial_n(config, 10) == 10 + 128 + 256
        assert compute_cycles_partial_n(config, 10) < compute_cycles_full(config)

    def test_m1_formula(self, config):
        elems = 128 * 128 + 128 * config.acc_depth
        expected = elems * 2 / config.bandwidth_bytes_per_cycle
        assert memory_cycles_full(config) == pytest.approx(expected)

    def test_m2_below_m1(self, config):
        assert memory_cycles_partial_n(config, 100) < memory_cycles_full(config)

    def test_inner_tile_is_compute_bound_at_table_one(self, config):
        # With ACC=2048 at 358 GB/s the inner tile hides its memory phase.
        assert compute_cycles_full(config) > memory_cycles_full(config)


class TestPredictedGemmCycles:
    def test_single_inner_tile(self, config):
        shape = GemmShape(m=128, k=128, n=config.acc_depth)
        expected = max(compute_cycles_full(config), memory_cycles_full(config))
        assert predicted_gemm_cycles(shape, config) == pytest.approx(expected)

    def test_partial_n_adds_outer_term(self, config):
        full = predicted_gemm_cycles(
            GemmShape(m=128, k=128, n=config.acc_depth), config
        )
        with_rem = predicted_gemm_cycles(
            GemmShape(m=128, k=128, n=config.acc_depth + 5), config
        )
        assert with_rem > full
        assert with_rem < 2 * full

    def test_small_layer_not_free(self, config):
        # The paper's floor pseudo-code would yield 0 here (DESIGN.md #1).
        assert predicted_gemm_cycles(GemmShape(m=8, k=8, n=8), config) > 0

    def test_scales_linearly_in_m_tiles(self, config):
        one = predicted_gemm_cycles(GemmShape(m=128, k=128, n=2048), config)
        four = predicted_gemm_cycles(GemmShape(m=512, k=128, n=2048), config)
        assert four == pytest.approx(4 * one)

    @given(
        m=st.integers(min_value=1, max_value=512),
        k=st.integers(min_value=1, max_value=512),
        n=st.integers(min_value=1, max_value=4096),
    )
    @settings(max_examples=50, deadline=None)
    def test_monotone_in_each_dimension(self, m, k, n):
        config = NPUConfig()
        base = predicted_gemm_cycles(GemmShape(m=m, k=k, n=n), config)
        assert predicted_gemm_cycles(GemmShape(m=m + 128, k=k, n=n), config) > base
        assert predicted_gemm_cycles(GemmShape(m=m, k=k + 128, n=n), config) > base
        assert predicted_gemm_cycles(GemmShape(m=m, k=k, n=n + 4096), config) > base


class TestEngineTileCosts:
    def test_fill_uses_physical_dims(self, config):
        plan = TilePlan(GemmShape(m=1, k=1, n=1), config)
        tile = plan.tile_at(0, 0, 0)
        # Even a 1x1x1 tile pays the full array fill/drain.
        assert tile_compute_cycles(config, tile) == 1 + 128 + 256

    def test_memory_uses_actual_bytes(self, config):
        plan = TilePlan(GemmShape(m=1, k=1, n=1), config)
        tile = plan.tile_at(0, 0, 0)
        expected = (1 * 1 + 1 * 1) * 2 / config.bandwidth_bytes_per_cycle
        assert tile_memory_cycles(config, tile) == pytest.approx(expected)

    def test_engine_timing_counts_all_tiles(self, config):
        shape = GemmShape(m=300, k=200, n=3000)
        timing = engine_gemm_timing(shape, config)
        assert timing.tile_count == TilePlan(shape, config).total_tiles
        assert timing.total_cycles > 0
        assert timing.mean_tile_cycles == pytest.approx(
            timing.total_cycles / timing.tile_count
        )

    def test_engine_at_most_predictor_plus_overheads(self, config):
        # The engine's steady-state per-tile cost never exceeds the
        # predictor's (memory phases only shrink with partial tiles).
        shape = GemmShape(m=130, k=130, n=2049)
        engine = engine_gemm_timing(shape, config).total_cycles
        predicted = predicted_gemm_cycles(shape, config)
        cold_start_allowance = memory_cycles_full(config) + config.memory_latency_cycles
        assert engine <= predicted + cold_start_allowance

    def test_effective_throughput_below_peak(self, config):
        shape = GemmShape(m=512, k=512, n=8192)
        timing = engine_gemm_timing(shape, config)
        assert 0 < timing.effective_macs_per_cycle() <= config.peak_macs_per_cycle


class TestVectorAndStore:
    def test_vector_op_cycles(self, config):
        assert vector_op_cycles(config, 1280) == pytest.approx(10.0)

    def test_vector_op_rejects_negative(self, config):
        with pytest.raises(ValueError):
            vector_op_cycles(config, -1)

    def test_store_cycles_includes_latency(self, config):
        assert store_cycles(config, 0) == config.memory_latency_cycles

    def test_store_cycles_scales_with_bytes(self, config):
        small = store_cycles(config, 1024)
        large = store_cycles(config, 1024 * 1024)
        assert large > small

    def test_store_rejects_negative(self, config):
        with pytest.raises(ValueError):
            store_cycles(config, -1)
