"""Extension experiment: node-level scheduling over multiple NPUs.

The paper leaves multi-NPU policy as future work (Sec II-C); this harness
measures it with our cluster layer: a fixed pool of inference requests is
served by 1/2/4 NPUs under (router x device-scheduler) combinations, and
we report ANTT, makespan, and the utilization spread across devices.

The headline question: does the predictor keep paying off *above* the
device?  Predictive least-loaded routing should beat blind round-robin,
and PREMA devices should beat NP-FCFS devices at every cluster size.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

import numpy as np

from repro.analysis.reporting import format_table
from repro.npu.config import NPUConfig
from repro.sched.cluster import ClusterScheduler, RoutingPolicy
from repro.sched.metrics import compute_metrics
from repro.sched.prepare import TaskFactory
from repro.sched.simulator import PreemptionMode, SimulationConfig
from repro.workloads.generator import WorkloadGenerator


@dataclasses.dataclass(frozen=True)
class ClusterRow:
    """One (devices, router, device-scheduler) measurement."""

    num_devices: int
    routing: str
    device_policy: str
    antt: float
    makespan_ms: float
    mean_utilization: float
    utilization_spread: float


def run_cluster_scaling(
    config: Optional[NPUConfig] = None,
    factory: Optional[TaskFactory] = None,
    num_tasks: int = 24,
    num_workloads: int = 4,
    device_counts: Sequence[int] = (1, 2, 4),
    seed: int = 33,
) -> List[ClusterRow]:
    config = config or NPUConfig()
    factory = factory or TaskFactory(config)
    workloads = WorkloadGenerator(
        seed=seed, arrival_window_cycles=config.ms_to_cycles(30.0)
    ).generate_many(num_workloads, num_tasks=num_tasks)
    combos = [
        (RoutingPolicy.ROUND_ROBIN, "FCFS", PreemptionMode.NP),
        (RoutingPolicy.ROUND_ROBIN, "PREMA", PreemptionMode.DYNAMIC),
        (RoutingPolicy.LEAST_LOADED, "FCFS", PreemptionMode.NP),
        (RoutingPolicy.LEAST_LOADED, "PREMA", PreemptionMode.DYNAMIC),
    ]
    rows: List[ClusterRow] = []
    for num_devices in device_counts:
        for routing, policy, mode in combos:
            antts, makespans, means, spreads = [], [], [], []
            for workload in workloads:
                scheduler = ClusterScheduler(
                    num_devices=num_devices,
                    simulation_config=SimulationConfig(npu=config, mode=mode),
                    policy_name=policy,
                    routing=routing,
                    seed=seed,
                )
                tasks = factory.build_workload(workload)
                result = scheduler.run(tasks)
                metrics = compute_metrics(result.tasks)
                utilization = result.device_utilization()
                antts.append(metrics.antt)
                makespans.append(config.cycles_to_ms(result.makespan_cycles))
                means.append(float(np.mean(utilization)))
                spreads.append(float(np.max(utilization) - np.min(utilization)))
            rows.append(
                ClusterRow(
                    num_devices=num_devices,
                    routing=routing.value,
                    device_policy=policy,
                    antt=float(np.mean(antts)),
                    makespan_ms=float(np.mean(makespans)),
                    mean_utilization=float(np.mean(means)),
                    utilization_spread=float(np.mean(spreads)),
                )
            )
    return rows


def format_cluster_scaling(rows: Sequence[ClusterRow]) -> str:
    return format_table(
        ("devices", "routing", "device_policy", "ANTT", "makespan_ms",
         "mean_util", "util_spread"),
        [
            (r.num_devices, r.routing, r.device_policy, r.antt,
             r.makespan_ms, r.mean_utilization, r.utilization_spread)
            for r in rows
        ],
        title="Extension: multi-NPU node-level scheduling (Sec II-C future work)",
    )
