"""Regenerates paper Fig 12: static vs dynamic preemption (the headline).

Paper headline: PREMA with dynamic mechanism selection reaches ~7.8x ANTT,
~19.6x fairness, and ~1.4x STP over NP-FCFS.  Our simulator reproduces the
shape (multi-x ANTT/fairness, >1.3x STP); see EXPERIMENTS.md for measured
numbers.
"""

from repro.analysis.experiments.fig12_preemptive import (
    format_fig12,
    headline,
    run_fig12,
)


def test_fig12_preemptive(benchmark, config, factory, workloads, emit):
    rows = benchmark.pedantic(
        run_fig12,
        kwargs=dict(workloads=workloads, config=config, factory=factory),
        rounds=1,
        iterations=1,
    )
    emit("fig12_preemptive", format_fig12(rows))
    top = headline(rows)
    assert top["antt_improvement"] > 3.0
    assert top["fairness_improvement"] > 2.0
    assert top["stp_improvement"] > 1.2
    by_key = {(r.variant, r.policy): r for r in rows}
    # Algorithm 3's payoff: dynamic PREMA >= static PREMA on ANTT and STP,
    # with drain overrides actually firing.
    assert by_key[("Dynamic", "PREMA")].antt_improvement >= \
        by_key[("Static", "PREMA")].antt_improvement
    assert by_key[("Dynamic", "PREMA")].stp_improvement >= \
        by_key[("Static", "PREMA")].stp_improvement
    assert by_key[("Dynamic", "PREMA")].drains > 0
