"""Shared ensemble runner for the multi-workload experiments (Figs 11-15).

One :class:`SchedulerSetup` names a (policy, preemption mode, mechanism)
triple; :func:`run_ensemble` executes an ensemble of workloads under each
setup with fresh task runtimes per run, and returns per-setup ensemble
metrics plus the raw completed tasks (for SLA/tail analyses).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro.npu.config import NPUConfig
from repro.sched.metrics import EnsembleMetrics, aggregate_metrics
from repro.sched.policies import make_policy
from repro.sched.prepare import TaskFactory
from repro.sched.simulator import (
    NPUSimulator,
    PreemptionMode,
    SimulationConfig,
    SimulationResult,
)
from repro.sched.task import TaskRuntime
from repro.workloads.specs import WorkloadSpec


@dataclasses.dataclass(frozen=True)
class SchedulerSetup:
    """A named (policy, mode, mechanism) evaluation point."""

    label: str
    policy: str
    mode: PreemptionMode
    mechanism: str = "CHECKPOINT"

    def build_simulator(self, npu: NPUConfig) -> NPUSimulator:
        return NPUSimulator(
            SimulationConfig(npu=npu, mode=self.mode, mechanism=self.mechanism),
            make_policy(self.policy),
        )


#: The nine policies of the paper's Fig 13, by their figure labels.
FIG13_SETUPS: Tuple[SchedulerSetup, ...] = (
    SchedulerSetup("NP-FCFS", "FCFS", PreemptionMode.NP),
    SchedulerSetup("NP-HPF", "HPF", PreemptionMode.NP),
    SchedulerSetup("NP-PREMA", "PREMA", PreemptionMode.NP),
    SchedulerSetup("Static-HPF", "HPF", PreemptionMode.STATIC),
    SchedulerSetup("Static-SJF", "SJF", PreemptionMode.STATIC),
    SchedulerSetup("Static-PREMA", "PREMA", PreemptionMode.STATIC),
    SchedulerSetup("Dynamic-HPF", "HPF", PreemptionMode.DYNAMIC),
    SchedulerSetup("Dynamic-SJF", "SJF", PreemptionMode.DYNAMIC),
    SchedulerSetup("Dynamic-PREMA", "PREMA", PreemptionMode.DYNAMIC),
)


@dataclasses.dataclass(frozen=True)
class EnsembleOutcome:
    """All completed runs of one setup over one workload ensemble."""

    setup: SchedulerSetup
    metrics: EnsembleMetrics
    #: One entry per workload: the completed task runtimes.
    tasks_per_workload: Tuple[Tuple[TaskRuntime, ...], ...]
    results: Tuple[SimulationResult, ...]

    def all_tasks(self) -> List[TaskRuntime]:
        return [task for tasks in self.tasks_per_workload for task in tasks]


def run_setup(
    setup: SchedulerSetup,
    workloads: Sequence[WorkloadSpec],
    factory: TaskFactory,
    npu: NPUConfig,
    oracle: bool = False,
) -> EnsembleOutcome:
    """Run one setup over every workload (fresh runtimes per run)."""
    simulator = setup.build_simulator(npu)
    results: List[SimulationResult] = []
    tasks_per_workload: List[Tuple[TaskRuntime, ...]] = []
    for workload in workloads:
        tasks = factory.build_workload(workload, oracle=oracle)
        result = simulator.run(tasks)
        results.append(result)
        tasks_per_workload.append(tuple(tasks))
    metrics = aggregate_metrics(tasks_per_workload)
    return EnsembleOutcome(
        setup=setup,
        metrics=metrics,
        tasks_per_workload=tuple(tasks_per_workload),
        results=tuple(results),
    )


def run_ensemble(
    setups: Sequence[SchedulerSetup],
    workloads: Sequence[WorkloadSpec],
    factory: Optional[TaskFactory] = None,
    npu: Optional[NPUConfig] = None,
    oracle: bool = False,
) -> Dict[str, EnsembleOutcome]:
    """Run every setup over the same workload ensemble."""
    npu = npu or NPUConfig()
    factory = factory or TaskFactory(npu)
    return {
        setup.label: run_setup(setup, workloads, factory, npu, oracle=oracle)
        for setup in setups
    }
