"""GEMM tile decomposition for the systolic array (paper Fig 3c).

A ``GEMM_OP`` between an (m x k) weight matrix and a (k x n) input
activation matrix is tiled so each step fits the array: weight tiles are at
most (SH x SW), activation tiles at most (SH x ACC).  Tiles whose every
dimension is full-sized are *inner* tiles; tiles on the right/bottom edges
with a partial dimension are *outer* tiles.

The paper's Algorithm 1 only shortens partial tiles along the ``n``
(accumulator) direction; partial ``m``/``k`` tiles are counted as full inner
tiles by the *predictor*, whereas the *engine* uses the true per-tile
dimensions (see DESIGN.md deviation #1).  This module provides the exact
enumeration both consumers share.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Iterator, Tuple

from repro.npu.config import NPUConfig


@dataclasses.dataclass(frozen=True)
class GemmShape:
    """Dimensions of a single GEMM: (m x k) weights times (k x n) inputs."""

    m: int
    k: int
    n: int

    def __post_init__(self) -> None:
        if self.m <= 0 or self.k <= 0 or self.n <= 0:
            raise ValueError(f"GEMM dimensions must be positive, got {self}")

    @property
    def macs(self) -> int:
        """Multiply-accumulate operations performed by this GEMM."""
        return self.m * self.k * self.n

    @property
    def weight_elems(self) -> int:
        return self.m * self.k

    @property
    def input_elems(self) -> int:
        return self.k * self.n

    @property
    def output_elems(self) -> int:
        return self.m * self.n


@dataclasses.dataclass(frozen=True)
class Tile:
    """One (sw x sh x acc) step of a tiled GEMM.

    ``sw``/``sh``/``acc`` are the *actual* (possibly partial) extents of the
    tile along the m/k/n dimensions respectively.
    """

    m_index: int
    k_index: int
    n_index: int
    sw: int
    sh: int
    acc: int

    @property
    def is_inner(self) -> bool:
        """True when no dimension is partial (full inner tile)."""
        return self.full_sw and self.full_sh and self.full_acc

    # The three "full" flags are filled in by TilePlan when iterating.
    full_sw: bool = True
    full_sh: bool = True
    full_acc: bool = True

    @property
    def macs(self) -> int:
        return self.sw * self.sh * self.acc

    @property
    def output_elems(self) -> int:
        return self.sw * self.acc


@dataclasses.dataclass(frozen=True)
class TilePlan:
    """Static decomposition of one GEMM onto the array.

    The plan is purely geometric -- no timing.  Timing layers on top in
    :mod:`repro.npu.systolic`.
    """

    shape: GemmShape
    config: NPUConfig

    # ------------------------------------------------------------------
    # Tile counts
    # ------------------------------------------------------------------
    @property
    def m_tiles(self) -> int:
        return math.ceil(self.shape.m / self.config.array_width)

    @property
    def k_tiles(self) -> int:
        return math.ceil(self.shape.k / self.config.array_height)

    @property
    def n_tiles(self) -> int:
        return math.ceil(self.shape.n / self.config.acc_depth)

    @property
    def total_tiles(self) -> int:
        return self.m_tiles * self.k_tiles * self.n_tiles

    @property
    def n_inner_tiles(self) -> int:
        """Tiles that are full along the n direction (paper's inner tiles)."""
        return self.m_tiles * self.k_tiles * (self.shape.n // self.config.acc_depth)

    @property
    def n_outer_tiles(self) -> int:
        """Tiles partial along n (the paper's phi term, once per m/k tile)."""
        phi = 1 if self.shape.n % self.config.acc_depth else 0
        return self.m_tiles * self.k_tiles * phi

    @property
    def n_remainder(self) -> int:
        """Output columns in the partial n tile (0 when n divides evenly)."""
        return self.shape.n % self.config.acc_depth

    # ------------------------------------------------------------------
    # Per-tile extents
    # ------------------------------------------------------------------
    def _extent(self, index: int, total: int, full: int, size: int) -> int:
        if index < total - 1:
            return full
        remainder = size % full
        return remainder if remainder else full

    def tile_at(self, m_index: int, k_index: int, n_index: int) -> Tile:
        """Materialize the tile at the given (m, k, n) tile coordinates."""
        cfg = self.config
        if not (0 <= m_index < self.m_tiles):
            raise IndexError(f"m_index {m_index} out of range")
        if not (0 <= k_index < self.k_tiles):
            raise IndexError(f"k_index {k_index} out of range")
        if not (0 <= n_index < self.n_tiles):
            raise IndexError(f"n_index {n_index} out of range")
        sw = self._extent(m_index, self.m_tiles, cfg.array_width, self.shape.m)
        sh = self._extent(k_index, self.k_tiles, cfg.array_height, self.shape.k)
        acc = self._extent(n_index, self.n_tiles, cfg.acc_depth, self.shape.n)
        return Tile(
            m_index=m_index,
            k_index=k_index,
            n_index=n_index,
            sw=sw,
            sh=sh,
            acc=acc,
            full_sw=sw == cfg.array_width,
            full_sh=sh == cfg.array_height,
            full_acc=acc == cfg.acc_depth,
        )

    def tiles(self) -> Iterator[Tile]:
        """Iterate tiles in execution order: weight-stationary means we keep
        a weight tile latched while streaming all its n tiles, and iterate
        k (reduction) innermost across weight tiles so ACCQ accumulates.

        Order: for each m tile -> for each n tile -> for each k tile.
        """
        for m_index in range(self.m_tiles):
            for n_index in range(self.n_tiles):
                for k_index in range(self.k_tiles):
                    yield self.tile_at(m_index, k_index, n_index)

    # ------------------------------------------------------------------
    # Aggregate sanity properties (used heavily by tests)
    # ------------------------------------------------------------------
    def total_macs(self) -> int:
        return sum(t.macs for t in self.tiles())

    def utilization(self) -> float:
        """Fraction of the array's MAC slots doing useful work, geometry only.

        A partial tile occupies the array for as long as a full one would in
        the worst case, so utilization is useful MACs over the MAC capacity
        of ``total_tiles`` full tiles.
        """
        cfg = self.config
        capacity = self.total_tiles * cfg.array_width * cfg.array_height * cfg.acc_depth
        return self.shape.macs / capacity


def tile_plan(shape: GemmShape, config: NPUConfig) -> TilePlan:
    """Convenience constructor mirroring the rest of the API's style."""
    return TilePlan(shape=shape, config=config)


def split_counts(size: int, tile: int) -> Tuple[int, int]:
    """Return ``(full_tiles, remainder)`` for splitting ``size`` by ``tile``."""
    if size <= 0 or tile <= 0:
        raise ValueError("size and tile must be positive")
    return size // tile, size % tile
