"""Multi-task scheduling on the preemptible NPU.

- :mod:`repro.sched.task` -- per-task runtime state (progress, restores).
- :mod:`repro.sched.policies` -- FCFS/RRB/HPF/TOKEN/SJF/PREMA policies.
- :mod:`repro.sched.simulator` -- the event-driven multi-task simulator
  (stepwise :class:`DeviceSim` + batch :class:`NPUSimulator`).
- :mod:`repro.sched.cluster` -- event-driven multi-NPU cluster scheduling
  with static/online/work-stealing/checkpoint-migration routing, router
  batching, and pipeline-sharded gang dispatch.
- :mod:`repro.sched.job` -- the job surface: gang-of-slices execution
  (:class:`Job`, :class:`DeviceSlice`, :class:`BatchConfig`).
- :mod:`repro.sched.interconnect` -- modeled inter-NPU fabric (bandwidth,
  latency, per-link FIFO contention) checkpoint migrations cross; racks
  add an oversubscribed uplink tier above the rack-local links.
- :mod:`repro.sched.rack` -- rack-scale composition: the device->rack
  topology and the O(log r) two-tier routing frontend.
- :mod:`repro.sched.faults` -- device churn: seeded fail-stop faults,
  spot revocations with advance warning, maintenance drains, and the
  per-device availability state machine (see ``docs/failures.md``).
- :mod:`repro.sched.metrics` -- ANTT/STP/fairness/SLA/tail-latency metrics
  plus cluster-level queueing-delay, migration, and serving (per-class
  SLA attainment, rejection rate, goodput) metrics.
- :mod:`repro.sched.timeline` -- execution trace records (Fig 2 style),
  single-device and cluster-wide.
"""

from repro.sched.cluster import (
    BatchRecord,
    ClusterConfig,
    ClusterResult,
    ClusterScheduler,
    MigrationRecord,
    RoutingPolicy,
)
from repro.sched.faults import (
    ChurnEvent,
    ChurnSchedule,
    DeviceAvailability,
    FleetAvailability,
)
from repro.sched.job import (
    BatchConfig,
    DeviceSlice,
    Job,
    JobState,
    StagePlan,
)
from repro.sched.interconnect import (
    Interconnect,
    InterconnectConfig,
    TransferRecord,
)
from repro.sched.metrics import (
    ClusterMetrics,
    WorkloadMetrics,
    compute_cluster_metrics,
    compute_metrics,
    mean_queueing_delay,
    queueing_delay_by_task,
)
from repro.sched.policies import POLICY_NAMES, make_policy
from repro.sched.rack import RackRouter, RackTopology
from repro.sched.simulator import (
    DeviceSim,
    NPUSimulator,
    PreemptionMode,
    SimulationConfig,
)
from repro.sched.task import TaskRuntime
from repro.sched.timeline import ClusterTimeline, Timeline

__all__ = [
    "TaskRuntime",
    "POLICY_NAMES",
    "make_policy",
    "NPUSimulator",
    "DeviceSim",
    "SimulationConfig",
    "PreemptionMode",
    "WorkloadMetrics",
    "compute_metrics",
    "ClusterScheduler",
    "ClusterConfig",
    "ClusterResult",
    "RoutingPolicy",
    "MigrationRecord",
    "BatchRecord",
    "Job",
    "JobState",
    "DeviceSlice",
    "StagePlan",
    "BatchConfig",
    "Interconnect",
    "InterconnectConfig",
    "TransferRecord",
    "RackRouter",
    "RackTopology",
    "ChurnEvent",
    "ChurnSchedule",
    "DeviceAvailability",
    "FleetAvailability",
    "ClusterMetrics",
    "compute_cluster_metrics",
    "mean_queueing_delay",
    "queueing_delay_by_task",
    "Timeline",
    "ClusterTimeline",
]
