"""The NPU's CISC instruction set (paper Sec II-B).

Five opcodes: ``LOAD_TILE``, ``GEMM_OP``, ``CONV_OP``, ``VECTOR_OP`` and
``STORE_TILE``.  ``CONV_OP`` is a ``GEMM_OP`` whose operands were produced
by im2col lowering; both drive the systolic array identically, so they
share the :class:`GemmOp` timing path and differ only in opcode tag.

Instructions carry *sizes*, not data: this is a performance model, so an
instruction is fully described by how many bytes it moves and which tile
it computes.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Iterator, List, Optional

from repro.npu.tiling import Tile


class Opcode(enum.Enum):
    LOAD_TILE = "LOAD_TILE"
    GEMM_OP = "GEMM_OP"
    CONV_OP = "CONV_OP"
    VECTOR_OP = "VECTOR_OP"
    STORE_TILE = "STORE_TILE"


@dataclasses.dataclass(frozen=True)
class Instruction:
    """Base instruction: an opcode plus a target task's address space."""

    @property
    def opcode(self) -> Opcode:
        raise NotImplementedError


@dataclasses.dataclass(frozen=True)
class LoadTile(Instruction):
    """DMA from DRAM into UBUF (activations) or the weight buffer."""

    num_bytes: int
    destination: str = "ubuf"  # "ubuf" | "wbuf"

    def __post_init__(self) -> None:
        if self.num_bytes < 0:
            raise ValueError("num_bytes must be >= 0")
        if self.destination not in ("ubuf", "wbuf"):
            raise ValueError("destination must be 'ubuf' or 'wbuf'")

    @property
    def opcode(self) -> Opcode:
        return Opcode.LOAD_TILE


@dataclasses.dataclass(frozen=True)
class GemmOp(Instruction):
    """One tile's matrix multiply on the systolic array."""

    tile: Tile
    #: True when this k-step commits its output tile from ACCQ to UBUF
    #: (last reduction step); preemption checkpoints snap to these commits.
    commits_output: bool = True

    @property
    def opcode(self) -> Opcode:
        return Opcode.GEMM_OP


@dataclasses.dataclass(frozen=True)
class ConvOp(GemmOp):
    """GEMM_OP on im2col-lowered convolution operands (Sec II-B)."""

    @property
    def opcode(self) -> Opcode:
        return Opcode.CONV_OP


@dataclasses.dataclass(frozen=True)
class VectorOp(Instruction):
    """Element-wise vector-unit work (activations, pooling, gate math)."""

    num_elems: int
    function: str = "relu"

    def __post_init__(self) -> None:
        if self.num_elems < 0:
            raise ValueError("num_elems must be >= 0")

    @property
    def opcode(self) -> Opcode:
        return Opcode.VECTOR_OP


@dataclasses.dataclass(frozen=True)
class StoreTile(Instruction):
    """DMA from UBUF back to DRAM."""

    num_bytes: int

    def __post_init__(self) -> None:
        if self.num_bytes < 0:
            raise ValueError("num_bytes must be >= 0")

    @property
    def opcode(self) -> Opcode:
        return Opcode.STORE_TILE


class InstructionStream:
    """An ordered instruction list with aggregate accounting.

    The CPU populates the NPU instruction buffer with such streams
    (Sec II-B); the engine and cycle simulator consume them.
    """

    def __init__(self, label: str = "") -> None:
        self.label = label
        self._instructions: List[Instruction] = []

    def append(self, instruction: Instruction) -> None:
        self._instructions.append(instruction)

    def extend(self, instructions: List[Instruction]) -> None:
        self._instructions.extend(instructions)

    def __len__(self) -> int:
        return len(self._instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self._instructions)

    def __getitem__(self, index: int) -> Instruction:
        return self._instructions[index]

    def count(self, opcode: Opcode) -> int:
        return sum(1 for i in self._instructions if i.opcode == opcode)

    def loaded_bytes(self, destination: Optional[str] = None) -> int:
        total = 0
        for instruction in self._instructions:
            if isinstance(instruction, LoadTile):
                if destination is None or instruction.destination == destination:
                    total += instruction.num_bytes
        return total

    def stored_bytes(self) -> int:
        return sum(
            i.num_bytes for i in self._instructions if isinstance(i, StoreTile)
        )

    def gemm_tiles(self) -> List[GemmOp]:
        return [i for i in self._instructions if isinstance(i, GemmOp)]

    def total_macs(self) -> int:
        return sum(op.tile.macs for op in self.gemm_tiles())
