"""Device churn: fail-stop faults, spot revocations, maintenance drains.

The cluster so far assumed immortal devices; this module supplies the
failure model that turns the checkpoint/migration machinery into a
fault-tolerance story.  Three event kinds, all deterministic and seeded:

- **fail-stop fault** -- the device dies with *no* warning (``warn ==
  down``).  Running and checkpointing work is killed, non-durable
  progress is lost, queued tasks are orphaned back to the frontier.
- **spot revocation** -- the provider announces the reclaim ``warn``
  cycles in advance (the Parcae setting).  A proactive scheduler uses
  the window to drain durable checkpoints and checkpoint-then-migrate
  running work to surviving devices before the deadline.
- **maintenance drain** -- like a revocation but always restored: the
  device re-enters service at ``restore_cycles``.

Availability is a per-device state machine::

    HEALTHY --warn--> WARNED/DRAINING --down--> DOWN --restore--> HEALTHY

(``WARNED`` for revocations/faults, ``DRAINING`` for maintenance; the
two differ only in provenance -- the scheduler treats both as "doomed,
evacuate if proactive".)

Determinism contract: :meth:`ChurnSchedule.generate` draws every sample
from named per-unit RNG substreams (``seed ^ 0xFA17 ^ unit``, the unit
being a device for :meth:`~ChurnSchedule.generate` and a rack for
:meth:`~ChurnSchedule.generate_rack_correlated`), mirroring how
``trace.assign_qos`` tags arrivals -- enabling churn never perturbs the
arrival or runtime streams, so a churn-enabled run sees bit-identical
task traces to a churn-free one.  Substreams additionally make the
schedule *partition-stable*: unit ``u``'s outage windows are a pure
function of ``(seed, u, rates)`` alone, so a rack-sharded fleet (the
parallel backend) regenerating only its own racks' schedules reproduces
exactly the events the global draw assigned them, and growing the fleet
never reshuffles the outages of the units that were already there
(``tests/test_churn.py`` pins both properties).  Only the global
``max_concurrent_down`` cap couples units, and it does so through a
deterministic post-pass arbitration over the independently drawn
windows (earliest warning wins), not through the RNG streams.
"""

from __future__ import annotations

import dataclasses
import enum
import heapq
import math
import random
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.obs.trace import NULL_TRACER

__all__ = [
    "ChurnEvent",
    "ChurnSchedule",
    "DeviceAvailability",
    "FleetAvailability",
    "CHURN_STREAM_SALT",
]

#: Named-RNG-stream salt for churn schedules (``trace.assign_qos`` uses
#: ``0x0905``); XORed into the workload seed so the churn stream is
#: independent of every other stream derived from the same seed.
CHURN_STREAM_SALT = 0xFA17

#: The three churn event kinds.
EVENT_KINDS = ("fault", "revocation", "drain")


def _unit_stream(seed: int, unit: int) -> random.Random:
    """The named churn substream of one unit (device or rack)."""
    return random.Random(seed ^ CHURN_STREAM_SALT ^ unit)


def _draw_unit_windows(
    rng: random.Random,
    horizon_cycles: float,
    processes: Tuple[Tuple[str, float], ...],
    mean_outage_cycles: float,
    mean_warning_cycles: float,
    never_restore_probability: float,
) -> List[Tuple[float, float, float, str, bool]]:
    """One unit's candidate outage windows, from its own substream.

    Returns ``(warn, down, restore, kind, never)`` tuples in clock
    order.  The draw is deliberately independent of the concurrency-cap
    arbitration: the clock advances identically whether a window is
    later accepted or skipped (``restore`` for finite outages, ``down``
    for a never-restoring one), so a unit's candidates are a pure
    function of its substream -- the partition-stability contract.  A
    never-restoring window keeps the tail candidates attached; the
    arbitration drops them only if that window is actually accepted.
    """
    candidates: List[Tuple[float, float, float, str, bool]] = []
    clock = 0.0
    while processes:
        total_rate = sum(rate for _, rate in processes)
        clock += rng.expovariate(total_rate)
        if clock >= horizon_cycles:
            break
        pick = rng.random() * total_rate
        kind = processes[-1][0]
        for candidate, rate in processes:
            pick -= rate
            if pick <= 0.0:
                kind = candidate
                break
        warn_gap = (
            0.0
            if kind == "fault"
            else rng.expovariate(1.0 / mean_warning_cycles)
        )
        outage = rng.expovariate(1.0 / mean_outage_cycles)
        never = (
            kind == "revocation"
            and rng.random() < never_restore_probability
        )
        warn = clock
        down = warn + warn_gap
        restore = math.inf if never else down + outage
        candidates.append((warn, down, restore, kind, never))
        clock = down if never else restore
    return candidates


def _arbitrate_windows(
    unit_candidates: List[List[Tuple[float, float, float, str, bool]]],
    max_concurrent: int,
) -> List[List[Tuple[float, float, float, str, bool]]]:
    """Apply the global concurrency cap over per-unit candidate windows.

    Deterministic post-pass: windows are visited in ``(warn, unit)``
    order -- earliest warning wins the capacity -- and a window that
    would put more than ``max_concurrent`` units inside their ``[warn,
    restore)`` span at once is skipped.  Accepting a never-restoring
    window drops the unit's remaining candidates (the unit is gone for
    good), exactly like the draw loop's early exit.  Returns the
    accepted windows per unit, in clock order.
    """
    entries: List[Tuple[float, int, int]] = []
    for unit, candidates in enumerate(unit_candidates):
        for position, window in enumerate(candidates):
            entries.append((window[0], unit, position))
    entries.sort()
    windows: List[Tuple[float, float]] = []
    dead_after: Dict[int, int] = {}
    accepted: List[List[Tuple[float, float, float, str, bool]]] = [
        [] for _ in unit_candidates
    ]
    for warn, unit, position in entries:
        if unit in dead_after and position > dead_after[unit]:
            continue  # the unit never came back from an earlier window
        window = unit_candidates[unit][position]
        restore = window[2]
        concurrent = sum(1 for w, r in windows if warn < r and w < restore)
        if concurrent >= max_concurrent:
            continue  # skip: too much of the fleet would be dark at once
        accepted[unit].append(window)
        windows.append((warn, restore))
        if window[4]:
            dead_after[unit] = position
    return accepted


@dataclasses.dataclass(frozen=True)
class ChurnEvent:
    """One availability outage on one device.

    ``warn_cycles <= down_cycles < restore_cycles``; a fail-stop fault
    has ``warn_cycles == down_cycles`` (no advance notice), and a
    revocation that never returns has ``restore_cycles == math.inf``.
    """

    device: int
    kind: str
    warn_cycles: float
    down_cycles: float
    restore_cycles: float

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(
                f"unknown churn event kind {self.kind!r}; "
                f"expected one of {EVENT_KINDS}"
            )
        if self.device < 0:
            raise ValueError(f"negative device index {self.device}")
        if not self.warn_cycles <= self.down_cycles:
            raise ValueError(
                f"warning must not follow the outage: warn="
                f"{self.warn_cycles} > down={self.down_cycles}"
            )
        if not self.down_cycles < self.restore_cycles:
            raise ValueError(
                f"restore must follow the outage: down="
                f"{self.down_cycles} >= restore={self.restore_cycles}"
            )
        if self.kind == "fault" and self.warn_cycles != self.down_cycles:
            raise ValueError(
                "fail-stop faults carry no advance warning "
                f"(warn={self.warn_cycles} != down={self.down_cycles})"
            )
        if self.kind == "drain" and math.isinf(self.restore_cycles):
            raise ValueError("maintenance drains always restore")

    @property
    def warning_window_cycles(self) -> float:
        """Advance notice the scheduler gets before capacity vanishes."""
        return self.down_cycles - self.warn_cycles

    @property
    def outage_cycles(self) -> float:
        """How long the device stays down (``inf`` if never restored)."""
        return self.restore_cycles - self.down_cycles


@dataclasses.dataclass(frozen=True)
class ChurnSchedule:
    """A deterministic, validated set of outages for a device fleet.

    Events on the same device must not overlap: each event's
    ``warn_cycles`` must be at or after the previous event's
    ``restore_cycles``.  An empty schedule is valid and behaves exactly
    like churn disabled.
    """

    events: Tuple[ChurnEvent, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        per_device: Dict[int, List[ChurnEvent]] = {}
        for event in self.events:
            per_device.setdefault(event.device, []).append(event)
        for device, device_events in per_device.items():
            ordered = sorted(device_events, key=lambda e: e.warn_cycles)
            for prev, nxt in zip(ordered, ordered[1:]):
                if nxt.warn_cycles < prev.restore_cycles:
                    raise ValueError(
                        f"overlapping churn events on device {device}: "
                        f"[{prev.warn_cycles}, {prev.restore_cycles}) and "
                        f"[{nxt.warn_cycles}, {nxt.restore_cycles})"
                    )

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[ChurnEvent]:
        return iter(self.events)

    def events_for(self, device: int) -> Tuple[ChurnEvent, ...]:
        return tuple(
            sorted(
                (e for e in self.events if e.device == device),
                key=lambda e: e.warn_cycles,
            )
        )

    @property
    def num_revocations(self) -> int:
        return sum(1 for e in self.events if e.kind == "revocation")

    @classmethod
    def generate(
        cls,
        num_devices: int,
        horizon_cycles: float,
        seed: int = 0,
        *,
        fault_rate: float = 0.0,
        revocation_rate: float = 0.0,
        drain_rate: float = 0.0,
        mean_outage_cycles: float = 1.0e6,
        mean_warning_cycles: float = 1.0e6,
        never_restore_probability: float = 0.0,
        max_concurrent_down: Optional[int] = None,
    ) -> "ChurnSchedule":
        """Draw a schedule from per-device churn RNG substreams.

        Rates are events per cycle (Poisson processes per device); gaps
        between events on one device are exponential.  Outage durations
        and warning windows are exponential around their means.  With
        probability ``never_restore_probability`` a revocation never
        restores (the spot instance is gone for good).

        ``max_concurrent_down`` caps how many devices can be in their
        ``[warn, restore)`` window at once -- arbitration (earliest
        warning wins) skips events that would exceed it, so some
        capacity always survives.  It defaults to ``num_devices - 1``.

        Device ``d``'s candidate windows come from ``random.Random(seed
        ^ CHURN_STREAM_SALT ^ d)`` alone, so they are a pure function of
        ``(seed, d, rates)``: a rack-sharded worker regenerating only
        its own devices' schedules reproduces exactly the events the
        global draw assigned them, and growing the fleet never
        reshuffles the outages of existing devices.
        """
        if num_devices <= 0:
            raise ValueError("num_devices must be positive")
        if horizon_cycles <= 0:
            raise ValueError("horizon_cycles must be positive")
        if max_concurrent_down is None:
            max_concurrent_down = max(0, num_devices - 1)
        processes: Tuple[Tuple[str, float], ...] = tuple(
            (kind, rate)
            for kind, rate in (
                ("fault", fault_rate),
                ("revocation", revocation_rate),
                ("drain", drain_rate),
            )
            if rate > 0.0
        )
        candidates = [
            _draw_unit_windows(
                _unit_stream(seed, device),
                horizon_cycles,
                processes,
                mean_outage_cycles,
                mean_warning_cycles,
                never_restore_probability,
            )
            for device in range(num_devices)
        ]
        accepted = _arbitrate_windows(candidates, max_concurrent_down)
        events: List[ChurnEvent] = []
        for device in range(num_devices):
            for warn, down, restore, kind, _never in accepted[device]:
                events.append(
                    ChurnEvent(
                        device=device,
                        kind=kind,
                        warn_cycles=warn,
                        down_cycles=down,
                        restore_cycles=restore,
                    )
                )
        return cls(events=tuple(events))

    @classmethod
    def generate_rack_correlated(
        cls,
        rack_of: Sequence[int],
        horizon_cycles: float,
        seed: int = 0,
        *,
        fault_rate: float = 0.0,
        revocation_rate: float = 0.0,
        drain_rate: float = 0.0,
        mean_outage_cycles: float = 1.0e6,
        mean_warning_cycles: float = 1.0e6,
        never_restore_probability: float = 0.0,
        max_concurrent_down_racks: Optional[int] = None,
    ) -> "ChurnSchedule":
        """Draw a schedule where outages hit whole racks at once.

        The failure domains real fleets see -- a ToR switch dying, a
        rack PDU tripping, a maintenance drain of one rack -- take every
        device behind them down together.  This generator runs the same
        Poisson processes as :meth:`generate` but *per rack* (rack ``r``
        draws from ``random.Random(seed ^ CHURN_STREAM_SALT ^ r)``), and
        each accepted rack event expands to one :class:`ChurnEvent` per
        member device with identical warn/down/restore cycles, so the
        whole rack goes dark and comes back as a unit.

        ``rack_of`` is the device->rack map (``RackTopology.rack_of``).
        Rates are events per cycle *per rack*.
        ``max_concurrent_down_racks`` caps how many racks can be inside
        their ``[warn, restore)`` window at once (default: all but one),
        so some rack always survives to absorb evacuations.
        """
        rack_of = tuple(rack_of)
        if not rack_of:
            raise ValueError("rack_of must cover at least one device")
        if horizon_cycles <= 0:
            raise ValueError("horizon_cycles must be positive")
        num_racks = max(rack_of) + 1
        members: List[List[int]] = [[] for _ in range(num_racks)]
        for device, rack in enumerate(rack_of):
            if rack < 0:
                raise ValueError(f"negative rack id for device {device}")
            members[rack].append(device)
        if any(not devs for devs in members):
            raise ValueError("rack ids must be contiguous and non-empty")
        if max_concurrent_down_racks is None:
            max_concurrent_down_racks = max(0, num_racks - 1)
        processes: Tuple[Tuple[str, float], ...] = tuple(
            (kind, rate)
            for kind, rate in (
                ("fault", fault_rate),
                ("revocation", revocation_rate),
                ("drain", drain_rate),
            )
            if rate > 0.0
        )
        candidates = [
            _draw_unit_windows(
                _unit_stream(seed, rack),
                horizon_cycles,
                processes,
                mean_outage_cycles,
                mean_warning_cycles,
                never_restore_probability,
            )
            for rack in range(num_racks)
        ]
        accepted = _arbitrate_windows(candidates, max_concurrent_down_racks)
        events: List[ChurnEvent] = []
        for rack in range(num_racks):
            for warn, down, restore, kind, _never in accepted[rack]:
                for device in members[rack]:
                    events.append(
                        ChurnEvent(
                            device=device,
                            kind=kind,
                            warn_cycles=warn,
                            down_cycles=down,
                            restore_cycles=restore,
                        )
                    )
        return cls(events=tuple(events))


class DeviceAvailability(enum.Enum):
    """Where a device sits in its outage lifecycle."""

    HEALTHY = "healthy"
    WARNED = "warned"        # revocation/fault announced, still serving
    DRAINING = "draining"    # maintenance announced, still serving
    DOWN = "down"


#: Transition phases, in the order they occur within one event.
_PHASES = ("warn", "down", "restore", "check")


@dataclasses.dataclass(frozen=True)
class Transition:
    """One availability transition, popped from the fleet heap.

    ``phase`` is one of ``warn``/``down``/``restore`` (event lifecycle)
    or ``check`` (a scheduler-requested wake, e.g. "this device's forced
    checkpoint lands now -- re-run evacuation").
    """

    time_cycles: float
    phase: str
    device: int
    event: Optional[ChurnEvent] = None


class FleetAvailability:
    """Per-device availability states plus the transition time-heap.

    The cluster loop interleaves :meth:`pop` with its own event heap:
    transitions at time *t* rank between same-time COMPLETE and
    same-time ARRIVAL events (churn rank 0.5).  ``apply`` updates the
    state machine; the loop performs the side effects (kill, orphan,
    evacuate, re-index).
    """

    def __init__(
        self, num_devices: int, schedule: Optional[ChurnSchedule] = None
    ) -> None:
        self.num_devices = num_devices
        self.states: List[DeviceAvailability] = [
            DeviceAvailability.HEALTHY for _ in range(num_devices)
        ]
        #: Observability sink; the cluster scheduler replaces this with
        #: its tracer.  Default no-op singleton: zero cost when off.
        self.tracer = NULL_TRACER
        # (time, seq, phase, device, event); seq breaks ties in push
        # order, which matches event order (restore precedes a same-time
        # warn of the next event on the same device).
        self._heap: List[
            Tuple[float, int, str, int, Optional[ChurnEvent]]
        ] = []
        self._seq = 0
        if schedule is not None:
            for event in sorted(
                schedule.events,
                key=lambda e: (e.warn_cycles, e.device),
            ):
                if event.device >= num_devices:
                    continue  # schedule generated for a larger fleet
                if event.warn_cycles < event.down_cycles:
                    self._push(event.warn_cycles, "warn", event.device, event)
                self._push(event.down_cycles, "down", event.device, event)
                if not math.isinf(event.restore_cycles):
                    self._push(
                        event.restore_cycles, "restore", event.device, event
                    )

    def _push(
        self,
        time_cycles: float,
        phase: str,
        device: int,
        event: Optional[ChurnEvent],
    ) -> None:
        if phase not in _PHASES:
            raise ValueError(f"unknown transition phase {phase!r}")
        heapq.heappush(
            self._heap, (time_cycles, self._seq, phase, device, event)
        )
        self._seq += 1

    def push_check(self, time_cycles: float, device: int) -> None:
        """Schedule a scheduler wake (e.g. a forced checkpoint landing)."""
        self._push(time_cycles, "check", device, None)

    def peek_time(self) -> Optional[float]:
        return self._heap[0][0] if self._heap else None

    def __bool__(self) -> bool:
        return bool(self._heap)

    def pop(self) -> Transition:
        time_cycles, _, phase, device, event = heapq.heappop(self._heap)
        return Transition(
            time_cycles=time_cycles, phase=phase, device=device, event=event
        )

    def state(self, device: int) -> DeviceAvailability:
        return self.states[device]

    def is_doomed(self, device: int) -> bool:
        """True while the device is warned, draining, or down."""
        return self.states[device] is not DeviceAvailability.HEALTHY

    def surviving(self) -> Sequence[int]:
        """Devices currently serving (not DOWN)."""
        return [
            d
            for d in range(self.num_devices)
            if self.states[d] is not DeviceAvailability.DOWN
        ]

    def apply(self, transition: Transition) -> None:
        """Advance the state machine for one popped transition."""
        device = transition.device
        if self.tracer.enabled and transition.phase != "check":
            self.tracer.instant(
                "churn",
                f"churn {transition.phase} dev{device}",
                transition.time_cycles,
                args={
                    "device": device,
                    "phase": transition.phase,
                    "kind": (
                        transition.event.kind if transition.event else None
                    ),
                },
            )
        if transition.phase == "warn":
            kind = transition.event.kind if transition.event else "revocation"
            self.states[device] = (
                DeviceAvailability.DRAINING
                if kind == "drain"
                else DeviceAvailability.WARNED
            )
        elif transition.phase == "down":
            self.states[device] = DeviceAvailability.DOWN
        elif transition.phase == "restore":
            self.states[device] = DeviceAvailability.HEALTHY
        # "check" transitions carry no state change.
