"""Multi-tasked DNN workload construction (paper Sec III).

The open-arrival trace generators live in :mod:`repro.workloads.trace`;
they are not re-exported here because they build on ``repro.sched``
(which itself imports the workload specs).
"""

from repro.workloads.generator import WorkloadGenerator
from repro.workloads.specs import TaskSpec, WorkloadSpec

__all__ = ["TaskSpec", "WorkloadSpec", "WorkloadGenerator"]
