"""Profile-driven sequence-length regression (paper Sec V-B).

The characterization graph of Fig 9 becomes a software-level lookup table:
indexed by the (statically known) input sequence length, it returns the
*geometric mean* of the output sequence lengths observed across the
profiling dataset.  Input lengths never profiled fall back to linear
interpolation between the nearest profiled neighbours (clamped at the
edges), so the regressor is total over positive inputs.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Sequence, Tuple

from repro.models.sequences import SequenceProfile, geomean


class SequenceLengthRegressor:
    """Lookup-table regressor: input length -> predicted output length."""

    def __init__(self, table: Dict[int, float], application: str = "") -> None:
        if not table:
            raise ValueError("regression table must be non-empty")
        for input_len, predicted in table.items():
            if input_len <= 0:
                raise ValueError("profiled input lengths must be positive")
            if predicted <= 0:
                raise ValueError("predicted output lengths must be positive")
        self.application = application
        self._inputs: List[int] = sorted(table)
        self._outputs: List[float] = [table[i] for i in self._inputs]

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_profile(cls, profile: SequenceProfile) -> "SequenceLengthRegressor":
        """Build the table from a characterization profile (Fig 9 data)."""
        table = {
            input_len: geomean([float(o) for o in profile.outputs_for(input_len)])
            for input_len in profile.input_lengths
        }
        return cls(table, application=profile.application)

    @classmethod
    def identity(cls, input_lengths: Sequence[int]) -> "SequenceLengthRegressor":
        """Regressor for linear RNN apps (Fig 8b): output == input."""
        return cls({i: float(i) for i in input_lengths}, application="linear")

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def predict(self, input_len: int) -> int:
        """Predicted output sequence length (>= 1) for ``input_len``."""
        if input_len <= 0:
            raise ValueError("input_len must be positive")
        value = self._interpolate(input_len)
        return max(1, int(round(value)))

    def _interpolate(self, input_len: int) -> float:
        inputs, outputs = self._inputs, self._outputs
        if input_len <= inputs[0]:
            return outputs[0] * input_len / inputs[0]
        if input_len >= inputs[-1]:
            return outputs[-1] * input_len / inputs[-1]
        pos = bisect.bisect_left(inputs, input_len)
        if inputs[pos] == input_len:
            return outputs[pos]
        left_in, right_in = inputs[pos - 1], inputs[pos]
        left_out, right_out = outputs[pos - 1], outputs[pos]
        frac = (input_len - left_in) / (right_in - left_in)
        return left_out + frac * (right_out - left_out)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def table(self) -> Dict[int, float]:
        return dict(zip(self._inputs, self._outputs))

    def error_against(self, profile: SequenceProfile) -> Tuple[float, float]:
        """(mean, max) relative prediction error over a profile's samples."""
        errors = []
        for input_len, output_len in profile.samples:
            predicted = self.predict(input_len)
            errors.append(abs(predicted - output_len) / output_len)
        if not errors:
            return 0.0, 0.0
        return sum(errors) / len(errors), max(errors)

    def __repr__(self) -> str:
        return (
            f"SequenceLengthRegressor(application={self.application!r}, "
            f"entries={len(self._inputs)})"
        )
