"""Checkpoint migration of preempted tasks: lifecycle, invariants, wins.

Four layers of coverage:

1. *Device lifecycle*: the explicit QUEUED / RESERVED / RUNNING /
   CHECKPOINTING / PREEMPTED states, and the double-steal protections --
   a checkpointing task's state is not durable, so ``remove_task``
   refuses it (and every other non-migratable state) explicitly.
2. *Manual migration*: a preempted task moved by hand between two
   ``DeviceSim`` instances keeps its accrued wait and tokens, accrues
   transit as waiting, pays its restore DMA at the destination, and its
   cluster-wide RUN cycles conserve exactly.
3. *End-to-end PREEMPTIVE_MIGRATION runs*: completion-exactly-once,
   run-cycle conservation, interconnect conservation, and coherent
   migration records on the hog-regime traces.
4. *Ledger*: the ClusterTokenLedger matches a dict reference model under
   hypothesis-driven op sequences, and stays consistent with the real
   policy/table state through seeded random admit/grant/dispatch/
   requeue/migrate sequences (the "arbitrary migration sequences"
   property).
"""

import copy
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.context import ContextTable, TaskContext, TaskState
from repro.core.tokens import ClusterTokenLedger, Priority
from repro.npu.config import NPUConfig
from repro.sched.cluster import ClusterScheduler, RoutingPolicy
from repro.sched.interconnect import CONTEXT_ROW_BYTES, InterconnectConfig
from repro.sched.metrics import compute_cluster_metrics
from repro.sched.policies import PremaPolicy, make_policy
from repro.sched.simulator import (
    DeviceSim,
    DeviceTaskState,
    PreemptionMode,
    SimulationConfig,
)
from repro.workloads.specs import TaskSpec
from repro.workloads.trace import (
    DEFAULT_MEAN_INTERARRIVAL_CYCLES,
    synthetic_runtime,
    synthetic_trace_runtimes,
)

_CONFIG = NPUConfig()


def make_task(task_id, arrival, cycles, priority=Priority.MEDIUM):
    spec = TaskSpec(
        task_id=task_id, benchmark=f"syn{task_id}", batch=1,
        priority=priority, arrival_cycles=arrival,
    )
    return synthetic_runtime(spec, cycles)


def preemptive_device(policy="HPF"):
    return DeviceSim(
        SimulationConfig(
            npu=_CONFIG, mode=PreemptionMode.STATIC, mechanism="CHECKPOINT"
        ),
        make_policy(policy),
        device_id=0,
    )


def drive_preemption(device):
    """Low-priority long task preempted by a high-priority arrival.

    Returns (victim, preemptor) after the preemptor's reserved dispatch,
    i.e. with the victim's checkpoint durable.
    """
    victim = make_task(0, 0.0, 500_000.0, Priority.LOW)
    preemptor = make_task(1, 100_000.0, 300_000.0, Priority.HIGH)
    device.inject(victim)
    device.inject(preemptor)
    device.step()  # victim arrival -> dispatch
    device.step()  # preemptor arrival -> preemption intent
    device.step()  # reserved dispatch at trap end: checkpoint durable
    return victim, preemptor


class TestDeviceLifecycle:
    def test_states_through_a_preemption(self):
        device = preemptive_device()
        victim = make_task(0, 0.0, 500_000.0, Priority.LOW)
        preemptor = make_task(1, 100_000.0, 300_000.0, Priority.HIGH)
        device.inject(victim)
        device.inject(preemptor)
        assert device.task_lifecycle(0, 0.0) is DeviceTaskState.PENDING
        device.step()
        assert device.task_lifecycle(0, device.now) is DeviceTaskState.RUNNING
        device.step()  # preemption: victim checkpointing, preemptor reserved
        assert (
            device.task_lifecycle(0, device.now)
            is DeviceTaskState.CHECKPOINTING
        )
        assert device.task_lifecycle(1, device.now) is DeviceTaskState.RESERVED
        assert device.migratable_preempted_tasks(device.now) == []
        device.step()  # reserved dispatch fires at trap end
        assert device.task_lifecycle(0, device.now) is DeviceTaskState.PREEMPTED
        assert device.task_lifecycle(1, device.now) is DeviceTaskState.RUNNING
        assert [t.task_id for t in device.migratable_preempted_tasks(device.now)] == [0]
        while device.has_live_tasks and device.next_event_time() is not None:
            device.step()
        assert device.task_lifecycle(0, device.now) is DeviceTaskState.DONE

    def test_checkpointing_task_cannot_be_double_stolen(self):
        device = preemptive_device()
        victim = make_task(0, 0.0, 500_000.0, Priority.LOW)
        preemptor = make_task(1, 100_000.0, 300_000.0, Priority.HIGH)
        device.inject(victim)
        device.inject(preemptor)
        device.step()
        device.step()  # checkpoint trap in flight
        with pytest.raises(ValueError, match="checkpointing"):
            device.remove_task(0, device.now)
        # The trap's end makes it migratable.
        device.step()
        assert device.remove_task(0, device.now).task_id == 0

    def test_running_reserved_and_done_refuse_migration(self):
        device = preemptive_device()
        victim, preemptor = drive_preemption(device)
        with pytest.raises(ValueError, match="running"):
            device.remove_task(preemptor.task_id, device.now)
        while device.has_live_tasks and device.next_event_time() is not None:
            device.step()
        with pytest.raises(ValueError, match="done"):
            device.remove_task(victim.task_id, device.now)
        with pytest.raises(KeyError):
            device.remove_task(99, device.now)

    def test_queued_tasks_remain_stealable_not_preempted(self):
        device = preemptive_device()
        device.inject(make_task(0, 0.0, 500_000.0))
        device.inject(make_task(1, 1000.0, 300_000.0))
        device.step()
        device.step()
        assert device.task_lifecycle(1, device.now) is DeviceTaskState.QUEUED
        assert [t.task_id for t in device.stealable_tasks()] == [1]
        assert device.migratable_preempted_tasks(device.now) == []


class TestManualMigration:
    def _migrate(self, transit_cycles=5_000.0):
        source = preemptive_device()
        victim, _ = drive_preemption(source)
        now = source.now
        waited_before = victim.context.waited_cycles
        tokens_before = victim.context.tokens
        restore_before = victim.restore_pending
        task = source.remove_task(victim.task_id, now)
        waited_settled = task.context.waited_cycles
        assert waited_settled >= waited_before
        # In-flight: MIGRATING accrues the transit as waiting.
        task.context.state = TaskState.MIGRATING
        task.context.accrue_wait(now + transit_cycles)
        destination = preemptive_device()
        destination.inject(task, arrival=now + transit_cycles)
        while (
            destination.has_live_tasks
            and destination.next_event_time() is not None
        ):
            destination.step()
        return source, destination, task, (
            waited_settled, tokens_before, restore_before, transit_cycles
        )

    def test_wait_and_tokens_survive_migration(self):
        _, _, task, (waited_settled, tokens_before, _, transit) = (
            self._migrate()
        )
        # Tokens never decrease across a migration, and the transit span
        # itself counts as waiting.
        assert task.context.tokens >= tokens_before
        assert task.context.waited_cycles >= waited_settled + transit

    def test_destination_readmits_and_completes(self):
        _, destination, task, _ = self._migrate()
        assert task.is_done
        assert task.context.state is TaskState.DONE
        assert (
            destination.task_lifecycle(task.task_id, destination.now)
            is DeviceTaskState.DONE
        )

    def test_restore_paid_at_destination(self):
        _, destination, task, (_, _, restore_before, _) = self._migrate()
        assert restore_before > 0
        restores = [
            s for s in destination.timeline.segments
            if s.kind.value == "restore" and s.task_id == task.task_id
        ]
        assert len(restores) == 1
        assert restores[0].duration_cycles == pytest.approx(restore_before)

    def test_run_cycles_conserve_across_devices(self):
        source, destination, task, _ = self._migrate()
        total = (
            source.timeline.run_cycles_by_task().get(task.task_id, 0.0)
            + destination.timeline.run_cycles_by_task().get(task.task_id, 0.0)
        )
        assert total == pytest.approx(task.profile.total_cycles)

    def test_source_forgets_the_task(self):
        source, _, task, _ = self._migrate()
        with pytest.raises(KeyError):
            source.task_lifecycle(task.task_id, source.now)
        assert task.migration_count == 0  # manual move; cluster layer counts


def hog_trace(seed, num_tasks=120):
    return synthetic_trace_runtimes(
        num_tasks,
        seed=seed,
        mean_interarrival_cycles=DEFAULT_MEAN_INTERARRIVAL_CYCLES / 4,
        estimate_error=0.6,
    )


def run_migration_cluster(tasks, **kwargs):
    scheduler = ClusterScheduler(
        num_devices=kwargs.pop("num_devices", 4),
        simulation_config=SimulationConfig(
            npu=_CONFIG, mode=PreemptionMode.DYNAMIC
        ),
        policy_name=kwargs.pop("policy", "PREMA"),
        routing=RoutingPolicy.PREEMPTIVE_MIGRATION,
        **kwargs,
    )
    return scheduler.run([copy.deepcopy(t) for t in tasks])


class TestClusterRuns:
    @pytest.mark.parametrize("seed", [8, 11, 12])
    def test_invariants_on_hog_traces(self, seed):
        result = run_migration_cluster(hog_trace(seed))
        # Every task completes exactly once, on its assigned device.
        seen = {}
        for device, device_result in enumerate(result.device_results):
            if device_result is None:
                continue
            for task in device_result.tasks:
                assert task.task_id not in seen
                assert task.is_done
                seen[task.task_id] = device
        assert set(seen) == {t.task_id for t in result.tasks}
        for task_id, device in result.assignments.items():
            assert seen[task_id] == device
        # Cluster-wide RUN cycles conserve (DYNAMIC never kills).
        run_cycles = result.timeline.run_cycles_by_task()
        for task in result.tasks:
            assert task.kill_count == 0
            assert run_cycles[task.task_id] == pytest.approx(
                task.profile.total_cycles, rel=1e-9
            )
        result.timeline.verify_no_overlap()

    @pytest.mark.parametrize("seed", [8, 12])
    def test_migration_records_are_coherent(self, seed):
        result = run_migration_cluster(hog_trace(seed))
        checkpoint_moves = [
            m for m in result.migrations if m.kind == "checkpoint"
        ]
        assert checkpoint_moves, "hog trace must trigger checkpoint moves"
        # Under PREEMPTIVE_MIGRATION every move crosses the fabric, in
        # decision order -- records and transfers pair up one-to-one.
        assert len(result.transfers) == len(result.migrations)
        for move, record in zip(result.migrations, result.transfers):
            assert move.arrival_cycles >= move.time_cycles
            assert move.bytes_moved >= CONTEXT_ROW_BYTES
            assert record.task_id == move.task_id
            assert record.num_bytes == pytest.approx(move.bytes_moved)
            assert record.end_cycles == pytest.approx(move.arrival_cycles)
        for move in checkpoint_moves:
            # A checkpoint move ships more than the bare context row
            # unless the victim was killed (nothing retained).
            task = next(
                t for t in result.tasks if t.task_id == move.task_id
            )
            assert task.migration_count >= 1
            assert task.migrated_bytes_total >= move.bytes_moved
        # The interconnect served everything FIFO without overlap.
        assert result.timeline.migrated_bytes() == pytest.approx(
            sum(m.bytes_moved for m in result.migrations)
        )

    def test_metrics_report_migration_costs(self):
        result = run_migration_cluster(hog_trace(8))
        metrics = compute_cluster_metrics(result)
        assert metrics.checkpoint_migration_count > 0
        assert metrics.migration_bytes_total > 0
        assert metrics.mean_migration_latency_cycles > 0
        assert metrics.post_migration_antt > 0
        assert metrics.p99_high_priority_turnaround_cycles > 0

    def test_single_device_never_migrates(self):
        result = run_migration_cluster(hog_trace(8, num_tasks=30),
                                       num_devices=1)
        assert result.migration_count == 0
        assert not result.transfers

    def test_infinite_fabric_matches_free_migration_latency(self):
        result = run_migration_cluster(
            hog_trace(8), interconnect=InterconnectConfig.infinite()
        )
        for move in result.migrations:
            assert move.latency_cycles == 0.0

    def test_slow_fabric_deters_migration(self):
        """A near-unusable link makes every migration fail the
        is-it-worth-it test: no moves at all."""
        glacial = InterconnectConfig(
            bandwidth_bytes_per_cycle=1e-4,
            latency_cycles=1e12,
            name="glacial",
        )
        result = run_migration_cluster(
            hog_trace(8, num_tasks=40), interconnect=glacial
        )
        assert result.migration_count == 0


class TestHeadline:
    def test_migration_beats_stealing_on_high_priority_p99(self):
        """The acceptance claim, on the experiment's quick ensemble:
        PREEMPTIVE_MIGRATION beats WORK_STEALING on high-priority p99
        turnaround on the bandwidth-constrained 4-NPU cluster."""
        from repro.analysis.experiments.cluster_migration import (
            run_cluster_migration,
        )

        rows = {
            (r.routing, r.interconnect): r
            for r in run_cluster_migration(config=_CONFIG, quick=True)
        }
        stealing = rows[("work-stealing", "pcie-gen3")]
        migration = rows[("preemptive-migration", "pcie-gen3")]
        assert migration.hp_p99_ms < stealing.hp_p99_ms
        assert migration.checkpoint_migrations > 0
        assert migration.migrated_mb > 0
        assert migration.mean_migration_latency_us > 0


# ----------------------------------------------------------------------
# ClusterTokenLedger
# ----------------------------------------------------------------------
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["activate", "update", "deactivate"]),
            st.integers(min_value=0, max_value=15),
            st.floats(min_value=0.0, max_value=100.0),
        ),
        max_size=200,
    )
)
@settings(max_examples=80, deadline=None)
def test_ledger_matches_reference_model(ops):
    ledger = ClusterTokenLedger()
    reference = {}
    for op, task_id, tokens in ops:
        if op in ("activate", "update"):
            ledger.activate(task_id, tokens)
            reference[task_id] = tokens
        else:
            ledger.deactivate(task_id)
            reference.pop(task_id, None)
        assert len(ledger) == len(reference)
        assert ledger.ready_total_tokens() == pytest.approx(
            sum(reference.values())
        )
        expected_max = max(reference.values()) if reference else 0.0
        assert ledger.ready_max_tokens() == pytest.approx(expected_max)
    assert ledger.snapshot() == reference


def test_ledger_totals_match_reference_after_migration_sequences():
    """Seeded random admit/grant/dispatch/requeue/complete/migrate ops
    across two devices sharing one ledger: after every op the ledger's
    totals and maximum equal a recomputation from the actual rows."""
    rng = random.Random(0xC1A0)
    ledger = ClusterTokenLedger()
    tables = [ContextTable(), ContextTable()]
    policies = [PremaPolicy(ledger=ledger) for _ in range(2)]
    owner = {}       # task_id -> device index, or "flight"
    running = {0: None, 1: None}
    now = 0.0
    next_id = 0

    def active_reference():
        total, maximum = 0.0, 0.0
        for task_id, where in owner.items():
            if where == "flight":
                row = flight_rows[task_id]
            else:
                table = tables[where]
                if task_id not in table:
                    continue
                row = table[task_id]
                if row.state is not TaskState.READY:
                    continue
            total += row.tokens
            maximum = max(maximum, row.tokens)
        return total, maximum

    flight_rows = {}
    for _ in range(400):
        now += rng.uniform(1e3, 1e5)
        op = rng.choice(
            ["admit", "period", "dispatch", "requeue", "complete", "migrate"]
        )
        device = rng.randrange(2)
        table, policy = tables[device], policies[device]
        ready = [r for r in table.ready()]
        if op == "admit":
            row = TaskContext(
                task_id=next_id,
                priority=rng.choice(list(Priority)),
                estimated_cycles=rng.uniform(1e5, 1e7),
                last_update_cycles=now,
            )
            owner[next_id] = device
            next_id += 1
            table.add(row)
            policy.on_admit(row, now)
        elif op == "period" and len(table):
            for row in table.ready():
                row.accrue_wait(now)
            policy.on_period(table)
        elif op == "dispatch" and ready and running[device] is None:
            row = rng.choice(ready)
            row.accrue_wait(now)
            row.state = TaskState.RUNNING
            policy.on_dispatch(row)
            running[device] = row.task_id
        elif op == "requeue" and running[device] is not None:
            row = table[running[device]]
            row.state = TaskState.READY
            row.last_update_cycles = now
            policy.on_requeue(row)
            running[device] = None
        elif op == "complete" and running[device] is not None:
            row = table[running[device]]
            row.state = TaskState.DONE
            running[device] = None
        elif op == "migrate" and ready:
            row = rng.choice(ready)
            row.accrue_wait(now)
            table.remove(row.task_id)
            policy.on_remove(row, now)
            # In-flight settlement read point: stays ledger-visible.
            row.state = TaskState.MIGRATING
            ledger.activate(row.task_id, row.tokens)
            owner[row.task_id] = "flight"
            flight_rows[row.task_id] = row
            # Deliver immediately to the other device.
            transit = rng.uniform(0.0, 1e4)
            row.accrue_wait(now + transit)
            ledger.activate(row.task_id, row.tokens)
            target = 1 - device
            row.state = TaskState.READY
            row.last_update_cycles = now + transit
            tables[target].add(row)
            policies[target].on_admit(row, now + transit)
            owner[row.task_id] = target
            del flight_rows[row.task_id]
        total, maximum = active_reference()
        assert ledger.ready_total_tokens() == pytest.approx(total, rel=1e-9)
        assert ledger.ready_max_tokens() == pytest.approx(maximum, rel=1e-9)
