"""repro: a reproduction of PREMA (Choi & Rhu, HPCA 2020).

A predictive multi-task scheduling algorithm for preemptible neural
processing units, built on a from-scratch TPU-like systolic-array
performance model.

Quickstart::

    from repro import (
        NPUConfig, TaskFactory, WorkloadGenerator,
        NPUSimulator, SimulationConfig, PreemptionMode,
        make_policy, compute_metrics,
    )

    config = NPUConfig()
    workload = WorkloadGenerator(seed=1).generate(num_tasks=8)
    factory = TaskFactory(config)
    sim = NPUSimulator(
        SimulationConfig(npu=config, mode=PreemptionMode.DYNAMIC),
        make_policy("PREMA"),
    )
    result = sim.run(factory.build_workload(workload))
    print(compute_metrics(result.tasks))
"""

from repro.core.predictor import LatencyPredictor, OraclePredictor
from repro.core.regression import SequenceLengthRegressor
from repro.core.scheduler import SchedulerConfig
from repro.core.tokens import Priority
from repro.npu.config import NPUConfig
from repro.npu.preemption import mechanism_by_name
from repro.sched.metrics import (
    WorkloadMetrics,
    aggregate_metrics,
    compute_metrics,
    sla_violation_rate,
    tail_latency_cycles,
)
from repro.sched.policies import POLICY_NAMES, make_policy
from repro.sched.prepare import TaskFactory
from repro.serving import (
    AdmissionConfig,
    AdmissionController,
    PredictionFeedback,
    QoSClass,
    SLOPolicy,
)
from repro.sched.simulator import (
    NPUSimulator,
    PreemptionMode,
    SimulationConfig,
    SimulationResult,
)
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.specs import TaskSpec, WorkloadSpec

__version__ = "1.0.0"

__all__ = [
    "NPUConfig",
    "SchedulerConfig",
    "Priority",
    "LatencyPredictor",
    "OraclePredictor",
    "SequenceLengthRegressor",
    "mechanism_by_name",
    "TaskFactory",
    "WorkloadGenerator",
    "TaskSpec",
    "WorkloadSpec",
    "NPUSimulator",
    "SimulationConfig",
    "SimulationResult",
    "PreemptionMode",
    "POLICY_NAMES",
    "make_policy",
    "WorkloadMetrics",
    "compute_metrics",
    "aggregate_metrics",
    "sla_violation_rate",
    "tail_latency_cycles",
    "QoSClass",
    "SLOPolicy",
    "AdmissionConfig",
    "AdmissionController",
    "PredictionFeedback",
    "__version__",
]
