"""Rack-scale fleet composition: topology plus the O(log r) rack frontend.

A datacenter fleet is not flat: devices sit in racks behind a top-of-rack
switch, racks hang off an oversubscribed uplink tier, and the frontend
router that admits arrivals sees rack-level aggregates long before any
per-device queue.  This module supplies both halves of that picture for
the cluster loop (:mod:`repro.sched.cluster`):

- :class:`RackTopology` -- the static device->rack map (uniform racks,
  explicit sizes, or a raw assignment), shared by the two-level fabric
  (:class:`~repro.sched.interconnect.Interconnect` with ``rack_of``),
  rack-correlated churn
  (:meth:`~repro.sched.faults.ChurnSchedule.generate_rack_correlated`),
  and the metrics layer (per-rack attainment, uplink utilization).
- :class:`RackRouter` -- the incremental frontend index.  Each rack
  carries a *running sum* of its devices' corrected backlog lower bounds
  (the same :meth:`~repro.sched.simulator.DeviceSim.backlog_lower_bound`
  stream the PR-5 per-device indexes consume): when a device's bound
  moves, the rack's sum moves by the delta and one lazy-deletion heap
  entry is pushed -- O(log r) per event.  Routing picks the rack with the
  least aggregate corrected backlog (ties to the lowest rack id), then
  the per-device best-first search runs *within* that rack only.

The two-tier rule is an architectural decision, not an approximation of
the flat argmin: a rack-scale frontend cannot afford a fleet-wide scan,
so it ranks racks by aggregate load and trusts the in-rack tier for the
exact choice.  A single-rack topology degenerates to the flat fleet --
the rack pick is trivial and the in-rack search sees every device -- so
single-rack runs replay the flat cluster bit-for-bit (the equivalence
suite in ``tests/test_rack.py`` pins this).
"""

from __future__ import annotations

import dataclasses
import heapq
import math
from typing import List, Optional, Sequence, Tuple

__all__ = ["RackTopology", "RackRouter", "pick_rack_from_keys"]


def pick_rack_from_keys(keys: Sequence[Tuple[float, int]]) -> Optional[int]:
    """Global rack pick from exchanged ``(key, rack)`` aggregates.

    The parallel coordinator collects each shard's owned-rack keys
    (:meth:`RackRouter.rack_keys`) and replays the serial tie-break:
    least key wins, ties to the lowest rack id, ``None`` when every
    rack keys to ``inf`` (no accepting capacity anywhere).
    """
    best: Optional[Tuple[float, int]] = None
    for key, rack in keys:
        if math.isinf(key):
            continue
        if best is None or (key, rack) < best:
            best = (key, rack)
    return None if best is None else best[1]


@dataclasses.dataclass(frozen=True)
class RackTopology:
    """Static device->rack assignment for a fleet.

    ``rack_of[d]`` is device ``d``'s rack.  Rack ids must be contiguous
    ``0..num_racks-1`` with every rack non-empty, so per-rack structures
    can be dense lists.
    """

    rack_of: Tuple[int, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "rack_of", tuple(self.rack_of))
        if not self.rack_of:
            raise ValueError("topology needs at least one device")
        num_racks = max(self.rack_of) + 1
        members: List[List[int]] = [[] for _ in range(num_racks)]
        for device, rack in enumerate(self.rack_of):
            if rack < 0:
                raise ValueError(f"negative rack id for device {device}")
            members[rack].append(device)
        empty = [rack for rack, devs in enumerate(members) if not devs]
        if empty:
            raise ValueError(
                f"rack ids must be contiguous; racks {empty} are empty"
            )
        object.__setattr__(
            self, "_members", tuple(tuple(devs) for devs in members)
        )

    @classmethod
    def uniform(cls, num_racks: int, devices_per_rack: int) -> "RackTopology":
        """``num_racks`` racks of ``devices_per_rack`` devices each,
        numbered rack-major (devices 0..k-1 in rack 0, and so on)."""
        if num_racks <= 0 or devices_per_rack <= 0:
            raise ValueError("num_racks and devices_per_rack must be positive")
        return cls(
            rack_of=tuple(
                rack
                for rack in range(num_racks)
                for _ in range(devices_per_rack)
            )
        )

    @classmethod
    def from_sizes(cls, sizes: Sequence[int]) -> "RackTopology":
        """Racks of explicit (possibly uneven) sizes, rack-major."""
        if not sizes or any(size <= 0 for size in sizes):
            raise ValueError("every rack size must be positive")
        return cls(
            rack_of=tuple(
                rack for rack, size in enumerate(sizes) for _ in range(size)
            )
        )

    @property
    def num_devices(self) -> int:
        return len(self.rack_of)

    @property
    def num_racks(self) -> int:
        return len(self._members)

    def rack(self, device: int) -> int:
        return self.rack_of[device]

    def devices_in(self, rack: int) -> Tuple[int, ...]:
        return self._members[rack]

    def same_rack(self, a: int, b: int) -> bool:
        return self.rack_of[a] == self.rack_of[b]


class RackRouter:
    """Incremental rack-aggregate backlog index (the two-tier frontend).

    Three structures, all fed by one :meth:`update` call per device-bound
    move (the owning ``_RackIndexes.refresh`` hook):

    - per-rack running sums of finite device bounds plus a count of
      accepting (finite-bound) devices -- a rack whose every device
      stopped accepting keys to ``inf`` so routing never lands there
      while any live rack exists;
    - a lazy-deletion min-heap of ``(rack key, rack)`` entries validated
      by value, giving the O(log r) least-loaded-rack pick (ties to the
      lowest rack id);
    - per-rack lazy-deletion device-bound heaps, handed to the owning
      index's best-first search so the in-rack tier pays O(log d_rack)
      instead of O(log d).

    The running sums are *incremental* floats (sum += new - old).  That
    is the point -- no per-event rack rescans -- but repeated deltas can
    drift a few ULPs from the recomputed sum; :meth:`verify_sums` bounds
    the drift against a fresh recomputation.  Decisions stay
    deterministic either way (the same event sequence produces the same
    sums, run after run).
    """

    def __init__(
        self, topology: RackTopology, bounds: Sequence[float]
    ) -> None:
        #: Live reference to the owner's per-device bound table; read for
        #: heap rebuilds (the authoritative values lazy entries validate
        #: against).
        self._bounds = bounds
        self.topology = topology
        num_racks = topology.num_racks
        # Every device seeds at bound 0.0 (matching _ClusterIndexes).
        self._sum: List[float] = [0.0] * num_racks
        self._live: List[int] = [
            len(topology.devices_in(rack)) for rack in range(num_racks)
        ]
        self._key: List[float] = [0.0] * num_racks
        # Ascending rack ids at equal keys: already a valid heap.
        self._rack_heap: List[Tuple[float, int]] = [
            (0.0, rack) for rack in range(num_racks)
        ]
        self._rack_cap = 4 * num_racks + 64
        self._device_heaps: List[List[Tuple[float, int]]] = [
            [(0.0, device) for device in topology.devices_in(rack)]
            for rack in range(num_racks)
        ]
        self._device_caps = [
            4 * len(topology.devices_in(rack)) + 64
            for rack in range(num_racks)
        ]

    def rack_key(self, rack: int) -> float:
        """The rack's live routing key (aggregate corrected backlog)."""
        return self._key[rack]

    def device_heap(self, rack: int) -> List[Tuple[float, int]]:
        """The rack's (bound, device) heap for the in-rack best-first
        tier; entries validate against the owner's bound table."""
        return self._device_heaps[rack]

    def update(self, device: int, old_bound: float, new_bound: float) -> None:
        """Fold one device-bound move into the rack aggregates.

        ``inf`` bounds (churn: the device stopped accepting) leave the
        running sum and decrement the live count instead of poisoning
        the float; a restore re-enters at its finite bound.
        """
        rack = self.topology.rack_of[device]
        if math.isfinite(old_bound):
            self._sum[rack] -= old_bound
            self._live[rack] -= 1
        if math.isfinite(new_bound):
            self._sum[rack] += new_bound
            self._live[rack] += 1
        key = self._sum[rack] if self._live[rack] else math.inf
        if key != self._key[rack]:
            self._key[rack] = key
            heapq.heappush(self._rack_heap, (key, rack))
            if len(self._rack_heap) > self._rack_cap:
                self._rack_heap = [
                    (value, index) for index, value in enumerate(self._key)
                ]
                heapq.heapify(self._rack_heap)
        heap = self._device_heaps[rack]
        heapq.heappush(heap, (new_bound, device))
        if len(heap) > self._device_caps[rack]:
            self._device_heaps[rack] = [
                (self._bounds[index], index)
                for index in self.topology.devices_in(rack)
            ]
            heapq.heapify(self._device_heaps[rack])

    def rack_keys(self, racks: Sequence[int]) -> Tuple[float, ...]:
        """Snapshot the named racks' routing keys for aggregate exchange.

        The parallel backend ships each shard's owned-rack keys to the
        coordinator, which re-derives the global pick via
        :func:`pick_rack_from_keys`; because every key is the shard's
        own incremental sum, the mirrored pick is float-identical to
        what a single-process :meth:`pick_rack` would have chosen.
        """
        return tuple(self._key[rack] for rack in racks)

    def pick_rack(self) -> Optional[int]:
        """Least aggregate-backlog rack (ties to the lowest rack id);
        None when every rack's accepting capacity is gone."""
        heap = self._rack_heap
        keys = self._key
        while heap:
            key, rack = heap[0]
            if keys[rack] != key:
                heapq.heappop(heap)
                continue
            if math.isinf(key):
                return None
            return rack
        return None

    def verify_sums(self, bounds: Sequence[float]) -> None:
        """Cross-check the incremental sums against a recomputation.

        ``bounds`` is the owner's device-bound table.  Raises when a
        running sum drifted beyond float-noise tolerance of the exact
        sum, or a live count disagrees -- either means the incremental
        bookkeeping missed an update.
        """
        for rack in range(self.topology.num_racks):
            exact = 0.0
            live = 0
            for device in self.topology.devices_in(rack):
                bound = bounds[device]
                if math.isfinite(bound):
                    exact += bound
                    live += 1
            if live != self._live[rack]:
                raise AssertionError(
                    f"rack {rack}: live count {self._live[rack]} != {live}"
                )
            if live and not math.isclose(
                self._sum[rack], exact, rel_tol=1e-9, abs_tol=1e-6
            ):
                raise AssertionError(
                    f"rack {rack}: running sum {self._sum[rack]} drifted "
                    f"from recomputed {exact}"
                )
