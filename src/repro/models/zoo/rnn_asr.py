"""RNN-ASR: Listen-Attend-Spell style speech recognizer.

A pyramidal bidirectional-LSTM-style encoder (the "listener") halves the
time resolution at each of its three stacked layers, then an LSTM decoder
(the "speller") with a character-vocabulary projection unrolls over the
output transcript length.  Audio inputs are long (tens to hundreds of
frames) while transcripts are short, giving the strongly non-linear
input->output length relationship of the paper's Fig 9d.
"""

from __future__ import annotations

from repro.models.graph import Graph
from repro.models.layers import FullyConnected, InputSpec, LSTMCell, Softmax

#: 40-dim filterbank features, stacked into 256-dim frames at the front end.
FRAME_DIM = 256
HIDDEN = 512
ENCODER_LAYERS = 3
DECODER_LAYERS = 2
CHAR_VOCAB = 64


def build_rnn_asr(input_len: int = 100, output_len: int = 30) -> Graph:
    """Build LAS unrolled for ``input_len`` frames and ``output_len`` chars."""
    if input_len <= 0 or output_len <= 0:
        raise ValueError("sequence lengths must be positive")
    graph = Graph("RNN-ASR", InputSpec(channels=FRAME_DIM))
    # Pyramidal encoder: layer l runs over ceil(input_len / 2**l) steps.
    prev_layer_tail = Graph.INPUT
    steps = input_len
    for layer in range(ENCODER_LAYERS):
        current = prev_layer_tail
        for step in range(steps):
            cell = graph.add(
                LSTMCell(f"enc{layer}_t{step}", hidden=HIDDEN),
                inputs=[current],
            )
            current = cell.name
        prev_layer_tail = current
        steps = max(1, (steps + 1) // 2)
    # Attention context projection once per decoder step is folded into the
    # decoder cell input; the speller emits one character per step.
    prev = prev_layer_tail
    for step in range(output_len):
        current = prev
        for layer in range(DECODER_LAYERS):
            cell = graph.add(
                LSTMCell(f"dec{layer}_t{step}", hidden=HIDDEN),
                inputs=[current],
            )
            current = cell.name
        proj = graph.add(
            FullyConnected(
                f"dec_proj_t{step}", out_features=CHAR_VOCAB, fused_activation=None
            ),
            inputs=[current],
        )
        soft = graph.add(Softmax(f"dec_softmax_t{step}"), inputs=[proj.name])
        prev = soft.name
    graph.validate()
    return graph
