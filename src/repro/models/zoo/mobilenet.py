"""MobileNet-v1 (CNN-MN): depthwise-separable convolutions.

Each block is a depthwise 3x3 conv (grouped, one filter per channel) that
lowers to ``channels`` tiny m=1 GEMMs, followed by a 1x1 pointwise conv.
The depthwise stages starve the 128x128 systolic array, which is exactly
the low-effective-throughput behaviour circled in the paper's Fig 10.
"""

from __future__ import annotations

from repro.models.graph import Graph
from repro.models.layers import Conv2D, FullyConnected, InputSpec, Pool2D, Softmax

#: (block name, output channels of the pointwise conv, depthwise stride).
_BLOCK_PLAN = (
    ("b01", 64, 1),
    ("b02", 128, 2),
    ("b03", 128, 1),
    ("b04", 256, 2),
    ("b05", 256, 1),
    ("b06", 512, 2),
    ("b07", 512, 1),
    ("b08", 512, 1),
    ("b09", 512, 1),
    ("b10", 512, 1),
    ("b11", 512, 1),
    ("b12", 1024, 2),
    ("b13", 1024, 1),
)


def build_mobilenet() -> Graph:
    graph = Graph("CNN-MN", InputSpec(channels=3, height=224, width=224))
    graph.add(Conv2D("conv1", out_channels=32, kernel=3, stride=2, padding=1))
    in_channels = 32
    for name, out_channels, stride in _BLOCK_PLAN:
        graph.add(
            Conv2D(
                f"{name}_dw",
                out_channels=in_channels,
                kernel=3,
                stride=stride,
                padding=1,
                groups=in_channels,
            )
        )
        graph.add(Conv2D(f"{name}_pw", out_channels=out_channels, kernel=1))
        in_channels = out_channels
    graph.add(Pool2D("avgpool", kernel=7, stride=1, mode="avg"))
    graph.add(FullyConnected("fc", out_features=1000, fused_activation=None))
    graph.add(Softmax("prob"))
    graph.validate()
    return graph
