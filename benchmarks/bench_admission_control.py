"""Extension bench: SLA-aware admission control at cluster overload."""

from repro.analysis.experiments.admission_control import (
    format_admission_control,
    run_admission_control,
)


def test_admission_control(benchmark, config, emit):
    rows, curve = benchmark.pedantic(
        run_admission_control,
        kwargs=dict(config=config),
        rounds=1,
        iterations=1,
    )
    emit("admission_control", format_admission_control(rows, curve))
    by_frontend = {r.frontend: r for r in rows}
    admit_all = by_frontend["admit-all"]
    feedback = by_frontend["admission+feedback"]
    # The headline: prediction-driven admission with online correction
    # protects the interactive tier at overload (rejections counted as
    # misses) without giving up goodput.
    assert feedback.interactive_attainment > admit_all.interactive_attainment
    assert feedback.goodput >= admit_all.goodput * 0.95
    # The controller is actually exercising its state machine.
    assert feedback.rejection_rate > 0.0
    assert feedback.deferrals > 0.0
    # Online correction converges: corrected late-run MAPE beats both the
    # raw estimates and the early-run corrected estimates.
    assert curve.late_mape < curve.raw_mape
    assert curve.late_mape <= curve.early_mape
