"""Shared fixtures.

The Table-I config and the task factory are session-scoped: the factory's
compilation caches make the scheduling tests cheap, and the config is
immutable so sharing is safe.
"""

import pytest

from repro.npu.config import NPUConfig
from repro.sched.prepare import TaskFactory


@pytest.fixture(scope="session")
def config() -> NPUConfig:
    return NPUConfig()


@pytest.fixture(scope="session")
def factory(config: NPUConfig) -> TaskFactory:
    return TaskFactory(config)


@pytest.fixture(scope="session")
def small_config() -> NPUConfig:
    """A tiny NPU for brute-force-verifiable tile math."""
    return NPUConfig(
        array_width=4,
        array_height=4,
        acc_depth=8,
        ubuf_bytes=64 * 1024,
        wbuf_bytes=32 * 1024,
        memory_bandwidth_bytes_per_sec=8 * 700e6,  # 8 bytes/cycle
    )
