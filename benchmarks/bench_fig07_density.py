"""Regenerates paper Fig 7: activation-density stability (+ SCNN claim)."""

from repro.analysis.experiments.fig07_density import (
    format_fig07,
    run_fig07_density,
    run_fig07_scnn,
)


def test_fig07_density(benchmark, config, emit):
    density = benchmark.pedantic(
        run_fig07_density, kwargs=dict(num_inputs=1000), rounds=1, iterations=1
    )
    scnn = run_fig07_scnn(config=config, num_inputs=500)
    emit("fig07_density", format_fig07(density, scnn))
    # Fig 7: per-layer density bands are narrow across 1000 inputs.
    assert all(row.std_density < 0.06 for row in density)
    # Sec V-B item 3: sparse-NPU latency never deviates more than 14%.
    assert all(row.max_relative_deviation <= 0.14 for row in scnn)
