"""Layer definitions with shape inference and GEMM lowering metadata.

Each layer knows its output shape, its parameter/activation footprints, and
-- for the compute layers (CONV/FC/RECR) -- the GEMM it lowers to on the
NPU (Sec II-A/B).  Convolutions lower via im2col: an output-channels x
(kh*kw*cin) weight matrix times a (kh*kw*cin) x (oh*ow*batch) activation
matrix.  Depthwise convolutions lower to ``groups`` tiny GEMMs, which is
what starves the 128x128 array and produces the off-trend points of the
paper's Fig 10.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import List, Optional

from repro.npu.tiling import GemmShape


class LayerKind(enum.Enum):
    """Layer taxonomy from Sec II-A of the paper."""

    CONV = "conv"
    FC = "fc"
    RECR = "recr"
    ACTV = "actv"
    POOL = "pool"
    SOFTMAX = "softmax"
    CONCAT = "concat"
    EMBED = "embed"


@dataclasses.dataclass(frozen=True)
class InputSpec:
    """Shape of a layer input: CNN feature maps or RNN feature vectors.

    ``height``/``width`` are 1 for vector-shaped data.  ``batch`` is kept
    out of the spec; it is applied at compile time so one graph serves all
    batch sizes.
    """

    channels: int
    height: int = 1
    width: int = 1

    def __post_init__(self) -> None:
        if self.channels <= 0 or self.height <= 0 or self.width <= 0:
            raise ValueError(f"InputSpec dims must be positive, got {self}")

    @property
    def elems(self) -> int:
        return self.channels * self.height * self.width

    @property
    def spatial(self) -> int:
        return self.height * self.width


@dataclasses.dataclass(frozen=True)
class Layer:
    """Base class: a named operator with shape inference.

    Subclasses implement :meth:`infer_shape` and the footprint accessors.
    ``gemms(batch)`` returns the list of GEMMs the layer lowers to (empty
    for vector-unit-only layers such as pooling and activations).
    """

    name: str

    @property
    def kind(self) -> LayerKind:
        raise NotImplementedError

    def infer_shape(self, inputs: List[InputSpec]) -> InputSpec:
        raise NotImplementedError

    def weight_elems(self, inputs: List[InputSpec]) -> int:
        """Parameter count (0 for parameter-free layers)."""
        return 0

    def macs(self, inputs: List[InputSpec], batch: int) -> int:
        """Multiply-accumulate count per batch of inferences."""
        return 0

    def gemms(self, inputs: List[InputSpec], batch: int) -> List[GemmShape]:
        """GEMMs this layer lowers to (may be several for grouped conv)."""
        return []

    def vector_elems(self, inputs: List[InputSpec], batch: int) -> int:
        """Elements the vector unit must touch (ACTV/POOL work)."""
        return 0

    def _single_input(self, inputs: List[InputSpec]) -> InputSpec:
        if len(inputs) != 1:
            raise ValueError(f"{self.name}: expected exactly one input, got {len(inputs)}")
        return inputs[0]


def _conv_out_dim(size: int, kernel: int, stride: int, padding: int) -> int:
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"convolution output dim not positive: size={size} kernel={kernel} "
            f"stride={stride} padding={padding}"
        )
    return out


@dataclasses.dataclass(frozen=True)
class Conv2D(Layer):
    """2D convolution, optionally grouped/depthwise, lowered via im2col."""

    out_channels: int = 1
    kernel: int = 1
    stride: int = 1
    padding: int = 0
    groups: int = 1
    #: Fused activation applied by VECTOR_OP after the GEMM (Sec IV-B).
    fused_activation: Optional[str] = "relu"

    def __post_init__(self) -> None:
        if self.out_channels <= 0 or self.kernel <= 0 or self.stride <= 0:
            raise ValueError(f"{self.name}: conv parameters must be positive")
        if self.padding < 0:
            raise ValueError(f"{self.name}: padding must be >= 0")
        if self.groups <= 0 or self.out_channels % self.groups:
            raise ValueError(f"{self.name}: groups must divide out_channels")

    @property
    def kind(self) -> LayerKind:
        return LayerKind.CONV

    def infer_shape(self, inputs: List[InputSpec]) -> InputSpec:
        spec = self._single_input(inputs)
        if spec.channels % self.groups:
            raise ValueError(
                f"{self.name}: input channels {spec.channels} not divisible "
                f"by groups {self.groups}"
            )
        oh = _conv_out_dim(spec.height, self.kernel, self.stride, self.padding)
        ow = _conv_out_dim(spec.width, self.kernel, self.stride, self.padding)
        return InputSpec(channels=self.out_channels, height=oh, width=ow)

    def weight_elems(self, inputs: List[InputSpec]) -> int:
        spec = self._single_input(inputs)
        cin_per_group = spec.channels // self.groups
        return self.out_channels * cin_per_group * self.kernel * self.kernel

    def gemms(self, inputs: List[InputSpec], batch: int) -> List[GemmShape]:
        spec = self._single_input(inputs)
        out = self.infer_shape(inputs)
        cin_per_group = spec.channels // self.groups
        cout_per_group = self.out_channels // self.groups
        shape = GemmShape(
            m=cout_per_group,
            k=cin_per_group * self.kernel * self.kernel,
            n=out.spatial * batch,
        )
        return [shape] * self.groups

    def macs(self, inputs: List[InputSpec], batch: int) -> int:
        return sum(g.macs for g in self.gemms(inputs, batch))

    def vector_elems(self, inputs: List[InputSpec], batch: int) -> int:
        if self.fused_activation is None:
            return 0
        return self.infer_shape(inputs).elems * batch


@dataclasses.dataclass(frozen=True)
class FullyConnected(Layer):
    """Dense layer: (out x in) weights times (in x batch) activations."""

    out_features: int = 1
    fused_activation: Optional[str] = "relu"

    def __post_init__(self) -> None:
        if self.out_features <= 0:
            raise ValueError(f"{self.name}: out_features must be positive")

    @property
    def kind(self) -> LayerKind:
        return LayerKind.FC

    def infer_shape(self, inputs: List[InputSpec]) -> InputSpec:
        self._single_input(inputs)
        return InputSpec(channels=self.out_features)

    def weight_elems(self, inputs: List[InputSpec]) -> int:
        return self._single_input(inputs).elems * self.out_features

    def gemms(self, inputs: List[InputSpec], batch: int) -> List[GemmShape]:
        spec = self._single_input(inputs)
        return [GemmShape(m=self.out_features, k=spec.elems, n=batch)]

    def macs(self, inputs: List[InputSpec], batch: int) -> int:
        return self.gemms(inputs, batch)[0].macs

    def vector_elems(self, inputs: List[InputSpec], batch: int) -> int:
        if self.fused_activation is None:
            return 0
        return self.out_features * batch


@dataclasses.dataclass(frozen=True)
class LSTMCell(Layer):
    """One time step of an LSTM (the RECR layer of Sec II-A).

    The four gates fuse into a single GEMM: (4H x (I+H)) weights times an
    ((I+H) x batch) activation matrix, followed by element-wise gate math
    on the vector unit.  Time-unrolling across steps is done by the zoo
    builders / compiler, one node per step.
    """

    hidden: int = 1

    def __post_init__(self) -> None:
        if self.hidden <= 0:
            raise ValueError(f"{self.name}: hidden must be positive")

    @property
    def kind(self) -> LayerKind:
        return LayerKind.RECR

    def infer_shape(self, inputs: List[InputSpec]) -> InputSpec:
        self._single_input(inputs)
        return InputSpec(channels=self.hidden)

    def weight_elems(self, inputs: List[InputSpec]) -> int:
        spec = self._single_input(inputs)
        return 4 * self.hidden * (spec.elems + self.hidden)

    def gemms(self, inputs: List[InputSpec], batch: int) -> List[GemmShape]:
        spec = self._single_input(inputs)
        return [GemmShape(m=4 * self.hidden, k=spec.elems + self.hidden, n=batch)]

    def macs(self, inputs: List[InputSpec], batch: int) -> int:
        return self.gemms(inputs, batch)[0].macs

    def vector_elems(self, inputs: List[InputSpec], batch: int) -> int:
        # Gate nonlinearities + cell update + output: ~7 elementwise ops on
        # H-sized vectors, approximated as 7H touches.
        return 7 * self.hidden * batch


@dataclasses.dataclass(frozen=True)
class Activation(Layer):
    """Standalone ACTV layer (in-place, vector unit only)."""

    function: str = "relu"

    @property
    def kind(self) -> LayerKind:
        return LayerKind.ACTV

    def infer_shape(self, inputs: List[InputSpec]) -> InputSpec:
        return self._single_input(inputs)

    def vector_elems(self, inputs: List[InputSpec], batch: int) -> int:
        return self._single_input(inputs).elems * batch


@dataclasses.dataclass(frozen=True)
class Pool2D(Layer):
    """Pooling layer (in-place-style, vector unit only)."""

    kernel: int = 2
    stride: int = 2
    padding: int = 0
    mode: str = "max"

    def __post_init__(self) -> None:
        if self.kernel <= 0 or self.stride <= 0:
            raise ValueError(f"{self.name}: pool parameters must be positive")
        if self.padding < 0:
            raise ValueError(f"{self.name}: padding must be >= 0")
        if self.mode not in ("max", "avg"):
            raise ValueError(f"{self.name}: mode must be 'max' or 'avg'")

    @property
    def kind(self) -> LayerKind:
        return LayerKind.POOL

    def infer_shape(self, inputs: List[InputSpec]) -> InputSpec:
        spec = self._single_input(inputs)
        oh = _conv_out_dim(spec.height, self.kernel, self.stride, self.padding)
        ow = _conv_out_dim(spec.width, self.kernel, self.stride, self.padding)
        return InputSpec(channels=spec.channels, height=oh, width=ow)

    def vector_elems(self, inputs: List[InputSpec], batch: int) -> int:
        # The vector unit reduces each pooling window with parallel
        # comparator trees, so throughput is one *output* element per lane
        # per cycle; window size is hidden in the pipeline.
        out = self.infer_shape(inputs)
        return out.elems * batch


@dataclasses.dataclass(frozen=True)
class Softmax(Layer):
    """Softmax over the channel dimension (vector unit)."""

    @property
    def kind(self) -> LayerKind:
        return LayerKind.SOFTMAX

    def infer_shape(self, inputs: List[InputSpec]) -> InputSpec:
        return self._single_input(inputs)

    def vector_elems(self, inputs: List[InputSpec], batch: int) -> int:
        # exp + sum + divide: ~3 passes.
        return 3 * self._single_input(inputs).elems * batch


@dataclasses.dataclass(frozen=True)
class Concat(Layer):
    """Channel-wise concatenation (GoogLeNet inception joins)."""

    @property
    def kind(self) -> LayerKind:
        return LayerKind.CONCAT

    def infer_shape(self, inputs: List[InputSpec]) -> InputSpec:
        if not inputs:
            raise ValueError(f"{self.name}: concat needs at least one input")
        height, width = inputs[0].height, inputs[0].width
        for spec in inputs[1:]:
            if (spec.height, spec.width) != (height, width):
                raise ValueError(f"{self.name}: concat spatial dims mismatch")
        return InputSpec(
            channels=sum(s.channels for s in inputs), height=height, width=width
        )


@dataclasses.dataclass(frozen=True)
class Embedding(Layer):
    """Token embedding lookup (RNN front-ends): pure memory traffic."""

    vocab: int = 1
    dim: int = 1

    def __post_init__(self) -> None:
        if self.vocab <= 0 or self.dim <= 0:
            raise ValueError(f"{self.name}: vocab and dim must be positive")

    @property
    def kind(self) -> LayerKind:
        return LayerKind.EMBED

    def infer_shape(self, inputs: List[InputSpec]) -> InputSpec:
        return InputSpec(channels=self.dim)

    def weight_elems(self, inputs: List[InputSpec]) -> int:
        return self.vocab * self.dim

    def vector_elems(self, inputs: List[InputSpec], batch: int) -> int:
        return self.dim * batch
