"""ISA instruction objects and stream accounting."""

import pytest

from repro.isa.instructions import (
    ConvOp,
    GemmOp,
    InstructionStream,
    LoadTile,
    Opcode,
    StoreTile,
    VectorOp,
)
from repro.npu.tiling import GemmShape, TilePlan


@pytest.fixture()
def tile(config):
    return TilePlan(GemmShape(m=128, k=128, n=2048), config).tile_at(0, 0, 0)


class TestInstructionKinds:
    def test_opcodes(self, tile):
        assert LoadTile(num_bytes=8).opcode == Opcode.LOAD_TILE
        assert GemmOp(tile=tile).opcode == Opcode.GEMM_OP
        assert ConvOp(tile=tile).opcode == Opcode.CONV_OP
        assert VectorOp(num_elems=4).opcode == Opcode.VECTOR_OP
        assert StoreTile(num_bytes=8).opcode == Opcode.STORE_TILE

    def test_conv_op_is_gemm_op(self, tile):
        # CONV_OP lowers onto the same GEMM timing path (Sec II-B).
        assert isinstance(ConvOp(tile=tile), GemmOp)

    def test_load_destination_validated(self):
        with pytest.raises(ValueError):
            LoadTile(num_bytes=8, destination="dram")

    def test_negative_sizes_rejected(self):
        with pytest.raises(ValueError):
            LoadTile(num_bytes=-1)
        with pytest.raises(ValueError):
            StoreTile(num_bytes=-1)
        with pytest.raises(ValueError):
            VectorOp(num_elems=-1)


class TestInstructionStream:
    def test_append_iterate_index(self, tile):
        stream = InstructionStream("test")
        stream.append(LoadTile(num_bytes=10, destination="wbuf"))
        stream.append(GemmOp(tile=tile))
        assert len(stream) == 2
        assert stream[0].opcode == Opcode.LOAD_TILE
        assert [i.opcode for i in stream] == [Opcode.LOAD_TILE, Opcode.GEMM_OP]

    def test_count_by_opcode(self, tile):
        stream = InstructionStream()
        stream.extend([GemmOp(tile=tile), GemmOp(tile=tile), VectorOp(num_elems=1)])
        assert stream.count(Opcode.GEMM_OP) == 2
        assert stream.count(Opcode.VECTOR_OP) == 1
        assert stream.count(Opcode.STORE_TILE) == 0

    def test_loaded_bytes_by_destination(self):
        stream = InstructionStream()
        stream.append(LoadTile(num_bytes=10, destination="wbuf"))
        stream.append(LoadTile(num_bytes=30, destination="ubuf"))
        assert stream.loaded_bytes() == 40
        assert stream.loaded_bytes("wbuf") == 10
        assert stream.loaded_bytes("ubuf") == 30

    def test_stored_bytes(self):
        stream = InstructionStream()
        stream.append(StoreTile(num_bytes=25))
        stream.append(StoreTile(num_bytes=15))
        assert stream.stored_bytes() == 40

    def test_total_macs(self, tile):
        stream = InstructionStream()
        stream.append(GemmOp(tile=tile))
        stream.append(ConvOp(tile=tile))
        assert stream.total_macs() == 2 * tile.macs

    def test_gemm_tiles_returns_both_kinds(self, tile):
        stream = InstructionStream()
        stream.append(GemmOp(tile=tile))
        stream.append(ConvOp(tile=tile))
        stream.append(VectorOp(num_elems=1))
        assert len(stream.gemm_tiles()) == 2
