"""Latency predictor (Algorithm 1) against the ground-truth engine."""

import pytest

from repro.core.predictor import LatencyPredictor, OraclePredictor
from repro.isa.compiler import compile_model
from repro.models.zoo import build_benchmark
from repro.npu.engine import profile_model


class TestLatencyPredictor:
    @pytest.mark.parametrize("model_name,max_err", [
        ("CNN-AN", 0.05),
        ("CNN-GN", 0.12),
        ("CNN-VN", 0.05),
        ("CNN-MN", 0.05),
    ])
    def test_cnn_prediction_error_small(self, config, model_name, max_err):
        graph = build_benchmark(model_name)
        model = compile_model(graph, config, batch=1)
        predicted = LatencyPredictor(config).predict_model(model)
        actual = profile_model(model, config).total_cycles
        assert abs(predicted - actual) / actual < max_err

    def test_rnn_same_length_prediction_tight(self, config):
        graph = build_benchmark("RNN-MT1", input_len=20, output_len=20)
        model = compile_model(graph, config, batch=1)
        predicted = LatencyPredictor(config).predict_model(model)
        actual = profile_model(model, config).total_cycles
        assert abs(predicted - actual) / actual < 0.05

    def test_prediction_cached(self, config):
        predictor = LatencyPredictor(config)
        model = compile_model(build_benchmark("CNN-AN"), config, batch=1)
        assert predictor.predict_model(model) == predictor.predict_model(model)

    def test_breakdown_sums_to_total(self, config):
        predictor = LatencyPredictor(config)
        model = compile_model(build_benchmark("CNN-AN"), config, batch=1)
        breakdown = predictor.breakdown(model)
        assert breakdown.total_cycles == pytest.approx(
            sum(breakdown.layer_cycles.values())
        )
        assert breakdown.total_cycles == pytest.approx(
            predictor.predict_model(model)
        )

    def test_breakdown_skips_vector_layers(self, config):
        predictor = LatencyPredictor(config)
        model = compile_model(build_benchmark("CNN-AN"), config, batch=1)
        breakdown = predictor.breakdown(model)
        assert "pool1" not in breakdown.layer_cycles
        assert "conv1" in breakdown.layer_cycles

    def test_batch_increases_prediction(self, config):
        predictor = LatencyPredictor(config)
        graph = build_benchmark("CNN-AN")
        b1 = predictor.predict_model(compile_model(graph, config, batch=1))
        b16 = predictor.predict_model(compile_model(graph, config, batch=16))
        assert b16 > b1


class TestOraclePredictor:
    def test_register_and_predict(self):
        oracle = OraclePredictor()
        oracle.register(3, 1234.5)
        assert oracle.predict_task(3) == 1234.5
        assert 3 in oracle

    def test_missing_task_raises(self):
        with pytest.raises(KeyError):
            OraclePredictor().predict_task(1)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            OraclePredictor().register(1, -1.0)
