"""VGG-16 (CNN-VN): 13 uniform 3x3 conv layers + 3 FC layers.

The compute-heaviest CNN in the mix (~15.5 GMACs at batch 1); its long
isolated latency makes it the canonical "long-running low-priority task"
in the paper's preemption scenarios.  The c01..c13/fc1..fc3 names match
the x-axis labels of the paper's Fig 7.
"""

from __future__ import annotations

from repro.models.graph import Graph
from repro.models.layers import Conv2D, FullyConnected, InputSpec, Pool2D, Softmax

#: (layer name, output channels) for the 13 conv layers; pools follow the
#: standard VGG-16 placement after c02, c04, c07, c10, c13.
_CONV_PLAN = (
    ("c01", 64),
    ("c02", 64),
    ("c03", 128),
    ("c04", 128),
    ("c05", 256),
    ("c06", 256),
    ("c07", 256),
    ("c08", 512),
    ("c09", 512),
    ("c10", 512),
    ("c11", 512),
    ("c12", 512),
    ("c13", 512),
)
_POOL_AFTER = frozenset(("c02", "c04", "c07", "c10", "c13"))


def build_vggnet() -> Graph:
    graph = Graph("CNN-VN", InputSpec(channels=3, height=224, width=224))
    for name, channels in _CONV_PLAN:
        graph.add(Conv2D(name, out_channels=channels, kernel=3, stride=1, padding=1))
        if name in _POOL_AFTER:
            graph.add(Pool2D(f"pool_{name}", kernel=2, stride=2))
    graph.add(FullyConnected("fc1", out_features=4096))
    graph.add(FullyConnected("fc2", out_features=4096))
    graph.add(FullyConnected("fc3", out_features=1000, fused_activation=None))
    graph.add(Softmax("prob"))
    graph.validate()
    return graph
