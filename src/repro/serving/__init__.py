"""SLA-aware serving control plane in front of the cluster scheduler.

The paper's whole objective is meeting latency SLAs under multi-tenant
consolidation (Fig 13 measures SLA satisfaction), yet a frontend that
admits every arrival unconditionally misses *everyone's* target once the
cluster is overloaded.  This package is the control plane that closes
that gap, PCS-style (prediction-driven admission) with learning-augmented
estimates:

- :mod:`repro.serving.slo` -- QoS classes (``interactive`` / ``standard``
  / ``batch``), each with an SLA slowdown target, an optional absolute
  deadline, and an admission budget share;
- :mod:`repro.serving.admission` -- the admission controller that turns a
  predicted completion time (per-device backlog + the Algorithm-1
  estimate) into an accept / defer / reject decision per arrival;
- :mod:`repro.serving.feedback` -- online prediction correction: a
  per-model EWMA of the multiplicative estimate error, learned from
  observed completions, that feeds corrected estimates back into both
  admission and predictive routing.

Admission is strictly opt-in: a :class:`~repro.sched.cluster.ClusterScheduler`
constructed without a controller behaves bit-for-bit as before.
"""

from repro.serving.admission import (
    AdmissionConfig,
    AdmissionController,
    AdmissionDecision,
    AdmissionRecord,
)
from repro.serving.feedback import PredictionFeedback
from repro.serving.slo import (
    DEFAULT_SLOS,
    QoSClass,
    ServiceLevel,
    SLOPolicy,
    qos_of,
)

__all__ = [
    "QoSClass",
    "ServiceLevel",
    "SLOPolicy",
    "DEFAULT_SLOS",
    "qos_of",
    "PredictionFeedback",
    "AdmissionDecision",
    "AdmissionRecord",
    "AdmissionConfig",
    "AdmissionController",
]
