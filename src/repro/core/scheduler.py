"""The PREMA scheduling policy core (paper Algorithm 2, Table II).

The policy core is deliberately simulator-agnostic: it operates on a
:class:`~repro.core.context.ContextTable` and returns the candidate task
id.  The event-driven simulator (``repro.sched.simulator``) owns time and
invokes the core on the three wake conditions of Sec V-C: task dispatch,
task completion, and scheduling-period expiry.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

from repro.core.context import ContextTable, TaskContext
from repro.core.tokens import candidate_threshold, token_increment


@dataclasses.dataclass(frozen=True)
class SchedulerConfig:
    """PREMA scheduler configuration (paper Table II)."""

    #: Scheduling period time-quota, cycles (0.25 ms at 700 MHz).
    period_cycles: float = 0.25e-3 * 700e6

    def __post_init__(self) -> None:
        if self.period_cycles <= 0:
            raise ValueError("period_cycles must be positive")


class PremaPolicyCore:
    """Algorithm 2: token grants, candidate filtering, shortest-job pick."""

    def __init__(self, config: Optional[SchedulerConfig] = None) -> None:
        self.config = config or SchedulerConfig()

    # ------------------------------------------------------------------
    # Line 5-8: periodic token grants
    # ------------------------------------------------------------------
    def grant_periodic_tokens(self, table: ContextTable) -> None:
        """Grant tokens to every ready task per its accrued slowdown."""
        for row in table.ready():
            if row.estimated_cycles <= 0:
                continue
            grant = token_increment(
                row.priority, row.waited_since_grant, row.estimated_cycles
            )
            row.grant_tokens(grant)

    # ------------------------------------------------------------------
    # Line 9-10: candidate group and final selection
    # ------------------------------------------------------------------
    def select_candidate(
        self, table: ContextTable, external_max_tokens: float = 0.0
    ) -> Optional[TaskContext]:
        """Return the next task to execute, or None when the queue is empty.

        Candidates are ready tasks whose tokens exceed the dynamic
        threshold; among them, the shortest *estimated remaining* job wins
        (FindShortestEstimatedJob), with task id as the deterministic
        tie-break (FCFS among equals).

        ``external_max_tokens`` folds cluster-global token state into the
        threshold (the :class:`~repro.core.tokens.ClusterTokenLedger`
        maximum over other devices' ready queues).  When the cluster
        maximum excludes every local row, the local queue still serves its
        best row -- the NPU must not idle because the highest-token task
        lives on another device.
        """
        ready = table.ready()
        if not ready:
            return None
        local_max = max(row.tokens for row in ready)
        threshold = candidate_threshold(max(local_max, external_max_tokens))
        candidates = [row for row in ready if row.tokens > threshold]
        if not candidates:
            # No local row clears the (possibly cluster-wide) threshold:
            # fall back to the whole local queue.  Also guards the
            # degenerate float-equality case of the local-only rule.
            candidates = ready
        return min(
            candidates,
            key=lambda row: (row.estimated_remaining_cycles, row.task_id),
        )

    # ------------------------------------------------------------------
    # Preemption ranking
    # ------------------------------------------------------------------
    def should_preempt(
        self,
        candidate: TaskContext,
        running: TaskContext,
        ready: Sequence[TaskContext] = (),
        external_max_tokens: float = 0.0,
    ) -> bool:
        """Does the policy recommend preempting ``running``?

        The running task competes in the candidate selection alongside the
        ready queue: it wins (no preemption) when it both clears the token
        threshold and is the shortest estimated-remaining job among the
        threshold-clearing candidates.  Otherwise Algorithm 2's pick is a
        preemption *recommendation* -- which Algorithm 3 may still
        override with DRAIN (the paper's dynamic mechanism selection).

        ``external_max_tokens`` folds the cluster-global ledger maximum
        into the threshold, like :meth:`select_candidate`.
        """
        pool = list(ready) + [running]
        return self.should_preempt_given_max(
            candidate,
            running,
            max(max(row.tokens for row in pool), external_max_tokens),
        )

    def should_preempt_given_max(
        self,
        candidate: TaskContext,
        running: TaskContext,
        max_pool_tokens: float,
    ) -> bool:
        """O(1) form of :meth:`should_preempt` for callers that already
        track the maximum token count over ready + running (the
        incremental policy structures do)."""
        threshold = candidate_threshold(max_pool_tokens)
        if running.tokens <= threshold:
            # The running task has fallen out of the candidate group.
            return True
        return (
            candidate.estimated_remaining_cycles
            < running.estimated_remaining_cycles
        )
