"""Jobs: gangs of device slices over the cluster (the PR-6 API redesign).

PREMA's unit of scheduling is "a task runs on one device".  Production
fleets run *jobs*: a request (or a router-coalesced batch of requests)
that owns one or more :class:`DeviceSlice` reservations -- Parcae-style
gangs whose stages pipeline a model over the interconnect.  This module
is the job layer's data model; :class:`~repro.sched.cluster.ClusterScheduler`
drives the lifecycle.

Design invariants:

- **Single-slice jobs are tasks.**  ``Job.single(runtime)`` wraps a task
  runtime without copying it; the slice runtime *is* the source runtime,
  so a cluster running only single-slice jobs replays the legacy task
  path bit-for-bit (the golden suites pin this).
- **Slices are ordinary tasks on their device.**  A stage slice is a
  :class:`~repro.sched.task.TaskRuntime` over a stage-cut
  :class:`~repro.npu.engine.ExecutionProfile`; per-device preemption,
  checkpointing, work stealing and migration apply to it unchanged.
  Inter-stage activations ship over the contended interconnect as the
  MockSim DMA idiom: DMA-out is the fabric transfer requested at the
  predecessor's COMPLETE, DMA-in is the successor's ``restore_pending``
  charged at its first dispatch, compute is the slice run itself.
- **Batching is a router concern.**  :func:`merge_runtimes` folds
  compatible queued requests into one proxy runtime whose cost follows
  the marginal-batching model ``max + alpha * (sum - max)``; member
  accounting is settled from the proxy at completion.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import List, Optional, Sequence, Tuple

from repro.core.context import TaskContext, TaskState
from repro.models.graph import balanced_partition
from repro.npu.engine import ExecutionProfile, LayerTiming
from repro.sched.interconnect import CONTEXT_ROW_BYTES
from repro.sched.task import TaskRuntime


class JobState(enum.Enum):
    """Lifecycle of a job at the cluster router."""

    #: Queued at the router (possibly inside an open batch window).
    PENDING = "pending"
    #: Slices materialized and injected; at least one stage live.
    DISPATCHED = "dispatched"
    #: Final stage completed; member requests settled.
    DONE = "done"
    #: Refused by admission control; never executed.
    REJECTED = "rejected"
    #: Destroyed by a device failure with no surviving capacity to
    #: restart on (churn); accounted as offered-but-never-served.
    LOST = "lost"


@dataclasses.dataclass(frozen=True)
class StagePlan:
    """One pipeline stage of a job: what executes, and what ships next.

    ``activation_bytes`` is the boundary tensor DMA-ed to the next stage's
    device (0 signals the final stage -- nothing ships).  Cut from the
    source profile by :func:`partition_runtime`.
    """

    index: int
    profile: ExecutionProfile
    #: Scheduler-visible estimate for this stage (the source estimate
    #: scaled by the stage's ground-truth share -- the information
    #: asymmetry carries through the cut).
    estimated_cycles: float
    activation_bytes: float

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError("stage index must be >= 0")
        if self.estimated_cycles <= 0:
            raise ValueError("stage estimate must be positive")
        if self.activation_bytes < 0:
            raise ValueError("activation_bytes must be >= 0")


@dataclasses.dataclass
class DeviceSlice:
    """One device reservation of a job's gang.

    ``runtime`` is materialized lazily: stage k's runtime exists only
    once stage k-1's activations have been shipped (stage 0 at dispatch).
    ``device_id`` is reserved for the whole gang at dispatch, but a slice
    may land elsewhere afterwards -- work stealing and checkpoint
    migration move slices like any other task, and the cluster reads the
    authoritative placement from its assignment map at stage handoff.
    """

    stage: StagePlan
    runtime: Optional[TaskRuntime] = None
    device_id: Optional[int] = None

    @property
    def is_live(self) -> bool:
        return self.runtime is not None and not self.runtime.is_done


@dataclasses.dataclass
class Job:
    """A gang of device slices executing one (possibly batched) request.

    ``source`` is the runtime the gang executes -- a plain request, or
    the merged proxy of a router batch.  ``requests`` are the end-user
    runtimes to settle at completion (for an unbatched job, just the
    source).  ``slices`` hold the pipeline stages in order.
    """

    job_id: int
    source: TaskRuntime
    requests: Tuple[TaskRuntime, ...]
    slices: List[DeviceSlice]
    state: JobState = JobState.PENDING
    dispatch_time: Optional[float] = None
    completion_time: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.slices:
            raise ValueError("a job needs at least one slice")
        if not self.requests:
            raise ValueError("a job needs at least one member request")

    @classmethod
    def single(cls, runtime: TaskRuntime) -> "Job":
        """Wrap one task runtime as a single-slice job -- zero-copy.

        The slice runtime *is* ``runtime``; running the job through the
        cluster is indistinguishable from running the task (the legacy
        compatibility contract).
        """
        plan = StagePlan(
            index=0,
            profile=runtime.profile,
            estimated_cycles=max(runtime.context.estimated_cycles, 1e-9),
            activation_bytes=0.0,
        )
        return cls(
            job_id=runtime.task_id,
            source=runtime,
            requests=(runtime,),
            slices=[DeviceSlice(stage=plan, runtime=runtime)],
        )

    @property
    def arrival_cycles(self) -> float:
        return self.source.spec.arrival_cycles

    @property
    def num_stages(self) -> int:
        return len(self.slices)

    @property
    def is_single(self) -> bool:
        """True when this job is exactly one unbatched, unsharded task."""
        return (
            len(self.slices) == 1
            and len(self.requests) == 1
            and self.slices[0].runtime is self.source
        )

    @property
    def batch_size(self) -> int:
        return len(self.requests)


@dataclasses.dataclass(frozen=True)
class BatchConfig:
    """Router-level batching / sharding knobs of the cluster frontend.

    ``window_cycles`` is how long the first request of a batch key holds
    the batch open for compatible joiners; ``max_batch`` flushes early
    when reached.  ``marginal_fraction`` (alpha) is the batching cost
    model: a merged dispatch costs ``max + alpha * (sum - max)`` of its
    members' isolated cycles -- alpha = 1 is no amortization, alpha = 0 is
    perfect weight-reuse overlap.  ``shard_stages`` > 1 additionally cuts
    every dispatched job into that many pipeline stages (clamped to layer
    count and fleet size) when its merged cost clears
    ``min_shard_cycles`` -- sharding tiny requests just buys DMA overhead.
    """

    window_cycles: float
    max_batch: int = 8
    marginal_fraction: float = 0.75
    shard_stages: int = 1
    min_shard_cycles: float = 0.0

    def __post_init__(self) -> None:
        if self.window_cycles < 0:
            raise ValueError("window_cycles must be >= 0")
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if not 0.0 <= self.marginal_fraction <= 1.0:
            raise ValueError("marginal_fraction must be in [0, 1]")
        if self.shard_stages < 1:
            raise ValueError("shard_stages must be >= 1")
        if self.min_shard_cycles < 0:
            raise ValueError("min_shard_cycles must be >= 0")


def batch_key(spec) -> Tuple:
    """Requests coalesce iff this key matches.

    Priority and QoS are part of the key: a batch holds exactly one
    service class, so merging never blends token economies or SLOs.
    """
    return (
        spec.benchmark,
        spec.batch,
        spec.input_len,
        spec.actual_output_len,
        spec.priority,
        spec.qos,
    )


# ----------------------------------------------------------------------
# Stage cutting
# ----------------------------------------------------------------------
def _stage_profile(
    profile: ExecutionProfile, start: int, end: int, index: int
) -> ExecutionProfile:
    """One contiguous layer range of ``profile`` as a standalone profile."""
    layers = profile.layers[start:end]
    starts: List[float] = []
    offset = 0.0
    for layer in layers:
        starts.append(offset)
        offset += layer.cycles
    return ExecutionProfile(
        name=f"{profile.name}@s{index}",
        batch=profile.batch,
        layers=layers,
        layer_starts=tuple(starts),
        total_cycles=offset,
    )


def _boundary_bytes(layers: Sequence[LayerTiming]) -> float:
    """Activation bytes crossing a stage cut after ``layers``.

    The boundary tensor is the last checkpointable layer's full committed
    output (vector-only layers are in-place over it).  Floored at one
    context-table row: even a degenerate boundary ships task state.
    """
    for layer in reversed(layers):
        if layer.checkpoint is not None:
            full = layer.checkpoint.bytes_at(layer.checkpoint.total_tiles)
            return max(CONTEXT_ROW_BYTES, full)
    return CONTEXT_ROW_BYTES


def partition_runtime(
    runtime: TaskRuntime, num_stages: int
) -> List[StagePlan]:
    """Cut a runtime's profile into balanced pipeline stage plans.

    Stages are balanced by ground-truth layer cycles; the requested stage
    count is clamped to the layer count (a 2-layer model cannot fill 4
    stages).  The scheduler-visible estimate splits by each stage's
    ground-truth share, so the per-stage information asymmetry matches
    the whole-model one.
    """
    profile = runtime.profile
    stages = max(1, min(num_stages, len(profile.layers)))
    ranges = balanced_partition(
        [layer.cycles for layer in profile.layers], stages
    )
    estimate = max(runtime.context.estimated_cycles, 1e-9)
    total = max(profile.total_cycles, 1e-9)
    plans: List[StagePlan] = []
    for index, (start, end) in enumerate(ranges):
        stage_profile = _stage_profile(profile, start, end, index)
        share = stage_profile.total_cycles / total
        last = index == len(ranges) - 1
        plans.append(
            StagePlan(
                index=index,
                profile=stage_profile,
                estimated_cycles=max(estimate * share, 1e-9),
                activation_bytes=(
                    0.0 if last else _boundary_bytes(stage_profile.layers)
                ),
            )
        )
    return plans


def stage_runtime(
    source: TaskRuntime,
    plan: StagePlan,
    task_id: int,
    arrival: float,
    restore_cycles: float = 0.0,
) -> TaskRuntime:
    """Build the slice runtime executing one stage plan of ``source``.

    ``restore_cycles`` is the stage's DMA-in cost: the time to land the
    inbound activation tensor in UBUF, charged at first dispatch via the
    existing ``restore_pending`` machinery (exactly how a checkpoint
    restore charges).  Stage 0 has no inbound tensor.
    """
    spec = dataclasses.replace(
        source.spec, task_id=task_id, arrival_cycles=arrival, stages=1
    )
    context = TaskContext(
        task_id=task_id,
        priority=spec.priority,
        benchmark=spec.benchmark,
        estimated_cycles=plan.estimated_cycles,
        last_update_cycles=arrival,
    )
    runtime = TaskRuntime(spec=spec, profile=plan.profile, context=context)
    runtime.restore_pending = max(0.0, restore_cycles)
    return runtime


# ----------------------------------------------------------------------
# Router batching
# ----------------------------------------------------------------------
def merged_cost(
    isolated: Sequence[float], marginal_fraction: float
) -> float:
    """The batching cost model: ``max + alpha * (sum - max)``.

    The largest member sets the floor (its layers all execute); each
    extra member pays only the marginal fraction of its own cost, since
    weight fetch and switch overheads are shared across the batch.
    """
    if not isolated:
        raise ValueError("need at least one member")
    largest = max(isolated)
    return largest + marginal_fraction * (sum(isolated) - largest)


def merge_runtimes(
    members: Sequence[TaskRuntime],
    task_id: int,
    now: float,
    marginal_fraction: float,
    tracer=None,
) -> TaskRuntime:
    """Fold compatible queued requests into one batched proxy runtime.

    The proxy executes the largest member's profile with layer durations
    scaled to the merged cost and checkpoint footprints scaled by the
    member count (a batched checkpoint carries every member's
    activations).  Its scheduler-visible estimate applies the same
    marginal model to the members' *estimates*, so admission and routing
    predict the batched dispatch, not the sum of solo runs.
    """
    if not members:
        raise ValueError("need at least one member")
    if len(members) == 1:
        return members[0]
    largest = max(members, key=lambda m: m.isolated_cycles)
    total = merged_cost(
        [m.isolated_cycles for m in members], marginal_fraction
    )
    scale = total / max(largest.isolated_cycles, 1e-9)
    count = len(members)
    layers: List[LayerTiming] = []
    starts: List[float] = []
    offset = 0.0
    for layer in largest.profile.layers:
        checkpoint = layer.checkpoint
        if checkpoint is not None:
            checkpoint = dataclasses.replace(
                checkpoint,
                out_bytes_per_tile=checkpoint.out_bytes_per_tile * count,
                ubuf_cap_bytes=checkpoint.ubuf_cap_bytes * count,
            )
        layers.append(
            dataclasses.replace(
                layer,
                cycles=layer.cycles * scale,
                tile_cycles=layer.tile_cycles * scale,
                checkpoint=checkpoint,
            )
        )
        starts.append(offset)
        offset += layer.cycles * scale
    profile = ExecutionProfile(
        name=f"batch{count}x{largest.profile.name}",
        batch=sum(m.profile.batch for m in members),
        layers=tuple(layers),
        layer_starts=tuple(starts),
        total_cycles=offset,
    )
    estimate = merged_cost(
        [max(m.context.estimated_cycles, 1e-9) for m in members],
        marginal_fraction,
    )
    spec = dataclasses.replace(
        members[0].spec,
        task_id=task_id,
        batch=sum(m.spec.batch for m in members),
        arrival_cycles=now,
        stages=1,
    )
    context = TaskContext(
        task_id=task_id,
        priority=spec.priority,
        benchmark=spec.benchmark,
        estimated_cycles=estimate,
        last_update_cycles=now,
    )
    if tracer is not None and tracer.enabled:
        tracer.instant(
            "batch_merge",
            f"merge {count}x{largest.profile.name}",
            now,
            args={
                "proxy": task_id,
                "members": [m.task_id for m in members],
                "merged_estimate": estimate,
            },
        )
    return TaskRuntime(spec=spec, profile=profile, context=context)


def settle_member(
    member: TaskRuntime,
    now: float,
    first_dispatch: Optional[float] = None,
) -> None:
    """Mark a member request done on behalf of its proxy execution.

    Members of a batched (or sharded) job never run under their own ids;
    their accounting -- wait accrual to the finish instant, completion
    time, DONE state -- settles from the proxy here.  ``first_dispatch``
    back-dates queueing-delay attribution to when the proxy first touched
    an NPU.
    """
    if member.is_done:
        raise RuntimeError(f"request {member.task_id} already settled")
    member.context.accrue_wait(now)
    member.context.state = TaskState.DONE
    member.context.executed_cycles = member.profile.total_cycles
    member.context.last_update_cycles = now
    member.retained_offset = member.profile.total_cycles
    member.dispatch_time = None
    if member.first_dispatch_time is None:
        member.first_dispatch_time = (
            now if first_dispatch is None else first_dispatch
        )
    member.completion_time = now
