"""Scheduler hot-path throughput: events/second at trace scale.

Measures the event-loop cost of :class:`~repro.sched.simulator.DeviceSim`
(and the cluster loop above it) on synthetic open-arrival traces of 8,
500, and 5 000 tasks -- the regime where per-event work that scales with
the number of tasks *ever seen* turns quadratic.  Tasks are synthetic
(``repro.workloads.trace``): no model building, compilation, or NPU
profiling, so the measurement isolates the scheduler.

Usage::

    PYTHONPATH=src python benchmarks/bench_hotpath.py              # full
    PYTHONPATH=src python benchmarks/bench_hotpath.py --tier small
    PYTHONPATH=src python benchmarks/bench_hotpath.py --tier small \
        --check benchmarks/baselines/hotpath_baseline.json

Writes ``benchmarks/results/BENCH_hotpath.json``.  Throughput is also
reported *normalized* against a small pure-Python calibration loop
(heap + dict churn) timed in the same process, which makes numbers
roughly comparable across machines; ``--check`` compares normalized
throughput against a committed baseline and fails the run when any tier
regresses by more than 30% (override with ``--tolerance``).
``--update-baseline`` rewrites the baseline from the current run.
"""

from __future__ import annotations

import argparse
import heapq
import json
import math
import os
import pathlib
import platform
import sys
import time
from typing import Dict, Optional

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

from repro.npu.config import NPUConfig  # noqa: E402
from repro.obs import (  # noqa: E402
    HotPathProfiler,
    MetricsSampler,
    Tracer,
    load_chrome_trace,
    validate_chrome_trace,
)
from repro.sched.cluster import (  # noqa: E402
    ClusterConfig,
    ClusterScheduler,
    RoutingPolicy,
)
from repro.sched.faults import ChurnSchedule  # noqa: E402
from repro.sched.job import BatchConfig  # noqa: E402
from repro.sched.policies import make_policy  # noqa: E402
from repro.sched.rack import RackTopology  # noqa: E402
from repro.serving import (  # noqa: E402
    AdmissionController,
    PredictionFeedback,
)
from repro.sched.simulator import (  # noqa: E402
    DeviceSim,
    PreemptionMode,
    SimulationConfig,
)
from repro.workloads.trace import (  # noqa: E402
    DEFAULT_MEAN_INTERARRIVAL_CYCLES,
    synthetic_trace_runtimes,
)

RESULTS_PATH = pathlib.Path(__file__).parent / "results" / "BENCH_hotpath.json"
BASELINE_PATH = (
    pathlib.Path(__file__).parent / "baselines" / "hotpath_baseline.json"
)

#: Tiers measured per --tier selection.  The regression gate runs on the
#: small tier only (8 + 500 tasks); 5 000 tasks is the scaling proof.
SMALL_TIERS = (8, 500)
FULL_TIERS = (8, 500, 5000)

DEFAULT_TOLERANCE = 0.30


def _simulation_config() -> SimulationConfig:
    return SimulationConfig(
        npu=NPUConfig(),
        mode=PreemptionMode.DYNAMIC,
        mechanism="CHECKPOINT",
    )


def calibrate(iterations: int = 200_000, repeats: int = 3) -> float:
    """Operations/second of a fixed heap + dict churn loop.

    The loop exercises the same interpreter primitives the event loop
    leans on, so events-per-calibration-op transfers across machines far
    better than raw events/second does.
    """
    best = float("inf")
    for _ in range(repeats):
        heap: list = []
        table: Dict[int, int] = {}
        start = time.perf_counter()
        for index in range(iterations):
            heapq.heappush(heap, (index % 97, index))
            table[index % 193] = index
            if index % 2:
                heapq.heappop(heap)
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return iterations / best


def measure_single_device(
    num_tasks: int,
    seed: int = 21,
    bursty: bool = False,
    min_events: int = 4000,
) -> Dict[str, float]:
    """Events/second of one DeviceSim draining an open-arrival trace.

    Small tiers are repeated until at least ``min_events`` events have
    been processed so the timer resolution stops mattering.
    """
    total_events = 0
    total_seconds = 0.0
    repeats = 0
    while total_events < min_events:
        runtimes = synthetic_trace_runtimes(
            num_tasks, seed=seed + repeats, bursty=bursty
        )
        sim = DeviceSim(_simulation_config(), make_policy("PREMA"))
        start = time.perf_counter()
        for runtime in runtimes:
            sim.inject(runtime)
        events = 0
        while sim.has_live_tasks and sim.next_event_time() is not None:
            sim.step()
            events += 1
        total_seconds += time.perf_counter() - start
        total_events += events
        repeats += 1
    return {
        "tasks": num_tasks,
        "events": total_events,
        "seconds": round(total_seconds, 6),
        "repeats": repeats,
        "events_per_sec": total_events / total_seconds,
        "us_per_event": 1e6 * total_seconds / total_events,
    }


def measure_cluster(
    num_tasks: int,
    num_devices: int = 4,
    seed: int = 33,
    routing: RoutingPolicy = RoutingPolicy.WORK_STEALING,
    admission: bool = False,
    use_indexes: Optional[bool] = None,
    batching: Optional[BatchConfig] = None,
    churn: Optional[ChurnSchedule] = None,
    racks: Optional[RackTopology] = None,
    tracer: Optional[Tracer] = None,
    metrics_sampler: Optional[MetricsSampler] = None,
    profiler: Optional[HotPathProfiler] = None,
    workers: Optional[int] = None,
    cross_rack_threshold_cycles: Optional[float] = None,
) -> Dict[str, float]:
    """Wall time of a cluster run over an aggregate open-arrival trace.

    The arrival rate scales with the device count so each device sees
    the same ~85% utilization as the single-device tiers.  With
    ``admission`` the run goes through the serving control plane
    (QoS-tagged arrivals, admission decisions, online feedback) at a
    mildly overloaded arrival rate, so the frontier heap + decide()
    path sits under the same regression gate as the rest of the loop.
    With ``batching`` the run takes the gang event loop instead (batch
    windows, runtime merge, stage partition, activation DMA).  With
    ``churn`` the fleet loses and regains devices mid-run (availability
    transitions, failure orphan re-dispatch, proactive evacuation).
    With ``racks`` the fleet routes through the two-tier rack frontend
    over an oversubscribed fabric.  ``tracer``/``metrics_sampler``/
    ``profiler`` turn on the observability layer so its overhead sits
    under the same regression gate as the scheduling it observes.
    """
    overload = 1.5 if (admission or batching is not None) else 1.0
    runtimes = synthetic_trace_runtimes(
        num_tasks,
        seed=seed,
        mean_interarrival_cycles=(
            DEFAULT_MEAN_INTERARRIVAL_CYCLES / (num_devices * overload)
        ),
        qos_mix=(
            {"interactive": 0.3, "standard": 0.4, "batch": 0.3}
            if admission
            else None
        ),
    )
    controller = None
    if admission:
        controller = AdmissionController(feedback=PredictionFeedback())
    observed = (
        tracer is not None
        or metrics_sampler is not None
        or profiler is not None
    )
    if racks is not None or observed or workers is not None:
        scheduler = ClusterScheduler(
            num_devices=num_devices,
            simulation_config=_simulation_config(),
            config=ClusterConfig(
                policy_name="PREMA",
                routing=routing,
                seed=seed,
                admission=controller,
                use_indexes=use_indexes,
                batching=batching,
                churn=churn,
                racks=racks,
                cross_rack_threshold_cycles=cross_rack_threshold_cycles,
                tracer=tracer,
                metrics_sampler=metrics_sampler,
                profiler=profiler,
                workers=workers,
            ),
        )
    else:
        scheduler = ClusterScheduler(
            num_devices=num_devices,
            simulation_config=_simulation_config(),
            policy_name="PREMA",
            routing=routing,
            seed=seed,
            admission=controller,
            use_indexes=use_indexes,
            batching=batching,
            churn=churn,
        )
    start = time.perf_counter()
    result = scheduler.run(runtimes)
    seconds = time.perf_counter() - start
    return {
        "tasks": num_tasks,
        "devices": num_devices,
        "routing": routing.value,
        "seconds": round(seconds, 6),
        "tasks_per_sec": num_tasks / seconds,
        "events": result.events_processed,
        "us_per_event": 1e6 * seconds / result.events_processed,
    }


def run(tier: str = "full") -> Dict[str, object]:
    calibration_ops = calibrate()
    tiers = SMALL_TIERS if tier == "small" else FULL_TIERS
    results: Dict[str, object] = {}
    for num_tasks in tiers:
        record = measure_single_device(num_tasks)
        record["normalized"] = record["events_per_sec"] / calibration_ops
        results[f"single_poisson_{num_tasks}"] = record
    # Checkpoint migration exercises the interconnect + ledger path on
    # every event; it runs in the small tier so the CI regression gate
    # watches it.
    record = measure_cluster(
        500, routing=RoutingPolicy.PREEMPTIVE_MIGRATION, seed=35
    )
    record["normalized"] = record["tasks_per_sec"] / calibration_ops
    results["cluster_migration_4dev_500"] = record
    # The traced twin of the migration tier: identical workload with the
    # full observability stack on (structured tracer + streaming metrics
    # + hot-path profiler).  Its own baseline floor under the same 30%
    # gate is the overhead contract -- if emission ever gets expensive
    # enough to drag normalized throughput below the floor, CI fails.
    tracer = Tracer()
    traced = measure_cluster(
        500,
        routing=RoutingPolicy.PREEMPTIVE_MIGRATION,
        seed=35,
        tracer=tracer,
        metrics_sampler=MetricsSampler(
            interval_cycles=25 * DEFAULT_MEAN_INTERARRIVAL_CYCLES
        ),
        profiler=HotPathProfiler(),
    )
    traced["normalized"] = traced["tasks_per_sec"] / calibration_ops
    traced["trace_events"] = len(tracer)
    traced["slowdown_vs_untraced"] = (
        record["tasks_per_sec"] / traced["tasks_per_sec"]
    )
    results["cluster_migration_4dev_500_traced"] = traced
    # Persist a schema-checked sample Perfetto artifact next to the
    # results JSON; CI uploads it from the bench-smoke job.
    sample_path = RESULTS_PATH.parent / "sample_trace.json"
    sample_path.parent.mkdir(parents=True, exist_ok=True)
    tracer.write(sample_path)
    validate_chrome_trace(load_chrome_trace(sample_path), num_devices=4)
    # The admission-enabled serving path (frontier heap, per-arrival
    # decide(), feedback observation per completion) also runs in the
    # small tier so the CI gate watches it.
    record = measure_cluster(
        500, routing=RoutingPolicy.ONLINE_PREDICTED, seed=37, admission=True
    )
    record["normalized"] = record["tasks_per_sec"] / calibration_ops
    results["cluster_admission_4dev_500"] = record
    # The gang event loop (router batching + 2-stage pipeline sharding):
    # batch-window flushes, runtime merge, stage partition, and
    # activation DMA all on the dispatch path, under the same gate.
    record = measure_cluster(
        500,
        routing=RoutingPolicy.ONLINE_PREDICTED,
        seed=43,
        batching=BatchConfig(
            window_cycles=5e6,
            max_batch=8,
            marginal_fraction=0.6,
            shard_stages=2,
            min_shard_cycles=4e6,
        ),
    )
    record["normalized"] = record["tasks_per_sec"] / calibration_ops
    results["sharded_pipeline_4dev"] = record
    # Device churn (availability transitions, fail-stop orphan
    # re-dispatch, proactive warning-window evacuation) on the same
    # 4-device regime, under the same gate: the churn control path must
    # never turn per-event cost superlinear.
    churn_horizon = 500 * DEFAULT_MEAN_INTERARRIVAL_CYCLES / 4
    record = measure_cluster(
        500,
        routing=RoutingPolicy.ONLINE_PREDICTED,
        seed=47,
        churn=ChurnSchedule.generate(
            4,
            horizon_cycles=churn_horizon,
            seed=47,
            fault_rate=1.0 / churn_horizon,
            revocation_rate=3.0 / churn_horizon,
            drain_rate=1.0 / churn_horizon,
            mean_outage_cycles=churn_horizon / 10.0,
            mean_warning_cycles=churn_horizon / 250.0,
        ),
    )
    record["normalized"] = record["tasks_per_sec"] / calibration_ops
    results["churn_4dev"] = record
    # The datacenter tier: 64 work-stealing devices at the same
    # per-device load.  Runs in the small tier so the CI gate watches
    # the O(log d) control plane (event heap, backlog index, candidate
    # sets) -- the pre-index loop was ~6x slower here and would trip
    # the 30% gate instantly.
    record = measure_cluster(2000, num_devices=64, seed=39)
    record["normalized"] = record["tasks_per_sec"] / calibration_ops
    results["cluster_ws_64dev_2000"] = record
    # The same 64-device fleet composed as 4 racks of 16 behind an
    # oversubscribed fabric: the two-tier frontend (rack pick by
    # aggregate corrected backlog, then in-rack device pick) plus the
    # locality-gated steal/migrate filters run under the same 30% gate.
    record = measure_cluster(
        2000,
        num_devices=64,
        seed=39,
        racks=RackTopology.uniform(4, 16),
    )
    record["normalized"] = record["tasks_per_sec"] / calibration_ops
    results["cluster_rack_4x16_2000"] = record
    # The parallel backend on the same rack shape scaled to 4x64: the
    # conservative-PDES protocol (per-arrival barriers, rack-key
    # exchange, event-log merge) under the regression gate.  Worker
    # count matches available cores (capped at 4) so the floor tracks
    # the protocol's overhead, not the host's core count.
    record = measure_cluster(
        1000,
        num_devices=256,
        seed=39,
        racks=RackTopology.uniform(4, 64),
        workers=min(4, max(2, os.cpu_count() or 2)),
        cross_rack_threshold_cycles=math.inf,
    )
    record["normalized"] = record["tasks_per_sec"] / calibration_ops
    results["parallel_rack_4x64"] = record
    if tier == "full":
        record = measure_single_device(FULL_TIERS[-1], bursty=True)
        record["normalized"] = record["events_per_sec"] / calibration_ops
        results[f"single_bursty_{FULL_TIERS[-1]}"] = record
        results["cluster_ws_4dev_2000"] = measure_cluster(2000)
        # 256 devices, indexed vs the preserved pre-index linear-scan
        # loop: the before/after headline (~40x at this tier).
        results["cluster_ws_256dev_2560"] = measure_cluster(
            2560, num_devices=256, seed=41
        )
        results["cluster_ws_256dev_2560_linear"] = measure_cluster(
            2560, num_devices=256, seed=41, use_indexes=False
        )
    return {
        "meta": {
            "tier": tier,
            "python": platform.python_version(),
            "platform": platform.platform(),
            "calibration_ops_per_sec": calibration_ops,
        },
        "tiers": results,
    }


def format_report(payload: Dict[str, object]) -> str:
    lines = [
        "scheduler hot-path throughput "
        f"(calibration {payload['meta']['calibration_ops_per_sec']:,.0f} ops/s)",
        f"{'scenario':<24} {'tasks':>6} {'events':>8} {'ev/s':>12} "
        f"{'us/ev':>8} {'normalized':>11}",
    ]
    for name, record in payload["tiers"].items():
        if "events_per_sec" in record:
            lines.append(
                f"{name:<24} {record['tasks']:>6} {record['events']:>8} "
                f"{record['events_per_sec']:>12,.0f} "
                f"{record['us_per_event']:>8.1f} "
                f"{record['normalized']:>11.4f}"
            )
        else:
            lines.append(
                f"{name:<24} {record['tasks']:>6} {'-':>8} "
                f"{record['tasks_per_sec']:>12,.0f} tasks/s over "
                f"{record['devices']} devices"
            )
    return "\n".join(lines)


def check_baseline(
    payload: Dict[str, object],
    baseline_path: pathlib.Path,
    tolerance: float,
) -> int:
    """Return non-zero when any tier regressed beyond ``tolerance``."""
    baseline = json.loads(baseline_path.read_text())
    failures = []
    for name, reference in baseline["normalized"].items():
        record = payload["tiers"].get(name)
        if record is None or "normalized" not in record:
            continue
        floor = reference * (1.0 - tolerance)
        if record["normalized"] < floor:
            failures.append(
                f"{name}: normalized {record['normalized']:.4f} < "
                f"{floor:.4f} (baseline {reference:.4f} - {tolerance:.0%})"
            )
    if failures:
        print("hot-path throughput regression:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"baseline check OK ({len(baseline['normalized'])} tiers)")
    return 0


def update_baseline(payload: Dict[str, object]) -> None:
    BASELINE_PATH.parent.mkdir(parents=True, exist_ok=True)
    normalized = {
        name: record["normalized"]
        for name, record in payload["tiers"].items()
        if "normalized" in record
    }
    # Ratchet policy: an existing entry's floor may only move *up* from
    # a regeneration; lowering one requires deleting it here by hand
    # alongside a written justification (a floor that quietly drops
    # stops gating the regression it was installed to catch).
    if BASELINE_PATH.exists():
        previous = json.loads(BASELINE_PATH.read_text())["normalized"]
        for name, reference in previous.items():
            if name in normalized:
                normalized[name] = max(normalized[name], reference)
    BASELINE_PATH.write_text(
        json.dumps(
            {
                "note": (
                    "Machine-normalized events/sec (events per calibration "
                    "op); regenerate with bench_hotpath.py "
                    "--update-baseline, which only ever ratchets existing "
                    "floors upward (never down without deleting the entry "
                    "by hand + a writeup)."
                ),
                "normalized": normalized,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
    print(f"baseline updated: {BASELINE_PATH}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tier", choices=("small", "full"), default="full")
    parser.add_argument("--output", type=pathlib.Path, default=RESULTS_PATH)
    parser.add_argument("--check", type=pathlib.Path, default=None)
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE
    )
    parser.add_argument("--update-baseline", action="store_true")
    args = parser.parse_args(argv)

    payload = run(tier=args.tier)
    print(format_report(payload))
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"[written to {args.output}]")
    if args.update_baseline:
        update_baseline(payload)
    if args.check is not None:
        return check_baseline(payload, args.check, args.tolerance)
    return 0


# ----------------------------------------------------------------------
# pytest wrapper (CI bench-smoke collects benchmarks/bench_*.py)
# ----------------------------------------------------------------------
def test_hotpath_smoke(emit):
    payload = run(tier="small")
    emit("hotpath_small", format_report(payload))
    for record in payload["tiers"].values():
        throughput = record.get("events_per_sec", record.get("tasks_per_sec"))
        assert throughput > 0
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )


if __name__ == "__main__":
    raise SystemExit(main())
