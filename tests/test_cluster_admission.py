"""Cluster integration of the serving control plane (repro.serving).

Covers the arrival hook end-to-end: accept/defer/reject against live
backlogs, bounded deferral, rejection bookkeeping on ClusterResult,
feedback observation at completions, and the all-important equivalence:
an always-accepting controller reproduces the admission-off schedule
exactly (admission off itself is pinned by the golden suites).
"""

import copy

import pytest

from repro.npu.config import NPUConfig
from repro.sched.cluster import ClusterScheduler, RoutingPolicy
from repro.sched.metrics import compute_cluster_metrics
from repro.sched.simulator import PreemptionMode, SimulationConfig
from repro.serving.admission import (
    AdmissionConfig,
    AdmissionController,
    AdmissionDecision,
)
from repro.serving.feedback import PredictionFeedback
from repro.serving.slo import QoSClass, ServiceLevel, SLOPolicy
from repro.workloads.trace import (
    DEFAULT_MEAN_INTERARRIVAL_CYCLES,
    synthetic_trace_runtimes,
)

_CONFIG = SimulationConfig(npu=NPUConfig(), mode=PreemptionMode.DYNAMIC)

#: Objectives loose enough that nothing is ever refused.
ACCEPT_ALL_SLOS = SLOPolicy(levels={
    qos: ServiceLevel(qos, slowdown_target=1e9, admission_share=1.0)
    for qos in QoSClass
})

#: Objectives nothing can meet (predicted slowdown is always >= 1).
REJECT_ALL_SLOS = SLOPolicy(levels={
    qos: ServiceLevel(qos, slowdown_target=0.5, admission_share=1.0)
    for qos in QoSClass
})


def overloaded_trace(num_tasks=60, seed=9, devices=2, overload=2.0):
    return synthetic_trace_runtimes(
        num_tasks,
        seed=seed,
        mean_interarrival_cycles=(
            DEFAULT_MEAN_INTERARRIVAL_CYCLES / (devices * overload)
        ),
        estimate_error=0.3,
        qos_mix={"interactive": 0.3, "standard": 0.4, "batch": 0.3},
    )


def run_cluster(trace, admission=None, devices=2,
                routing=RoutingPolicy.ONLINE_PREDICTED, policy="PREMA"):
    scheduler = ClusterScheduler(
        num_devices=devices,
        simulation_config=_CONFIG,
        policy_name=policy,
        routing=routing,
        admission=admission,
    )
    return scheduler.run([copy.deepcopy(task) for task in trace])


class TestConstruction:
    def test_static_routing_rejected(self):
        for routing in (RoutingPolicy.ROUND_ROBIN, RoutingPolicy.STATIC,
                        RoutingPolicy.LEAST_LOADED, RoutingPolicy.RANDOM):
            with pytest.raises(ValueError, match="online routing"):
                ClusterScheduler(
                    num_devices=2,
                    simulation_config=_CONFIG,
                    routing=routing,
                    admission=AdmissionController(),
                )

    def test_online_routings_accepted(self):
        for routing in (RoutingPolicy.ONLINE_PREDICTED,
                        RoutingPolicy.WORK_STEALING,
                        RoutingPolicy.PREEMPTIVE_MIGRATION):
            ClusterScheduler(
                num_devices=2,
                simulation_config=_CONFIG,
                routing=routing,
                admission=AdmissionController(),
            )


class TestAcceptAllEquivalence:
    def test_always_accepting_controller_is_transparent(self):
        """Accept-everything admission reproduces admission-off exactly
        when no class-aware filter applies (RRB: plain total backlog).

        The frontier heap, decide() calls, and explicit-arrival inject
        must not perturb a single scheduling decision when no arrival is
        ever deferred or refused and placement uses the same rule.
        """
        trace = overloaded_trace()
        baseline = run_cluster(trace, policy="RRB")
        controller = AdmissionController(
            AdmissionConfig(slos=ACCEPT_ALL_SLOS)
        )
        admitted = run_cluster(trace, admission=controller, policy="RRB")
        assert admitted.rejected_tasks == ()
        assert admitted.deferral_count == 0
        assert admitted.assignments == baseline.assignments
        base_completion = {
            t.task_id: t.completion_time for t in baseline.tasks
        }
        for task in admitted.tasks:
            assert task.completion_time == base_completion[task.task_id]

    def test_transparent_under_work_stealing(self):
        trace = overloaded_trace(num_tasks=40, seed=4)
        baseline = run_cluster(trace, routing=RoutingPolicy.WORK_STEALING,
                               policy="RRB")
        admitted = run_cluster(
            trace,
            admission=AdmissionController(
                AdmissionConfig(slos=ACCEPT_ALL_SLOS)
            ),
            routing=RoutingPolicy.WORK_STEALING,
            policy="RRB",
        )
        assert admitted.assignments == baseline.assignments
        assert len(admitted.migrations) == len(baseline.migrations)

    def test_accept_all_admits_everything_under_prema(self):
        """With class-aware filters active, placement is admission-aware
        (least class backlog) so schedules may differ from admission-off
        -- but an accept-all controller still refuses and defers nothing
        and every offered task completes."""
        trace = overloaded_trace()
        result = run_cluster(
            trace,
            admission=AdmissionController(
                AdmissionConfig(slos=ACCEPT_ALL_SLOS)
            ),
        )
        assert result.rejected_tasks == ()
        assert result.deferral_count == 0
        assert len(result.tasks) == len(trace)
        for task in result.tasks:
            assert task.completion_time is not None


class TestRejectionBookkeeping:
    def test_rejected_tasks_never_execute(self):
        controller = AdmissionController(
            AdmissionConfig(max_defers=1)
        )
        result = run_cluster(overloaded_trace(overload=3.0),
                             admission=controller)
        assert result.rejected_tasks  # the regime guarantees refusals
        for task in result.rejected_tasks:
            assert task.completion_time is None
            assert task.first_dispatch_time is None
            assert task.task_id not in result.assignments
        # Everything admitted ran to completion.
        for task in result.tasks:
            assert task.completion_time is not None
        assert len(result.offered_tasks) == 60
        assert result.rejection_rate == pytest.approx(
            len(result.rejected_tasks) / 60
        )

    def test_terminal_decision_per_offered_task(self):
        """Deferral loops terminate: every task ends accept or reject."""
        max_defers = 2
        controller = AdmissionController(
            AdmissionConfig(max_defers=max_defers)
        )
        result = run_cluster(overloaded_trace(overload=3.0),
                             admission=controller)
        terminal = {}
        for record in result.admission_records:
            assert record.attempt <= max_defers
            if record.decision is not AdmissionDecision.DEFER:
                assert record.task_id not in terminal
                terminal[record.task_id] = record.decision
        assert len(terminal) == 60
        accepted = sum(
            1 for d in terminal.values() if d is AdmissionDecision.ACCEPT
        )
        assert accepted == len(result.tasks)

    def test_all_rejected_yields_empty_run(self):
        controller = AdmissionController(
            AdmissionConfig(slos=REJECT_ALL_SLOS, max_defers=0)
        )
        result = run_cluster(overloaded_trace(num_tasks=10),
                             admission=controller)
        assert result.tasks == ()
        assert len(result.rejected_tasks) == 10
        assert result.makespan_cycles == 0.0
        metrics = compute_cluster_metrics(result)
        assert metrics.rejection_rate == 1.0
        assert metrics.sla_attainment == 0.0
        assert metrics.goodput == 0.0


class TestPredictionFilters:
    def _scheduler(self, policy, mode):
        return ClusterScheduler(
            num_devices=2,
            simulation_config=SimulationConfig(npu=NPUConfig(), mode=mode),
            policy_name=policy,
            routing=RoutingPolicy.ONLINE_PREDICTED,
            admission=AdmissionController(),
        )

    def test_filters_follow_the_policy(self):
        """Class-aware prediction only applies where the per-device
        policy actually serves that way."""
        cases = {
            ("PREMA", PreemptionMode.DYNAMIC): (True, True),
            ("TOKEN", PreemptionMode.STATIC): (True, True),
            ("HPF", PreemptionMode.DYNAMIC): (True, False),
            ("SJF", PreemptionMode.DYNAMIC): (False, True),
            # NP: even a HIGH arrival waits out the running task.
            ("PREMA", PreemptionMode.NP): (False, True),
            # FCFS queues behind everything: plain total backlog.
            ("FCFS", PreemptionMode.NP): (False, False),
            ("RRB", PreemptionMode.DYNAMIC): (False, False),
        }
        for (policy, mode), expected in cases.items():
            scheduler = self._scheduler(policy, mode)
            assert scheduler.admission_prediction_filters() == expected, (
                policy, mode.value,
            )

    def test_fcfs_admission_runs_on_total_backlog(self):
        """Under FCFS the controller sees the full queue and refuses
        accordingly (no phantom priority jump)."""
        controller = AdmissionController(AdmissionConfig())
        scheduler = ClusterScheduler(
            num_devices=2,
            simulation_config=SimulationConfig(
                npu=NPUConfig(), mode=PreemptionMode.NP
            ),
            policy_name="FCFS",
            routing=RoutingPolicy.ONLINE_PREDICTED,
            admission=controller,
        )
        trace = overloaded_trace(num_tasks=40, seed=3, overload=2.5)
        result = scheduler.run([copy.deepcopy(t) for t in trace])
        # At 2.5x overload FCFS cannot hide the backlog from anyone:
        # interactive arrivals get refused too.
        refused_interactive = [
            r for r in result.admission_records
            if r.decision is AdmissionDecision.REJECT
            and r.qos == "interactive"
        ]
        assert refused_interactive


class TestAdmissionWithMigration:
    def test_runs_under_preemptive_migration(self):
        """Admission composes with checkpoint migration: the decision
        backlog filters in-flight deliveries by priority like the rest
        of its class-aware estimate, and the run completes cleanly."""
        controller = AdmissionController(AdmissionConfig())
        result = run_cluster(
            overloaded_trace(num_tasks=50, seed=12, overload=2.5),
            admission=controller,
            routing=RoutingPolicy.PREEMPTIVE_MIGRATION,
        )
        assert len(result.offered_tasks) == 50
        for task in result.tasks:
            assert task.completion_time is not None
        metrics = compute_cluster_metrics(result)
        assert 0.0 <= metrics.sla_attainment <= 1.0


class TestSchedulerReuse:
    def test_second_run_reports_only_its_own_decisions(self):
        """A reused scheduler must not leak run-1 admission records into
        run-2's result (the feedback EWMA *does* keep learning)."""
        controller = AdmissionController(AdmissionConfig())
        scheduler = ClusterScheduler(
            num_devices=2,
            simulation_config=_CONFIG,
            policy_name="PREMA",
            routing=RoutingPolicy.ONLINE_PREDICTED,
            admission=controller,
        )
        trace = overloaded_trace(num_tasks=30, seed=8, overload=2.5)
        first = scheduler.run([copy.deepcopy(t) for t in trace])
        second = scheduler.run([copy.deepcopy(t) for t in trace])
        ids = {r.task_id for r in second.admission_records}
        assert ids == {t.task_id for t in trace}
        terminal = [
            r for r in second.admission_records
            if r.decision is not AdmissionDecision.DEFER
        ]
        assert len(terminal) == 30
        # Controller-lifetime records hold both runs.
        assert len(controller.records) == (
            len(first.admission_records) + len(second.admission_records)
        )


class TestFeedbackInTheLoop:
    def test_observations_match_completions(self):
        feedback = PredictionFeedback()
        controller = AdmissionController(AdmissionConfig(),
                                         feedback=feedback)
        result = run_cluster(overloaded_trace(), admission=controller)
        assert feedback.observations == len(result.tasks)

    def test_neutral_then_learning(self):
        """The first decision sees factor 1.0; later ones see the EWMA."""
        feedback = PredictionFeedback()
        controller = AdmissionController(
            AdmissionConfig(slos=ACCEPT_ALL_SLOS), feedback=feedback
        )
        trace = overloaded_trace(num_tasks=30, seed=2)
        assert controller.corrected_estimate(trace[0]) == pytest.approx(
            trace[0].context.estimated_cycles
        )
        run_cluster(trace, admission=controller)
        assert feedback.observations == 30
        assert feedback.correction("CNN-AN") != 1.0

    def test_corrected_estimates_written_back(self):
        feedback = PredictionFeedback()
        controller = AdmissionController(
            AdmissionConfig(slos=ACCEPT_ALL_SLOS), feedback=feedback
        )
        trace = overloaded_trace(num_tasks=40, seed=6)
        raw = {t.task_id: t.context.estimated_cycles for t in trace}
        result = run_cluster(trace, admission=controller)
        # Once the EWMA has observations, admitted estimates diverge
        # from the raw Algorithm-1 numbers.
        diverged = sum(
            1 for t in result.tasks
            if t.context.estimated_cycles != raw[t.task_id]
        )
        assert diverged > 0


class TestClusterServingMetrics:
    def test_metrics_fields_without_admission(self):
        """Every cluster run now reports serving metrics for free."""
        result = run_cluster(overloaded_trace())
        metrics = compute_cluster_metrics(result)
        assert metrics.rejection_rate == 0.0
        assert metrics.deferral_count == 0
        assert set(metrics.sla_attainment_by_class) <= {
            "interactive", "standard", "batch"
        }
        assert 0.0 <= metrics.sla_attainment <= 1.0
        assert metrics.goodput > 0.0
        # Attainment over offered == completed here (nothing rejected),
        # so it is bounded by the per-class rates.
        rates = metrics.sla_attainment_by_class.values()
        assert min(rates) <= metrics.sla_attainment <= max(rates)

    def test_violation_rate_consistency(self):
        """Per-class violation (completed basis) complements attainment."""
        result = run_cluster(overloaded_trace())
        metrics = compute_cluster_metrics(result)
        for qos, violation in metrics.sla_violation_rate_by_class.items():
            attainment = metrics.sla_attainment_by_class[qos]
            # No rejections and no deadlines: attained = 1 - violated.
            assert attainment == pytest.approx(1.0 - violation)
