"""Unit tests of the job layer: stage cutting, batching, configuration.

Covers the PR-6 data model in isolation from the cluster event loop:

- :func:`balanced_partition` / :meth:`Graph.partition` /
  :func:`partition_model` -- the model-cutting primitives.
- :class:`Job` construction invariants (``Job.single`` is zero-copy, the
  factory's ``build_job`` clamps stage requests).
- :func:`partition_runtime` / :func:`stage_runtime` -- the profile cut
  conserves cycles and the information asymmetry, and the DMA-in cost
  lands as ``restore_pending``.
- :func:`merged_cost` / :func:`merge_runtimes` / :func:`settle_member`
  -- the router batching cost model and member accounting.
- :class:`ClusterConfig` -- the new construction surface and its
  equivalence with the deprecated kwargs path.
- The derived routing membership sets stay exhaustive.
"""

import dataclasses

import pytest

from repro.core.tokens import Priority
from repro.isa.compiler import compile_model, partition_model
from repro.models.graph import balanced_partition
from repro.models.zoo import build_benchmark
from repro.npu.config import NPUConfig
from repro.npu.engine import profile_model
from repro.sched.cluster import (
    ONLINE_ROUTINGS,
    STATIC_ROUTINGS,
    ClusterConfig,
    ClusterScheduler,
    RoutingPolicy,
)
from repro.sched.interconnect import CONTEXT_ROW_BYTES, InterconnectConfig
from repro.sched.job import (
    BatchConfig,
    Job,
    JobState,
    StagePlan,
    batch_key,
    merge_runtimes,
    merged_cost,
    partition_runtime,
    settle_member,
    stage_runtime,
)
from repro.sched.simulator import PreemptionMode, SimulationConfig
from repro.workloads.specs import TaskSpec
from repro.workloads.trace import synthetic_runtime

_CONFIG = NPUConfig()


def make_runtime(task_id=0, cycles=1_000_000.0, arrival=0.0,
                 estimated=None, priority=Priority.MEDIUM, num_layers=4):
    spec = TaskSpec(
        task_id=task_id, benchmark="CNN-AN", batch=1,
        priority=priority, arrival_cycles=arrival,
    )
    return synthetic_runtime(
        spec, cycles, estimated_cycles=estimated, num_layers=num_layers
    )


# ----------------------------------------------------------------------
# Model cutting primitives
# ----------------------------------------------------------------------
class TestBalancedPartition:
    def test_uniform_split(self):
        assert balanced_partition([1, 1, 1, 1], 2) == ((0, 2), (2, 4))

    def test_heavy_head_isolates(self):
        assert balanced_partition([5, 1, 1, 1], 2) == ((0, 1), (1, 4))

    def test_single_stage_is_whole(self):
        assert balanced_partition([3, 2, 1], 1) == ((0, 3),)

    def test_stages_equal_count(self):
        assert balanced_partition([1, 2, 3], 3) == ((0, 1), (1, 2), (2, 3))

    def test_covers_every_item_once(self):
        weights = [3, 1, 4, 1, 5, 9, 2, 6]
        for stages in range(1, len(weights) + 1):
            ranges = balanced_partition(weights, stages)
            assert ranges[0][0] == 0
            assert ranges[-1][1] == len(weights)
            for (_, end), (start, _) in zip(ranges, ranges[1:]):
                assert end == start
            assert all(start < end for start, end in ranges)

    def test_zero_mass_falls_back_to_counts(self):
        assert balanced_partition([0, 0, 0, 0], 2) == ((0, 2), (2, 4))

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            balanced_partition([1, 2], 0)
        with pytest.raises(ValueError):
            balanced_partition([1, 2], 3)
        with pytest.raises(ValueError):
            balanced_partition([1, -1], 1)


class TestModelPartition:
    def test_graph_partition_covers_nodes(self):
        graph = build_benchmark("CNN-AN")
        ranges = graph.partition(3)
        assert ranges[0][0] == 0
        assert ranges[-1][1] == len(graph.nodes)

    def test_partition_model_conserves_layers(self):
        model = compile_model(build_benchmark("CNN-AN"), _CONFIG, batch=1)
        stages = partition_model(model, 3)
        assert len(stages) == 3
        assert sum(len(s.layers) for s in stages) == len(model.layers)
        rejoined = [layer for stage in stages for layer in stage.layers]
        assert rejoined == list(model.layers)
        assert [s.name for s in stages] == [
            f"{model.name}@s{i}" for i in range(3)
        ]

    def test_partition_model_balances_macs(self):
        # partition_model balances compile-time MACs (all it can see);
        # cycle balance is partition_runtime's job, over the profile.
        model = compile_model(build_benchmark("CNN-AN"), _CONFIG, batch=1)
        whole = profile_model(model, _CONFIG).total_cycles
        stages = partition_model(model, 2)
        parts = [profile_model(s, _CONFIG).total_cycles for s in stages]
        assert sum(parts) == pytest.approx(whole, rel=1e-9)
        total_macs = sum(layer.macs for layer in model.layers)
        stage_macs = [
            sum(layer.macs for layer in stage.layers) for stage in stages
        ]
        assert sum(stage_macs) == total_macs
        assert max(stage_macs) / total_macs < 0.9

    def test_partition_runtime_balances_cycles(self, factory):
        spec = TaskSpec(
            task_id=0, benchmark="CNN-AN", batch=1,
            priority=Priority.LOW, arrival_cycles=0.0,
        )
        runtime = factory.build_task(spec)
        plans = partition_runtime(runtime, 2)
        whole = runtime.profile.total_cycles
        parts = [p.profile.total_cycles for p in plans]
        assert sum(parts) == pytest.approx(whole, rel=1e-9)
        # A cycle-balanced 2-cut never puts >90% in one stage.
        assert max(parts) / whole < 0.9


# ----------------------------------------------------------------------
# Job construction
# ----------------------------------------------------------------------
class TestJobConstruction:
    def test_single_is_zero_copy(self):
        runtime = make_runtime()
        job = Job.single(runtime)
        assert job.is_single
        assert job.source is runtime
        assert job.slices[0].runtime is runtime
        assert job.num_stages == 1
        assert job.batch_size == 1
        assert job.state is JobState.PENDING
        assert job.arrival_cycles == runtime.spec.arrival_cycles

    def test_spec_stage_request_validated(self):
        with pytest.raises(ValueError):
            TaskSpec(
                task_id=0, benchmark="CNN-AN", batch=1,
                priority=Priority.LOW, arrival_cycles=0.0, stages=0,
            )

    def test_build_job_single_wraps_build_task(self, factory):
        spec = TaskSpec(
            task_id=3, benchmark="CNN-AN", batch=1,
            priority=Priority.HIGH, arrival_cycles=5.0,
        )
        job = factory.build_job(spec)
        assert job.is_single
        assert job.source.task_id == 3

    def test_build_job_multi_stage(self, factory):
        spec = TaskSpec(
            task_id=4, benchmark="CNN-AN", batch=1,
            priority=Priority.LOW, arrival_cycles=0.0, stages=3,
        )
        job = factory.build_job(spec)
        assert job.num_stages == 3
        assert not job.is_single
        assert job.slices[0].runtime is None  # materialized at dispatch
        total = sum(s.stage.profile.total_cycles for s in job.slices)
        assert total == pytest.approx(
            job.source.profile.total_cycles, rel=1e-9
        )

    def test_build_job_clamps_to_layer_count(self, factory):
        spec = TaskSpec(
            task_id=5, benchmark="CNN-AN", batch=1,
            priority=Priority.LOW, arrival_cycles=0.0, stages=512,
        )
        job = factory.build_job(spec)
        assert job.num_stages <= len(job.source.profile.layers)

    def test_job_requires_slices_and_requests(self):
        runtime = make_runtime()
        with pytest.raises(ValueError):
            Job(job_id=0, source=runtime, requests=(runtime,), slices=[])
        plan = StagePlan(
            index=0, profile=runtime.profile,
            estimated_cycles=1.0, activation_bytes=0.0,
        )
        from repro.sched.job import DeviceSlice

        with pytest.raises(ValueError):
            Job(
                job_id=0, source=runtime, requests=(),
                slices=[DeviceSlice(stage=plan)],
            )


# ----------------------------------------------------------------------
# Stage cutting over runtimes
# ----------------------------------------------------------------------
class TestPartitionRuntime:
    def test_cycles_and_estimates_conserve(self):
        runtime = make_runtime(cycles=4_000_000.0, estimated=3_000_000.0)
        plans = partition_runtime(runtime, 2)
        assert len(plans) == 2
        assert sum(p.profile.total_cycles for p in plans) == pytest.approx(
            runtime.profile.total_cycles, rel=1e-9
        )
        # The cut splits the *estimate* by ground-truth share: the
        # information asymmetry carries through, never leaks truth.
        assert sum(p.estimated_cycles for p in plans) == pytest.approx(
            3_000_000.0, rel=1e-9
        )

    def test_activation_bytes_interior_only(self):
        runtime = make_runtime(cycles=4_000_000.0)
        plans = partition_runtime(runtime, 4)
        for plan in plans[:-1]:
            assert plan.activation_bytes >= CONTEXT_ROW_BYTES
        assert plans[-1].activation_bytes == 0.0

    def test_clamps_to_layer_count(self):
        runtime = make_runtime(num_layers=2)
        assert len(partition_runtime(runtime, 8)) == 2

    def test_stage_runtime_charges_dma_in(self):
        runtime = make_runtime(cycles=2_000_000.0)
        plans = partition_runtime(runtime, 2)
        slice_rt = stage_runtime(
            runtime, plans[1], task_id=99, arrival=123.0,
            restore_cycles=456.0,
        )
        assert slice_rt.task_id == 99
        assert slice_rt.spec.arrival_cycles == 123.0
        assert slice_rt.restore_pending == 456.0
        assert slice_rt.context.estimated_cycles == plans[1].estimated_cycles
        # Dispatch consumes the DMA-in as a restore, like a checkpoint.
        finish = slice_rt.dispatch(1000.0)
        assert finish == pytest.approx(
            1000.0 + 456.0 + plans[1].profile.total_cycles
        )

    def test_stage_plan_validation(self):
        runtime = make_runtime()
        with pytest.raises(ValueError):
            StagePlan(
                index=-1, profile=runtime.profile,
                estimated_cycles=1.0, activation_bytes=0.0,
            )
        with pytest.raises(ValueError):
            StagePlan(
                index=0, profile=runtime.profile,
                estimated_cycles=0.0, activation_bytes=0.0,
            )
        with pytest.raises(ValueError):
            StagePlan(
                index=0, profile=runtime.profile,
                estimated_cycles=1.0, activation_bytes=-1.0,
            )


# ----------------------------------------------------------------------
# Router batching
# ----------------------------------------------------------------------
class TestBatching:
    def test_merged_cost_model(self):
        assert merged_cost([100.0], 0.5) == 100.0
        assert merged_cost([100.0, 60.0], 0.5) == 130.0
        assert merged_cost([100.0, 60.0], 1.0) == 160.0  # no amortization
        assert merged_cost([100.0, 60.0], 0.0) == 100.0  # perfect overlap
        with pytest.raises(ValueError):
            merged_cost([], 0.5)

    def test_batch_key_separates_classes(self):
        base = TaskSpec(
            task_id=0, benchmark="CNN-AN", batch=1,
            priority=Priority.MEDIUM, arrival_cycles=0.0,
        )
        same = dataclasses.replace(base, task_id=1, arrival_cycles=9.0)
        assert batch_key(base) == batch_key(same)
        for variant in (
            dataclasses.replace(base, benchmark="CNN-GN"),
            dataclasses.replace(base, batch=2),
            dataclasses.replace(base, priority=Priority.HIGH),
            dataclasses.replace(base, qos="batch"),
        ):
            assert batch_key(variant) != batch_key(base)

    def test_merge_runtimes_cost_and_shape(self):
        a = make_runtime(task_id=0, cycles=1_000_000.0, estimated=900_000.0)
        b = make_runtime(task_id=1, cycles=600_000.0, estimated=660_000.0)
        merged = merge_runtimes([a, b], task_id=50, now=10.0,
                                marginal_fraction=0.5)
        assert merged.task_id == 50
        assert merged.spec.arrival_cycles == 10.0
        assert merged.spec.batch == 2
        assert merged.profile.total_cycles == pytest.approx(
            merged_cost([1_000_000.0, 600_000.0], 0.5), rel=1e-9
        )
        assert merged.context.estimated_cycles == pytest.approx(
            merged_cost([900_000.0, 660_000.0], 0.5), rel=1e-9
        )
        # The proxy keeps the largest member's layer structure, with the
        # checkpoint footprint scaled by the member count.
        assert len(merged.profile.layers) == len(a.profile.layers)
        for merged_layer, solo_layer in zip(
            merged.profile.layers, a.profile.layers
        ):
            assert merged_layer.checkpoint.out_bytes_per_tile == (
                pytest.approx(solo_layer.checkpoint.out_bytes_per_tile * 2)
            )

    def test_merge_single_member_is_identity(self):
        a = make_runtime()
        assert merge_runtimes([a], task_id=9, now=0.0,
                              marginal_fraction=0.5) is a

    def test_settle_member_accounting(self):
        member = make_runtime(task_id=7, arrival=100.0)
        settle_member(member, now=5_100.0, first_dispatch=600.0)
        assert member.is_done
        assert member.completion_time == 5_100.0
        assert member.first_dispatch_time == 600.0
        assert member.context.executed_cycles == (
            member.profile.total_cycles
        )
        assert member.context.waited_cycles == pytest.approx(5_000.0)
        with pytest.raises(RuntimeError):
            settle_member(member, now=6_000.0)

    def test_batch_config_validation(self):
        BatchConfig(window_cycles=0.0)  # degenerate but legal
        with pytest.raises(ValueError):
            BatchConfig(window_cycles=-1.0)
        with pytest.raises(ValueError):
            BatchConfig(window_cycles=1.0, max_batch=0)
        with pytest.raises(ValueError):
            BatchConfig(window_cycles=1.0, marginal_fraction=1.5)
        with pytest.raises(ValueError):
            BatchConfig(window_cycles=1.0, shard_stages=0)
        with pytest.raises(ValueError):
            BatchConfig(window_cycles=1.0, min_shard_cycles=-1.0)


# ----------------------------------------------------------------------
# ClusterConfig and the deprecated kwargs path
# ----------------------------------------------------------------------
def _sim_config():
    return SimulationConfig(npu=_CONFIG, mode=PreemptionMode.DYNAMIC)


class TestClusterConfig:
    def test_config_and_kwargs_resolve_identically(self):
        fabric = InterconnectConfig.nvlink()
        via_config = ClusterScheduler(
            4, _sim_config(),
            config=ClusterConfig(
                policy_name="SJF",
                routing=RoutingPolicy.ONLINE_PREDICTED,
                seed=3,
                interconnect=fabric,
                global_tokens=True,
            ),
        )
        via_kwargs = ClusterScheduler(
            4, _sim_config(), "SJF", RoutingPolicy.ONLINE_PREDICTED,
            seed=3, interconnect=fabric, global_tokens=True,
        )
        for attr in (
            "policy_name", "routing", "interconnect", "global_tokens",
            "use_indexes", "verify_indexes", "batching",
        ):
            assert getattr(via_config, attr) == getattr(via_kwargs, attr)

    def test_mixing_config_and_kwargs_rejected(self):
        with pytest.raises(ValueError, match="policy_name"):
            ClusterScheduler(
                2, _sim_config(), policy_name="SJF",
                config=ClusterConfig(),
            )

    def test_defaults_match_legacy_defaults(self):
        scheduler = ClusterScheduler(2, _sim_config())
        assert scheduler.policy_name == "PREMA"
        assert scheduler.routing is RoutingPolicy.LEAST_LOADED
        assert scheduler.interconnect.name == "pcie-gen3"
        assert not scheduler.use_indexes  # below the 8-device threshold
        assert scheduler.batching is None

    def test_batching_requires_online_routing(self):
        with pytest.raises(ValueError):
            ClusterScheduler(
                2, _sim_config(),
                config=ClusterConfig(
                    routing=RoutingPolicy.ROUND_ROBIN,
                    batching=BatchConfig(window_cycles=1e6),
                ),
            )

    def test_run_jobs_rejects_static_routing_for_gangs(self, factory):
        spec = TaskSpec(
            task_id=0, benchmark="CNN-AN", batch=1,
            priority=Priority.LOW, arrival_cycles=0.0, stages=2,
        )
        job = factory.build_job(spec)
        scheduler = ClusterScheduler(
            2, _sim_config(),
            config=ClusterConfig(routing=RoutingPolicy.ROUND_ROBIN),
        )
        with pytest.raises(ValueError, match="online routing"):
            scheduler.run_jobs([job])

    def test_run_jobs_rejects_duplicate_members(self):
        runtime = make_runtime()
        scheduler = ClusterScheduler(2, _sim_config())
        with pytest.raises(ValueError, match="duplicate"):
            scheduler.run_jobs([Job.single(runtime), Job.single(runtime)])


# ----------------------------------------------------------------------
# Routing membership sets
# ----------------------------------------------------------------------
class TestRoutingSets:
    def test_sets_partition_the_enum(self):
        assert STATIC_ROUTINGS | ONLINE_ROUTINGS == frozenset(RoutingPolicy)
        assert not STATIC_ROUTINGS & ONLINE_ROUTINGS

    def test_expected_members(self):
        assert RoutingPolicy.ROUND_ROBIN in STATIC_ROUTINGS
        assert RoutingPolicy.ONLINE_PREDICTED in ONLINE_ROUTINGS
        assert RoutingPolicy.PREEMPTIVE_MIGRATION in ONLINE_ROUTINGS
