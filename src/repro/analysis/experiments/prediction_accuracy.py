"""Sec VI-D: prediction-model accuracy vs an oracular PREMA.

Two analyses:

1. correlation and relative error between ``Time_estimated`` and the
   simulated isolated execution time across the ensemble's task instances
   (paper: ~98% correlation, ~1.6% error);
2. PREMA scheduled with the real predictor vs PREMA scheduled with exact
   (oracle) task lengths, compared on ANTT/STP/fairness (paper: the
   predictor reaches ~99% of oracle on each).
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

from repro.analysis.reporting import format_mapping
from repro.analysis.runner import SchedulerSetup, run_setup
from repro.analysis.stats import pearson_correlation, relative_error
from repro.npu.config import NPUConfig
from repro.sched.prepare import TaskFactory
from repro.sched.simulator import PreemptionMode
from repro.workloads.specs import WorkloadSpec


@dataclasses.dataclass(frozen=True)
class AccuracyReport:
    """Predictor quality + oracle-relative scheduling quality."""

    correlation: float
    mean_relative_error: float
    max_relative_error: float
    antt_vs_oracle: float
    stp_vs_oracle: float
    fairness_vs_oracle: float


def run_prediction_accuracy(
    workloads: Sequence[WorkloadSpec],
    config: Optional[NPUConfig] = None,
    factory: Optional[TaskFactory] = None,
) -> AccuracyReport:
    config = config or NPUConfig()
    factory = factory or TaskFactory(config)
    estimates: List[float] = []
    actuals: List[float] = []
    for workload in workloads:
        for estimated, actual in factory.prediction_pairs(workload.tasks):
            estimates.append(estimated)
            actuals.append(actual)
    errors = [relative_error(e, a) for e, a in zip(estimates, actuals)]
    setup = SchedulerSetup("PREMA", "PREMA", PreemptionMode.DYNAMIC)
    with_model = run_setup(setup, workloads, factory, config, oracle=False)
    with_oracle = run_setup(setup, workloads, factory, config, oracle=True)
    return AccuracyReport(
        correlation=pearson_correlation(estimates, actuals),
        mean_relative_error=sum(errors) / len(errors),
        max_relative_error=max(errors),
        # ANTT is lower-better: model/oracle ratio >= 1 means oracle wins.
        antt_vs_oracle=with_oracle.metrics.mean_antt / with_model.metrics.mean_antt,
        stp_vs_oracle=with_model.metrics.mean_stp / with_oracle.metrics.mean_stp,
        fairness_vs_oracle=(
            with_model.metrics.mean_fairness / with_oracle.metrics.mean_fairness
        ),
    )


def format_accuracy(report: AccuracyReport) -> str:
    return format_mapping(
        "Sec VI-D: prediction accuracy vs oracle",
        {
            "estimate-vs-actual correlation": report.correlation,
            "mean relative error": report.mean_relative_error,
            "max relative error": report.max_relative_error,
            "ANTT fraction of oracle": report.antt_vs_oracle,
            "STP fraction of oracle": report.stp_vs_oracle,
            "fairness fraction of oracle": report.fairness_vs_oracle,
        },
    )
