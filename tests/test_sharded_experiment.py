"""The sharded_serving experiment's headline claims (quick ensemble)."""

import pytest

from repro.analysis.experiments.sharded_serving import (
    format_sharded_serving,
    run_sharded_serving,
)


@pytest.fixture(scope="module")
def rows():
    return run_sharded_serving(quick=True)


class TestShardedServingExperiment:
    def test_headline_throughput(self, rows):
        """At >= 2x overload, batching -- with and without pipeline
        sharding on top -- beats one-task-one-device dispatch on
        aggregate completion throughput."""
        by_mode = {r.mode: r for r in rows}
        single = by_mode["single-device"]
        assert by_mode["batched"].tasks_per_sec > single.tasks_per_sec
        assert (
            by_mode["sharded+batched"].tasks_per_sec > single.tasks_per_sec
        )

    def test_sharding_recovers_tail_latency(self, rows):
        """Sharding spreads the merged dispatches batching makes heavy:
        its p99 does not regress vs pure batching."""
        by_mode = {r.mode: r for r in rows}
        assert by_mode["sharded+batched"].p99_turnaround_ms <= (
            by_mode["batched"].p99_turnaround_ms * 1.05
        )

    def test_mechanisms_actually_engage(self, rows):
        by_mode = {r.mode: r for r in rows}
        assert by_mode["single-device"].mean_batch_size == 1.0
        assert by_mode["single-device"].sharded_dispatches == 0.0
        assert by_mode["single-device"].activation_mb == 0.0
        assert by_mode["batched"].mean_batch_size > 1.2
        assert by_mode["batched"].sharded_dispatches == 0.0
        assert by_mode["sharded+batched"].sharded_dispatches > 0.0
        assert by_mode["sharded+batched"].activation_mb > 0.0

    def test_format(self, rows):
        text = format_sharded_serving(rows)
        assert "single-device" in text
        assert "sharded+batched" in text
        assert "overload" in text
