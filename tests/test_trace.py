"""Open-arrival trace generation (repro.workloads.trace)."""

import pytest

from repro.models.zoo import CNN_BENCHMARKS
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.trace import (
    DEFAULT_MEAN_INTERARRIVAL_CYCLES,
    TraceGenerator,
    synthetic_profile,
    synthetic_runtime,
    synthetic_trace_runtimes,
)


def make_generator(seed=0):
    return TraceGenerator(seed=seed, benchmarks=CNN_BENCHMARKS, profiles={})


class TestPoissonTrace:
    def test_shape_and_ordering(self):
        trace = make_generator().generate_poisson(500)
        assert len(trace) == 500
        arrivals = [task.arrival_cycles for task in trace.tasks]
        assert arrivals == sorted(arrivals)
        assert [task.task_id for task in trace.tasks] == list(range(500))

    def test_mean_interarrival_close_to_requested(self):
        mean = 1e6
        trace = make_generator(seed=3).generate_poisson(4000, mean)
        arrivals = [task.arrival_cycles for task in trace.tasks]
        gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
        measured = sum(gaps) / len(gaps)
        assert measured == pytest.approx(mean, rel=0.1)

    def test_seeded_determinism(self):
        one = make_generator(seed=7).generate_poisson(100)
        two = make_generator(seed=7).generate_poisson(100)
        assert one == two
        other = make_generator(seed=8).generate_poisson(100)
        assert other != one

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            make_generator().generate_poisson(0)
        with pytest.raises(ValueError):
            make_generator().generate_poisson(10, mean_interarrival_cycles=0)


class TestBurstyTrace:
    def test_burstier_than_poisson(self):
        """Bursty traces concentrate arrivals: the squared coefficient of
        variation of inter-arrival gaps clearly exceeds the ~1 of a
        Poisson process."""
        seed = 11
        poisson = make_generator(seed).generate_poisson(3000)
        bursty = make_generator(seed).generate_bursty(3000)

        def scv(workload):
            arrivals = [task.arrival_cycles for task in workload.tasks]
            gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
            mean = sum(gaps) / len(gaps)
            var = sum((g - mean) ** 2 for g in gaps) / len(gaps)
            return var / mean**2

        assert scv(bursty) > 2.0 * scv(poisson)

    def test_long_run_rate_matches_requested(self):
        mean = 1e6
        trace = make_generator(seed=5).generate_bursty(4000, mean)
        span = trace.tasks[-1].arrival_cycles - trace.tasks[0].arrival_cycles
        assert span / len(trace) == pytest.approx(mean, rel=0.25)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            make_generator().generate_bursty(10, burst_size_mean=0.5)
        with pytest.raises(ValueError):
            make_generator().generate_bursty(10, burst_spread_cycles=-1.0)


class TestTaskAttributeDrawing:
    def test_trace_tasks_share_workload_generator_vocabulary(self):
        trace = make_generator(seed=2).generate_poisson(200)
        assert {task.benchmark for task in trace.tasks} <= set(CNN_BENCHMARKS)
        assert all(task.batch in (1, 4, 16) for task in trace.tasks)

    def test_uniform_workloads_unchanged_by_refactor(self):
        """The shared _build_tasks refactor must not disturb the seeded
        paper workloads (same RNG call order)."""
        workload = WorkloadGenerator(seed=11).generate(num_tasks=8)
        assert workload.name == "workload-8tasks"
        assert len(workload) == 8
        arrivals = [task.arrival_cycles for task in workload.tasks]
        assert arrivals == sorted(arrivals)


class TestSyntheticRuntimes:
    def test_profile_shape(self):
        profile = synthetic_profile("t", 1000.0, num_layers=4,
                                    tiles_per_layer=10)
        assert profile.total_cycles == pytest.approx(1000.0)
        assert profile.num_layers == 4
        # Preemption points snap to tile boundaries.
        assert profile.next_preemption_point(130.0) == pytest.approx(150.0)
        assert profile.checkpoint_bytes_at(250.0) > 0

    def test_runtime_estimate_error_bounded(self):
        runtimes = synthetic_trace_runtimes(300, seed=1, estimate_error=0.2)
        assert len(runtimes) == 300
        for runtime in runtimes:
            ratio = (
                runtime.context.estimated_cycles / runtime.isolated_cycles
            )
            assert 0.8 <= ratio <= 1.2

    def test_runtime_context_anchored_at_arrival(self):
        trace = make_generator(seed=4).generate_poisson(5)
        runtime = synthetic_runtime(trace.tasks[3], 5000.0)
        assert runtime.context.last_update_cycles == \
            trace.tasks[3].arrival_cycles
        assert runtime.task_id == 3

    def test_default_utilization_is_stable(self):
        """Mean service demand stays below the mean inter-arrival time:
        the default trace regime is contended but stable."""
        runtimes = synthetic_trace_runtimes(2000, seed=6)
        mean_service = sum(r.isolated_cycles for r in runtimes) / len(runtimes)
        assert 0.5 < mean_service / DEFAULT_MEAN_INTERARRIVAL_CYCLES < 1.0
