"""DNN model substrate: layers, graphs, the benchmark zoo, and sequence
profiles for the dynamic-length RNN applications.
"""

from repro.models.graph import Graph, Node
from repro.models.layers import (
    Activation,
    Concat,
    Conv2D,
    Embedding,
    FullyConnected,
    InputSpec,
    Layer,
    LayerKind,
    LSTMCell,
    Pool2D,
    Softmax,
)

__all__ = [
    "Graph",
    "Node",
    "Layer",
    "LayerKind",
    "InputSpec",
    "Conv2D",
    "FullyConnected",
    "LSTMCell",
    "Activation",
    "Pool2D",
    "Softmax",
    "Concat",
    "Embedding",
]
