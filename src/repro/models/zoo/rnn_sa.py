"""RNN-SA: LSTM sentiment analysis (linear input->output relationship).

A token embedding feeds a 2-layer LSTM unrolled over the input sequence;
a single classification FC + softmax reads the final hidden state.  The
time-unrolled recurrence length equals the input sequence length (the
paper's Fig 8b "linear" case), so its network-wide latency is statically
predictable once the input length is known.
"""

from __future__ import annotations

from repro.models.graph import Graph
from repro.models.layers import Embedding, FullyConnected, InputSpec, LSTMCell, Softmax

#: Model dimensions (MLPerf-cloud-style sentiment model).
EMBED_DIM = 512
HIDDEN = 1024
VOCAB = 32000
NUM_LAYERS = 2
NUM_CLASSES = 2


def build_rnn_sa(input_len: int = 20) -> Graph:
    """Build the sentiment model unrolled over ``input_len`` tokens."""
    if input_len <= 0:
        raise ValueError("input_len must be positive")
    graph = Graph("RNN-SA", InputSpec(channels=EMBED_DIM))
    prev = Graph.INPUT
    for step in range(input_len):
        emb = graph.add(
            Embedding(f"embed_t{step}", vocab=VOCAB, dim=EMBED_DIM),
            inputs=[prev] if step == 0 else [prev],
        )
        current = emb.name
        for layer in range(NUM_LAYERS):
            cell = graph.add(
                LSTMCell(f"lstm{layer}_t{step}", hidden=HIDDEN),
                inputs=[current],
            )
            current = cell.name
        prev = current
    graph.add(FullyConnected("classifier", out_features=NUM_CLASSES, fused_activation=None))
    graph.add(Softmax("prob"))
    graph.validate()
    return graph
