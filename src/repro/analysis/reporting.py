"""ASCII table/series formatting for the benchmark harnesses.

Every figure-reproduction bench prints its rows through these helpers so
the regenerated tables look uniform in CI logs and EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Union

Cell = Union[str, int, float]


def _format_cell(value: Cell) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}"
    return str(value)


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[Cell]], title: str = ""
) -> str:
    """Render a fixed-width ASCII table."""
    if not headers:
        raise ValueError("headers must be non-empty")
    rendered = [[_format_cell(cell) for cell in row] for row in rows]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
    widths = [
        max(len(str(header)), *(len(row[i]) for row in rendered)) if rendered
        else len(str(header))
        for i, header in enumerate(headers)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in rendered:
        lines.append(" | ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    name: str, xs: Sequence[Cell], ys: Sequence[Cell]
) -> str:
    """Render one (x, y) series as two aligned rows (figure data dumps)."""
    if len(xs) != len(ys):
        raise ValueError("series lengths differ")
    x_cells = [_format_cell(x) for x in xs]
    y_cells = [_format_cell(y) for y in ys]
    widths = [max(len(a), len(b)) for a, b in zip(x_cells, y_cells)]
    x_line = "  ".join(c.rjust(w) for c, w in zip(x_cells, widths))
    y_line = "  ".join(c.rjust(w) for c, w in zip(y_cells, widths))
    return f"{name}\n  x: {x_line}\n  y: {y_line}"


def format_mapping(title: str, mapping: Dict[str, Cell]) -> str:
    """Render a flat key -> value mapping."""
    width = max(len(k) for k in mapping) if mapping else 0
    lines = [title] if title else []
    for key, value in mapping.items():
        lines.append(f"  {key.ljust(width)} : {_format_cell(value)}")
    return "\n".join(lines)
