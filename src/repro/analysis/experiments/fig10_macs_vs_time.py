"""Fig 10: layer execution time is not proportional to MAC count.

For every GEMM layer of the eight benchmarks (batch 1), plot (MACs,
engine execution time).  Layers that underutilize the systolic array --
depthwise convolutions and small 1x1 reduces -- sit far off the dense
trend, which is the paper's argument for an architecture-aware predictor
instead of a MACs-as-proxy heuristic.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

from repro.analysis.reporting import format_table
from repro.analysis.stats import pearson_correlation
from repro.npu.config import NPUConfig
from repro.sched.prepare import TaskFactory

BENCHMARKS = ("CNN-AN", "CNN-GN", "CNN-VN", "CNN-MN",
              "RNN-SA", "RNN-MT1", "RNN-MT2", "RNN-ASR")

#: Canonical unroll lengths (shared with fig05).
from repro.analysis.experiments.fig05_preemption import _lengths  # noqa: E402


@dataclasses.dataclass(frozen=True)
class LayerPoint:
    """One scatter point of Fig 10."""

    benchmark: str
    layer: str
    macs: int
    execution_us: float
    effective_macs_per_cycle: float


def run_fig10(
    config: Optional[NPUConfig] = None,
    benchmarks: Sequence[str] = BENCHMARKS,
    factory: Optional[TaskFactory] = None,
) -> List[LayerPoint]:
    config = config or NPUConfig()
    factory = factory or TaskFactory(config)
    points: List[LayerPoint] = []
    for benchmark in benchmarks:
        input_len, output_len = _lengths(benchmark)
        profile = factory.execution_profile(benchmark, 1, input_len, output_len)
        for layer in profile.layers:
            if layer.macs == 0:
                continue
            points.append(
                LayerPoint(
                    benchmark=benchmark,
                    layer=layer.name,
                    macs=layer.macs,
                    execution_us=config.cycles_to_us(layer.cycles),
                    effective_macs_per_cycle=layer.macs / layer.cycles,
                )
            )
    return points


def underutilized_points(
    points: Sequence[LayerPoint], config: Optional[NPUConfig] = None,
    threshold: float = 0.1,
) -> List[LayerPoint]:
    """The red-circled region: layers below ``threshold`` of peak MACs/cycle."""
    config = config or NPUConfig()
    peak = config.peak_macs_per_cycle
    return [p for p in points if p.effective_macs_per_cycle < threshold * peak]


def macs_time_correlation(points: Sequence[LayerPoint]) -> float:
    """Correlation between MACs and time -- high overall, but the outliers
    (not the correlation) are what break the MACs-as-proxy heuristic."""
    return pearson_correlation(
        [float(p.macs) for p in points], [p.execution_us for p in points]
    )


def format_fig10(points: Sequence[LayerPoint], top: int = 25) -> str:
    ranked = sorted(points, key=lambda p: p.effective_macs_per_cycle)
    rows = [
        (p.benchmark, p.layer, p.macs, p.execution_us,
         p.effective_macs_per_cycle)
        for p in ranked[:top]
    ]
    table = format_table(
        ("benchmark", "layer", "MACs", "time_us", "MACs/cycle"),
        rows,
        title=(
            "Fig 10: lowest-utilization layers "
            f"(of {len(points)} total; corr={macs_time_correlation(points):.3f})"
        ),
    )
    return table
