"""Micro-benchmarks of the library's hot paths.

Unlike the figure benches (one-shot harness timings), these use
pytest-benchmark's statistical timing: they track the throughput of the
components a downstream user would stress -- compilation, the analytical
predictor, the cycle-stepping validator, and the multi-task simulator.
"""


from repro.core.predictor import LatencyPredictor
from repro.isa.compiler import compile_model
from repro.models.zoo import build_benchmark
from repro.npu.cycle_sim import simulate_gemm
from repro.npu.engine import profile_model
from repro.npu.tiling import GemmShape
from repro.sched.policies import make_policy
from repro.sched.simulator import NPUSimulator, PreemptionMode, SimulationConfig
from repro.workloads.generator import WorkloadGenerator


def test_compile_vggnet(benchmark, config):
    graph = build_benchmark("CNN-VN")
    model = benchmark(compile_model, graph, config, 1)
    assert model.total_macs > 0


def test_profile_googlenet(benchmark, config):
    model = compile_model(build_benchmark("CNN-GN"), config, batch=1)
    profile = benchmark(profile_model, model, config)
    assert profile.total_cycles > 0


def test_predict_mobilenet(benchmark, config):
    model = compile_model(build_benchmark("CNN-MN"), config, batch=1)

    def predict():
        # Fresh predictor per call so the cache does not short-circuit.
        return LatencyPredictor(config).predict_model(model)

    assert benchmark(predict) > 0


def test_unroll_and_compile_seq2seq(benchmark, config):
    def build():
        graph = build_benchmark("RNN-MT1", input_len=30, output_len=33)
        return compile_model(graph, config, batch=1)

    assert benchmark(build).total_macs > 0


def test_cycle_sim_conv_layer(benchmark, config):
    shape = GemmShape(m=256, k=1152, n=12544)
    result = benchmark(simulate_gemm, shape, config)
    assert result.total_cycles > 0


def test_simulate_prema_workload(benchmark, config, factory):
    workload = WorkloadGenerator(seed=77).generate(num_tasks=8)
    simulator = NPUSimulator(
        SimulationConfig(npu=config, mode=PreemptionMode.DYNAMIC),
        make_policy("PREMA"),
    )
    # Warm the compilation caches outside the timed region.
    factory.build_workload(workload)

    def run():
        return simulator.run(factory.build_workload(workload))

    result = benchmark(run)
    assert all(task.is_done for task in result.tasks)
