"""Fig 12: static vs dynamic preemption across the predictor policies.

Four preemption-enabled policies (HPF, TOKEN, SJF, PREMA), each run with
the preemption mechanism statically fixed to CHECKPOINT and with PREMA's
dynamic CHECKPOINT-vs-DRAIN selection (Algorithm 3).  All normalized to
NP-FCFS over the same workload ensemble.  The headline numbers of the
paper -- PREMA dynamic at ~7.8x ANTT, ~19.6x fairness, ~1.4x STP -- come
from this figure.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from repro.analysis.reporting import format_table
from repro.analysis.runner import SchedulerSetup, run_ensemble
from repro.npu.config import NPUConfig
from repro.sched.metrics import improvement_over_baseline
from repro.sched.prepare import TaskFactory
from repro.sched.simulator import PreemptionMode
from repro.workloads.specs import WorkloadSpec

POLICIES = ("HPF", "TOKEN", "SJF", "PREMA")
VARIANTS = ("Static", "Dynamic")


@dataclasses.dataclass(frozen=True)
class PreemptiveRow:
    """One (variant, policy) evaluation point of Fig 12."""

    variant: str
    policy: str
    antt_improvement: float
    fairness_improvement: float
    stp_improvement: float
    preemptions: int
    drains: int


def run_fig12(
    workloads: Sequence[WorkloadSpec],
    config: Optional[NPUConfig] = None,
    factory: Optional[TaskFactory] = None,
    mechanism: str = "CHECKPOINT",
) -> List[PreemptiveRow]:
    config = config or NPUConfig()
    factory = factory or TaskFactory(config)
    setups = [SchedulerSetup("NP-FCFS", "FCFS", PreemptionMode.NP)]
    for policy in POLICIES:
        setups.append(
            SchedulerSetup(
                f"Static-{policy}", policy, PreemptionMode.STATIC, mechanism
            )
        )
        setups.append(
            SchedulerSetup(
                f"Dynamic-{policy}", policy, PreemptionMode.DYNAMIC, mechanism
            )
        )
    outcomes = run_ensemble(setups, workloads, factory=factory, npu=config)
    baseline = outcomes["NP-FCFS"].metrics
    rows: List[PreemptiveRow] = []
    for variant in VARIANTS:
        for policy in POLICIES:
            outcome = outcomes[f"{variant}-{policy}"]
            improvement = improvement_over_baseline(outcome.metrics, baseline)
            rows.append(
                PreemptiveRow(
                    variant=variant,
                    policy=policy,
                    antt_improvement=improvement["antt"],
                    fairness_improvement=improvement["fairness"],
                    stp_improvement=improvement["stp"],
                    preemptions=sum(
                        r.preemption_count for r in outcome.results
                    ),
                    drains=sum(r.drain_decisions for r in outcome.results),
                )
            )
    return rows


def headline(rows: Sequence[PreemptiveRow]) -> Dict[str, float]:
    """The Dynamic-PREMA headline numbers (paper: 7.8x / 19.6x / 1.4x)."""
    for row in rows:
        if row.variant == "Dynamic" and row.policy == "PREMA":
            return {
                "antt_improvement": row.antt_improvement,
                "fairness_improvement": row.fairness_improvement,
                "stp_improvement": row.stp_improvement,
            }
    raise ValueError("Dynamic-PREMA row missing")


def format_fig12(rows: Sequence[PreemptiveRow]) -> str:
    return format_table(
        ("variant", "policy", "ANTT_impr", "fairness_impr", "STP_impr",
         "preemptions", "drains"),
        [
            (r.variant, r.policy, r.antt_improvement, r.fairness_improvement,
             r.stp_improvement, r.preemptions, r.drains)
            for r in rows
        ],
        title="Fig 12: preemptive schedulers vs NP-FCFS (CHECKPOINT)",
    )
