"""Memory subsystem model: fixed bandwidth, fixed latency, DMA transfers.

Following the paper's methodology (Sec III), the memory system is modeled
with a fixed aggregate bandwidth and a fixed access latency rather than a
cycle-level DRAM simulator: DNN dataflow is deterministic and exhibits high
locality, so row/bank dynamics are second-order for this study.
"""

from __future__ import annotations

import dataclasses

from repro.npu.config import NPUConfig


@dataclasses.dataclass(frozen=True)
class MemorySystem:
    """Fixed bandwidth/latency DRAM + DMA engine.

    One instance is shared by the execution engine (LOAD_TILE/STORE_TILE
    streams) and the preemption module (checkpoint/restore DMA).
    """

    config: NPUConfig

    @property
    def bytes_per_cycle(self) -> float:
        return self.config.bandwidth_bytes_per_cycle

    @property
    def bytes_per_channel_per_cycle(self) -> float:
        return self.bytes_per_cycle / self.config.memory_channels

    def transfer_cycles(self, num_bytes: float) -> float:
        """Cycles to move ``num_bytes`` over the full-width DMA engine.

        Zero-byte transfers cost nothing (no latency) so callers can pass
        checkpoint sizes of mechanisms that do not checkpoint (e.g. KILL)
        without special-casing.
        """
        if num_bytes < 0:
            raise ValueError("num_bytes must be >= 0")
        if num_bytes == 0:
            return 0.0
        return num_bytes / self.bytes_per_cycle + self.config.memory_latency_cycles

    def transfer_us(self, num_bytes: float) -> float:
        """Transfer time in microseconds (reporting convenience)."""
        return self.config.cycles_to_us(self.transfer_cycles(num_bytes))

    def streaming_cycles(self, num_bytes: float) -> float:
        """Cycles for a steady-state stream (latency already hidden)."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be >= 0")
        return num_bytes / self.bytes_per_cycle
