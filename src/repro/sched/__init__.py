"""Multi-task scheduling on the preemptible NPU.

- :mod:`repro.sched.task` -- per-task runtime state (progress, restores).
- :mod:`repro.sched.policies` -- FCFS/RRB/HPF/TOKEN/SJF/PREMA policies.
- :mod:`repro.sched.simulator` -- the event-driven multi-task simulator.
- :mod:`repro.sched.metrics` -- ANTT/STP/fairness/SLA/tail-latency metrics.
- :mod:`repro.sched.timeline` -- execution trace records (Fig 2 style).
"""

from repro.sched.metrics import WorkloadMetrics, compute_metrics
from repro.sched.policies import POLICY_NAMES, make_policy
from repro.sched.simulator import NPUSimulator, PreemptionMode, SimulationConfig
from repro.sched.task import TaskRuntime

__all__ = [
    "TaskRuntime",
    "POLICY_NAMES",
    "make_policy",
    "NPUSimulator",
    "SimulationConfig",
    "PreemptionMode",
    "WorkloadMetrics",
    "compute_metrics",
]
