"""Hot-path self-profiling: wall-time attribution per event kind.

The cluster's control-plane methods (route, steal, migrate, admission,
index maintenance, churn handling) time themselves into a
:class:`HotPathProfiler` when one is attached, so a throughput
regression in ``benchmarks/bench_hotpath.py`` arrives with its own
diagnosis: which phase of the loop got slower, by how much, over how
many calls.

Cost model: when no profiler is attached each instrumented site costs
one ``is None`` test; when attached, two ``time.perf_counter_ns()``
calls and one dict update per section -- tens of nanoseconds, no
allocation after the first call per section name.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict


class HotPathProfiler:
    """Accumulates wall-clock nanoseconds and call counts per section."""

    __slots__ = ("nanos", "counts")

    def __init__(self) -> None:
        self.nanos: Dict[str, int] = {}
        self.counts: Dict[str, int] = {}

    def add(self, section: str, nanos: int) -> None:
        """Attribute ``nanos`` of wall time to ``section`` (O(1))."""
        self.nanos[section] = self.nanos.get(section, 0) + nanos
        self.counts[section] = self.counts.get(section, 0) + 1

    @contextmanager
    def section(self, name: str):
        """Convenience context manager for cold call sites.

        Hot paths inline the two ``perf_counter_ns()`` calls instead --
        a ``with`` block costs an object and two method dispatches.
        """
        start = time.perf_counter_ns()
        try:
            yield
        finally:
            self.add(name, time.perf_counter_ns() - start)

    def merge(self, other: "HotPathProfiler") -> None:
        for section, nanos in other.nanos.items():
            self.nanos[section] = self.nanos.get(section, 0) + nanos
        for section, count in other.counts.items():
            self.counts[section] = self.counts.get(section, 0) + count

    def report(self) -> Dict[str, Dict[str, float]]:
        """Per-section totals: calls, total ms, mean microseconds."""
        out: Dict[str, Dict[str, float]] = {}
        for section, nanos in self.nanos.items():
            calls = self.counts[section]
            out[section] = {
                "calls": calls,
                "total_ms": nanos / 1e6,
                "mean_us": nanos / calls / 1e3 if calls else 0.0,
            }
        return out

    def render(self) -> str:
        """ASCII table, most expensive section first."""
        rows = sorted(
            self.report().items(),
            key=lambda item: item[1]["total_ms"],
            reverse=True,
        )
        lines = [
            f"{'section':16s} {'calls':>10s} {'total ms':>10s} {'mean us':>9s}"
        ]
        for section, stats in rows:
            lines.append(
                f"{section:16s} {int(stats['calls']):>10d} "
                f"{stats['total_ms']:>10.2f} {stats['mean_us']:>9.2f}"
            )
        return "\n".join(lines)


__all__ = ["HotPathProfiler"]
