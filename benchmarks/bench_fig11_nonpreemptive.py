"""Regenerates paper Fig 11: six non-preemptive schedulers vs NP-FCFS."""

from repro.analysis.experiments.fig11_nonpreemptive import (
    format_fig11,
    run_fig11,
)


def test_fig11_nonpreemptive(benchmark, config, factory, workloads, emit):
    rows = benchmark.pedantic(
        run_fig11,
        kwargs=dict(workloads=workloads, config=config, factory=factory),
        rounds=1,
        iterations=1,
    )
    emit("fig11_nonpreemptive", format_fig11(rows))
    by_policy = {row.policy: row for row in rows}
    # Predictor-based policies (TOKEN/SJF/PREMA) beat the naive three on
    # ANTT; SJF leads raw ANTT; PREMA leads fairness (Sec VI-A).
    naive_best = max(
        by_policy[p].antt_improvement for p in ("FCFS", "RRB", "HPF")
    )
    assert by_policy["SJF"].antt_improvement > naive_best
    assert by_policy["PREMA"].antt_improvement > naive_best
    assert by_policy["PREMA"].fairness_improvement == max(
        row.fairness_improvement for row in rows
    )
    # PREMA reaches the bulk of latency-optimal SJF's ANTT (paper: 92%).
    assert by_policy["PREMA"].antt_improvement > \
        0.6 * by_policy["SJF"].antt_improvement
