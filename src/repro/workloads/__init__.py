"""Multi-tasked DNN workload construction (paper Sec III)."""

from repro.workloads.generator import WorkloadGenerator
from repro.workloads.specs import TaskSpec, WorkloadSpec

__all__ = ["TaskSpec", "WorkloadSpec", "WorkloadGenerator"]
