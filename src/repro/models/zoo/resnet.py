"""ResNet-50: bottleneck residual blocks (used only for the Fig 1
co-location motivation experiment, matching the paper's GoogLeNet+ResNet
pair on the V100).

Residual adds are element-wise vector work; we model them with a
parameter-free Activation node reading the block output (the skip path's
traffic is second-order for the timing shape Fig 1 needs).
"""

from __future__ import annotations

from repro.models.graph import Graph
from repro.models.layers import Activation, Conv2D, FullyConnected, InputSpec, Pool2D, Softmax

#: (stage name, bottleneck width, output channels, block count, first stride)
_STAGE_PLAN = (
    ("s2", 64, 256, 3, 1),
    ("s3", 128, 512, 4, 2),
    ("s4", 256, 1024, 6, 2),
    ("s5", 512, 2048, 3, 2),
)


def _add_bottleneck(
    graph: Graph, name: str, width: int, out_channels: int, stride: int, input_name: str
) -> str:
    graph.add(
        Conv2D(f"{name}_a", out_channels=width, kernel=1, stride=stride),
        inputs=[input_name],
    )
    graph.add(Conv2D(f"{name}_b", out_channels=width, kernel=3, padding=1))
    graph.add(Conv2D(f"{name}_c", out_channels=out_channels, kernel=1, fused_activation=None))
    node = graph.add(Activation(f"{name}_add", function="relu"))
    return node.name


def build_resnet50() -> Graph:
    graph = Graph("RESNET", InputSpec(channels=3, height=224, width=224))
    graph.add(Conv2D("conv1", out_channels=64, kernel=7, stride=2, padding=3))
    graph.add(Pool2D("pool1", kernel=3, stride=2, padding=1))
    current = "pool1"
    for stage, width, out_channels, blocks, first_stride in _STAGE_PLAN:
        for block in range(blocks):
            stride = first_stride if block == 0 else 1
            current = _add_bottleneck(
                graph, f"{stage}_b{block}", width, out_channels, stride, current
            )
    graph.add(Pool2D("avgpool", kernel=7, stride=1, mode="avg"), inputs=[current])
    graph.add(FullyConnected("fc", out_features=1000, fused_activation=None))
    graph.add(Softmax("prob"))
    graph.validate()
    return graph
