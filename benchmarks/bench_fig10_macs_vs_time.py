"""Regenerates paper Fig 10: MACs vs execution time scatter."""

from repro.analysis.experiments.fig10_macs_vs_time import (
    format_fig10,
    run_fig10,
    underutilized_points,
)


def test_fig10_macs_vs_time(benchmark, config, factory, emit):
    points = benchmark.pedantic(
        run_fig10, kwargs=dict(config=config, factory=factory),
        rounds=1, iterations=1,
    )
    emit("fig10_macs_vs_time", format_fig10(points))
    # The red-circled region exists: layers whose effective throughput is
    # far below peak (depthwise convs, 1x1 reduces, batch-1 GEMV).
    outliers = underutilized_points(points, config)
    assert outliers
    assert any("dw" in p.layer for p in outliers)
    # And MAC count alone cannot rank layers by time (Sec V-B's argument
    # for an architecture-aware predictor).
    ranked_by_macs = sorted(points, key=lambda p: p.macs)
    assert any(
        a.execution_us > b.execution_us
        for a, b in zip(ranked_by_macs, ranked_by_macs[1:])
    )
