"""Command-line interface: ``python -m repro <command>``.

Three subcommands mirror the library's main entry points:

``simulate``
    Run one random multi-tasked workload under a scheduler and print the
    Eq 1-2 metrics plus a timeline.
``predict``
    Print Algorithm-1 latency estimates vs ground truth for a benchmark.
``zoo``
    List the benchmark models with their footprints.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.core.tokens import Priority
from repro.npu.config import NPUConfig
from repro.sched.metrics import compute_metrics
from repro.sched.policies import POLICY_NAMES, make_policy
from repro.sched.prepare import TaskFactory
from repro.sched.simulator import NPUSimulator, PreemptionMode, SimulationConfig
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.specs import TaskSpec


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PREMA reproduction: preemptible-NPU multi-task scheduling",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    simulate = sub.add_parser("simulate", help="run one random workload")
    simulate.add_argument("--policy", choices=POLICY_NAMES, default="PREMA")
    simulate.add_argument(
        "--mode", choices=[m.value for m in PreemptionMode], default="dynamic"
    )
    simulate.add_argument(
        "--mechanism", choices=["CHECKPOINT", "KILL"], default="CHECKPOINT"
    )
    simulate.add_argument("--tasks", type=int, default=8)
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument("--timeline", action="store_true")

    predict = sub.add_parser("predict", help="estimate a benchmark's latency")
    predict.add_argument("benchmark")
    predict.add_argument("--batch", type=int, default=1)
    predict.add_argument("--input-len", type=int, default=30)
    predict.add_argument("--output-len", type=int, default=30)

    sub.add_parser("zoo", help="list the benchmark models")
    return parser


def _cmd_simulate(args: argparse.Namespace) -> int:
    config = NPUConfig()
    factory = TaskFactory(config)
    workload = WorkloadGenerator(seed=args.seed).generate(num_tasks=args.tasks)
    simulator = NPUSimulator(
        SimulationConfig(
            npu=config,
            mode=PreemptionMode(args.mode),
            mechanism=args.mechanism,
        ),
        make_policy(args.policy),
    )
    tasks = factory.build_workload(workload)
    result = simulator.run(tasks)
    metrics = compute_metrics(result.tasks)
    print(
        f"{args.policy} ({args.mode}/{args.mechanism}) on "
        f"{args.tasks} tasks [seed {args.seed}]"
    )
    print(
        f"  ANTT={metrics.antt:.3f}  STP={metrics.stp:.3f}  "
        f"fairness={metrics.fairness:.4f}"
    )
    print(
        f"  makespan={config.cycles_to_ms(result.makespan_cycles):.2f} ms  "
        f"preemptions={result.preemption_count}  "
        f"drains={result.drain_decisions}"
    )
    if args.timeline:
        labels = {spec.task_id: spec.benchmark for spec in workload.tasks}
        print(result.timeline.render_ascii(width=72, label_by_task=labels))
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    config = NPUConfig()
    factory = TaskFactory(config)
    from repro.models.zoo import BENCHMARKS, is_rnn

    if args.benchmark not in BENCHMARKS + ("RESNET",):
        print(f"unknown benchmark {args.benchmark!r}; try: "
              f"{', '.join(BENCHMARKS)}", file=sys.stderr)
        return 2
    lengths = {}
    if is_rnn(args.benchmark):
        lengths = dict(
            input_len=args.input_len, actual_output_len=args.output_len
        )
    spec = TaskSpec(
        task_id=0, benchmark=args.benchmark, batch=args.batch,
        priority=Priority.MEDIUM, arrival_cycles=0.0, **lengths,
    )
    actual = factory.isolated_cycles(spec)
    estimated = factory.estimated_cycles(spec)
    print(f"{args.benchmark} b{args.batch:02d}"
          + (f" in={args.input_len} out={args.output_len}" if lengths else ""))
    print(f"  ground truth : {config.cycles_to_ms(actual):9.3f} ms")
    print(f"  Algorithm 1  : {config.cycles_to_ms(estimated):9.3f} ms "
          f"({(estimated - actual) / actual:+.1%})")
    return 0


def _cmd_zoo(_args: argparse.Namespace) -> int:
    from repro.models.zoo import BENCHMARKS, build_benchmark, is_rnn

    print(f"{'benchmark':10s} {'kind':5s} {'layers':>7s} {'params(M)':>10s} "
          f"{'GMACs(b1)':>10s}")
    for name in BENCHMARKS:
        graph = build_benchmark(name, input_len=20, output_len=20)
        kind = "RNN" if is_rnn(name) else "CNN"
        print(
            f"{name:10s} {kind:5s} {len(graph):7d} "
            f"{graph.total_weight_elems() / 1e6:10.1f} "
            f"{graph.total_macs(1) / 1e9:10.2f}"
        )
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "simulate": _cmd_simulate,
        "predict": _cmd_predict,
        "zoo": _cmd_zoo,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
