"""Analysis utilities and the per-figure experiment harnesses."""

from repro.analysis.reporting import format_table
from repro.analysis.stats import geometric_mean, pearson_correlation

__all__ = ["format_table", "geometric_mean", "pearson_correlation"]
