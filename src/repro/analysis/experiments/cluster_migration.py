"""Extension experiment: checkpoint migration over a modeled interconnect.

Work stealing (PR 1) can only move *never-dispatched* tasks: once a task
has run for a single cycle its state is pinned to its device, so a
preempted high-priority victim stuck behind a mispredicted hog waits out
the whole backlog even while a sibling NPU idles.
``RoutingPolicy.PREEMPTIVE_MIGRATION`` ships the victim's checkpoint
(the Sec-IV CONV/FC activations or RNN cell state, sized by the
preemption model) over a modeled interconnect and resumes it elsewhere,
with cluster-global token fairness (:class:`ClusterTokenLedger`) keeping
the Algorithm-2 candidate threshold consistent across devices.

The harness measures the regime where that matters: Poisson open
arrivals at ~85% per-device utilization with a large (60%) estimate
error -- the mispredicted-hog regime where online routing keeps feeding
a device whose running task is far longer than predicted.  We compare
online dispatch, work stealing, and preemptive migration on a
bandwidth-constrained PCIe-class fabric, plus preemptive migration over
faster fabrics to expose the bandwidth sensitivity.

Headline claim (pinned by ``tests/test_cluster_migration.py``):
preemptive migration beats work stealing on **high-priority p99
turnaround** on the bandwidth-constrained 4-NPU cluster, at equal or
better ANTT, while reporting how many bytes crossed the fabric and how
long migrations spent in flight.
"""

from __future__ import annotations

import copy
import dataclasses
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.reporting import format_table
from repro.npu.config import NPUConfig
from repro.sched.cluster import ClusterScheduler, RoutingPolicy
from repro.sched.interconnect import InterconnectConfig
from repro.sched.metrics import compute_cluster_metrics
from repro.sched.simulator import PreemptionMode, SimulationConfig
from repro.workloads.trace import (
    DEFAULT_MEAN_INTERARRIVAL_CYCLES,
    synthetic_trace_runtimes,
)

#: Trace regime: per-device ~85% utilization on 4 devices, 60% estimate
#: error (the Algorithm-1 information asymmetry, exaggerated into the
#: hog regime that strands preempted victims behind mispredictions).
NUM_DEVICES = 4
NUM_TASKS = 120
ESTIMATE_ERROR = 0.6
FULL_SEEDS: Tuple[int, ...] = tuple(range(3, 19))
#: Quick mode (CI / tier-1): a seed subset that keeps the headline
#: ordering while running in a couple of seconds.
QUICK_SEEDS: Tuple[int, ...] = (8, 9, 10, 11)


@dataclasses.dataclass(frozen=True)
class MigrationRow:
    """One (routing, interconnect) measurement, averaged over seeds."""

    routing: str
    interconnect: str
    hp_p99_ms: float
    antt: float
    makespan_ms: float
    migrations: float
    checkpoint_migrations: float
    migrated_mb: float
    mean_migration_latency_us: float
    post_migration_antt: float


def _combos(config: NPUConfig) -> List[Tuple[RoutingPolicy, InterconnectConfig]]:
    frequency = config.frequency_hz
    pcie3 = InterconnectConfig.pcie_gen3(frequency)
    return [
        (RoutingPolicy.ONLINE_PREDICTED, pcie3),
        (RoutingPolicy.WORK_STEALING, pcie3),
        (RoutingPolicy.PREEMPTIVE_MIGRATION, pcie3),
        (RoutingPolicy.PREEMPTIVE_MIGRATION, InterconnectConfig.nvlink(frequency)),
        (RoutingPolicy.PREEMPTIVE_MIGRATION, InterconnectConfig.infinite()),
    ]


def run_cluster_migration(
    config: Optional[NPUConfig] = None,
    num_devices: int = NUM_DEVICES,
    num_tasks: int = NUM_TASKS,
    seeds: Optional[Sequence[int]] = None,
    quick: bool = False,
) -> List[MigrationRow]:
    config = config or NPUConfig()
    if seeds is None:
        seeds = QUICK_SEEDS if quick else FULL_SEEDS
    traces = [
        synthetic_trace_runtimes(
            num_tasks,
            seed=seed,
            mean_interarrival_cycles=(
                DEFAULT_MEAN_INTERARRIVAL_CYCLES / num_devices
            ),
            estimate_error=ESTIMATE_ERROR,
        )
        for seed in seeds
    ]
    rows: List[MigrationRow] = []
    for routing, fabric in _combos(config):
        hp_p99, antts, makespans = [], [], []
        moves, checkpoint_moves, mbytes, latencies, post_antts = (
            [], [], [], [], []
        )
        for trace in traces:
            scheduler = ClusterScheduler(
                num_devices=num_devices,
                simulation_config=SimulationConfig(
                    npu=config, mode=PreemptionMode.DYNAMIC
                ),
                policy_name="PREMA",
                routing=routing,
                interconnect=fabric,
            )
            # Fresh runtimes per run: the scheduler mutates them.
            result = scheduler.run([copy.deepcopy(t) for t in trace])
            metrics = compute_cluster_metrics(result)
            hp_p99.append(metrics.p99_high_priority_turnaround_cycles)
            antts.append(metrics.antt)
            makespans.append(config.cycles_to_ms(metrics.makespan_cycles))
            moves.append(metrics.migration_count)
            checkpoint_moves.append(metrics.checkpoint_migration_count)
            mbytes.append(metrics.migration_bytes_total / 1e6)
            latencies.append(
                config.cycles_to_us(metrics.mean_migration_latency_cycles)
            )
            post_antts.append(metrics.post_migration_antt)
        rows.append(
            MigrationRow(
                routing=routing.value,
                interconnect=fabric.name,
                hp_p99_ms=config.cycles_to_ms(float(np.mean(hp_p99))),
                antt=float(np.mean(antts)),
                makespan_ms=float(np.mean(makespans)),
                migrations=float(np.mean(moves)),
                checkpoint_migrations=float(np.mean(checkpoint_moves)),
                migrated_mb=float(np.mean(mbytes)),
                mean_migration_latency_us=float(np.mean(latencies)),
                post_migration_antt=float(np.mean(post_antts)),
            )
        )
    return rows


def format_cluster_migration(rows: Sequence[MigrationRow]) -> str:
    return format_table(
        ("routing", "fabric", "hp_p99_ms", "ANTT", "makespan_ms",
         "moves", "ckpt_moves", "MB_moved", "move_lat_us", "migrated_ANTT"),
        [
            (r.routing, r.interconnect, r.hp_p99_ms, r.antt, r.makespan_ms,
             r.migrations, r.checkpoint_migrations, r.migrated_mb,
             r.mean_migration_latency_us, r.post_migration_antt)
            for r in rows
        ],
        title=(
            "Extension: checkpoint migration of preempted tasks over a "
            "modeled interconnect (4 NPUs, hog regime)"
        ),
    )
