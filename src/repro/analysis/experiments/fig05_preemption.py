"""Fig 5: preemption latency and preempting-task wait time per mechanism.

Methodology (Sec IV-D): a two-task workload where a low-priority task runs
first and a randomly chosen high-priority task preempts it under P-HPF at
a uniformly random point of the low-priority task's execution.  The x-axis
is the *preempted* task and its batch size; reported values average over
the random preemption points and preempting tasks.

- Fig 5a: preemption latency = cycles to checkpoint the execution context
  (zero for KILL and DRAIN).
- Fig 5b: the preempting task's wait time from request to service
  (boundary wait + preemption latency; the whole remaining network for
  DRAIN).
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.reporting import format_table
from repro.npu.config import NPUConfig
from repro.npu.preemption import mechanism_by_name
from repro.sched.prepare import TaskFactory

MECHANISMS = ("KILL", "CHECKPOINT", "DRAIN")
BATCHES = (1, 4, 16)

#: Canonical sequence lengths used when a benchmark needs an unroll.
RNN_LENGTHS: Dict[str, Tuple[int, int]] = {
    "RNN-SA": (30, 30),
    "RNN-MT1": (30, 33),
    "RNN-MT2": (30, 22),
    "RNN-ASR": (60, 27),
}


@dataclasses.dataclass(frozen=True)
class PreemptionRow:
    """One (preempted benchmark, batch, mechanism) measurement."""

    benchmark: str
    batch: int
    mechanism: str
    preemption_latency_us: float
    wait_time_us: float


def _lengths(benchmark: str) -> Tuple[Optional[int], Optional[int]]:
    return RNN_LENGTHS.get(benchmark, (None, None))


def run_fig05(
    config: Optional[NPUConfig] = None,
    benchmarks: Sequence[str] = tuple(
        ["CNN-AN", "CNN-GN", "CNN-VN", "CNN-MN"] + list(RNN_LENGTHS)
    ),
    batches: Sequence[int] = BATCHES,
    samples: int = 25,
    seed: int = 5,
    factory: Optional[TaskFactory] = None,
) -> List[PreemptionRow]:
    """Measure Fig 5's two panels for every (benchmark, batch, mechanism)."""
    config = config or NPUConfig()
    factory = factory or TaskFactory(config)
    rng = random.Random(seed)
    mechanisms = {name: mechanism_by_name(name, config) for name in MECHANISMS}
    rows: List[PreemptionRow] = []
    for benchmark in benchmarks:
        input_len, output_len = _lengths(benchmark)
        for batch in batches:
            profile = factory.execution_profile(
                benchmark, batch, input_len, output_len
            )
            offsets = [
                rng.uniform(0.0, profile.total_cycles) for _ in range(samples)
            ]
            for name, mechanism in mechanisms.items():
                latencies = []
                waits = []
                for offset in offsets:
                    outcome = mechanism.preempt(profile, offset)
                    latencies.append(outcome.preemption_latency)
                    boundary_wait = outcome.boundary_offset - offset
                    waits.append(boundary_wait + outcome.preemption_latency)
                rows.append(
                    PreemptionRow(
                        benchmark=benchmark,
                        batch=batch,
                        mechanism=name,
                        preemption_latency_us=config.cycles_to_us(
                            sum(latencies) / len(latencies)
                        ),
                        wait_time_us=config.cycles_to_us(sum(waits) / len(waits)),
                    )
                )
    return rows


def summarize(rows: Sequence[PreemptionRow]) -> Dict[str, Dict[str, float]]:
    """Per-mechanism averages across benchmarks/batches (the Avg cluster)."""
    summary: Dict[str, Dict[str, float]] = {}
    for name in MECHANISMS:
        selected = [row for row in rows if row.mechanism == name]
        summary[name] = {
            "preemption_latency_us": sum(
                r.preemption_latency_us for r in selected
            ) / len(selected),
            "wait_time_us": sum(r.wait_time_us for r in selected) / len(selected),
        }
    return summary


def format_fig05(rows: Sequence[PreemptionRow]) -> str:
    table_rows = [
        (
            row.benchmark,
            f"b{row.batch:02d}",
            row.mechanism,
            row.preemption_latency_us,
            row.wait_time_us,
        )
        for row in rows
    ]
    summary = summarize(rows)
    for name, values in summary.items():
        table_rows.append(
            (
                "Avg",
                "-",
                name,
                values["preemption_latency_us"],
                values["wait_time_us"],
            )
        )
    return format_table(
        ("preempted", "batch", "mechanism", "preempt_lat_us", "wait_us"),
        table_rows,
        title="Fig 5: preemption latency (a) and preempting-task wait time (b)",
    )
