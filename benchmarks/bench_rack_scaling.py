"""Rack-scale bench: two-tier routing cost and cross-rack traffic.

Headline: 4 racks x 256 devices (the wide-rack shape) plus the
256 -> 1024 device growth gate -- per-event cost under the two-tier
frontend may not double when the fleet quadruples at fixed per-device
load.  The sweep's JSON lands in
``benchmarks/results/BENCH_rack_scaling.json`` (uploaded as a CI
artifact by the bench-smoke job), and the traffic sweep pins the
fabric story: a thinner uplink is a busier uplink for comparable
traffic -- the cost cliff the locality threshold prices.  (The
threshold *gate* itself -- an infinite threshold keeps every move
rack-local -- is pinned in tests/test_rack.py.)
"""

import json
import pathlib

from repro.analysis.experiments.rack_scaling import (
    format_rack_scaling,
    format_rack_traffic,
    run_rack_scaling,
    run_rack_traffic,
)

RESULTS_PATH = (
    pathlib.Path(__file__).parent / "results" / "BENCH_rack_scaling.json"
)

#: 1024 devices may cost at most this much more per event than 256
#: devices at the same per-device load (the tier-1 gate in
#: tests/test_rack.py uses the same bound).
MAX_SCALE_GROWTH = 2.0


def test_rack_scaling(benchmark, emit):
    rows = benchmark.pedantic(
        run_rack_scaling,
        rounds=1,
        iterations=1,
    )
    traffic = run_rack_traffic()
    emit(
        "rack_scaling",
        format_rack_scaling(rows) + "\n\n" + format_rack_traffic(traffic),
    )
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(
        json.dumps(
            {
                "cost": [row.__dict__ for row in rows],
                "traffic": [row.__dict__ for row in traffic],
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
    by_shape = {(r.num_racks, r.devices_per_rack): r for r in rows}
    # The growth gate: 32x32 (1024 devices) vs 8x32 (256 devices).
    assert by_shape[(32, 32)].us_per_event <= \
        MAX_SCALE_GROWTH * by_shape[(8, 32)].us_per_event
    # The wide-rack headline shape completed and did real work.
    headline = by_shape[(4, 256)]
    assert headline.num_devices == 1024
    assert headline.events > headline.tasks
    # A thinner uplink is a busier uplink for comparable traffic: the
    # cost cliff the locality threshold prices into cross-rack moves.
    by_ratio = {r.oversubscription: r for r in traffic}
    assert by_ratio[16.0].mean_uplink_utilization > \
        by_ratio[1.0].mean_uplink_utilization
    # Migration still pays under every fabric: work keeps moving.
    assert all(r.migrations > 0 for r in traffic)
    assert all(r.cross_rack_migration_bytes > 0 for r in traffic)
