"""Render a saved observability trace as a markdown/ASCII report.

Reads a Chrome-trace JSON artifact written by
:meth:`repro.obs.trace.Tracer.write` (see ``docs/observability.md``)
and prints a digest a human can read without opening Perfetto: event
counts by kind, per-track span occupancy (devices, links, control
plane), and a summary of every sampled counter series.

Usage::

    PYTHONPATH=src python -m repro.analysis.obs_report trace.json
    PYTHONPATH=src python -m repro.analysis.obs_report trace.json --format ascii

The trace is schema-validated first, so a malformed artifact fails
loudly rather than rendering a partial report.
"""

from __future__ import annotations

import argparse
from typing import Dict, List, Sequence, Tuple

from repro.analysis.reporting import format_table
from repro.obs.trace import load_chrome_trace, validate_chrome_trace

Row = Sequence[object]


def _markdown_table(headers: Sequence[str], rows: Sequence[Row]) -> str:
    lines = ["| " + " | ".join(str(h) for h in headers) + " |"]
    lines.append("|" + "|".join(" --- " for _ in headers) + "|")
    for row in rows:
        cells = [
            f"{cell:.3f}" if isinstance(cell, float) else str(cell)
            for cell in row
        ]
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def _table(
    headers: Sequence[str], rows: Sequence[Row], title: str, fmt: str
) -> str:
    if fmt == "markdown":
        return f"### {title}\n\n" + _markdown_table(headers, rows)
    return format_table(headers, [list(r) for r in rows], title=title)


def _track_names(events: List[dict]) -> Dict[Tuple[int, int], str]:
    """(pid, tid) -> "process / thread" labels from the M records."""
    processes: Dict[int, str] = {}
    threads: Dict[Tuple[int, int], str] = {}
    for event in events:
        if event.get("ph") != "M":
            continue
        if event["name"] == "process_name":
            processes[event["pid"]] = event["args"]["name"]
        elif event["name"] == "thread_name":
            threads[(event["pid"], event["tid"])] = event["args"]["name"]
    return {
        key: f"{processes.get(key[0], f'pid {key[0]}')} / {name}"
        for key, name in threads.items()
    }


def render_report(payload: Dict[str, object], fmt: str = "markdown") -> str:
    """Build the full report for a validated Chrome-trace payload."""
    counts = validate_chrome_trace(payload)
    events: List[dict] = payload["traceEvents"]  # type: ignore[assignment]
    other = payload.get("otherData", {})
    sections: List[str] = []

    title = "# Observability trace report" if fmt == "markdown" else (
        "observability trace report"
    )
    header = [
        title,
        "",
        f"- events: {counts['X']} spans, {counts['i']} instants, "
        f"{counts['C']} counter points, {counts['M']} metadata records",
        f"- clock: {other.get('clock', 'unknown')}",
        f"- devices: {other.get('num_devices', 'unknown')}",
        f"- dropped events: {other.get('dropped_events', 0)}",
    ]
    sections.append("\n".join(header))

    # --- event counts by kind -----------------------------------------
    by_kind: Dict[str, List[int]] = {}
    for event in events:
        if event.get("ph") in ("X", "i"):
            entry = by_kind.setdefault(event["cat"], [0, 0])
            entry[0 if event["ph"] == "X" else 1] += 1
    kind_rows = [
        [kind, spans, instants]
        for kind, (spans, instants) in sorted(by_kind.items())
    ]
    if kind_rows:
        sections.append(
            _table(["kind", "spans", "instants"], kind_rows,
                   "events by kind", fmt)
        )

    # --- per-track occupancy ------------------------------------------
    names = _track_names(events)
    busy: Dict[Tuple[int, int], float] = {}
    span_count: Dict[Tuple[int, int], int] = {}
    instant_count: Dict[Tuple[int, int], int] = {}
    bounds: Dict[Tuple[int, int], Tuple[float, float]] = {}
    for event in events:
        phase = event.get("ph")
        if phase not in ("X", "i"):
            continue
        track = (event["pid"], event["tid"])
        ts = event["ts"]
        end = ts + event.get("dur", 0.0)
        lo, hi = bounds.get(track, (ts, end))
        bounds[track] = (min(lo, ts), max(hi, end))
        if phase == "X":
            busy[track] = busy.get(track, 0.0) + event["dur"]
            span_count[track] = span_count.get(track, 0) + 1
        else:
            instant_count[track] = instant_count.get(track, 0) + 1
    track_rows = []
    for track in sorted(bounds):
        lo, hi = bounds[track]
        span = max(hi - lo, 1e-12)
        occupied = busy.get(track, 0.0)
        track_rows.append(
            [
                names.get(track, str(track)),
                span_count.get(track, 0),
                instant_count.get(track, 0),
                occupied,
                100.0 * occupied / span,
            ]
        )
    if track_rows:
        sections.append(
            _table(
                ["track", "spans", "instants", "busy cycles", "busy %"],
                track_rows, "track occupancy", fmt,
            )
        )

    # --- counter series ------------------------------------------------
    series: Dict[str, List[float]] = {}
    for event in events:
        if event.get("ph") == "C":
            series.setdefault(event["name"], []).append(
                float(event["args"]["value"])
            )
    counter_rows = []
    for name in sorted(series):
        values = series[name]
        counter_rows.append(
            [
                name,
                len(values),
                min(values),
                max(values),
                sum(values) / len(values),
                values[-1],
            ]
        )
    if counter_rows:
        sections.append(
            _table(
                ["series", "points", "min", "max", "mean", "last"],
                counter_rows, "counter series", fmt,
            )
        )

    return "\n\n".join(sections) + "\n"


def main(argv: Sequence[str] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Summarize a saved observability trace artifact."
    )
    parser.add_argument("trace", help="path to a Tracer.write() JSON file")
    parser.add_argument(
        "--format",
        choices=("markdown", "ascii"),
        default="markdown",
        help="report style (default: markdown)",
    )
    args = parser.parse_args(argv)
    payload = load_chrome_trace(args.trace)
    print(render_report(payload, fmt=args.format))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
