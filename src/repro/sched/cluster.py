"""Multi-NPU node-level scheduling (the paper's Sec II-C future work).

The paper scopes itself to scheduling *after* Kubernetes routes requests
to one NPU and explicitly leaves node-level policy over multiple
preemptible NPUs as future work.  This module implements that layer as a
single **event-driven cluster simulation**: every device is a stepwise
:class:`~repro.sched.simulator.DeviceSim`, and one global loop interleaves
device events with cluster-level request arrivals in timestamp order.
Routing therefore happens *online* -- at the moment a request arrives the
router can read each device's live scheduler-visible state (context
tables, tokens, accounted progress of the running task) instead of only
the static arrival-order estimates.

Routing strategies (:class:`RoutingPolicy`):

``ROUND_ROBIN``
    Kubernetes-default rotation, blind to task sizes.
``RANDOM``
    Seeded uniform choice (the load-balancer strawman).
``LEAST_LOADED`` / ``STATIC``
    Predictive *static* routing: one up-front pass in arrival order
    assigns each request to the device whose estimated backlog lets it
    start earliest, using only the Algorithm-1 estimates (``STATIC`` is
    the same rule under the cluster-experiment naming).
``ONLINE_PREDICTED``
    Predictive *online* dispatch: the decision is deferred to the arrival
    event and uses each device's live predicted backlog -- estimated
    remaining cycles of its running + queued tasks, with the running
    task's progress refreshed to 'now'.  Tasks that finished earlier than
    predicted free their device immediately in the router's eyes, which
    static routing cannot see.
``WORK_STEALING``
    ``ONLINE_PREDICTED`` plus migration: whenever a device goes idle
    while another device still has *queued* (never-dispatched) tasks, the
    idle device steals the longest-estimated queued task from the most
    backlogged device.  Never-dispatched tasks carry no checkpoint state,
    so a migration moves only the context row (tokens travel with it).
``PREEMPTIVE_MIGRATION``
    ``WORK_STEALING`` plus *checkpoint migration*: when no queued task is
    stealable, an idle device pulls a **preempted** task -- one whose
    CONV/FC activations or RNN cell state already sit checkpointed in the
    source device's DRAM (``repro.npu.preemption``) -- by shipping that
    checkpoint over a modeled interconnect
    (:mod:`repro.sched.interconnect`): the transfer is charged real
    cycles, contends FIFO on its link, and the task only re-enters a
    ready queue when the bytes land.  Token accounting becomes
    cluster-global under this routing: a
    :class:`~repro.core.tokens.ClusterTokenLedger` keeps every device's
    Algorithm-2 candidate threshold consistent with the cluster-wide
    token maximum, so slowdown-normalized priority no longer depends on
    placement luck.

All strategies run through the same event loop; for the static strategies
each device's event sequence is identical to simulating its partition in
isolation, so pre-existing results remain bit-for-bit reproducible.

An optional SLA-aware frontend (:mod:`repro.serving`) can sit in front of
the online routings: arrivals then pass through a PCS-style admission
controller (accept / bounded defer / reject against per-QoS-class SLOs,
with estimates corrected online from observed completions) before they
reach a device.  Without a controller the admit-everything behavior is
preserved bit-for-bit.  See ``docs/serving.md``.
"""

from __future__ import annotations

import bisect
import dataclasses
import enum
import heapq
import math
import random
import time
from collections import deque
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.context import TaskState
from repro.core.tokens import ClusterTokenLedger
from repro.serving.admission import (
    AdmissionController,
    AdmissionDecision,
    AdmissionRecord,
)
from repro.sched.faults import (
    ChurnEvent,
    ChurnSchedule,
    DeviceAvailability,
    FleetAvailability,
)
from repro.sched.interconnect import (
    CONTEXT_ROW_BYTES,
    Interconnect,
    InterconnectConfig,
    TransferRecord,
)
from repro.sched.job import (
    BatchConfig,
    Job,
    JobState,
    StagePlan,
    batch_key,
    merge_runtimes,
    partition_runtime,
    settle_member,
    stage_runtime,
)
from repro.obs.trace import NULL_TRACER
from repro.sched.policies import make_policy
from repro.sched.rack import RackRouter, RackTopology
from repro.sched.simulator import (
    DeviceSim,
    PreemptionMode,
    SimulationConfig,
    SimulationResult,
    _EventKind,
)
from repro.sched.task import TaskRuntime
from repro.sched.timeline import ClusterTimeline


class RoutingPolicy(enum.Enum):
    ROUND_ROBIN = "round-robin"
    LEAST_LOADED = "least-loaded"
    RANDOM = "random"
    STATIC = "static"
    ONLINE_PREDICTED = "online-predicted"
    WORK_STEALING = "work-stealing"
    PREEMPTIVE_MIGRATION = "preemptive-migration"


#: The single source of truth for routing classification.  Every member
#: of :class:`RoutingPolicy` MUST appear here exactly once; the module
#: refuses to import otherwise, so adding a routing can never silently
#: miss a static/online classification again.
_ROUTING_KIND: Dict[RoutingPolicy, str] = {
    RoutingPolicy.ROUND_ROBIN: "static",
    RoutingPolicy.LEAST_LOADED: "static",
    RoutingPolicy.RANDOM: "static",
    RoutingPolicy.STATIC: "static",
    RoutingPolicy.ONLINE_PREDICTED: "online",
    RoutingPolicy.WORK_STEALING: "online",
    RoutingPolicy.PREEMPTIVE_MIGRATION: "online",
}

_UNCLASSIFIED = [p for p in RoutingPolicy if p not in _ROUTING_KIND]
if _UNCLASSIFIED:  # pragma: no cover - tripped only by a bad enum edit
    raise RuntimeError(
        "RoutingPolicy members missing a static/online classification in "
        f"_ROUTING_KIND: {[p.value for p in _UNCLASSIFIED]}"
    )
_BAD_KINDS = {kind for kind in _ROUTING_KIND.values()} - {"static", "online"}
if _BAD_KINDS:  # pragma: no cover - tripped only by a bad table edit
    raise RuntimeError(f"unknown routing kinds in _ROUTING_KIND: {_BAD_KINDS}")

#: Strategies resolved by one up-front routing pass (arrival order).
STATIC_ROUTINGS = frozenset(
    policy for policy, kind in _ROUTING_KIND.items() if kind == "static"
)

#: Strategies deciding per-arrival against live device state.
ONLINE_ROUTINGS = frozenset(
    policy for policy, kind in _ROUTING_KIND.items() if kind == "online"
)

#: Policies whose ready-queue order serves higher priorities first, so a
#: higher-priority arrival does not wait behind queued lower-priority
#: work.  The admission predictor's ``min_priority`` filter only applies
#: under these (and only with preemption on); under FCFS/RRB an arrival
#: genuinely queues behind everything, and filtering would over-admit.
PRIORITY_DRIVEN_POLICIES = frozenset({"HPF", "TOKEN", "PREMA"})

#: Policies serving the shortest candidate first among equal ranks, so
#: an arrival only waits behind same-priority rows at most its own size
#: (the admission predictor's ``sjf_within_cycles`` refinement).
SHORTEST_FIRST_POLICIES = frozenset({"SJF", "TOKEN", "PREMA"})

#: Fleet size at which the O(log d) control plane pays for itself.  The
#: indexed and linear loops are decision-identical, so the default is a
#: pure cost choice: below this, enumerating the fleet is cheaper than
#: maintaining the index (measured crossover ~4-8 devices; the paper's
#: 1-4 NPU node settings keep the historical loop).
INDEXED_CONTROL_PLANE_MIN_DEVICES = 8

#: Sentinel distinguishing "caller did not pass this legacy keyword"
#: from any legitimate value (None included).
_UNSET = object()


@dataclasses.dataclass(frozen=True)
class ClusterConfig:
    """Everything a :class:`ClusterScheduler` needs beyond the fleet shape.

    The preferred construction surface: ``ClusterScheduler(n, sim_config,
    config=ClusterConfig(...))``.  The scheduler's historical keyword
    sprawl (``policy_name=``, ``routing=``, ...) remains as a deprecated
    compatibility path that assembles one of these internally; new knobs
    (``batching``) land here first.

    ``interconnect`` None means a PCIe-gen3 bus at the NPU clock;
    ``global_tokens`` None means "on exactly for PREEMPTIVE_MIGRATION";
    ``use_indexes`` None means "on from
    ``INDEXED_CONTROL_PLANE_MIN_DEVICES`` devices up" -- the same
    defaults the legacy keywords resolved.
    """

    policy_name: str = "PREMA"
    routing: RoutingPolicy = RoutingPolicy.LEAST_LOADED
    seed: int = 0
    interconnect: Optional[InterconnectConfig] = None
    global_tokens: Optional[bool] = None
    admission: Optional[AdmissionController] = None
    use_indexes: Optional[bool] = None
    verify_indexes: bool = False
    #: Router-level batching / pipeline sharding (repro.sched.job).  None
    #: keeps the task-per-dispatch behavior bit-for-bit.
    batching: Optional[BatchConfig] = None
    #: Device churn (repro.sched.faults): fail-stop faults, spot
    #: revocations with advance warning, maintenance drains.  None keeps
    #: the always-healthy fleet bit-for-bit.
    churn: Optional[ChurnSchedule] = None
    #: With churn: drain a warned device's durable checkpoints to healthy
    #: peers before the deadline (Parcae-style liveput protection) and
    #: checkpoint-then-migrate its running task when the window affords
    #: it.  False is the reactive-restart baseline (losses recovered only
    #: after the fact).  Ignored without ``churn``.
    proactive_migration: bool = True
    #: Rack hierarchy (repro.sched.rack).  None keeps the flat fleet
    #: bit-for-bit.  With a topology: arrivals route in two tiers (least
    #: aggregate-backlog rack, then least-backlog device within it), the
    #: fabric grows an oversubscribed uplink tier (see
    #: ``InterconnectConfig.uplink_oversubscription``), and steal /
    #: migrate / evacuation source selection becomes locality-aware.
    #: Requires the indexed control plane (the rack frontend *is* an
    #: index structure); a single-rack topology replays the flat cluster
    #: decision-for-decision.
    racks: Optional[RackTopology] = None
    #: Starvation-gap threshold (cycles) a cross-rack steal or migration
    #: must clear before leaving the rack: the gain of moving must beat
    #: the uplink's cost.  None derives it from the fabric -- the
    #: uncontended cross-rack shipment cost of one context row.  Ignored
    #: without ``racks``.
    cross_rack_threshold_cycles: Optional[float] = None
    #: Observability (repro.obs, docs/observability.md).  All three are
    #: observational only -- scheduling decisions are identical with or
    #: without them, and ``None`` (the default) keeps every hot path
    #: allocation-free (the no-op tracer singleton is threaded through).
    #: ``tracer``: a :class:`repro.obs.trace.Tracer` collecting typed
    #: span/instant events for Chrome-trace/Perfetto export.
    tracer: Optional[object] = None
    #: ``metrics_sampler``: a :class:`repro.obs.metrics.MetricsSampler`
    #: sampling utilization / queue depth / backlog / admission-rate /
    #: SLA gauges on its cycle interval into bounded ring buffers.
    metrics_sampler: Optional[object] = None
    #: ``profiler``: a :class:`repro.obs.profile.HotPathProfiler`
    #: attributing control-plane wall time per event kind (route, steal,
    #: migrate, admission, index maintenance, churn handling).
    profiler: Optional[object] = None
    #: Parallel backend (repro.sched.parallel): shard the fleet by rack
    #: across this many worker processes under conservative PDES
    #: synchronization.  ``None`` or ``1`` runs today's serial loop
    #: untouched; ``N >= 2`` engages the parallel backend for supported
    #: configurations (static routings without churn; ONLINE_PREDICTED /
    #: WORK_STEALING over multi-rack fleets -- see
    #: ``repro.sched.parallel.supported_reason``) and transparently
    #: falls back to the serial loop otherwise.  Results are bit-for-bit
    #: identical either way.
    workers: Optional[int] = None


@dataclasses.dataclass(frozen=True)
class MigrationRecord:
    """One migration of a task between devices.

    ``kind`` is ``"steal"`` for a row-only move (a never-dispatched
    task, or a KILL victim restarting from scratch) and ``"checkpoint"``
    when the task's saved state moved with it; ``arrival_cycles`` is
    when the task re-entered a ready queue at the destination.  Under
    ``WORK_STEALING`` steals are instantaneous (``arrival_cycles ==
    time_cycles``); under ``PREEMPTIVE_MIGRATION`` *every* move -- steals
    included -- crosses the interconnect and carries real in-flight
    latency.
    """

    task_id: int
    from_device: int
    to_device: int
    time_cycles: float
    kind: str = "steal"
    bytes_moved: float = 0.0
    arrival_cycles: float = 0.0

    @property
    def latency_cycles(self) -> float:
        """Cycles the task spent in flight (0 for WORK_STEALING steals)."""
        return max(0.0, self.arrival_cycles - self.time_cycles)


@dataclasses.dataclass(frozen=True)
class BatchRecord:
    """One router dispatch under the gang loop (batched or solo).

    ``proxy_task_id`` is the runtime the devices actually executed (a
    merged batch proxy, or the lone member itself); ``member_task_ids``
    are the end-user requests settled from it.  ``devices`` are the
    gang's reserved stage placements at dispatch (stage order) -- slices
    may later move via stealing/migration.
    """

    proxy_task_id: int
    member_task_ids: Tuple[int, ...]
    dispatch_cycles: float
    num_stages: int
    devices: Tuple[int, ...]

    @property
    def batch_size(self) -> int:
        return len(self.member_task_ids)


@dataclasses.dataclass(frozen=True)
class ClusterResult:
    """Outcome of one cluster run.

    ``tasks`` holds the tasks the cluster *executed*.  Without admission
    control that is every offered task; with an
    :class:`~repro.serving.admission.AdmissionController` attached,
    rejected arrivals never run and appear in ``rejected_tasks`` instead
    (``offered_tasks`` reunites both populations for SLA accounting).
    """

    tasks: Tuple[TaskRuntime, ...]
    device_results: Tuple[Optional[SimulationResult], ...]
    #: Final placement: task id -> the device that executed it.
    assignments: Dict[int, int]
    routing: str = ""
    migrations: Tuple[MigrationRecord, ...] = ()
    timeline: Optional[ClusterTimeline] = None
    #: Interconnect transfers behind the checkpoint migrations.
    transfers: Tuple[TransferRecord, ...] = ()
    #: Every admission decision taken, in decision order (empty without
    #: an admission controller).
    admission_records: Tuple[AdmissionRecord, ...] = ()
    #: Arrivals the admission controller refused; they never executed.
    rejected_tasks: Tuple[TaskRuntime, ...] = ()
    #: Total device events processed across the fleet (introspection /
    #: benchmarking: per-event control-plane cost = wall time / this).
    events_processed: int = 0
    #: The jobs this run executed, when driven through the job surface
    #: (run_jobs / batching).  Empty for plain task runs.
    jobs: Tuple[Job, ...] = ()
    #: One record per router dispatch under the gang loop (solo dispatches
    #: included, so mean batch size is directly computable).
    batches: Tuple[BatchRecord, ...] = ()
    #: Tasks destroyed by device churn with no surviving capacity to
    #: recover them; they never completed and never will.
    lost_tasks: Tuple[TaskRuntime, ...] = ()
    #: Device -> rack map when the run used a rack topology (None for a
    #: flat fleet); the metrics layer derives per-rack attainment and
    #: uplink accounting from it.
    rack_of: Optional[Tuple[int, ...]] = None

    @property
    def num_devices(self) -> int:
        return len(self.device_results)

    @property
    def batch_count(self) -> int:
        """Router dispatches that coalesced more than one request."""
        return sum(1 for batch in self.batches if batch.batch_size > 1)

    @property
    def mean_batch_size(self) -> float:
        """Mean requests per router dispatch (1.0 when batching is off)."""
        if not self.batches:
            return 1.0 if self.tasks else 0.0
        return sum(batch.batch_size for batch in self.batches) / len(
            self.batches
        )

    @property
    def sharded_job_count(self) -> int:
        """Dispatches that ran as multi-slice pipeline gangs."""
        return sum(1 for batch in self.batches if batch.num_stages > 1)

    @property
    def activation_bytes_total(self) -> float:
        """Inter-stage boundary bytes shipped over the fabric."""
        return sum(
            record.num_bytes
            for record in self.transfers
            if record.purpose == "activation"
        )

    @property
    def offered_tasks(self) -> Tuple[TaskRuntime, ...]:
        """Executed + rejected + lost: everything the frontend was asked."""
        return self.tasks + self.rejected_tasks + self.lost_tasks

    @property
    def rejection_rate(self) -> float:
        """Fraction of offered tasks the frontend refused."""
        offered = (
            len(self.tasks) + len(self.rejected_tasks) + len(self.lost_tasks)
        )
        return len(self.rejected_tasks) / offered if offered else 0.0

    @property
    def deferral_count(self) -> int:
        """Total defer decisions (a task may defer more than once)."""
        return sum(
            1
            for record in self.admission_records
            if record.decision is AdmissionDecision.DEFER
        )

    @property
    def migration_count(self) -> int:
        return len(self.migrations)

    @property
    def checkpoint_migration_count(self) -> int:
        return sum(1 for m in self.migrations if m.kind == "checkpoint")

    @property
    def migrated_bytes_total(self) -> float:
        return sum(m.bytes_moved for m in self.migrations)

    @property
    def makespan_cycles(self) -> float:
        """Latest completion across devices (0 when nothing executed --
        possible only when admission rejected every arrival)."""
        spans = [
            result.makespan_cycles
            for result in self.device_results
            if result is not None
        ]
        return max(spans) if spans else 0.0

    def device_utilization(self) -> List[float]:
        """Busy fraction of each device over the cluster makespan."""
        span = self.makespan_cycles
        utilization = []
        for result in self.device_results:
            if result is None or span == 0:
                utilization.append(0.0)
            else:
                utilization.append(result.timeline.busy_cycles() / span)
        return utilization


class _OrderedIndexSet:
    """Device-index set that stays sorted: O(1) membership, amortized
    O(log k) + memmove insertion, and ascending iteration without a
    per-event ``sorted()``.

    The PR-5 candidate sets were plain ``set``s, and every steal/migrate
    consultation paid ``sorted(...)`` to recover the reference scan's
    ascending device order -- O(k log k) per event, which is what bent
    the per-event cost curve past ~1k devices.  This keeps the members
    in a bisect-maintained list instead, so iteration is a plain copy.
    """

    __slots__ = ("_members", "_sorted")

    def __init__(self) -> None:
        self._members: Set[int] = set()
        self._sorted: List[int] = []

    def add(self, index: int) -> None:
        if index not in self._members:
            self._members.add(index)
            bisect.insort(self._sorted, index)

    def discard(self, index: int) -> None:
        if index in self._members:
            self._members.remove(index)
            del self._sorted[bisect.bisect_left(self._sorted, index)]

    def ordered(self) -> List[int]:
        """Ascending snapshot, safe to iterate while the set mutates."""
        return list(self._sorted)

    def __contains__(self, index: int) -> bool:
        return index in self._members

    def __bool__(self) -> bool:
        return bool(self._members)

    def __len__(self) -> int:
        return len(self._members)

    def __iter__(self):
        return iter(self._sorted)


class _ClusterIndexes:
    """O(log d)-per-event control-plane indexes over a device fleet.

    Three structures replace the cluster loop's per-event linear scans.
    Each is *re-plumbing only*: every consultation returns exactly what
    the reference scan over all devices returns (the golden suites and
    ``tests/test_cluster_indexes.py`` pin this), it just stops paying
    O(d) -- or, for work stealing, O(d^2) -- to find it.

    - **Device-event heap** -- a lazy-deletion min-heap of ``(time,
      kind-rank, device)`` entries mirroring each device's
      ``next_event_key()``.  Devices invalidate/refresh their entry
      through :attr:`DeviceSim.on_next_event_change`; stale entries are
      discarded when they surface (the PR-2 policy-heap discipline).
      Ties at equal ``(time, kind)`` break to the lowest device index,
      exactly like the linear scan.
    - **Backlog-bound heap** -- a lazy-deletion min-heap of ``(backlog
      lower bound, device)`` entries keyed on
      :meth:`DeviceSim.backlog_lower_bound`, refreshed at every device
      mutation (inject / step / migration edges).  Routing runs a
      best-first search: pop candidates in bound order, compute the
      *exact* ``predicted_backlog(now) + inbound`` for each, and stop as
      soon as the heap top can no longer beat the best exact key --
      sound because every unexamined device's exact key is at least its
      bound key.  The argmin (ties to the lowest index) is therefore
      identical to the full scan's, float-for-float, while only devices
      whose bound undercuts the winner are ever touched.
    - **Candidate device sets** -- ``idle_candidates`` (devices whose
      time-independent idle clauses hold, a superset of the truly idle),
      ``steal_candidates`` (devices holding queued work), and
      ``source_candidates`` (queued or preempted work).  ``_steal`` /
      ``_migrate`` iterate these in device order and re-check the exact
      time-dependent predicates per candidate, so the common no-idle
      event costs O(1) instead of an O(d) fleet enumeration.

    With ``verify=True`` every consultation additionally runs the
    reference scan and raises on any divergence (the property tests'
    index-vs-linear-scan harness).
    """

    #: Trace sink (class attr = no per-instance cost when unobserved);
    #: the scheduler rebinds it right after construction when tracing.
    tracer = NULL_TRACER

    def __init__(self, devices: Sequence[DeviceSim], verify: bool = False) -> None:
        self._devices = devices
        self.verify = verify
        num = len(devices)
        self._event_key: List[Optional[Tuple[float, int]]] = [None] * num
        self._event_heap: List[Tuple[float, int, int]] = []
        self._backlog_bound: List[float] = [0.0] * num
        # Pre-seeded with every device at bound 0.0 (an ascending list is
        # already a valid heap); refresh() only pushes on bound *moves*.
        self._backlog_heap: List[Tuple[float, int]] = [
            (0.0, index) for index in range(num)
        ]
        self._heap_cap = 4 * num + 64
        self.idle_candidates = _OrderedIndexSet()
        self.steal_candidates = _OrderedIndexSet()
        self.source_candidates = _OrderedIndexSet()
        for device in devices:
            device.on_next_event_change = self._on_event_change
            self._on_event_change(device)
            self.refresh(device)

    # ------------------------------------------------------------------
    # Device-event heap
    # ------------------------------------------------------------------
    def _on_event_change(self, device: DeviceSim) -> None:
        index = device.device_id
        key = device.next_event_key()
        self._event_key[index] = key
        if key is not None:
            heapq.heappush(self._event_heap, (key[0], key[1], index))
            if len(self._event_heap) > self._heap_cap:
                self._event_heap = [
                    (current[0], current[1], idx)
                    for idx, current in enumerate(self._event_key)
                    if current is not None
                ]
                heapq.heapify(self._event_heap)

    def peek_next_device(
        self,
    ) -> Tuple[Optional[int], Optional[Tuple[float, int]]]:
        """(device index, (time, kind-rank)) of the earliest device event.

        Lazy deletion: entries whose key no longer matches the device's
        live ``next_event_key()`` are dropped as they surface.  Returns
        ``(None, None)`` when every device is dormant.
        """
        heap = self._event_heap
        keys = self._event_key
        found: Tuple[Optional[int], Optional[Tuple[float, int]]] = (None, None)
        while heap:
            time_, rank, index = heap[0]
            if keys[index] != (time_, rank):
                heapq.heappop(heap)
                continue
            found = (index, (time_, rank))
            break
        if self.verify:
            reference: Tuple[Optional[int], Optional[Tuple[float, int]]] = (
                None,
                None,
            )
            for index, device in enumerate(self._devices):
                key = device.next_event_key()
                if key is not None and (
                    reference[1] is None or key < reference[1]
                ):
                    reference = (index, key)
            if reference != found:
                raise AssertionError(
                    f"event heap peeked {found}, reference scan {reference}"
                )
        return found

    # ------------------------------------------------------------------
    # Backlog index + candidate sets
    # ------------------------------------------------------------------
    def refresh(self, device: DeviceSim) -> None:
        """Re-key every per-device structure after a device mutation.

        O(live) for the backlog bound (the same cost one reference-scan
        visit paid), O(1) set updates.  Must run after every ``step``,
        ``inject``, and ``remove_task`` so the bound invariant (bound <=
        exact backlog at any later instant) and the candidate supersets
        stay valid.
        """
        index = device.device_id
        # A non-accepting device (churn: doomed or down) sinks to the
        # bottom of the backlog heap so best-first routing never reaches
        # it while any accepting device exists; restore re-keys it live.
        bound = (
            device.backlog_lower_bound() if device.accepts_work else math.inf
        )
        if bound != self._backlog_bound[index]:
            # An unchanged bound leaves the device's resident heap entry
            # valid (entries are validated by value), so only actual
            # moves pay a push.
            self._backlog_bound[index] = bound
            heapq.heappush(self._backlog_heap, (bound, index))
            if len(self._backlog_heap) > self._heap_cap:
                self._backlog_heap = [
                    (value, idx)
                    for idx, value in enumerate(self._backlog_bound)
                ]
                heapq.heapify(self._backlog_heap)
        if device.maybe_idle:
            self.idle_candidates.add(index)
        else:
            self.idle_candidates.discard(index)
        if device.has_queued:
            self.steal_candidates.add(index)
            self.source_candidates.add(index)
        else:
            self.steal_candidates.discard(index)
            if device.has_preempted:
                self.source_candidates.add(index)
            else:
                self.source_candidates.discard(index)

    def route_min_backlog(self, now: float, inbound) -> Tuple[int, float]:
        """Device with the least ``predicted_backlog(now) + inbound(d)``;
        ties break to the lowest device index.  Returns (device, its
        exact backlog) -- the same pair the linear scan derives.

        Best-first search over the bound heap: examined candidates get
        their exact backlog computed (and are re-pushed unchanged); the
        search stops once the top bound entry cannot beat the best exact
        key, which covers every unexamined device since exact >= bound.
        """
        best_key, best_backlog = self._best_first(self._backlog_heap, now, inbound)
        if best_key is None:
            raise RuntimeError("backlog index has no live device entries")
        if self.verify:
            devices = self._devices
            reference = min(
                (d for d in range(len(devices)) if devices[d].accepts_work),
                key=lambda d: (
                    devices[d].predicted_backlog(now) + inbound(d),
                    d,
                ),
            )
            if reference != best_key[1]:
                raise AssertionError(
                    f"backlog index routed to device {best_key[1]}, "
                    f"reference scan to {reference}"
                )
        return best_key[1], best_backlog

    def _best_first(
        self, heap: List[Tuple[float, int]], now: float, inbound
    ) -> Tuple[Optional[Tuple[float, int]], float]:
        """One best-first pass over a (bound, device) lazy heap; returns
        ((backlog, device), backlog) of the argmin, or (None, 0.0) when
        the heap holds no accepting device."""
        bounds = self._backlog_bound
        devices = self._devices
        examined: List[Tuple[float, int]] = []
        best_key: Optional[Tuple[float, int]] = None
        best_backlog = 0.0
        while heap:
            bound, index = heap[0]
            if bounds[index] != bound:
                heapq.heappop(heap)
                continue
            if best_key is not None and (bound, index) >= best_key:
                break
            examined.append(heapq.heappop(heap))
            if not devices[index].accepts_work:
                # Churn: an inf-bound entry surfaced because every
                # accepting device was examined; skip (but keep the
                # entry -- the device re-keys live at restore).
                continue
            backlog = devices[index].predicted_backlog(now) + inbound(index)
            key = (backlog, index)
            if best_key is None or key < best_key:
                best_key, best_backlog = key, backlog
        for entry in examined:
            heapq.heappush(heap, entry)
        return best_key, best_backlog

    def admission_candidates(self) -> Sequence[int]:
        """Devices the class-aware admission fallback scans (the whole
        fleet here; the rack frontend narrows it to the chosen rack)."""
        return range(len(self._devices))

    def verify_candidate_sets(self, now: float) -> None:
        """Reference check: the sets cover every true candidate."""
        for index, device in enumerate(self._devices):
            if device.is_idle(now) and index not in self.idle_candidates:
                raise AssertionError(
                    f"idle device {index} missing from idle_candidates"
                )
            if device.stealable_tasks() and index not in self.steal_candidates:
                raise AssertionError(
                    f"device {index} with stealable work missing from "
                    "steal_candidates"
                )
            if (
                device.stealable_tasks()
                or device.migratable_preempted_tasks(now)
            ) and index not in self.source_candidates:
                raise AssertionError(
                    f"device {index} with migratable work missing from "
                    "source_candidates"
                )


class _RackIndexes(_ClusterIndexes):
    """The two-tier rack frontend over the per-device control plane.

    Adds a :class:`~repro.sched.rack.RackRouter` on top of the PR-5
    indexes: every device-bound move ``refresh`` observes is folded into
    the device's rack aggregate (O(log r)), and routing picks the rack
    with the least aggregate corrected backlog before running the
    per-device best-first search *within* that rack only.  The
    class-aware admission fallback narrows its linear scan to the chosen
    rack the same way ("predict against the chosen rack's surviving
    capacity").

    A single-rack topology is decision-identical to the flat indexes:
    the rack pick is trivial and the rack's device heap holds the whole
    fleet (``tests/test_rack.py`` pins this bit-for-bit).
    """

    def __init__(
        self,
        devices: Sequence[DeviceSim],
        topology: RackTopology,
        verify: bool = False,
    ) -> None:
        if topology.num_devices != len(devices):
            raise ValueError(
                f"rack topology covers {topology.num_devices} devices, "
                f"fleet has {len(devices)}"
            )
        # The base initializer runs refresh() per device; the router
        # attaches afterwards and reconciles any bound that moved during
        # construction (devices start empty, so normally none do).
        self._router: Optional[RackRouter] = None
        super().__init__(devices, verify=verify)
        self._router = RackRouter(topology, self._backlog_bound)
        self.topology = topology
        for index, bound in enumerate(self._backlog_bound):
            if bound != 0.0:
                self._router.update(index, 0.0, bound)

    def refresh(self, device: DeviceSim) -> None:
        index = device.device_id
        old_bound = self._backlog_bound[index]
        super().refresh(device)
        new_bound = self._backlog_bound[index]
        if self._router is not None and new_bound != old_bound:
            self._router.update(index, old_bound, new_bound)

    def pick_rack(self) -> int:
        """Least aggregate-backlog rack (the O(log r) frontend tier)."""
        assert self._router is not None
        if self.verify:
            self._router.verify_sums(self._backlog_bound)
        rack = self._router.pick_rack()
        if rack is None:
            raise RuntimeError("rack frontend has no accepting rack")
        return rack

    def route_min_backlog(self, now: float, inbound) -> Tuple[int, float]:
        """Two-tier argmin: frontend rack pick, then in-rack best-first.

        Deliberately *not* the flat fleet-wide argmin (a rack-scale
        frontend ranks racks by aggregate, not devices by exact
        backlog); with one rack the two coincide exactly.
        """
        assert self._router is not None
        rack = self.pick_rack()
        tracer = self.tracer
        if tracer.enabled:
            tracer.instant(
                "rack_pick", f"rack_pick r{rack}", now, args={"rack": rack}
            )
        best_key, best_backlog = self._best_first(
            self._router.device_heap(rack), now, inbound
        )
        if best_key is None:
            raise RuntimeError(
                f"rack {rack} frontend key is live but holds no accepting "
                "device"
            )
        if self.verify:
            devices = self._devices
            reference = min(
                (
                    d
                    for d in self._router.topology.devices_in(rack)
                    if devices[d].accepts_work
                ),
                key=lambda d: (
                    devices[d].predicted_backlog(now) + inbound(d),
                    d,
                ),
            )
            if reference != best_key[1]:
                raise AssertionError(
                    f"rack {rack} best-first routed to device "
                    f"{best_key[1]}, in-rack reference scan to {reference}"
                )
        return best_key[1], best_backlog

    def admission_candidates(self) -> Sequence[int]:
        """The chosen rack's devices: admission predicts against the
        rack's surviving capacity, not the whole fleet."""
        assert self._router is not None
        return self._router.topology.devices_in(self.pick_rack())


class _ChurnRuntime:
    """Churn mechanics shared by both cluster event loops.

    Owns the :class:`~repro.sched.faults.FleetAvailability` machine and
    applies its transitions to the live fleet:

    - **warn** (proactive mode): the device stops accepting new work
      (routing, stealing, admission and idle indexes all exclude it) and
      its evacuable state drains to healthy peers over the interconnect
      -- durable checkpoints and queued rows ship immediately, a running
      task that cannot finish inside the window is checkpoint-then-
      migrated when the trap DMA plus transfer fit before the deadline
      (the Parcae-style liveput protection).  Reactive mode records the
      state change and does nothing else.
    - **down**: in-flight transfers to the device are cancelled on their
      links, its non-durable progress dies (:meth:`DeviceSim.fail`), and
      the orphans are handed to the loop's ``on_orphans`` callback for
      re-dispatch (or parking, when no capacity survives).
    - **restore**: the device re-enters every routing structure and the
      loop's ``on_restore`` callback re-places parked work.
    - **check**: a self-scheduled revisit (e.g. at a forced checkpoint's
      durability instant) that re-runs evacuation while the device is
      still doomed.

    The loop processes a transition whenever it precedes the next device
    event at same-time-completion-first / before-same-time-arrival rank
    (between :data:`_EventKind.COMPLETE` and ``ARRIVAL``).
    """

    def __init__(
        self,
        schedule: ChurnSchedule,
        devices: Sequence[DeviceSim],
        indexes: Optional[_ClusterIndexes],
        fabric: Optional[Interconnect],
        inflight: Dict[int, List[Tuple[float, float, int]]],
        assignments: Dict[int, int],
        migrations: List[MigrationRecord],
        ledger: Optional[ClusterTokenLedger],
        proactive: bool,
    ) -> None:
        self.fleet = FleetAvailability(len(devices), schedule)
        self.devices = devices
        self.indexes = indexes
        self.fabric = fabric
        self.inflight = inflight
        self.assignments = assignments
        self.migrations = migrations
        self.ledger = ledger
        self.proactive = proactive
        #: Work with nowhere to go while no device accepts (re-placed at
        #: the next restore; lost if the fleet never recovers).  The task
        #: loop parks TaskRuntimes, the gang loop parks Jobs.
        self.parked: list = []
        #: Loop-specific hooks, set by the owning loop before it runs.
        self.on_orphans: Optional[Callable] = None
        self.on_restore: Optional[Callable] = None
        #: The churn event whose warning window a device is inside.
        self._active_event: Dict[int, ChurnEvent] = {}
        #: Tasks already force-checkpointed in the current window, per
        #: device -- a failed shipment must not re-trap the same task.
        self._forced: Dict[int, Set[int]] = {}
        #: Observability (repro.obs): set by the owning loop.  The
        #: tracer rides on ``fleet.tracer`` (transition instants) and
        #: this attribute (evacuation migration spans); the profiler
        #: attributes churn-handling wall time.
        self.tracer = NULL_TRACER
        self.profiler = None

    # -- loop-facing surface -------------------------------------------
    def peek_time(self) -> Optional[float]:
        return self.fleet.peek_time()

    def any_accepting(self) -> bool:
        return any(device.accepts_work for device in self.devices)

    def process_next(self) -> None:
        prof = self.profiler
        if prof is None:
            self._process_next()
            return
        start_ns = time.perf_counter_ns()
        self._process_next()
        prof.add("churn", time.perf_counter_ns() - start_ns)

    def _process_next(self) -> None:
        transition = self.fleet.pop()
        now = transition.time_cycles
        index = transition.device
        device = self.devices[index]
        if transition.phase == "warn":
            self.fleet.apply(transition)
            if transition.event is not None:
                self._active_event[index] = transition.event
            if self.proactive:
                device.accepts_work = False
                self._refresh(device)
                self._evacuate(index, now)
        elif transition.phase == "down":
            self.fleet.apply(transition)
            self._active_event.pop(index, None)
            self._forced.pop(index, None)
            if self.fabric is not None:
                self.fabric.cancel_transfers_to(index, now)
            self.inflight[index].clear()
            orphans = device.fail(now)
            self._refresh(device)
            if self.on_orphans is not None:
                self.on_orphans(orphans, now)
        elif transition.phase == "restore":
            self.fleet.apply(transition)
            self._active_event.pop(index, None)
            self._forced.pop(index, None)
            device.accepts_work = True
            self._refresh(device)
            if self.on_restore is not None:
                self.on_restore(now)
        else:  # "check": revisit a still-doomed device's evacuation
            if self.proactive and self.fleet.state(index) in (
                DeviceAvailability.WARNED,
                DeviceAvailability.DRAINING,
            ):
                self._evacuate(index, now)

    def after_step(self, device: DeviceSim, now: float) -> None:
        """Opportunistic re-evacuation after a doomed device's own event
        (a completion frees the array; a dispatch may have started work
        that now needs the checkpoint-then-migrate decision)."""
        if not self.proactive:
            return
        index = device.device_id
        if self.fleet.state(index) in (
            DeviceAvailability.WARNED,
            DeviceAvailability.DRAINING,
        ):
            prof = self.profiler
            if prof is None:
                self._evacuate(index, now)
                return
            start_ns = time.perf_counter_ns()
            self._evacuate(index, now)
            prof.add("churn", time.perf_counter_ns() - start_ns)

    # -- mechanics ------------------------------------------------------
    def _refresh(self, device: DeviceSim) -> None:
        if self.indexes is not None:
            self.indexes.refresh(device)

    def _pick_target(self, src_index: int, now: float) -> Optional[int]:
        """Least-backlog accepting device other than the source.

        Under a rack topology the evacuation target prefers rack-local
        survivors (the rack-local tier is the cheap path for the
        checkpoints about to ship); cross-rack landing spots are used
        only when the source's whole rack has stopped accepting.
        """
        rack_of = self.fabric.rack_of if self.fabric is not None else None
        best: Optional[int] = None
        best_key: Optional[Tuple[int, float, int]] = None
        for device in self.devices:
            index = device.device_id
            if index == src_index or not device.accepts_work:
                continue
            remote = (
                0
                if rack_of is None or rack_of[index] == rack_of[src_index]
                else 1
            )
            key = (
                remote,
                device.predicted_backlog(now)
                + ClusterScheduler._inbound_backlog(self.inflight, index, now),
                index,
            )
            if best_key is None or key < best_key:
                best, best_key = index, key
        return best

    def _ship(
        self, src_index: int, dst_index: int, task_id: int, now: float
    ) -> None:
        """Move one QUEUED/PREEMPTED task over the fabric (the
        :meth:`ClusterScheduler._migrate` mechanics, evacuation-driven)."""
        assert self.fabric is not None
        src = self.devices[src_index]
        dst = self.devices[dst_index]
        task = src.remove_task(task_id, now)
        ships_checkpoint = task.checkpoint_bytes_resident > 0
        payload = task.checkpoint_bytes_resident + CONTEXT_ROW_BYTES
        record = self.fabric.transfer(
            src_index, dst_index, payload, now, task_id=task.task_id
        )
        task.context.state = TaskState.MIGRATING
        task.context.accrue_wait(record.end_cycles)
        if self.ledger is not None:
            self.ledger.activate(task.task_id, task.context.tokens)
        task.migration_count += 1
        task.migrated_bytes_total += payload
        dst.inject(task, arrival=record.end_cycles)
        self._refresh(src)
        self._refresh(dst)
        self.assignments[task.task_id] = dst_index
        self.inflight[dst_index].append(
            (record.end_cycles, task.context.estimated_remaining_cycles,
             int(task.context.priority))
        )
        self.migrations.append(
            MigrationRecord(
                task_id=task.task_id,
                from_device=src_index,
                to_device=dst_index,
                time_cycles=now,
                kind="checkpoint" if ships_checkpoint else "steal",
                bytes_moved=payload,
                arrival_cycles=record.end_cycles,
            )
        )
        if self.tracer.enabled:
            self.tracer.span(
                "migration",
                f"evacuate t{task.task_id} d{src_index}->d{dst_index}",
                now,
                record.end_cycles,
                args={
                    "task": task.task_id,
                    "from": src_index,
                    "to": dst_index,
                    "bytes": payload,
                    "reason": "evacuation",
                },
            )

    def _evacuate(self, src_index: int, now: float) -> None:
        """Drain a doomed device toward its revocation deadline.

        Ships evacuable state (queued rows, durable checkpoints) in
        value order -- highest priority, then most tokens, then longest
        remaining -- while the contended link still lands each payload
        before the deadline.  The running task is left alone when it
        finishes inside the window; otherwise it is force-checkpointed
        once (per window) when the trap DMA plus shipment fit, and a
        ``check`` transition revisits at durability to ship it.
        """
        event = self._active_event.get(src_index)
        if event is None or self.fabric is None:
            return
        deadline = event.down_cycles
        src = self.devices[src_index]

        def value(task: TaskRuntime):
            context = task.context
            return (
                float(int(context.priority)),
                context.tokens,
                context.estimated_remaining_cycles,
                -task.task_id,
            )

        progress = True
        while progress:
            progress = False
            candidates = src.stealable_tasks()
            candidates += src.migratable_preempted_tasks(now)
            for task in sorted(candidates, key=value, reverse=True):
                target = self._pick_target(src_index, now)
                if target is None:
                    return  # nowhere to evacuate to
                payload = task.checkpoint_bytes_resident + CONTEXT_ROW_BYTES
                landing = self.fabric.estimate_arrival(
                    src_index, target, payload, now
                )
                if landing > deadline:
                    continue  # this payload cannot beat the deadline
                self._ship(src_index, target, task.task_id, now)
                progress = True
                break

        running = src.running_task
        if running is None or running.dispatch_time is None:
            return
        est_done = (
            running.dispatch_time
            + running.dispatch_restore
            + (running.profile.total_cycles - running.retained_offset)
        )
        if est_done <= deadline:
            return  # it outruns the revocation; let it finish in place
        forced = self._forced.setdefault(src_index, set())
        if running.task_id in forced:
            return
        preview = src.preview_checkpoint(now)
        if preview is None:
            return
        free_at, checkpoint_bytes = preview
        if free_at >= deadline:
            return  # the trap DMA alone overruns the window
        target = self._pick_target(src_index, now)
        if target is None:
            return
        payload = checkpoint_bytes + CONTEXT_ROW_BYTES
        if self.fabric.estimate_arrival(
            src_index, target, payload, free_at
        ) > deadline:
            return  # checkpoint would land dead bytes; ride it out
        src.force_checkpoint(now)
        forced.add(running.task_id)
        self._refresh(src)
        # Revisit at durability: the checkpoint becomes shippable then.
        self.fleet.push_check(free_at, src_index)


class _GangRun:
    """One in-flight router dispatch: a proxy runtime cut into stage slices.

    ``jobs`` are the member jobs this dispatch serves (one for a solo or
    pre-cut dispatch, several for a coalesced batch).  ``proxy`` is the
    runtime the devices actually execute -- a member's own runtime, or
    the merged batch runtime.  ``owner`` is set only for a pre-cut
    multi-stage job so its :class:`~repro.sched.job.DeviceSlice` records
    can be filled in as stages materialize.
    """

    __slots__ = ("jobs", "owner", "proxy", "plans", "slice_ids", "devices",
                 "runtimes", "lost")

    def __init__(
        self,
        jobs: List[Job],
        owner: Optional[Job],
        proxy: TaskRuntime,
        plans: List[StagePlan],
        slice_ids: List[int],
        devices: List[int],
    ) -> None:
        self.jobs = jobs
        self.owner = owner
        self.proxy = proxy
        self.plans = plans
        self.slice_ids = slice_ids
        self.devices = devices
        self.runtimes: List[Optional[TaskRuntime]] = [None] * len(plans)
        #: Set when a device failure destroyed one of this gang's slices
        #: (churn); the gang's jobs are then accounted LOST.
        self.lost = False


class ClusterScheduler:
    """Serve one request stream across N preemptible NPUs.

    One shared event loop drives every device; dispatch decisions fire at
    task-arrival events (and, under work stealing, at device-idle edges
    after any event).  The control plane runs on the O(log d)
    :class:`_ClusterIndexes` for fleets of
    ``INDEXED_CONTROL_PLANE_MIN_DEVICES`` and larger (both loops make
    identical decisions, so the default is purely the measured cost
    crossover); ``use_indexes`` forces either loop, and
    ``verify_indexes=True`` runs both on every consultation and raises
    on any divergence.
    """

    def __init__(
        self,
        num_devices: int,
        simulation_config: SimulationConfig,
        policy_name=_UNSET,
        routing=_UNSET,
        seed=_UNSET,
        interconnect=_UNSET,
        global_tokens=_UNSET,
        admission=_UNSET,
        use_indexes=_UNSET,
        verify_indexes=_UNSET,
        config: Optional[ClusterConfig] = None,
        batching=_UNSET,
        churn=_UNSET,
        proactive_migration=_UNSET,
    ) -> None:
        if num_devices <= 0:
            raise ValueError("num_devices must be positive")
        legacy = {
            name: value
            for name, value in (
                ("policy_name", policy_name),
                ("routing", routing),
                ("seed", seed),
                ("interconnect", interconnect),
                ("global_tokens", global_tokens),
                ("admission", admission),
                ("use_indexes", use_indexes),
                ("verify_indexes", verify_indexes),
                ("batching", batching),
                ("churn", churn),
                ("proactive_migration", proactive_migration),
            )
            if value is not _UNSET
        }
        if config is None:
            # Deprecated keyword surface: assemble the config the old
            # arguments described.  Kept so pre-ClusterConfig call sites
            # (and the golden suites) construct byte-identical schedulers.
            config = ClusterConfig(**legacy)
        elif legacy:
            raise ValueError(
                "pass either config= or the legacy keywords, not both: "
                f"{sorted(legacy)}"
            )
        if (
            config.admission is not None
            and config.routing not in ONLINE_ROUTINGS
        ):
            raise ValueError(
                "admission control predicts against live device backlogs; "
                f"use an online routing, not {config.routing.value}"
            )
        if (
            config.batching is not None
            and config.routing not in ONLINE_ROUTINGS
        ):
            raise ValueError(
                "router batching/sharding dispatches against live device "
                f"backlogs; use an online routing, not {config.routing.value}"
            )
        self.num_devices = num_devices
        self.simulation_config = simulation_config
        self.config = config
        self.policy_name = config.policy_name
        self.routing = config.routing
        self._seed = config.seed
        #: Fabric checkpoint migrations and inter-stage activations cross.
        #: Defaults to a PCIe-gen3 bus at the NPU's clock; only
        #: PREEMPTIVE_MIGRATION and sharded gangs ever use it.
        self.interconnect = config.interconnect or InterconnectConfig.pcie_gen3(
            simulation_config.npu.frequency_hz
        )
        #: Cluster-global token thresholds (ClusterTokenLedger).  Defaults
        #: to on exactly for PREEMPTIVE_MIGRATION; every pre-existing
        #: routing keeps the per-device paper semantics bit-for-bit.
        global_tokens = config.global_tokens
        if global_tokens is None:
            global_tokens = (
                config.routing is RoutingPolicy.PREEMPTIVE_MIGRATION
            )
        self.global_tokens = global_tokens
        #: Optional SLA-aware frontend (repro.serving).  None preserves
        #: the admit-everything behavior bit-for-bit.
        self.admission = config.admission
        #: O(log d) control plane (_ClusterIndexes).  Defaults on for
        #: fleets of INDEXED_CONTROL_PLANE_MIN_DEVICES and larger (the
        #: measured crossover); False falls back to the pre-index linear
        #: scans -- bit-for-bit identical decisions, kept as the
        #: equivalence reference and benchmark baseline.
        use_indexes = config.use_indexes
        if use_indexes is None:
            use_indexes = num_devices >= INDEXED_CONTROL_PLANE_MIN_DEVICES
        self.use_indexes = use_indexes
        #: Cross-check every index consultation against the reference
        #: scan (property-test harness; implies use_indexes).
        self.verify_indexes = config.verify_indexes
        if config.verify_indexes:
            self.use_indexes = True
        #: Router-level batching / pipeline sharding (None = off).
        self.batching = config.batching
        #: Device churn schedule (None = always-healthy fleet, bit-for-bit
        #: the pre-churn behavior) and the recovery mode under it.  An
        #: *empty* schedule is normalized to None here: faults.py
        #: promises it "behaves exactly like churn disabled", and the
        #: static-routing arrival path genuinely differs under the churn
        #: loop (one-at-a-time feeding), so only a schedule with events
        #: may engage it.
        self.churn = config.churn if config.churn else None
        self.proactive_migration = config.proactive_migration
        #: Optional rack composition (None = flat fleet, bit-for-bit the
        #: pre-rack behavior).  Racks require the indexed control plane:
        #: the two-tier frontend *is* an index structure, and the linear
        #: loops have no rack-aware counterpart.
        self.racks = config.racks
        self.rack_of: Optional[Tuple[int, ...]] = None
        self.cross_rack_threshold: float = 0.0
        if self.racks is not None:
            if self.racks.num_devices != num_devices:
                raise ValueError(
                    f"rack topology covers {self.racks.num_devices} "
                    f"devices, fleet has {num_devices}"
                )
            if config.use_indexes is False:
                raise ValueError(
                    "rack composition runs on the indexed control plane; "
                    "use_indexes=False is incompatible with racks"
                )
            self.use_indexes = True
            self.rack_of = self.racks.rack_of
            # Locality threshold for cross-rack steals/migrations: the
            # starvation gap must clear at least the uncontended cost of
            # shipping one context row across the uplink tier.
            threshold = config.cross_rack_threshold_cycles
            if threshold is None:
                threshold = self.interconnect.cross_rack_transfer_cycles(
                    CONTEXT_ROW_BYTES
                )
            if threshold < 0:
                raise ValueError(
                    "cross_rack_threshold_cycles must be non-negative"
                )
            self.cross_rack_threshold = threshold
        #: Observability (repro.obs): tracer resolves to the no-op
        #: singleton so every emission site is a single attribute check
        #: when tracing is off; sampler and profiler stay None-gated.
        self.tracer = (
            config.tracer if config.tracer is not None else NULL_TRACER
        )
        if self.tracer.enabled:
            rack_of = self.rack_of
            self.tracer.bind_topology(
                num_devices,
                rack_of=(
                    (lambda d: rack_of[d]) if rack_of is not None else None
                ),
            )
        self.sampler = config.metrics_sampler
        if self.sampler is not None and getattr(self.sampler, "tracer", None) is None:
            self.sampler.tracer = self.tracer
        self.profiler = config.profiler
        if config.workers is not None and config.workers < 1:
            raise ValueError("workers must be a positive worker count")
        self.workers = config.workers
        #: Whether the most recent run actually took the parallel fast
        #: path (vs the serial loop or a transparent fallback).
        self.last_run_parallel = False
        #: Phase/worker timing dict from the most recent parallel run
        #: (None after a serial run); see ``run_parallel``.
        self.last_parallel_stats: Optional[dict] = None

    # ------------------------------------------------------------------
    # Static routing (the up-front pass)
    # ------------------------------------------------------------------
    def route(self, tasks: Sequence[TaskRuntime]) -> Dict[int, int]:
        """Assign each task to a device, in arrival order (static pass).

        Uses only scheduler-visible state: arrival times and the
        Algorithm-1 estimates carried in each task's context row.  For
        ``LEAST_LOADED``/``STATIC``, each request goes to the device that
        can start it earliest under the estimated-backlog model; ties
        break deterministically toward the lowest device index.

        Raises for the online strategies -- their decisions exist only at
        run time (see :meth:`run`).
        """
        if self.routing in ONLINE_ROUTINGS:
            raise ValueError(
                f"{self.routing.value} routing decides at arrival events; "
                "call run() instead of route()"
            )
        ordered = sorted(tasks, key=lambda t: (t.spec.arrival_cycles, t.task_id))
        assignments: Dict[int, int] = {}
        rng = random.Random(self._seed)
        cursor = 0
        backlog_free_at = [0.0] * self.num_devices
        for task in ordered:
            arrival = task.spec.arrival_cycles
            if self.routing == RoutingPolicy.ROUND_ROBIN:
                device = cursor % self.num_devices
                cursor += 1
            elif self.routing == RoutingPolicy.RANDOM:
                device = rng.randrange(self.num_devices)
            else:  # LEAST_LOADED / STATIC: earliest predicted start wins.
                device = min(
                    range(self.num_devices),
                    key=lambda d: (max(backlog_free_at[d], arrival), d),
                )
            backlog_free_at[device] = (
                max(backlog_free_at[device], arrival)
                + task.context.estimated_cycles
            )
            assignments[task.task_id] = device
        return assignments

    # ------------------------------------------------------------------
    # Execution: the public surfaces
    # ------------------------------------------------------------------
    def run(self, tasks: Sequence[TaskRuntime]) -> ClusterResult:
        """Serve a task stream (the historical per-request surface).

        Without batching configured this is *the* legacy event loop,
        bit-for-bit (the golden suites run through here).  With
        ``ClusterConfig.batching`` set, each task is promoted to a
        single-slice job and served by the gang loop, where the router
        may coalesce and shard dispatches.
        """
        if self.batching is None:
            return self._run_tasks(tasks)
        return self.run_jobs([Job.single(task) for task in tasks])

    def run_jobs(self, jobs: Sequence[Job]) -> ClusterResult:
        """Serve a job stream (the gang-of-slices surface).

        A stream of single-slice jobs with batching off replays the
        legacy task path exactly -- same events, same floats -- and the
        jobs are settled from their runtimes afterwards.  Any multi-slice
        job, or any batching config, engages the gang loop, which
        requires an online routing (gang placement reads live backlogs).
        """
        if not jobs:
            raise ValueError("need at least one job")
        seen: set = set()
        for job in jobs:
            for member in job.requests:
                if member.task_id in seen:
                    raise ValueError(
                        f"duplicate task id {member.task_id} across jobs"
                    )
                seen.add(member.task_id)
        if self.batching is None and all(job.is_single for job in jobs):
            result = self._run_tasks([job.source for job in jobs])
            rejected_ids = {task.task_id for task in result.rejected_tasks}
            for job in jobs:
                if job.source.task_id in rejected_ids:
                    job.state = JobState.REJECTED
                else:
                    job.state = JobState.DONE
                    job.dispatch_time = job.source.first_dispatch_time
                    job.completion_time = job.source.completion_time
                    job.slices[0].device_id = result.assignments.get(
                        job.source.task_id
                    )
            return dataclasses.replace(result, jobs=tuple(jobs))
        if self.routing not in ONLINE_ROUTINGS:
            raise ValueError(
                "multi-slice jobs and router batching dispatch against live "
                f"device backlogs; use an online routing, not "
                f"{self.routing.value}"
            )
        return self._run_gangs(jobs)

    # ------------------------------------------------------------------
    # Execution: the legacy shared event loop (tasks only)
    # ------------------------------------------------------------------
    def _run_tasks(self, tasks: Sequence[TaskRuntime]) -> ClusterResult:
        if not tasks:
            raise ValueError("need at least one task")
        # Guard against task-id collisions up front: a duplicate would
        # silently overwrite its twin's row in `assignments` and leave
        # the completion count short of `total`, hanging the loop.
        seen_ids: set = set()
        for task in tasks:
            if task.task_id in seen_ids:
                raise ValueError(
                    f"duplicate task id {task.task_id} in workload"
                )
            seen_ids.add(task.task_id)

        self.last_run_parallel = False
        self.last_parallel_stats = None
        if self.workers is not None and self.workers >= 2:
            # Rack-sharded conservative-PDES backend; falls back to this
            # loop transparently for unsupported configurations.
            from repro.sched.parallel import run_parallel, supported_reason

            if supported_reason(self) is None:
                return run_parallel(self, tasks)

        # The ledger only exists for policies that read tokens: attaching
        # one to HPF/SJF/FCFS would just accumulate dead entries (their
        # hooks never drain it).
        ledger: Optional[ClusterTokenLedger] = None
        if self.global_tokens and make_policy(self.policy_name).uses_tokens:
            ledger = ClusterTokenLedger()
        fabric: Optional[Interconnect] = None
        if (
            self.routing is RoutingPolicy.PREEMPTIVE_MIGRATION
            or self.churn is not None
        ):
            # Churn always builds the fabric: proactive evacuation ships
            # checkpoints over it, and cancel_transfers_to() needs it.
            fabric = Interconnect(
                self.interconnect, self.num_devices, rack_of=self.rack_of
            )
            fabric.tracer = self.tracer
        devices = [
            DeviceSim(
                self.simulation_config,
                make_policy(self.policy_name, ledger=ledger),
                device_id=index,
                tracer=self.tracer,
            )
            for index in range(self.num_devices)
        ]
        # The O(log d) control plane.  Built before any injection so the
        # event-change hook sees every arrival; None runs the reference
        # linear-scan loop (the pre-index behavior, decision-identical).
        indexes: Optional[_ClusterIndexes] = None
        if self.use_indexes:
            if self.racks is not None:
                indexes = _RackIndexes(
                    devices, self.racks, verify=self.verify_indexes
                )
            else:
                indexes = _ClusterIndexes(
                    devices, verify=self.verify_indexes
                )
            indexes.tracer = self.tracer
        assignments: Dict[int, int] = {}
        migrations: List[MigrationRecord] = []
        #: Per-device in-flight checkpoint deliveries: (arrival cycle,
        #: estimated remaining cycles, task priority).  Routing counts
        #: them as backlog and a device with one pending is not an
        #: eligible thief; the admission path filters them by priority
        #: like the rest of its class-aware backlog.
        inflight: Dict[int, List[Tuple[float, float, int]]] = {
            index: [] for index in range(self.num_devices)
        }
        total = len(tasks)
        admission = self.admission
        # Records accumulate for the controller's lifetime (the feedback
        # EWMA deliberately keeps learning across runs); slice off this
        # run's decisions so a reused scheduler reports only its own.
        records_start = len(admission.records) if admission else 0
        if admission is not None:
            use_priority, use_sjf = self.admission_prediction_filters()
        rejected: List[TaskRuntime] = []
        lost: List[TaskRuntime] = []
        churn_rt: Optional[_ChurnRuntime] = None
        if self.churn is not None:
            churn_rt = _ChurnRuntime(
                self.churn, devices, indexes, fabric, inflight, assignments,
                migrations, ledger, self.proactive_migration,
            )
            churn_rt.tracer = self.tracer
            churn_rt.fleet.tracer = self.tracer
            churn_rt.profiler = self.profiler

            def _place_orphans(
                orphans: Sequence[TaskRuntime], when: float
            ) -> None:
                assert churn_rt is not None
                for task in orphans:
                    if churn_rt.any_accepting():
                        target = self._route_online(
                            devices, when, inflight, indexes
                        )
                        assignments[task.task_id] = target
                        devices[target].inject(task, arrival=when)
                        if indexes is not None:
                            indexes.refresh(devices[target])
                    else:
                        churn_rt.parked.append(task)

            def _replace_parked(when: float) -> None:
                assert churn_rt is not None
                parked, churn_rt.parked = churn_rt.parked, []
                _place_orphans(parked, when)

            churn_rt.on_orphans = _place_orphans
            churn_rt.on_restore = _replace_parked
        #: Admission frontier: a min-heap of (consider_cycles, arrival,
        #: task_id, attempt, task).  Deferred arrivals re-enter with a
        #: later consideration time and a bumped attempt count.
        frontier: List[Tuple[float, float, int, int, TaskRuntime]] = []
        static_assignments: Optional[Dict[int, int]] = None
        if self.routing in STATIC_ROUTINGS:
            static_assignments = self.route(tasks)
            if churn_rt is None:
                # Static strategies know every placement up-front, so
                # inject all arrivals immediately (in workload order, like
                # the single-NPU batch run).  Each device then sees the
                # exact event sequence of simulating its partition in
                # isolation -- in particular its scheduling-period clock
                # stays anchored at its first arrival even if the device
                # drains between two assigned arrivals.
                for task in tasks:
                    target = static_assignments[task.task_id]
                    assignments[task.task_id] = target
                    devices[target].inject(task)
                    if indexes is not None:
                        indexes.refresh(devices[target])
                pending: deque = deque()
            else:
                # Under churn the static placements are still honored,
                # but arrivals feed through the loop one at a time so a
                # placement targeting a doomed/down device can divert to
                # the live least-backlog device at its arrival instant.
                pending = deque(
                    sorted(
                        tasks,
                        key=lambda t: (t.spec.arrival_cycles, t.task_id),
                    )
                )
        else:
            ordered = sorted(
                tasks, key=lambda t: (t.spec.arrival_cycles, t.task_id)
            )
            if admission is None:
                pending = deque(ordered)
            else:
                pending = deque()
                # Sorted by (arrival, task_id) => already a valid heap.
                frontier = [
                    (task.spec.arrival_cycles, task.spec.arrival_cycles,
                     task.task_id, 0, task)
                    for task in ordered
                ]

        arrival_rank = int(_EventKind.ARRIVAL)
        tracer = self.tracer
        sampler = self.sampler
        profiler = self.profiler
        #: Running completion counter -- the O(1) termination check.  The
        #: reference loop keeps the historical O(d) sum below.
        completed_total = 0
        while True:
            # Earliest device event by (time, kind); ties break to the
            # lowest device index.
            device_index: Optional[int] = None
            device_key: Optional[Tuple[float, int]] = None
            if indexes is not None:
                device_index, device_key = indexes.peek_next_device()
            else:
                for index, device in enumerate(devices):
                    key = device.next_event_key()
                    if key is not None and (
                        device_key is None or key < device_key
                    ):
                        device_index, device_key = index, key

            # Availability transitions rank between same-time completions
            # (which fire first: a task finishing at the failure instant
            # finished) and same-time arrivals (which see the post-
            # transition fleet).
            if churn_rt is not None:
                churn_time = churn_rt.peek_time()
                if churn_time is not None:
                    if admission is None:
                        next_arr = (
                            pending[0].spec.arrival_cycles if pending else None
                        )
                    else:
                        next_arr = frontier[0][0] if frontier else None
                    if (
                        device_key is None or device_key > (churn_time, 0)
                    ) and (next_arr is None or churn_time <= next_arr):
                        churn_rt.process_next()
                        continue

            # Route the next arrival only once every device event that
            # logically precedes it has fired: earlier timestamps, plus
            # same-time completions and previously admitted same-time
            # arrivals (kind rank <= ARRIVAL).  Routing then sees exactly
            # the device state a real node agent would see at that
            # instant -- including the effects of simultaneous-burst
            # predecessors admitted moments before.
            if admission is None:
                arrival_due = bool(pending) and (
                    device_key is None
                    or device_key > (pending[0].spec.arrival_cycles, arrival_rank)
                )
            else:
                arrival_due = bool(frontier) and (
                    device_key is None
                    or device_key > (frontier[0][0], arrival_rank)
                )
            if arrival_due:
                if admission is None:
                    task = pending.popleft()
                    if churn_rt is not None and not churn_rt.any_accepting():
                        # Zero surviving capacity: park until a restore
                        # (or account the task lost at quiesce).
                        churn_rt.parked.append(task)
                        continue
                    target = None
                    if static_assignments is not None:
                        target = static_assignments[task.task_id]
                        if not devices[target].accepts_work:
                            target = None  # divert to a live device
                    if target is None:
                        target = self._route_online(
                            devices, task.spec.arrival_cycles, inflight,
                            indexes,
                        )
                    assignments[task.task_id] = target
                    devices[target].inject(task)
                    if indexes is not None:
                        indexes.refresh(devices[target])
                    continue
                consider, _, _, attempt, task = heapq.heappop(frontier)
                if churn_rt is not None and not churn_rt.any_accepting():
                    # Nothing survives to predict against.  Re-consider
                    # at the next availability transition (no attempt
                    # burned -- the defer budget is for backlog, not
                    # outages); with no transition left the task is lost.
                    next_change = churn_rt.peek_time()
                    if next_change is None:
                        lost.append(task)
                        total -= 1
                        admission.on_lost(task)
                    else:
                        heapq.heappush(
                            frontier,
                            (max(consider, next_change),
                             task.spec.arrival_cycles, task.task_id,
                             attempt, task),
                        )
                    continue
                # Admission-aware placement + prediction: the decision is
                # scored against (and the task placed on) the device with
                # the least *class-aware* backlog -- under a preemptive
                # priority policy the arrival will not wait behind queued
                # lower-priority work nor behind same-priority rows a
                # shortest-first rule would serve after it, and counting
                # either would over-reject the very class admission
                # protects.  The filters follow the configured policy
                # (see admission_prediction_filters); under FCFS/RRB the
                # prediction is the plain total backlog.
                min_priority, sjf_within = admission.placement_query(
                    task, use_priority, use_sjf
                )
                target, backlog = self._route_admission(
                    devices, consider, inflight, min_priority, sjf_within,
                    indexes,
                )
                record = admission.decide(task, backlog, consider, attempt)
                if tracer.enabled:
                    tracer.instant(
                        "admission",
                        f"admission {record.decision.value} t{task.task_id}",
                        consider,
                        args={
                            "task": task.task_id,
                            "decision": record.decision.value,
                            "backlog": backlog,
                            "attempt": attempt,
                            "target": target,
                        },
                    )
                if sampler is not None:
                    sampler.inc("admission." + record.decision.value)
                if record.decision is AdmissionDecision.ACCEPT:
                    # admit() rewrites the context estimate to the
                    # feedback-corrected value first, so routing and
                    # per-device scheduling see the corrected number.
                    admission.admit(task)
                    assignments[task.task_id] = target
                    devices[target].inject(task, arrival=consider)
                    if indexes is not None:
                        indexes.refresh(devices[target])
                elif record.decision is AdmissionDecision.DEFER:
                    heapq.heappush(
                        frontier,
                        (consider + admission.config.defer_delay_cycles,
                         task.spec.arrival_cycles, task.task_id,
                         attempt + 1, task),
                    )
                else:
                    rejected.append(task)
                    total -= 1
                continue

            if device_index is None or device_key is None:
                # Quiesced: no events, arrivals, or transitions left
                # (transitions always process above when any remain).
                # Whatever is still parked has no restore coming: lost.
                if churn_rt is not None and churn_rt.parked:
                    for task in churn_rt.parked:
                        lost.append(task)
                        total -= 1
                        if admission is not None:
                            admission.on_lost(task)
                    churn_rt.parked = []
                break
            stepped = devices[device_index]
            now = stepped.step()
            if indexes is not None:
                if profiler is None:
                    indexes.refresh(stepped)
                else:
                    start_ns = time.perf_counter_ns()
                    indexes.refresh(stepped)
                    profiler.add("index", time.perf_counter_ns() - start_ns)
            if stepped.last_completed is not None:
                completed_total += 1
                if sampler is not None:
                    sampler.task_completed(stepped.last_completed)

            if admission is not None and stepped.last_completed is not None:
                # The observation point of the learning-augmented loop:
                # release the class budget and fold (estimate, observed)
                # into the prediction-correction EWMA.
                admission.on_complete(stepped.last_completed)

            # Steal opportunities only appear when a device goes idle
            # (COMPLETE) or stealable work lands on a busy device
            # (ARRIVAL); period ticks and reserved dispatches change
            # neither, so skip the O(devices^2) scan for them.
            if self.routing == RoutingPolicy.WORK_STEALING and (
                stepped.last_event_kind
                in (_EventKind.COMPLETE, _EventKind.ARRIVAL)
            ):
                migrations.extend(
                    self._steal(devices, now, assignments, indexes)
                )
            elif self.routing is RoutingPolicy.PREEMPTIVE_MIGRATION:
                # Migration opportunities additionally appear when a
                # preemption commits (PERIOD/DISPATCH wakes) and when a
                # checkpoint becomes durable (the reserved DISPATCH at
                # trap end), so check after every event; with the indexes
                # that check is an O(1) idle-candidate peek, and only
                # actually-idle devices trigger a candidate walk.
                assert fabric is not None
                migrations.extend(
                    self._migrate(
                        devices, now, assignments, fabric, inflight, ledger,
                        indexes,
                    )
                )

            if churn_rt is not None:
                # A doomed device's own event may have freed the array or
                # the link; revisit its evacuation plan.
                churn_rt.after_step(stepped, now)

            if sampler is not None and now >= sampler.next_due:
                self._sample_obs(sampler, now, devices, fabric, migrations)

            if indexes is not None:
                if completed_total >= total:
                    break
            elif sum(device.completed_count for device in devices) >= total:
                break

        device_results = tuple(device.result() for device in devices)
        transfers = fabric.transfers if fabric is not None else ()
        timeline = ClusterTimeline(
            {
                index: device.timeline
                for index, device in enumerate(devices)
                # A device whose every task migrated away still executed
                # cycles; its trace must survive for conservation checks.
                if device.num_tasks > 0 or len(device.timeline) > 0
            },
            transfers=transfers,
        )
        lost_ids = {task.task_id for task in lost}
        if admission is None:
            if lost_ids:
                executed = tuple(
                    task for task in tasks if task.task_id not in lost_ids
                )
            else:
                executed = tuple(tasks)
            records: Tuple[AdmissionRecord, ...] = ()
        else:
            rejected_ids = {task.task_id for task in rejected}
            executed = tuple(
                task
                for task in tasks
                if task.task_id not in rejected_ids
                and task.task_id not in lost_ids
            )
            records = admission.records[records_start:]
        return ClusterResult(
            tasks=executed,
            device_results=device_results,
            assignments=assignments,
            routing=self.routing.value,
            migrations=tuple(migrations),
            timeline=timeline,
            transfers=transfers,
            admission_records=records,
            rejected_tasks=tuple(rejected),
            events_processed=sum(
                device.events_processed for device in devices
            ),
            lost_tasks=tuple(lost),
            rack_of=self.rack_of,
        )

    # ------------------------------------------------------------------
    # Execution: the gang event loop (jobs, batching, sharding)
    # ------------------------------------------------------------------
    def _run_gangs(self, jobs: Sequence[Job]) -> ClusterResult:
        """The job-surface event loop: coalesce, shard, pipeline, settle.

        Same chronology discipline as :meth:`_run_tasks` -- device events,
        batch-window flushes and router arrivals interleave in timestamp
        order (ties: completions, then flushes, then arrivals) -- plus
        three new mechanics:

        - **Coalescing**: the first arrival of a batch key opens a window;
          compatible arrivals join until the window closes or
          ``max_batch`` fills, then the members merge into one proxy
          runtime (:func:`~repro.sched.job.merge_runtimes`).
        - **Gang dispatch**: a dispatch whose plan has multiple stages
          reserves one device per stage (least predicted backlog,
          distinct while the fleet allows) and injects stage 0.  Each
          stage completion ships the boundary activations to the next
          stage's device over the contended fabric (DMA-out), charges the
          landing cost as the successor's dispatch restore (DMA-in), and
          injects the successor -- the MockSim DMA-in/compute/DMA-out
          idiom, with slices remaining ordinary preemptible tasks.
        - **Settlement**: the final stage's completion settles every
          member request from the proxy (wait accrual, completion time,
          admission budget release + feedback observation).
        """
        batching = self.batching
        ordered = sorted(jobs, key=lambda j: (j.arrival_cycles, j.job_id))
        ledger: Optional[ClusterTokenLedger] = None
        if self.global_tokens and make_policy(self.policy_name).uses_tokens:
            ledger = ClusterTokenLedger()
        needs_fabric = (
            self.routing is RoutingPolicy.PREEMPTIVE_MIGRATION
            or any(job.num_stages > 1 for job in jobs)
            or (batching is not None and batching.shard_stages > 1)
            or self.churn is not None
        )
        fabric: Optional[Interconnect] = None
        if needs_fabric:
            fabric = Interconnect(
                self.interconnect, self.num_devices, rack_of=self.rack_of
            )
            fabric.tracer = self.tracer
        devices = [
            DeviceSim(
                self.simulation_config,
                make_policy(self.policy_name, ledger=ledger),
                device_id=index,
                tracer=self.tracer,
            )
            for index in range(self.num_devices)
        ]
        indexes: Optional[_ClusterIndexes] = None
        if self.use_indexes:
            if self.racks is not None:
                indexes = _RackIndexes(
                    devices, self.racks, verify=self.verify_indexes
                )
            else:
                indexes = _ClusterIndexes(
                    devices, verify=self.verify_indexes
                )
            indexes.tracer = self.tracer
        assignments: Dict[int, int] = {}
        migrations: List[MigrationRecord] = []
        inflight: Dict[int, List[Tuple[float, float, int]]] = {
            index: [] for index in range(self.num_devices)
        }
        admission = self.admission
        records_start = len(admission.records) if admission else 0
        if admission is not None:
            use_priority, use_sjf = self.admission_prediction_filters()
        bandwidth = self.simulation_config.npu.bandwidth_bytes_per_cycle

        frontier: List[Tuple[float, float, int, int, Job]] = []
        if admission is None:
            pending: deque = deque(ordered)
        else:
            pending = deque()
            # Sorted by (arrival, job_id) => already a valid heap.
            frontier = [
                (job.arrival_cycles, job.arrival_cycles, job.job_id, 0, job)
                for job in ordered
            ]

        # Fresh ids for merged proxies and later-stage slices, above every
        # offered id so they can never collide with a request.
        next_id = 1 + max(
            max(m.task_id for job in jobs for m in job.requests),
            max(job.job_id for job in jobs),
        )

        coalesce = (
            batching is not None
            and batching.max_batch > 1
            and batching.window_cycles > 0
        )
        open_batches: Dict[Tuple, List[Job]] = {}
        open_deadline: Dict[Tuple, float] = {}
        flush_heap: List[Tuple[float, int, Tuple]] = []
        flush_seq = 0

        slice_map: Dict[int, Tuple[_GangRun, int]] = {}
        batch_records: List[BatchRecord] = []
        total_jobs = len(jobs)
        settled = 0
        arrival_rank = int(_EventKind.ARRIVAL)
        tracer = self.tracer
        sampler = self.sampler
        profiler = self.profiler
        churn_rt: Optional[_ChurnRuntime] = None
        if self.churn is not None:
            churn_rt = _ChurnRuntime(
                self.churn, devices, indexes, fabric, inflight, assignments,
                migrations, ledger, self.proactive_migration,
            )
            churn_rt.tracer = self.tracer
            churn_rt.fleet.tracer = self.tracer
            churn_rt.profiler = self.profiler

        def route_stage(now: float, used: set) -> int:
            """Least-backlog device for one gang stage, avoiding devices
            already reserved by this gang while the fleet allows.  Doomed
            and down devices (churn) never take a stage while any
            accepting device exists."""
            candidates = [
                d
                for d in range(self.num_devices)
                if d not in used and devices[d].accepts_work
            ]
            if not candidates:
                candidates = [
                    d
                    for d in range(self.num_devices)
                    if devices[d].accepts_work
                ] or list(range(self.num_devices))
            start_ns = time.perf_counter_ns() if profiler is not None else 0
            choice = min(
                candidates,
                key=lambda d: (
                    devices[d].predicted_backlog(now)
                    + self._inbound_backlog(inflight, d, now),
                    d,
                ),
            )
            if profiler is not None:
                profiler.add("route", time.perf_counter_ns() - start_ns)
            if tracer.enabled and tracer.audit_routing:
                self._audit_route(devices, now, inflight, choice, "gang_stage")
            return choice

        def dispatch_gang(
            members: List[Job], now: float, preferred: Optional[int] = None
        ) -> None:
            nonlocal next_id
            if churn_rt is not None and not churn_rt.any_accepting():
                # Zero surviving capacity (e.g. a batch window flushing
                # mid-outage): park the members for the next restore.
                churn_rt.parked.extend(members)
                return
            owner: Optional[Job] = None
            if len(members) == 1 and members[0].num_stages > 1:
                owner = members[0]
                proxy = owner.source
                plans: List[StagePlan] = [s.stage for s in owner.slices]
            else:
                if len(members) == 1:
                    proxy = members[0].source
                else:
                    assert batching is not None
                    proxy = merge_runtimes(
                        [job.source for job in members],
                        task_id=next_id,
                        now=now,
                        marginal_fraction=batching.marginal_fraction,
                        tracer=tracer,
                    )
                    next_id += 1
                shard = 1
                if batching is not None and batching.shard_stages > 1:
                    # Scheduler-visible decision: shard when the dispatch
                    # *looks* big enough to amortize the boundary DMAs.
                    if (
                        proxy.context.estimated_cycles
                        >= batching.min_shard_cycles
                    ):
                        shard = min(batching.shard_stages, self.num_devices)
                if shard > 1:
                    plans = partition_runtime(proxy, shard)
                else:
                    plans = [
                        StagePlan(
                            index=0,
                            profile=proxy.profile,
                            estimated_cycles=max(
                                proxy.context.estimated_cycles, 1e-9
                            ),
                            activation_bytes=0.0,
                        )
                    ]
            slice_ids = [proxy.task_id]
            for _ in plans[1:]:
                slice_ids.append(next_id)
                next_id += 1
            reserved: List[int] = []
            used: set = set()
            for stage in range(len(plans)):
                if stage == 0 and preferred is not None:
                    device = preferred
                else:
                    device = route_stage(now, used)
                used.add(device)
                reserved.append(device)
            gang = _GangRun(members, owner, proxy, plans, slice_ids, reserved)
            if len(plans) == 1:
                stage0: TaskRuntime = proxy
            else:
                stage0 = stage_runtime(proxy, plans[0], slice_ids[0], now)
                if owner is not None:
                    owner.slices[0].runtime = stage0
            gang.runtimes[0] = stage0
            if owner is not None:
                owner.slices[0].device_id = reserved[0]
            devices[reserved[0]].inject(stage0, arrival=now)
            if indexes is not None:
                indexes.refresh(devices[reserved[0]])
            assignments[slice_ids[0]] = reserved[0]
            slice_map[slice_ids[0]] = (gang, 0)
            member_ids = []
            for job in members:
                job.state = JobState.DISPATCHED
                job.dispatch_time = now
                for member in job.requests:
                    member_ids.append(member.task_id)
                    assignments.setdefault(member.task_id, reserved[0])
            batch_records.append(
                BatchRecord(
                    proxy_task_id=slice_ids[0],
                    member_task_ids=tuple(member_ids),
                    dispatch_cycles=now,
                    num_stages=len(plans),
                    devices=tuple(reserved),
                )
            )
            if tracer.enabled:
                tracer.instant(
                    "batch_flush",
                    f"flush {len(members)}j -> d{reserved[0]}",
                    now,
                    device=reserved[0],
                    args={
                        "proxy": slice_ids[0],
                        "members": len(member_ids),
                        "stages": len(plans),
                        "devices": list(reserved),
                    },
                )

        def enqueue_job(
            job: Job, now: float, preferred: Optional[int] = None
        ) -> None:
            nonlocal flush_seq
            if coalesce and job.is_single:
                assert batching is not None
                key = batch_key(job.source.spec)
                open_jobs = open_batches.get(key)
                if open_jobs is not None:
                    open_jobs.append(job)
                    if len(open_jobs) >= batching.max_batch:
                        del open_batches[key]
                        del open_deadline[key]
                        dispatch_gang(open_jobs, now)
                    return
                open_batches[key] = [job]
                deadline = now + batching.window_cycles
                open_deadline[key] = deadline
                heapq.heappush(flush_heap, (deadline, flush_seq, key))
                flush_seq += 1
                return
            dispatch_gang([job], now, preferred)

        def advance_gang(gang: "_GangRun", stage: int, now: float) -> None:
            """Ship stage ``stage``'s boundary tensor and start the next.

            DMA-out is the fabric transfer (contended, FIFO per link);
            DMA-in is the landing cost charged as the successor slice's
            dispatch restore.  A successor landing on the same device
            skips both -- the tensor is already resident.
            """
            nxt = stage + 1
            plan = gang.plans[nxt]
            src = assignments[gang.slice_ids[stage]]
            dst = gang.devices[nxt]
            if not devices[dst].accepts_work:
                # The reserved device was revoked/drained since dispatch.
                if churn_rt is not None and not churn_rt.any_accepting():
                    lose_gang(gang)  # nowhere for the pipeline to go
                    return
                dst = route_stage(now, set())
                gang.devices[nxt] = dst
            activation = gang.plans[stage].activation_bytes
            slice_id = gang.slice_ids[nxt]
            if src != dst and fabric is not None:
                record = fabric.transfer(
                    src, dst, activation, now,
                    task_id=slice_id, purpose="activation",
                )
                arrival = record.end_cycles
                restore = activation / bandwidth
                inflight[dst].append(
                    (arrival, plan.estimated_cycles,
                     int(gang.proxy.context.priority))
                )
                gang.proxy.migrated_bytes_total += activation
            else:
                arrival, restore = now, 0.0
            runtime = stage_runtime(
                gang.proxy, plan, slice_id, arrival, restore
            )
            gang.runtimes[nxt] = runtime
            if gang.owner is not None:
                gang.owner.slices[nxt].runtime = runtime
                gang.owner.slices[nxt].device_id = dst
            devices[dst].inject(runtime, arrival=arrival)
            if indexes is not None:
                indexes.refresh(devices[dst])
            assignments[slice_id] = dst
            slice_map[slice_id] = (gang, nxt)

        def settle_gang(gang: "_GangRun", now: float) -> int:
            first = gang.runtimes[0]
            first_dispatch = (
                first.first_dispatch_time if first is not None else now
            )
            count = 0
            for job in gang.jobs:
                for member in job.requests:
                    if not member.is_done:
                        settle_member(member, now, first_dispatch)
                    if admission is not None:
                        admission.on_complete(member)
                    # Sample per settled *member*, not per merged proxy
                    # or stage slice: tasks.completed and the SLA
                    # counters score each real request exactly once.
                    if sampler is not None:
                        sampler.task_completed(member)
                job.state = JobState.DONE
                job.completion_time = now
                count += 1
            return count

        def lose_gang(gang: "_GangRun") -> None:
            """Account every unfinished job of a destroyed gang as LOST."""
            nonlocal settled
            if gang.lost:
                return
            gang.lost = True
            for job in gang.jobs:
                if job.state in (
                    JobState.DONE, JobState.REJECTED, JobState.LOST
                ):
                    continue
                job.state = JobState.LOST
                settled += 1
                if admission is not None:
                    for member in job.requests:
                        admission.on_lost(member)

        if churn_rt is not None:

            def _gang_orphans(
                orphans: Sequence[TaskRuntime], when: float
            ) -> None:
                # A gang has exactly one live slice at a time (stages are
                # sequential, and an in-flight successor counts as the
                # live one); losing it loses the gang -- pipeline restart
                # from a mid-gang failure is out of scope (documented in
                # docs/failures.md).
                for runtime in orphans:
                    entry = slice_map.get(runtime.task_id)
                    if entry is not None:
                        lose_gang(entry[0])

            def _gang_restore(when: float) -> None:
                assert churn_rt is not None
                parked, churn_rt.parked = churn_rt.parked, []
                for job in parked:
                    enqueue_job(job, when)

            churn_rt.on_orphans = _gang_orphans
            churn_rt.on_restore = _gang_restore

        while True:
            device_index: Optional[int] = None
            device_key: Optional[Tuple[float, int]] = None
            if indexes is not None:
                device_index, device_key = indexes.peek_next_device()
            else:
                for index, device in enumerate(devices):
                    key = device.next_event_key()
                    if key is not None and (
                        device_key is None or key < device_key
                    ):
                        device_index, device_key = index, key

            next_arrival: Optional[float] = None
            if admission is None:
                if pending:
                    next_arrival = pending[0].arrival_cycles
            elif frontier:
                next_arrival = frontier[0][0]

            # Batch-window flushes fire after same-time completions (the
            # flush sees settled devices) and before same-time arrivals
            # (an arrival at exactly the deadline misses its batch).
            flush_at: Optional[float] = None
            flush_key: Optional[Tuple] = None
            while flush_heap:
                at, _, key = flush_heap[0]
                if key not in open_batches or open_deadline[key] != at:
                    heapq.heappop(flush_heap)  # flushed early at max_batch
                    continue
                flush_at, flush_key = at, key
                break

            if churn_rt is not None:
                churn_time = churn_rt.peek_time()
                if churn_time is not None and (
                    device_key is None or device_key > (churn_time, 0)
                ) and (
                    next_arrival is None or churn_time <= next_arrival
                ) and (flush_at is None or churn_time <= flush_at):
                    churn_rt.process_next()
                    continue

            flush_due = flush_at is not None and (
                device_key is None
                or device_key >= (flush_at, arrival_rank)
            )
            if (
                flush_due
                and next_arrival is not None
                and flush_at is not None
                and next_arrival < flush_at
            ):
                flush_due = False  # an earlier router arrival goes first
            if flush_due:
                assert flush_at is not None and flush_key is not None
                heapq.heappop(flush_heap)
                members = open_batches.pop(flush_key)
                del open_deadline[flush_key]
                dispatch_gang(members, flush_at)
                continue

            arrival_due = next_arrival is not None and (
                device_key is None
                or device_key > (next_arrival, arrival_rank)
            )
            if arrival_due:
                if admission is None:
                    job = pending.popleft()
                    enqueue_job(job, job.arrival_cycles)
                    continue
                consider, _, _, attempt, job = heapq.heappop(frontier)
                if churn_rt is not None and not churn_rt.any_accepting():
                    next_change = churn_rt.peek_time()
                    if next_change is None:
                        job.state = JobState.LOST
                        settled += 1
                    else:
                        heapq.heappush(
                            frontier,
                            (max(consider, next_change), job.arrival_cycles,
                             job.job_id, attempt, job),
                        )
                    continue
                task = job.source
                min_priority, sjf_within = admission.placement_query(
                    task, use_priority, use_sjf
                )
                target, backlog = self._route_admission(
                    devices, consider, inflight, min_priority, sjf_within,
                    indexes,
                )
                # Batch-aware prediction: a request that would join an
                # open batch occupies the device for only the marginal
                # fraction of its estimate.
                scale = 1.0
                if (
                    coalesce
                    and job.is_single
                    and batch_key(task.spec) in open_batches
                ):
                    assert batching is not None
                    scale = batching.marginal_fraction
                record = admission.decide(
                    task, backlog, consider, attempt, marginal_scale=scale
                )
                if tracer.enabled:
                    tracer.instant(
                        "admission",
                        f"admission {record.decision.value} j{job.job_id}",
                        consider,
                        args={
                            "job": job.job_id,
                            "task": task.task_id,
                            "decision": record.decision.value,
                            "backlog": backlog,
                            "attempt": attempt,
                            "target": target,
                            "marginal_scale": scale,
                        },
                    )
                if sampler is not None:
                    sampler.inc("admission." + record.decision.value)
                if record.decision is AdmissionDecision.ACCEPT:
                    admission.admit(task)
                    enqueue_job(job, consider, preferred=target)
                elif record.decision is AdmissionDecision.DEFER:
                    heapq.heappush(
                        frontier,
                        (consider + admission.config.defer_delay_cycles,
                         job.arrival_cycles, job.job_id, attempt + 1, job),
                    )
                else:
                    job.state = JobState.REJECTED
                    settled += 1
                continue

            if device_index is None or device_key is None:
                # Quiesced with no restore coming: parked jobs are lost.
                if churn_rt is not None and churn_rt.parked:
                    parked, churn_rt.parked = churn_rt.parked, []
                    for job in parked:
                        job.state = JobState.LOST
                        settled += 1
                        if admission is not None:
                            for member in job.requests:
                                admission.on_lost(member)
                break  # no events, no arrivals, no open windows
            stepped = devices[device_index]
            now = stepped.step()
            if indexes is not None:
                if profiler is None:
                    indexes.refresh(stepped)
                else:
                    start_ns = time.perf_counter_ns()
                    indexes.refresh(stepped)
                    profiler.add("index", time.perf_counter_ns() - start_ns)

            completed = stepped.last_completed
            if completed is not None:
                entry = slice_map.get(completed.task_id)
                if entry is not None:
                    gang, stage = entry
                    if gang.lost:
                        pass  # a destroyed gang's straggler; nothing owed
                    elif stage + 1 < len(gang.plans):
                        advance_gang(gang, stage, now)
                    else:
                        settled += settle_gang(gang, now)

            if self.routing == RoutingPolicy.WORK_STEALING and (
                stepped.last_event_kind
                in (_EventKind.COMPLETE, _EventKind.ARRIVAL)
            ):
                migrations.extend(
                    self._steal(devices, now, assignments, indexes)
                )
            elif self.routing is RoutingPolicy.PREEMPTIVE_MIGRATION:
                assert fabric is not None
                migrations.extend(
                    self._migrate(
                        devices, now, assignments, fabric, inflight, ledger,
                        indexes,
                    )
                )

            if churn_rt is not None:
                churn_rt.after_step(stepped, now)

            if sampler is not None and now >= sampler.next_due:
                self._sample_obs(sampler, now, devices, fabric, migrations)

            if settled >= total_jobs:
                break

        if settled < total_jobs:
            unsettled = [
                job.job_id for job in jobs if job.state
                in (JobState.PENDING, JobState.DISPATCHED)
            ]
            raise RuntimeError(
                f"gang loop quiesced with unsettled jobs: {unsettled}"
            )

        device_results = tuple(device.result() for device in devices)
        transfers = fabric.transfers if fabric is not None else ()
        timeline = ClusterTimeline(
            {
                index: device.timeline
                for index, device in enumerate(devices)
                if device.num_tasks > 0 or len(device.timeline) > 0
            },
            transfers=transfers,
        )
        executed = tuple(
            member
            for job in jobs
            if job.state is JobState.DONE
            for member in job.requests
        )
        rejected = tuple(
            member
            for job in jobs
            if job.state is JobState.REJECTED
            for member in job.requests
        )
        lost_members = tuple(
            member
            for job in jobs
            if job.state is JobState.LOST
            for member in job.requests
        )
        records: Tuple[AdmissionRecord, ...] = ()
        if admission is not None:
            records = admission.records[records_start:]
        return ClusterResult(
            tasks=executed,
            device_results=device_results,
            assignments=assignments,
            routing=self.routing.value,
            migrations=tuple(migrations),
            timeline=timeline,
            transfers=transfers,
            admission_records=records,
            rejected_tasks=rejected,
            events_processed=sum(
                device.events_processed for device in devices
            ),
            jobs=tuple(jobs),
            batches=tuple(batch_records),
            lost_tasks=lost_members,
            rack_of=self.rack_of,
        )

    # ------------------------------------------------------------------
    # Online decisions
    # ------------------------------------------------------------------
    def admission_prediction_filters(self) -> Tuple[bool, bool]:
        """(priority filter on, SJF-within-class filter on) for admission.

        The class-aware backlog model is only valid when the per-device
        policy actually serves that way: the priority filter requires a
        priority-driven policy *with preemption* (under NP even a HIGH
        arrival waits out the running task), and the shortest-first
        refinement requires a policy that ranks by estimated remaining
        time.  FCFS/RRB get the plain total backlog.
        """
        name = self.policy_name.upper()
        preemptive = self.simulation_config.mode is not PreemptionMode.NP
        return (
            preemptive and name in PRIORITY_DRIVEN_POLICIES,
            name in SHORTEST_FIRST_POLICIES,
        )

    def _route_admission(
        self,
        devices: Sequence[DeviceSim],
        now: float,
        inflight: Dict[int, List[Tuple[float, float, int]]],
        min_priority: Optional[int],
        sjf_within: Optional[float],
        indexes: Optional[_ClusterIndexes] = None,
    ) -> Tuple[int, float]:
        """Admission-aware placement: least class-aware backlog.

        Ties break toward the least *total* backlog, then the lowest
        device index -- an interactive arrival usually sees several
        devices with zero same-class work, and the total keeps those
        choices load-balanced.  With no filters active this degenerates
        to exactly :meth:`_route_online`'s rule -- and is then served
        from the backlog index; filtered predictions depend on the
        arrival's own class and estimate, so they take the class-aware
        linear fallback.  Returns the chosen device and its class-aware
        backlog (what the arrival is predicted to wait behind).
        """
        profiler = self.profiler
        start_ns = time.perf_counter_ns() if profiler is not None else 0
        filtered = min_priority is not None or sjf_within is not None
        if indexes is not None and not filtered:
            best_index, best_backlog = indexes.route_min_backlog(
                now, lambda d: self._inbound_backlog(inflight, d, now)
            )
        else:
            best_key: Optional[Tuple[float, float, int]] = None
            best_index = 0
            best_backlog = 0.0
            # The class-aware fallback scans the admission candidates: the
            # whole fleet when flat, the chosen rack under the two-tier
            # frontend (admission predicts against the rack's surviving
            # capacity, per the rack composition contract).
            candidates = (
                indexes.admission_candidates()
                if indexes is not None
                else range(len(devices))
            )
            for index in candidates:
                device = devices[index]
                if not device.accepts_work:
                    continue  # churn: never predict against a doomed device
                class_backlog = device.predicted_backlog(
                    now, min_priority=min_priority,
                    sjf_within_cycles=sjf_within,
                ) + self._inbound_backlog(
                    inflight, index, now, min_priority=min_priority
                )
                if filtered:
                    total_backlog = device.predicted_backlog(
                        now
                    ) + self._inbound_backlog(inflight, index, now)
                else:
                    total_backlog = class_backlog
                key = (class_backlog, total_backlog, index)
                if best_key is None or key < best_key:
                    best_key = key
                    best_index, best_backlog = index, class_backlog
        if profiler is not None:
            profiler.add("admission", time.perf_counter_ns() - start_ns)
        tracer = self.tracer
        if tracer.enabled and tracer.audit_routing:
            self._audit_route(devices, now, inflight, best_index, "admission")
        return best_index, best_backlog

    @staticmethod
    def _inbound_backlog(
        inflight: Dict[int, List[Tuple[float, float, int]]],
        device: int,
        now: float,
        min_priority: Optional[int] = None,
    ) -> float:
        """Estimated cycles of checkpoint deliveries still bound for
        ``device``; landed entries are pruned as a side effect.

        ``min_priority`` mirrors :meth:`DeviceSim.predicted_backlog`'s
        class-aware filter for the admission path: a delivery the
        arrival would outrank on landing does not delay it.  Routing
        always passes None (every inbound byte counts toward placement).
        """
        entries = inflight[device]
        if not entries:
            return 0.0
        live = [entry for entry in entries if entry[0] > now]
        if len(live) != len(entries):
            inflight[device] = live
        return sum(
            est
            for _, est, priority in live
            if min_priority is None or priority >= min_priority
        )

    def _route_online(
        self,
        devices: Sequence[DeviceSim],
        now: float,
        inflight: Dict[int, List[Tuple[float, float, int]]],
        indexes: Optional[_ClusterIndexes] = None,
    ) -> int:
        """Least live predicted backlog; ties to the lowest device index.

        In-flight checkpoint migrations count toward their destination's
        backlog -- the node agent routed them, so it knows they are
        coming even though the device has not admitted them yet.  With
        indexes the argmin comes from the backlog-bound best-first
        search (identical float semantics, candidate devices only).
        """
        profiler = self.profiler
        start_ns = time.perf_counter_ns() if profiler is not None else 0
        if indexes is not None:
            index, _ = indexes.route_min_backlog(
                now, lambda d: self._inbound_backlog(inflight, d, now)
            )
        else:
            index = min(
                (d for d in range(len(devices)) if devices[d].accepts_work),
                key=lambda d: (
                    devices[d].predicted_backlog(now)
                    + self._inbound_backlog(inflight, d, now),
                    d,
                ),
            )
        if profiler is not None:
            profiler.add("route", time.perf_counter_ns() - start_ns)
        tracer = self.tracer
        if tracer.enabled and tracer.audit_routing:
            self._audit_route(devices, now, inflight, index, "route")
        return index

    def _audit_route(
        self,
        devices: Sequence[DeviceSim],
        now: float,
        inflight: Dict[int, List[Tuple[float, float, int]]],
        chosen: int,
        tag: str,
    ) -> None:
        """Decision-audit emission: the chosen device plus the closest
        runner-ups, each with its exact live backlog and the cheap lower
        bound the backlog index keys on.

        Deliberately an O(devices) fleet scan -- audit mode documents
        decisions, it is not on the overhead contract's fast path -- and
        purely observational (``predicted_backlog`` mutates nothing).
        """
        ranked: List[Tuple[float, int, float]] = []
        chosen_backlog = 0.0
        for index in range(len(devices)):
            device = devices[index]
            if not device.accepts_work:
                continue
            backlog = device.predicted_backlog(now) + self._inbound_backlog(
                inflight, index, now
            )
            if index == chosen:
                chosen_backlog = backlog
            else:
                ranked.append((backlog, index, device.backlog_lower_bound()))
        ranked.sort()
        self.tracer.instant(
            "route_audit",
            f"{tag} -> d{chosen}",
            now,
            args={
                "tag": tag,
                "chosen": chosen,
                "chosen_backlog": chosen_backlog,
                "runners_up": [
                    {"device": index, "backlog": backlog, "bound": bound}
                    for backlog, index, bound in ranked[:3]
                ],
            },
        )

    def _sample_obs(
        self,
        sampler,
        now: float,
        devices: Sequence[DeviceSim],
        fabric: Optional[Interconnect],
        migrations: List[MigrationRecord],
    ) -> None:
        """One streaming-metrics tick (:mod:`repro.obs.metrics`).

        Recomputes the fleet gauges from pure accessors --
        ``predicted_backlog`` reads task progress without mutating it,
        ``queue_depth``/``is_busy`` are O(1) -- so sampling never
        perturbs a scheduling decision; only the sampler's own state
        changes.  Runs only when a sampler is configured and its
        interval elapsed, so the un-observed loop never enters here.
        """
        rack_of = self.rack_of
        rack_busy: Optional[List[int]] = None
        if rack_of is not None:
            rack_busy = [0] * (max(rack_of) + 1)
        busy = 0
        queued = 0
        backlog_total = 0.0
        for index, device in enumerate(devices):
            depth = device.queue_depth
            backlog = device.predicted_backlog(now)
            if device.is_busy:
                busy += 1
                if rack_busy is not None:
                    assert rack_of is not None
                    rack_busy[rack_of[index]] += 1
            queued += depth
            backlog_total += backlog
            sampler.set_gauge(f"device{index}.busy", float(device.is_busy))
            sampler.set_gauge(f"device{index}.queue_depth", float(depth))
            sampler.set_gauge(f"device{index}.backlog_cycles", backlog)
        sampler.set_gauge("cluster.utilization", busy / max(1, len(devices)))
        sampler.set_gauge("cluster.queue_depth", float(queued))
        sampler.set_gauge("cluster.backlog_cycles", backlog_total)
        sampler.set_gauge("cluster.migrations", float(len(migrations)))
        if rack_busy is not None:
            for rack, count in enumerate(rack_busy):
                sampler.set_gauge(f"rack{rack}.busy_devices", float(count))
            if fabric is not None:
                for rack, cycles in fabric.uplink_busy_cycles().items():
                    sampler.set_gauge(
                        f"rack{rack}.uplink_busy_cycles", cycles
                    )
        sampler.sample(now)

    def _steal(
        self,
        devices: Sequence[DeviceSim],
        now: float,
        assignments: Dict[int, int],
        indexes: Optional[_ClusterIndexes] = None,
    ) -> List[MigrationRecord]:
        """Profiling shim over :meth:`_steal_moves` (section "steal")."""
        profiler = self.profiler
        if profiler is None:
            return self._steal_moves(devices, now, assignments, indexes)
        start_ns = time.perf_counter_ns()
        moves = self._steal_moves(devices, now, assignments, indexes)
        profiler.add("steal", time.perf_counter_ns() - start_ns)
        return moves

    def _steal_moves(
        self,
        devices: Sequence[DeviceSim],
        now: float,
        assignments: Dict[int, int],
        indexes: Optional[_ClusterIndexes] = None,
    ) -> List[MigrationRecord]:
        """Migrate queued work from backlogged devices to idle ones.

        Each idle device steals at most one task per event (the stolen
        task's arrival event re-triggers the loop, so repeated steals
        drain naturally).  Victim: largest live predicted backlog among
        devices holding stealable tasks; stolen task: largest estimated
        remaining work (ties to the lowest task id).

        With indexes, thieves come from the idle-candidate set (a
        superset of the truly idle; `is_idle(now)` still decides) and
        victims from the steal-candidate set, both walked in ascending
        device order like the reference fleet enumeration -- the common
        nobody-idle event is an O(1) set peek instead of an O(d) scan,
        and a steal never touches a device without queued work.

        Under a rack topology victim selection is locality-aware: an
        in-rack victim always wins, and a cross-rack victim is taken
        only when no rack-local device has stealable work *and* the
        victim's backlog clears the uplink-cost threshold -- pulling
        work across the oversubscribed tier is only worth it when the
        starvation gap exceeds what the uplink would charge.
        """
        moves: List[MigrationRecord] = []
        rack_of = self.rack_of
        if indexes is not None:
            if indexes.verify:
                indexes.verify_candidate_sets(now)
            # No idle thief or no device holding queued work: nothing to
            # move.  The second peek is what keeps the common
            # everyone-idle event O(1) on large fleets -- without it each
            # such event walks every idle device to find no victims.
            if not indexes.idle_candidates or not indexes.steal_candidates:
                return moves
            thieves: Sequence[int] = indexes.idle_candidates.ordered()
        else:
            thieves = range(len(devices))
        for thief_index in thieves:
            thief = devices[thief_index]
            if not thief.is_idle(now):
                continue
            victim_index: Optional[int] = None
            victim_backlog = 0.0
            victim_tasks: List[TaskRuntime] = []
            remote_index: Optional[int] = None
            remote_backlog = 0.0
            remote_tasks: List[TaskRuntime] = []
            victims: Sequence[int] = (
                indexes.steal_candidates.ordered()
                if indexes is not None
                else range(len(devices))
            )
            for index in victims:
                if index == thief_index:
                    continue
                device = devices[index]
                candidates = device.stealable_tasks()
                if not candidates:
                    continue
                backlog = device.predicted_backlog(now)
                if rack_of is None or rack_of[index] == rack_of[thief_index]:
                    if victim_index is None or backlog > victim_backlog:
                        victim_index, victim_backlog = index, backlog
                        victim_tasks = candidates
                elif remote_index is None or backlog > remote_backlog:
                    remote_index, remote_backlog = index, backlog
                    remote_tasks = candidates
            if (
                victim_index is None
                and remote_index is not None
                and remote_backlog >= self.cross_rack_threshold
            ):
                victim_index, victim_backlog = remote_index, remote_backlog
                victim_tasks = remote_tasks
            if victim_index is None:
                continue
            victim = devices[victim_index]
            stolen = max(
                victim_tasks,
                key=lambda t: (t.context.estimated_remaining_cycles, -t.task_id),
            )
            victim.remove_task(stolen.task_id, now)
            thief.inject(stolen, arrival=now)
            if indexes is not None:
                indexes.refresh(victim)
                indexes.refresh(thief)
            assignments[stolen.task_id] = thief_index
            moves.append(
                MigrationRecord(
                    task_id=stolen.task_id,
                    from_device=victim_index,
                    to_device=thief_index,
                    time_cycles=now,
                    kind="steal",
                    bytes_moved=0.0,
                    arrival_cycles=now,
                )
            )
            tracer = self.tracer
            if tracer.enabled:
                tracer.instant(
                    "migration",
                    f"steal t{stolen.task_id} "
                    f"d{victim_index}->d{thief_index}",
                    now,
                    args={
                        "task": stolen.task_id,
                        "from": victim_index,
                        "to": thief_index,
                        "bytes": 0.0,
                        "reason": "steal",
                    },
                )
        return moves

    def _migrate(
        self,
        devices: Sequence[DeviceSim],
        now: float,
        assignments: Dict[int, int],
        fabric: Interconnect,
        inflight: Dict[int, List[Tuple[float, float, int]]],
        ledger: Optional[ClusterTokenLedger],
        indexes: Optional[_ClusterIndexes] = None,
    ) -> List[MigrationRecord]:
        """Profiling shim over :meth:`_migrate_moves` ("migrate")."""
        profiler = self.profiler
        if profiler is None:
            return self._migrate_moves(
                devices, now, assignments, fabric, inflight, ledger, indexes
            )
        start_ns = time.perf_counter_ns()
        moves = self._migrate_moves(
            devices, now, assignments, fabric, inflight, ledger, indexes
        )
        profiler.add("migrate", time.perf_counter_ns() - start_ns)
        return moves

    def _migrate_moves(
        self,
        devices: Sequence[DeviceSim],
        now: float,
        assignments: Dict[int, int],
        fabric: Interconnect,
        inflight: Dict[int, List[Tuple[float, float, int]]],
        ledger: Optional[ClusterTokenLedger],
        indexes: Optional[_ClusterIndexes] = None,
    ) -> List[MigrationRecord]:
        """Pull the most starved migratable task to each idle device.

        Unlike work stealing -- whose moves are free and therefore
        restricted to never-dispatched tasks -- every PREEMPTIVE_MIGRATION
        move crosses the modeled interconnect and is charged real cycles:
        a queued task ships only its Fig-4 context row, a preempted task
        additionally ships its resident checkpoint (CONV/FC activations,
        RNN cell state).  Each idle device with no delivery already
        inbound pulls at most one task per event.

        Candidate choice is cluster-wide and fairness-driven: among every
        QUEUED or (durably checkpointed) PREEMPTED task whose
        contention-aware delivery time beats the wait it faces at home,
        take the highest priority, then most tokens (the most
        slowdown-compensated row), then longest estimated remaining work.
        This is what lets a preempted high-priority victim resume on a
        sibling NPU instead of waiting behind its preemptor.  With
        indexes, thieves walk the idle-candidate set and sources the
        migration-source set (devices holding queued *or* preempted
        work), in ascending device order like the reference enumeration.

        Under a rack topology source selection is locality-aware: only
        when no in-rack source yields an eligible task does the thief
        consider cross-rack sources, and then only tasks whose
        starvation gap (home wait minus delivery delay) clears the
        uplink-cost threshold -- the oversubscribed tier already makes
        ``delivery`` later, and the threshold keeps marginal wins from
        flooding the uplink.
        """
        moves: List[MigrationRecord] = []
        rack_of = self.rack_of
        if indexes is not None:
            if indexes.verify:
                indexes.verify_candidate_sets(now)
            # Same O(1) early-outs as _steal: no thief, or no device
            # holding queued/preempted work, means no move this event.
            if not indexes.idle_candidates or not indexes.source_candidates:
                return moves
            thieves: Sequence[int] = indexes.idle_candidates.ordered()
        else:
            thieves = range(len(devices))
        for thief_index in thieves:
            thief = devices[thief_index]
            if not thief.is_idle(now):
                continue
            # Prune landed deliveries, then gate on *presence* of live
            # ones -- a sum test would let a task whose estimate is
            # already exhausted (remaining floored to 0) slip through.
            self._inbound_backlog(inflight, thief_index, now)
            if inflight[thief_index]:
                continue  # a delivery is already on its way here
            best: Optional[TaskRuntime] = None
            best_key: Optional[Tuple[float, float, float, int]] = None
            best_source: Optional[int] = None
            best_payload = 0.0
            remote: Optional[TaskRuntime] = None
            remote_key: Optional[Tuple[float, float, float, int]] = None
            remote_source: Optional[int] = None
            remote_payload = 0.0
            sources: Sequence[int] = (
                indexes.source_candidates.ordered()
                if indexes is not None
                else range(len(devices))
            )
            for index in sources:
                if index == thief_index:
                    continue
                device = devices[index]
                candidates = device.stealable_tasks()
                candidates += device.migratable_preempted_tasks(now)
                if not candidates:
                    continue
                local = (
                    rack_of is None
                    or rack_of[index] == rack_of[thief_index]
                )
                backlog = device.predicted_backlog(now)
                for task in candidates:
                    context = task.context
                    payload = (
                        task.checkpoint_bytes_resident + CONTEXT_ROW_BYTES
                    )
                    delivery = fabric.estimate_arrival(
                        index, thief_index, payload, now
                    )
                    # Wait the task faces at home: everything live on its
                    # source device except its own remaining work.
                    home_wait = backlog - max(
                        0.0, context.estimated_remaining_cycles
                    )
                    if delivery - now >= home_wait:
                        continue  # the link is the slower queue; stay put
                    key = (
                        float(int(context.priority)),
                        context.tokens,
                        context.estimated_remaining_cycles,
                        -task.task_id,
                    )
                    if local:
                        if best_key is None or key > best_key:
                            best, best_key = task, key
                            best_source, best_payload = index, payload
                    else:
                        gap = home_wait - (delivery - now)
                        if gap < self.cross_rack_threshold:
                            continue  # marginal win; keep the uplink clear
                        if remote_key is None or key > remote_key:
                            remote, remote_key = task, key
                            remote_source, remote_payload = index, payload
            if best is None and remote is not None:
                best, best_key = remote, remote_key
                best_source, best_payload = remote_source, remote_payload
            if best is None or best_source is None:
                continue
            source = devices[best_source]
            # "checkpoint" means saved state actually moved; a migrated
            # KILL victim restarts from scratch and ships only the row.
            ships_checkpoint = best.checkpoint_bytes_resident > 0
            task = source.remove_task(best.task_id, now)
            record = fabric.transfer(
                best_source, thief_index, best_payload, now,
                task_id=task.task_id,
            )
            # In transit the task keeps waiting (MIGRATING accrues like
            # READY): settle the whole flight now so the row lands with
            # its wait/token state carried over, then let the destination
            # flip it READY at the delivery arrival.
            task.context.state = TaskState.MIGRATING
            task.context.accrue_wait(record.end_cycles)
            if ledger is not None:
                # The migration is a settlement read point: the in-flight
                # task stays visible to the cluster-wide threshold.
                ledger.activate(task.task_id, task.context.tokens)
            task.migration_count += 1
            task.migrated_bytes_total += best_payload
            thief.inject(task, arrival=record.end_cycles)
            if indexes is not None:
                indexes.refresh(source)
                indexes.refresh(thief)
            assignments[task.task_id] = thief_index
            inflight[thief_index].append(
                (record.end_cycles, task.context.estimated_remaining_cycles,
                 int(task.context.priority))
            )
            moves.append(
                MigrationRecord(
                    task_id=task.task_id,
                    from_device=best_source,
                    to_device=thief_index,
                    time_cycles=now,
                    kind="checkpoint" if ships_checkpoint else "steal",
                    bytes_moved=best_payload,
                    arrival_cycles=record.end_cycles,
                )
            )
            tracer = self.tracer
            if tracer.enabled:
                tracer.span(
                    "migration",
                    f"migrate t{task.task_id} "
                    f"d{best_source}->d{thief_index}",
                    now,
                    record.end_cycles,
                    args={
                        "task": task.task_id,
                        "from": best_source,
                        "to": thief_index,
                        "bytes": best_payload,
                        "reason": (
                            "checkpoint" if ships_checkpoint else "steal"
                        ),
                    },
                )
        return moves
