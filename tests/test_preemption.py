"""Preemption mechanisms KILL / CHECKPOINT / DRAIN (paper Sec IV)."""

import pytest

from repro.npu.preemption import (
    CheckpointMechanism,
    DrainMechanism,
    KillMechanism,
    mechanism_by_name,
)


@pytest.fixture(scope="module")
def vgg_profile(factory):
    return factory.execution_profile("CNN-VN", 1)


@pytest.fixture(scope="module")
def vgg_b16_profile(factory):
    return factory.execution_profile("CNN-VN", 16)


class TestKill:
    def test_zero_latency(self, config, vgg_profile):
        outcome = KillMechanism(config).preempt(vgg_profile, 0.4 * vgg_profile.total_cycles)
        assert outcome.preemption_latency == 0.0
        assert outcome.checkpoint_bytes == 0.0

    def test_all_progress_lost(self, config, vgg_profile):
        outcome = KillMechanism(config).preempt(vgg_profile, 0.4 * vgg_profile.total_cycles)
        assert outcome.retained_offset == 0.0
        assert outcome.restore_latency == 0.0
        assert not outcome.drains_to_completion

    def test_boundary_snaps_up(self, config, vgg_profile):
        offset = 0.4 * vgg_profile.total_cycles
        outcome = KillMechanism(config).preempt(vgg_profile, offset)
        assert outcome.boundary_offset >= offset


class TestCheckpoint:
    def test_latency_has_trap_plus_dma(self, config, vgg_profile):
        mech = CheckpointMechanism(config)
        outcome = mech.preempt(vgg_profile, 0.5 * vgg_profile.total_cycles)
        assert outcome.preemption_latency >= config.preemption_trap_cycles
        assert outcome.checkpoint_bytes > 0

    def test_progress_retained_at_boundary(self, config, vgg_profile):
        offset = 0.5 * vgg_profile.total_cycles
        outcome = CheckpointMechanism(config).preempt(vgg_profile, offset)
        assert outcome.retained_offset == outcome.boundary_offset
        assert outcome.retained_offset >= offset

    def test_restore_symmetric_to_checkpoint(self, config, vgg_profile):
        mech = CheckpointMechanism(config)
        outcome = mech.preempt(vgg_profile, 0.5 * vgg_profile.total_cycles)
        assert outcome.restore_latency == pytest.approx(
            mech.memory.transfer_cycles(outcome.checkpoint_bytes)
        )

    def test_latency_in_microsecond_regime(self, config, vgg_b16_profile):
        # Sec IV-D: checkpoint preemption latency is in the orders of
        # usecs; worst case when whole UBUF+ACCQ state is checkpointed.
        mech = CheckpointMechanism(config)
        latencies_us = [
            config.cycles_to_us(
                mech.preempt(vgg_b16_profile, f * vgg_b16_profile.total_cycles).preemption_latency
            )
            for f in (0.1, 0.3, 0.5, 0.7, 0.9)
        ]
        assert max(latencies_us) < 100.0
        assert min(latencies_us) > 0.5

    def test_batch16_checkpoints_more_than_batch1(self, config, factory):
        mech = CheckpointMechanism(config)
        b1 = factory.execution_profile("CNN-VN", 1)
        b16 = factory.execution_profile("CNN-VN", 16)
        mean_b1 = sum(
            mech.preempt(b1, f * b1.total_cycles).checkpoint_bytes
            for f in (0.2, 0.5, 0.8)
        )
        mean_b16 = sum(
            mech.preempt(b16, f * b16.total_cycles).checkpoint_bytes
            for f in (0.2, 0.5, 0.8)
        )
        assert mean_b16 > mean_b1

    def test_checkpoint_negligible_vs_inference(self, config, vgg_profile):
        # Sec IV-D's key observation: preemption latency is <2.6% of the
        # network-wide inference time.
        mech = CheckpointMechanism(config)
        outcome = mech.preempt(vgg_profile, 0.5 * vgg_profile.total_cycles)
        assert outcome.preemption_latency / vgg_profile.total_cycles < 0.026


class TestDrain:
    def test_never_switches_early(self, config, vgg_profile):
        outcome = DrainMechanism(config).preempt(vgg_profile, 0.1 * vgg_profile.total_cycles)
        assert outcome.drains_to_completion
        assert outcome.boundary_offset == vgg_profile.total_cycles
        assert outcome.retained_offset == vgg_profile.total_cycles

    def test_zero_overheads(self, config, vgg_profile):
        outcome = DrainMechanism(config).preempt(vgg_profile, 0.9 * vgg_profile.total_cycles)
        assert outcome.preemption_latency == 0.0
        assert outcome.checkpoint_bytes == 0.0
        assert outcome.restore_latency == 0.0


class TestFactory:
    @pytest.mark.parametrize("name,cls", [
        ("kill", KillMechanism),
        ("CHECKPOINT", CheckpointMechanism),
        ("Drain", DrainMechanism),
    ])
    def test_lookup_case_insensitive(self, config, name, cls):
        assert isinstance(mechanism_by_name(name, config), cls)

    def test_unknown_raises(self, config):
        with pytest.raises(KeyError):
            mechanism_by_name("FLUSH", config)
