"""Regenerates paper Fig 9: sequence-length characterization graphs."""

from repro.analysis.experiments.fig09_seqlen import format_fig09, run_fig09


def test_fig09_seqlen(benchmark, emit):
    rows, quality = benchmark.pedantic(
        run_fig09, kwargs=dict(num_samples=1500), rounds=1, iterations=1
    )
    emit("fig09_seqlen", format_fig09(rows, quality))
    # Output lengths stay strongly input-correlated for every application.
    assert all(q.correlation > 0.9 for q in quality)
    # The interquartile band is tight (the Fig 9 observation enabling the
    # lookup-table regressor).
    for row in rows:
        assert row.q75 <= 1.6 * row.q25
