"""AlexNet (CNN-AN): 5 conv + 3 FC layers over 224x224x3 inputs.

Large FC layers (~58M parameters) dominate the memory traffic at small
batch sizes, which is why AlexNet is the short-but-bandwidth-bound point
in the paper's benchmark mix.
"""

from __future__ import annotations

from repro.models.graph import Graph
from repro.models.layers import Conv2D, FullyConnected, InputSpec, Pool2D, Softmax


def build_alexnet() -> Graph:
    graph = Graph("CNN-AN", InputSpec(channels=3, height=224, width=224))
    graph.add(Conv2D("conv1", out_channels=64, kernel=11, stride=4, padding=2))
    graph.add(Pool2D("pool1", kernel=3, stride=2))
    graph.add(Conv2D("conv2", out_channels=192, kernel=5, stride=1, padding=2))
    graph.add(Pool2D("pool2", kernel=3, stride=2))
    graph.add(Conv2D("conv3", out_channels=384, kernel=3, stride=1, padding=1))
    graph.add(Conv2D("conv4", out_channels=256, kernel=3, stride=1, padding=1))
    graph.add(Conv2D("conv5", out_channels=256, kernel=3, stride=1, padding=1))
    graph.add(Pool2D("pool5", kernel=3, stride=2))
    graph.add(FullyConnected("fc6", out_features=4096))
    graph.add(FullyConnected("fc7", out_features=4096))
    graph.add(FullyConnected("fc8", out_features=1000, fused_activation=None))
    graph.add(Softmax("prob"))
    graph.validate()
    return graph
