"""Regenerates paper Sec VI-E: PREMA's parameter-sweep sensitivity."""

from repro.analysis.experiments.sensitivity import (
    format_sensitivity,
    run_sensitivity,
)


def test_sensitivity(benchmark, config, factory, emit):
    points = benchmark.pedantic(
        run_sensitivity,
        kwargs=dict(config=config, factory=factory, num_workloads=8),
        rounds=1,
        iterations=1,
    )
    emit("sensitivity", format_sensitivity(points))
    # Sec VI-E: PREMA's improvements stay intact across every sweep --
    # always better than the NP-FCFS baseline on all three metrics.
    for point in points:
        assert point.antt_improvement > 1.0, point
        assert point.stp_improvement > 1.0, point
        assert point.fairness_improvement > 1.0, point
