"""Rack-scale fleets: topology, two-tier routing, locality, conservation.

Five layers of coverage for the rack composition:

1. *Topology units*: the device->rack map validates shape (contiguous,
   non-empty racks) and answers membership queries.
2. *Flat-fleet equivalence*: one rack over a uniform fabric replays the
   flat cluster bit-for-bit across every routing policy -- the rack
   frontend degenerates exactly (trivial rack pick, whole-fleet device
   heap, all candidates rack-local), pinned through the golden encoding.
   Verify mode cross-checks the router's incremental aggregates against
   recomputation on every consultation of multi-rack runs.
3. *Locality*: steal victims prefer the thief's rack; cross-rack victims
   are taken only when no local work exists and the backlog clears the
   uplink-cost threshold.  The oversubscribed uplink makes cross-rack
   transfers strictly costlier than rack-local ones (the cost cliff).
4. *Hierarchical conservation*: every cross-rack transfer occupies both
   its rack-local link and the shared uplink; cancelling one in flight
   releases time on *all* path links (the PR-7 conservation property,
   extended to the two-level fabric).
5. *Rack-correlated churn*: whole racks go dark together, evacuations
   land cross-rack, and no task is silently dropped -- every offered
   task is exactly one of completed / rejected / lost.
"""

import math

import pytest

import helpers_golden
from repro.npu.config import NPUConfig
from repro.sched.cluster import ClusterConfig, ClusterScheduler, RoutingPolicy
from repro.sched.faults import ChurnSchedule
from repro.sched.interconnect import (
    CONTEXT_ROW_BYTES,
    Interconnect,
    InterconnectConfig,
)
from repro.sched.metrics import compute_cluster_metrics
from repro.sched.rack import RackRouter, RackTopology
from repro.sched.policies import make_policy
from repro.sched.simulator import DeviceSim, PreemptionMode, SimulationConfig
from repro.core.tokens import Priority
from repro.workloads.specs import TaskSpec
from repro.workloads.trace import (
    DEFAULT_MEAN_INTERARRIVAL_CYCLES,
    synthetic_runtime,
    synthetic_trace_runtimes,
)

ONLINE = (
    RoutingPolicy.ONLINE_PREDICTED,
    RoutingPolicy.WORK_STEALING,
    RoutingPolicy.PREEMPTIVE_MIGRATION,
)


def _config() -> SimulationConfig:
    return SimulationConfig(
        npu=NPUConfig(),
        mode=PreemptionMode.DYNAMIC,
        mechanism="CHECKPOINT",
    )


def _trace(num_tasks: int, seed: int, num_devices: int):
    return synthetic_trace_runtimes(
        num_tasks,
        seed=seed,
        mean_interarrival_cycles=(
            DEFAULT_MEAN_INTERARRIVAL_CYCLES / num_devices
        ),
    )


def _run(num_devices, routing, seed=17, num_tasks=96, **cfg_kwargs):
    runtimes = _trace(num_tasks, seed, num_devices)
    config = ClusterConfig(
        policy_name="PREMA", routing=routing, seed=seed, **cfg_kwargs
    )
    scheduler = ClusterScheduler(num_devices, _config(), config=config)
    return scheduler.run(runtimes)


# ----------------------------------------------------------------------
# 1. Topology units
# ----------------------------------------------------------------------
class TestTopology:
    def test_uniform_is_rack_major(self):
        topo = RackTopology.uniform(3, 2)
        assert topo.rack_of == (0, 0, 1, 1, 2, 2)
        assert topo.num_devices == 6
        assert topo.num_racks == 3
        assert topo.devices_in(1) == (2, 3)
        assert topo.rack(4) == 2
        assert topo.same_rack(0, 1)
        assert not topo.same_rack(1, 2)

    def test_from_sizes_uneven(self):
        topo = RackTopology.from_sizes([1, 3])
        assert topo.rack_of == (0, 1, 1, 1)
        assert topo.devices_in(0) == (0,)
        assert topo.devices_in(1) == (1, 2, 3)

    def test_rejects_empty_and_gapped_racks(self):
        with pytest.raises(ValueError):
            RackTopology(rack_of=())
        with pytest.raises(ValueError, match="contiguous"):
            RackTopology(rack_of=(0, 2))  # rack 1 empty
        with pytest.raises(ValueError, match="negative"):
            RackTopology(rack_of=(0, -1))
        with pytest.raises(ValueError):
            RackTopology.uniform(0, 4)
        with pytest.raises(ValueError):
            RackTopology.from_sizes([2, 0])

    def test_scheduler_rejects_mismatched_topology(self):
        with pytest.raises(ValueError, match="covers"):
            ClusterScheduler(
                8,
                _config(),
                config=ClusterConfig(
                    routing=RoutingPolicy.ONLINE_PREDICTED,
                    racks=RackTopology.uniform(2, 2),
                ),
            )

    def test_scheduler_rejects_linear_loop_with_racks(self):
        with pytest.raises(ValueError, match="use_indexes"):
            ClusterScheduler(
                4,
                _config(),
                config=ClusterConfig(
                    routing=RoutingPolicy.ONLINE_PREDICTED,
                    racks=RackTopology.uniform(2, 2),
                    use_indexes=False,
                ),
            )


# ----------------------------------------------------------------------
# 2. Flat-fleet equivalence + verify mode
# ----------------------------------------------------------------------
@pytest.mark.parametrize("routing", list(RoutingPolicy))
def test_single_rack_replays_flat_cluster(routing):
    """1 rack x N over a uniform fabric == racks=None, bit for bit."""
    flat = _run(8, routing, racks=None)
    racked = _run(8, routing, racks=RackTopology.uniform(1, 8))
    assert racked.assignments == flat.assignments
    assert racked.events_processed == flat.events_processed
    assert helpers_golden._encode_cluster_v2(
        racked
    ) == helpers_golden._encode_cluster_v2(flat)
    assert racked.rack_of == (0,) * 8
    assert flat.rack_of is None


@pytest.mark.parametrize("routing", ONLINE)
def test_multi_rack_verify_mode(routing):
    """verify_indexes cross-checks the rack router's incremental sums
    and the in-rack argmin against reference scans on every event."""
    result = _run(
        16,
        routing,
        num_tasks=128,
        racks=RackTopology.uniform(4, 4),
        verify_indexes=True,
    )
    assert len(result.tasks) == 128
    assert result.rack_of == RackTopology.uniform(4, 4).rack_of


def test_multi_rack_uneven_verify_mode():
    result = _run(
        7,
        RoutingPolicy.WORK_STEALING,
        num_tasks=84,
        racks=RackTopology.from_sizes([1, 2, 4]),
        verify_indexes=True,
    )
    assert len(result.tasks) == 84


def test_router_incremental_sums_match_recompute():
    topo = RackTopology.uniform(2, 2)
    bounds = [0.0, 0.0, 0.0, 0.0]
    router = RackRouter(topo, bounds)
    moves = [
        (0, 5.0), (2, 3.0), (1, 7.0), (0, 2.0), (3, math.inf),
        (2, 0.0), (3, 4.0), (1, math.inf), (0, math.inf), (1, 1.0),
    ]
    for device, new in moves:
        old = bounds[device]
        bounds[device] = new
        router.update(device, old, new)
        router.verify_sums(bounds)
    # rack 0 holds {inf, 1.0} -> key 1.0; rack 1 holds {0.0, 4.0} -> 4.0.
    assert router.pick_rack() == 0
    assert router.rack_key(0) == pytest.approx(1.0)
    assert router.rack_key(1) == pytest.approx(4.0)


def test_router_all_racks_dark_returns_none():
    topo = RackTopology.uniform(2, 1)
    bounds = [0.0, 0.0]
    router = RackRouter(topo, bounds)
    for device in (0, 1):
        old = bounds[device]
        bounds[device] = math.inf
        router.update(device, old, math.inf)
    assert router.pick_rack() is None


# ----------------------------------------------------------------------
# 3. Locality
# ----------------------------------------------------------------------
def _make_device(device_id: int) -> DeviceSim:
    return DeviceSim(_config(), make_policy("PREMA"), device_id=device_id)


def _load_device(device: DeviceSim, num_tasks: int, cycles: float) -> None:
    """Inject ``num_tasks`` same-size tasks at t=0 and process their
    arrivals: the first runs, the rest sit QUEUED (stealable)."""
    base = device.device_id * 100
    for offset in range(num_tasks):
        spec = TaskSpec(
            task_id=base + offset,
            benchmark=f"syn{base + offset}",
            batch=1,
            priority=Priority.MEDIUM,
            arrival_cycles=0.0,
        )
        device.inject(synthetic_runtime(spec, cycles), arrival=0.0)
    for _ in range(num_tasks):
        device.step()
    assert len(device.stealable_tasks()) == num_tasks - 1


def _steal_fixture(threshold):
    """2 racks x 2: device 0 idle, device 1 (local) lightly backlogged,
    device 2 (remote) heavily backlogged, device 3 busy."""
    scheduler = ClusterScheduler(
        4,
        _config(),
        config=ClusterConfig(
            routing=RoutingPolicy.WORK_STEALING,
            racks=RackTopology.uniform(2, 2),
            cross_rack_threshold_cycles=threshold,
        ),
    )
    devices = [_make_device(i) for i in range(4)]
    _load_device(devices[1], 2, 1.0e5)
    _load_device(devices[2], 6, 1.0e5)
    _load_device(devices[3], 2, 1.0e5)
    return scheduler, devices


def test_steal_prefers_rack_local_victim():
    scheduler, devices = _steal_fixture(threshold=0.0)
    moves = scheduler._steal(devices, 0.0, {})
    thief_moves = [m for m in moves if m.to_device == 0]
    assert len(thief_moves) == 1
    # Device 2's backlog is far larger, but device 1 shares the rack.
    assert thief_moves[0].from_device == 1


def test_cross_rack_steal_gated_by_threshold():
    # Drain the local victim so only the remote one remains.
    scheduler, devices = _steal_fixture(threshold=math.inf)
    for task in list(devices[1].stealable_tasks()):
        devices[1].remove_task(task.task_id, 0.0)
    moves = scheduler._steal(devices, 0.0, {})
    assert [m for m in moves if m.to_device == 0] == []

    scheduler, devices = _steal_fixture(threshold=0.0)
    for task in list(devices[1].stealable_tasks()):
        devices[1].remove_task(task.task_id, 0.0)
    moves = scheduler._steal(devices, 0.0, {})
    thief_moves = [m for m in moves if m.to_device == 0]
    assert len(thief_moves) == 1
    assert thief_moves[0].from_device == 2


def test_cross_rack_transfer_sees_cost_cliff():
    config = InterconnectConfig.pcie_gen3(1.0e9).oversubscribed(8.0)
    local = config.transfer_cycles(1.0e6)
    cross = config.cross_rack_transfer_cycles(1.0e6)
    assert cross > 4.0 * local  # 8:1 oversubscription dominates
    fabric = Interconnect(config, 4, rack_of=(0, 0, 1, 1))
    assert not fabric.is_cross_rack(0, 1)
    assert fabric.is_cross_rack(0, 2)
    intra = fabric.transfer(0, 1, 1.0e6, 0.0)
    inter = fabric.transfer(2, 3, 1.0e6, 0.0)  # other rack: uncontended
    crossed = fabric.transfer(0, 2, 1.0e6, 1.0e12)
    intra_cost = intra.end_cycles - intra.start_cycles
    assert intra_cost == pytest.approx(inter.end_cycles - inter.start_cycles)
    assert crossed.end_cycles - crossed.start_cycles > 4.0 * intra_cost
    assert crossed.cross_rack and not intra.cross_rack


def test_default_threshold_derives_from_fabric():
    fabric_config = InterconnectConfig.pcie_gen3(1.0e9).oversubscribed(4.0)
    scheduler = ClusterScheduler(
        4,
        _config(),
        config=ClusterConfig(
            routing=RoutingPolicy.WORK_STEALING,
            racks=RackTopology.uniform(2, 2),
            interconnect=fabric_config,
        ),
    )
    assert scheduler.cross_rack_threshold == pytest.approx(
        fabric_config.cross_rack_transfer_cycles(CONTEXT_ROW_BYTES)
    )


# ----------------------------------------------------------------------
# 4. Hierarchical conservation
# ----------------------------------------------------------------------
def test_cross_rack_transfer_occupies_uplink_and_local_link():
    config = InterconnectConfig.pcie_gen3(1.0e9).oversubscribed(4.0)
    fabric = Interconnect(config, 4, rack_of=(0, 0, 1, 1))
    record = fabric.transfer(0, 2, 1.0e6, 0.0)
    # A second transfer out of rack 0 queues behind the busy uplink.
    follow = fabric.transfer(1, 3, 1.0e6, 1.0)
    assert follow.start_cycles == pytest.approx(record.end_cycles)
    fabric.verify_conservation()


def test_cancelled_cross_rack_transfer_releases_all_path_links():
    config = InterconnectConfig.pcie_gen3(1.0e9).oversubscribed(4.0)
    fabric = Interconnect(config, 4, rack_of=(0, 0, 1, 1))
    record = fabric.transfer(0, 2, 1.0e6, 0.0)
    cut = record.start_cycles + 0.25 * (
        record.end_cycles - record.start_cycles
    )
    freed = fabric.cancel_transfers_to(2, cut)
    assert freed == pytest.approx(record.end_cycles - cut)
    truncated = fabric.transfers[0]
    assert truncated.cancelled
    assert truncated.end_cycles == pytest.approx(cut)
    fabric.verify_conservation()
    # Both the rack-local leg and the uplink are free again at the cut.
    later = fabric.transfer(1, 3, 1.0e6, cut)
    assert later.start_cycles == pytest.approx(cut)
    fabric.verify_conservation()


def test_hierarchical_conservation_end_to_end():
    """A churning 2-rack PREEMPTIVE_MIGRATION run keeps every fabric
    record consistent on every path link (the PR-7 property, extended)."""
    topo = RackTopology.uniform(2, 4)
    churn = ChurnSchedule.generate_rack_correlated(
        topo.rack_of,
        horizon_cycles=3.0e7,
        seed=5,
        revocation_rate=1.0e-7,
        drain_rate=5.0e-8,
        mean_outage_cycles=4.0e6,
        mean_warning_cycles=1.0e6,
    )
    runtimes = _trace(96, 29, 8)
    config = ClusterConfig(
        policy_name="PREMA",
        routing=RoutingPolicy.PREEMPTIVE_MIGRATION,
        seed=29,
        racks=topo,
        churn=churn,
        interconnect=InterconnectConfig.pcie_gen3(1.0e9).oversubscribed(4.0),
        verify_indexes=True,
    )
    result = ClusterScheduler(8, _config(), config=config).run(runtimes)
    offered = {t.task_id for t in result.offered_tasks}
    assert len(offered) == 96


# ----------------------------------------------------------------------
# 5. Rack-correlated churn
# ----------------------------------------------------------------------
class TestRackCorrelatedChurn:
    def test_rack_events_cover_every_member_identically(self):
        topo = RackTopology.uniform(3, 4)
        schedule = ChurnSchedule.generate_rack_correlated(
            topo.rack_of,
            horizon_cycles=1.0e8,
            seed=3,
            fault_rate=2.0e-8,
            revocation_rate=2.0e-8,
            mean_outage_cycles=1.0e6,
            mean_warning_cycles=1.0e6,
        )
        assert len(schedule) > 0
        by_window = {}
        for event in schedule:
            key = (event.warn_cycles, event.down_cycles,
                   event.restore_cycles, event.kind)
            by_window.setdefault(key, []).append(event.device)
        for key, members in by_window.items():
            racks = {topo.rack(d) for d in members}
            assert len(racks) == 1, key
            assert sorted(members) == list(topo.devices_in(racks.pop()))

    def test_one_device_per_rack_degenerates_to_flat_generate(self):
        kwargs = dict(
            horizon_cycles=1.0e8,
            seed=11,
            fault_rate=1.5e-8,
            revocation_rate=1.5e-8,
            drain_rate=1.0e-8,
            mean_outage_cycles=2.0e6,
            mean_warning_cycles=5.0e5,
            never_restore_probability=0.1,
        )
        flat = ChurnSchedule.generate(6, **kwargs)
        racked = ChurnSchedule.generate_rack_correlated(
            tuple(range(6)), **kwargs
        )
        assert racked.events == flat.events

    def test_keeps_one_rack_alive(self):
        topo = RackTopology.uniform(2, 2)
        schedule = ChurnSchedule.generate_rack_correlated(
            topo.rack_of,
            horizon_cycles=1.0e9,
            seed=7,
            revocation_rate=1.0e-6,
            mean_outage_cycles=1.0e8,
            never_restore_probability=0.5,
        )
        # max_concurrent_down_racks defaults to num_racks - 1 = 1: the
        # two racks' windows never overlap.
        windows = {}
        for event in schedule:
            windows.setdefault(
                topo.rack(event.device),
                (event.warn_cycles, event.restore_cycles),
            )
        spans = sorted(windows.values())
        for (w1, r1), (w2, r2) in zip(spans, spans[1:]):
            assert r1 <= w2 or r2 <= w1

    def test_no_silent_loss_under_rack_churn(self):
        topo = RackTopology.uniform(2, 4)
        churn = ChurnSchedule.generate_rack_correlated(
            topo.rack_of,
            horizon_cycles=4.0e7,
            seed=13,
            fault_rate=5.0e-8,
            revocation_rate=5.0e-8,
            mean_outage_cycles=5.0e6,
            mean_warning_cycles=1.0e6,
            never_restore_probability=0.25,
        )
        runtimes = _trace(120, 41, 8)
        offered_ids = {t.task_id for t in runtimes}
        config = ClusterConfig(
            policy_name="PREMA",
            routing=RoutingPolicy.PREEMPTIVE_MIGRATION,
            seed=41,
            racks=topo,
            churn=churn,
            verify_indexes=True,
        )
        result = ClusterScheduler(8, _config(), config=config).run(runtimes)
        completed = {t.task_id for t in result.tasks}
        rejected = {t.task_id for t in result.rejected_tasks}
        lost = {t.task_id for t in result.lost_tasks}
        assert completed | rejected | lost == offered_ids
        assert completed.isdisjoint(rejected)
        assert completed.isdisjoint(lost)
        assert rejected.isdisjoint(lost)


# ----------------------------------------------------------------------
# Rack metrics
# ----------------------------------------------------------------------
def test_rack_metrics_from_churned_run():
    topo = RackTopology.uniform(2, 4)
    churn = ChurnSchedule.generate_rack_correlated(
        topo.rack_of,
        horizon_cycles=3.0e7,
        seed=19,
        drain_rate=1.0e-7,
        mean_outage_cycles=5.0e6,
        mean_warning_cycles=2.0e6,
    )
    runtimes = _trace(96, 23, 8)
    config = ClusterConfig(
        policy_name="PREMA",
        routing=RoutingPolicy.PREEMPTIVE_MIGRATION,
        seed=23,
        racks=topo,
        churn=churn,
        interconnect=InterconnectConfig.pcie_gen3(1.0e9).oversubscribed(4.0),
    )
    result = ClusterScheduler(8, _config(), config=config).run(runtimes)
    metrics = compute_cluster_metrics(result)
    cross = [t for t in result.transfers if t.cross_rack]
    assert metrics.cross_rack_migration_bytes == pytest.approx(
        sum(t.num_bytes for t in cross)
    )
    if cross:
        assert metrics.mean_uplink_utilization > 0.0
    assert set(metrics.per_rack_attainment) <= {0, 1}
    assert metrics.per_rack_attainment  # someone completed somewhere
    for value in metrics.per_rack_attainment.values():
        assert 0.0 <= value <= 1.0


# ----------------------------------------------------------------------
# Per-event cost at rack scale
# ----------------------------------------------------------------------
#: The ISSUE-8 acceptance gate: quadrupling the fleet (and the rack
#: count) must less than double the measured per-event cost.  The
#: pre-ordered-idle-structure control plane failed this at >1k devices.
MAX_RACK_SCALE_GROWTH = 2.0

TASKS_PER_DEVICE = 8


def _us_per_event(num_devices: int, racks: RackTopology, seed: int = 31):
    import time

    best = float("inf")
    for attempt in range(2):  # best-of-2 absorbs scheduler hiccups
        runtimes = _trace(
            num_devices * TASKS_PER_DEVICE, seed + attempt, num_devices
        )
        config = ClusterConfig(
            policy_name="PREMA",
            routing=RoutingPolicy.WORK_STEALING,
            seed=seed,
            racks=racks,
        )
        scheduler = ClusterScheduler(num_devices, _config(), config=config)
        start = time.perf_counter()
        result = scheduler.run(runtimes)
        elapsed = time.perf_counter() - start
        assert len(result.tasks) == num_devices * TASKS_PER_DEVICE
        best = min(best, 1e6 * elapsed / result.events_processed)
    return best


def test_per_event_cost_flat_from_256_to_1024_devices():
    """Two-tier routing keeps per-event cost flat into the 1024-device
    tier (32 racks): the O(log r) frontend plus the ordered idle
    structure, not a fleet scan, must dominate the control plane."""
    small = _us_per_event(256, RackTopology.uniform(8, 32))
    large = _us_per_event(1024, RackTopology.uniform(32, 32))
    assert large <= small * MAX_RACK_SCALE_GROWTH, (
        f"per-event cost grew {large / small:.1f}x from 256 to 1024 "
        f"devices ({small:.1f} -> {large:.1f} us/event): the rack-scale "
        "control plane is scaling with the fleet size again"
    )


def test_flat_run_yields_zero_rack_metrics():
    result = _run(4, RoutingPolicy.ONLINE_PREDICTED, num_tasks=32)
    metrics = compute_cluster_metrics(result)
    assert metrics.cross_rack_migration_bytes == 0.0
    assert metrics.mean_uplink_utilization == 0.0
    assert metrics.per_rack_attainment == {}
