"""Sequence-length profiles (Fig 9 substitutes) and their statistics."""

import pytest

from repro.models.sequences import (
    BENCHMARK_PROFILE,
    PROFILE_SPECS,
    SequenceProfile,
    generate_profile,
    geomean,
    linear_profile,
)


class TestGenerateProfile:
    @pytest.mark.parametrize("app", sorted(PROFILE_SPECS))
    def test_deterministic_by_seed(self, app):
        a = generate_profile(app, num_samples=100, seed=3)
        b = generate_profile(app, num_samples=100, seed=3)
        assert a.samples == b.samples

    def test_different_seeds_differ(self):
        a = generate_profile("en-de", num_samples=100, seed=3)
        b = generate_profile("en-de", num_samples=100, seed=4)
        assert a.samples != b.samples

    @pytest.mark.parametrize("app", sorted(PROFILE_SPECS))
    def test_positive_correlation(self, app):
        profile = generate_profile(app, num_samples=600)
        assert profile.correlation() > 0.8

    def test_ratio_ordering_matches_languages(self):
        # Chinese character outputs are much longer than German words,
        # Korean shorter than the English input (Fig 9 a-c shapes).
        def mean_ratio(app):
            profile = generate_profile(app, num_samples=600)
            return sum(o / i for i, o in profile.samples) / len(profile.samples)

        assert mean_ratio("en-zh") > mean_ratio("en-de") > mean_ratio("en-ko")

    def test_asr_compresses(self):
        profile = generate_profile("asr", num_samples=600)
        ratios = [o / i for i, o in profile.samples]
        assert sum(ratios) / len(ratios) < 1.0

    def test_unknown_application_raises(self):
        with pytest.raises(KeyError):
            generate_profile("en-fr")

    def test_bad_sample_count_raises(self):
        with pytest.raises(ValueError):
            generate_profile("en-de", num_samples=0)

    def test_benchmark_profile_mapping_complete(self):
        assert set(BENCHMARK_PROFILE.values()) <= set(PROFILE_SPECS)


class TestProfileQueries:
    def test_outputs_for_known_input(self):
        profile = generate_profile("en-de", num_samples=200)
        outs = profile.outputs_for(profile.input_lengths[0])
        assert outs and all(o > 0 for o in outs)

    def test_outputs_for_unknown_raises(self):
        profile = generate_profile("en-de", num_samples=200)
        with pytest.raises(KeyError):
            profile.outputs_for(9999)

    def test_quartiles_ordered(self):
        profile = generate_profile("en-zh", num_samples=600)
        for q25, median, q75 in profile.quartiles_by_input().values():
            assert q25 <= median <= q75

    def test_rejects_empty_profile(self):
        with pytest.raises(ValueError):
            SequenceProfile(application="x", samples=())

    def test_rejects_nonpositive_lengths(self):
        with pytest.raises(ValueError):
            SequenceProfile(application="x", samples=((0, 5),))


class TestLinearProfileAndGeomean:
    def test_linear_profile_identity(self):
        profile = linear_profile([5, 10, 15])
        assert profile.outputs_for(10) == [10]

    def test_geomean_basic(self):
        assert geomean([2, 8]) == pytest.approx(4.0)

    def test_geomean_rejects_empty_and_nonpositive(self):
        with pytest.raises(ValueError):
            geomean([])
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])
