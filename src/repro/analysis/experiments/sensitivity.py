"""Sec VI-E: sensitivity of PREMA to batch size, scheduling period, and
arrival contention.

The paper reports that PREMA's improvements stay >= 6.7x/6.2x/1.4x in
ANTT/fairness/STP across its sensitivity sweeps.  Each sweep here re-runs
Dynamic-PREMA vs NP-FCFS over a fresh ensemble with one knob changed.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

from repro.analysis.reporting import format_table
from repro.core.scheduler import SchedulerConfig
from repro.npu.config import NPUConfig
from repro.sched.metrics import improvement_over_baseline
from repro.sched.policies import make_policy
from repro.sched.prepare import TaskFactory
from repro.sched.simulator import NPUSimulator, PreemptionMode, SimulationConfig
from repro.sched.metrics import aggregate_metrics
from repro.workloads.generator import WorkloadGenerator


@dataclasses.dataclass(frozen=True)
class SensitivityPoint:
    """PREMA-vs-NP-FCFS improvements at one swept parameter value."""

    sweep: str
    value: str
    antt_improvement: float
    fairness_improvement: float
    stp_improvement: float


def _improvements(
    workloads,
    factory: TaskFactory,
    config: NPUConfig,
    scheduler: Optional[SchedulerConfig] = None,
) -> Tuple[float, float, float]:
    scheduler = scheduler or SchedulerConfig()
    baseline_sim = NPUSimulator(
        SimulationConfig(npu=config, mode=PreemptionMode.NP, scheduler=scheduler),
        make_policy("FCFS"),
    )
    prema_sim = NPUSimulator(
        SimulationConfig(
            npu=config, mode=PreemptionMode.DYNAMIC, scheduler=scheduler
        ),
        make_policy("PREMA", scheduler),
    )
    base_runs = []
    prema_runs = []
    for workload in workloads:
        base_tasks = factory.build_workload(workload)
        baseline_sim.run(base_tasks)
        base_runs.append(base_tasks)
        prema_tasks = factory.build_workload(workload)
        prema_sim.run(prema_tasks)
        prema_runs.append(prema_tasks)
    baseline = aggregate_metrics(base_runs)
    prema = aggregate_metrics(prema_runs)
    improvement = improvement_over_baseline(prema, baseline)
    return (
        improvement["antt"],
        improvement["fairness"],
        improvement["stp"],
    )


def run_sensitivity(
    config: Optional[NPUConfig] = None,
    factory: Optional[TaskFactory] = None,
    num_workloads: int = 8,
    num_tasks: int = 8,
    seed: int = 15,
    batches: Sequence[int] = (1, 4, 16),
    periods_ms: Sequence[float] = (0.1, 0.25, 1.0),
    windows_ms: Sequence[float] = (10.0, 20.0, 40.0),
) -> List[SensitivityPoint]:
    config = config or NPUConfig()
    factory = factory or TaskFactory(config)
    points: List[SensitivityPoint] = []

    for batch in batches:
        workloads = WorkloadGenerator(
            seed=seed, batch_choices=(batch,)
        ).generate_many(num_workloads, num_tasks=num_tasks)
        antt, fairness, stp = _improvements(workloads, factory, config)
        points.append(
            SensitivityPoint("batch", str(batch), antt, fairness, stp)
        )

    base_workloads = WorkloadGenerator(seed=seed).generate_many(
        num_workloads, num_tasks=num_tasks
    )
    for period_ms in periods_ms:
        scheduler = SchedulerConfig(
            period_cycles=config.ms_to_cycles(period_ms)
        )
        antt, fairness, stp = _improvements(
            base_workloads, factory, config, scheduler
        )
        points.append(
            SensitivityPoint("period_ms", str(period_ms), antt, fairness, stp)
        )

    for window_ms in windows_ms:
        workloads = WorkloadGenerator(
            seed=seed, arrival_window_cycles=config.ms_to_cycles(window_ms)
        ).generate_many(num_workloads, num_tasks=num_tasks)
        antt, fairness, stp = _improvements(workloads, factory, config)
        points.append(
            SensitivityPoint("window_ms", str(window_ms), antt, fairness, stp)
        )
    return points


def format_sensitivity(points: Sequence[SensitivityPoint]) -> str:
    return format_table(
        ("sweep", "value", "ANTT_impr", "fairness_impr", "STP_impr"),
        [
            (p.sweep, p.value, p.antt_improvement, p.fairness_improvement,
             p.stp_improvement)
            for p in points
        ],
        title="Sec VI-E: Dynamic-PREMA vs NP-FCFS under parameter sweeps",
    )
