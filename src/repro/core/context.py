"""The inference task context table (paper Fig 4).

One :class:`TaskContext` row per co-located task, tracking exactly the
fields of Fig 4: TaskID, priority, token count, executed time, waited
time, estimated time, and state.  The multi-task simulator owns a table of
these; the PREMA policy core reads/writes it.  The TaskID doubles as the
ASID the MMU uses for memory protection (Sec IV-A) -- modeled here as the
table key.

The table keeps an **incremental ready-queue index**: ``ready()`` used to
scan and sort every row ever admitted (completed rows included), which
made each scheduler wake O(total tasks) on long arrival traces.  Rows now
notify their owning table on every ``state`` assignment (``state`` is a
property), so index maintenance costs O(log r) search plus a C-speed
list shift bounded by the *ready* population r -- never by how many
tasks have come and gone -- and ``ready()`` costs O(r).
"""

from __future__ import annotations

import bisect
import dataclasses
import enum
from typing import Dict, Iterator, List, Optional

from repro.core.tokens import Priority, initial_tokens


class TaskState(enum.Enum):
    """Lifecycle of a dispatched inference task inside the NPU scheduler.

    ``MIGRATING`` marks a context row in flight between two devices'
    tables: its checkpoint is crossing the cluster interconnect, so it is
    owned by no table, yet it keeps *waiting* (transit time is part of
    the slowdown the token economy compensates).  The destination device
    flips it back to ``READY`` at re-admission.
    """

    READY = "ready"
    RUNNING = "running"
    CHECKPOINTING = "checkpointing"
    MIGRATING = "migrating"
    DONE = "done"


@dataclasses.dataclass
class TaskContext:
    """One row of the inference task context table (Fig 4)."""

    task_id: int
    priority: Priority
    #: Benchmark/model name (scheduler-visible request metadata).
    benchmark: str = ""
    #: Scheduling tokens (Algorithm 2); initialized from the priority.
    tokens: float = 0.0
    #: Cycles of useful execution retained so far.
    executed_cycles: float = 0.0
    #: Cycles spent waiting in the ready queue.
    waited_cycles: float = 0.0
    #: Predicted network-wide execution time (Algorithm 1 output).
    estimated_cycles: float = 0.0
    state: TaskState = TaskState.READY
    #: Simulation timestamp of the last waited/executed accounting update.
    last_update_cycles: float = 0.0
    #: Waiting accrued since the last token grant (Algorithm 2 line 7).
    waited_since_grant: float = 0.0

    def __post_init__(self) -> None:
        if self.task_id < 0:
            raise ValueError("task_id must be >= 0")
        if self.tokens == 0.0:
            self.tokens = float(initial_tokens(self.priority))

    @property
    def estimated_remaining_cycles(self) -> float:
        """Estimated work left (Algorithm 3 lines 1-2), floored at zero."""
        return max(0.0, self.estimated_cycles - self.executed_cycles)

    def grant_tokens(self, amount: float) -> None:
        if amount < 0:
            raise ValueError("token grants must be >= 0")
        self.tokens += amount
        self.waited_since_grant = 0.0

    def accrue_wait(self, now_cycles: float) -> None:
        """Account waiting time up to ``now_cycles`` (READY tasks only).

        ``last_update_cycles`` may legitimately sit in the future: a task
        preempted at scheduler-wake time re-enters the ready queue at the
        (later) tile-boundary commit, so accruals before that instant are
        no-ops rather than negative waits.

        ``MIGRATING`` rows accrue like ``READY`` ones: a task in transit
        over the interconnect is still waiting for service, and dropping
        that span would violate the "a migrated task never loses accrued
        wait" invariant the cluster tests pin.
        """
        delta = now_cycles - self.last_update_cycles
        if delta <= 0:
            return
        if self._state in (TaskState.READY, TaskState.MIGRATING):
            self.waited_cycles += delta
            self.waited_since_grant += delta
        self.last_update_cycles = now_cycles


def _state_get(self: TaskContext) -> TaskState:
    return self._state


def _state_set(self: TaskContext, value: TaskState) -> None:
    self.__dict__["_state"] = value
    table = self.__dict__.get("_owner")
    if table is not None:
        table._reindex(self)


# ``state`` stays a dataclass field (constructor keyword, repr, eq) but
# reads/writes go through a property so the owning ContextTable can keep
# its ready-queue index in sync with *direct* assignments -- the runtime
# layer (TaskRuntime.dispatch/record_preemption/complete) and tests both
# assign ``row.state`` without going through the table.
TaskContext.state = property(_state_get, _state_set)  # type: ignore[assignment]


class ContextTable:
    """The preemption module's task table: id -> row (Fig 4).

    Maintains an id-sorted index of READY rows (bisect over a compact
    int list: O(log r) search + memmove-cheap shift, r = ready rows) and
    the set of RUNNING rows, updated on every state assignment of an
    owned row.  A row can be owned by at most one table at a time
    (``add`` claims it, ``remove`` releases it) -- exactly the
    simulator's migration lifecycle.
    """

    def __init__(self) -> None:
        self._rows: Dict[int, TaskContext] = {}
        self._ready_ids: List[int] = []
        self._ready_set: set = set()
        self._running_ids: set = set()

    def add(self, context: TaskContext) -> None:
        if context.task_id in self._rows:
            raise ValueError(f"duplicate task id {context.task_id}")
        self._rows[context.task_id] = context
        context.__dict__["_owner"] = self
        self._reindex(context)

    def remove(self, task_id: int) -> TaskContext:
        if task_id not in self._rows:
            raise KeyError(f"no such task {task_id}")
        context = self._rows.pop(task_id)
        context.__dict__.pop("_owner", None)
        self._drop_from_index(task_id)
        return context

    def _discard_ready(self, task_id: int) -> None:
        if task_id in self._ready_set:
            self._ready_set.discard(task_id)
            index = bisect.bisect_left(self._ready_ids, task_id)
            self._ready_ids.pop(index)

    def _drop_from_index(self, task_id: int) -> None:
        self._discard_ready(task_id)
        self._running_ids.discard(task_id)

    def _reindex(self, context: TaskContext) -> None:
        """Reconcile the indices with ``context``'s current state."""
        task_id = context.task_id
        if self._rows.get(task_id) is not context:
            return  # stale ownership backref; not our row anymore
        if context.state is TaskState.READY:
            if task_id not in self._ready_set:
                self._ready_set.add(task_id)
                bisect.insort(self._ready_ids, task_id)
        else:
            self._discard_ready(task_id)
        if context.state is TaskState.RUNNING:
            self._running_ids.add(task_id)
        else:
            self._running_ids.discard(task_id)

    def __getitem__(self, task_id: int) -> TaskContext:
        return self._rows[task_id]

    def __contains__(self, task_id: int) -> bool:
        return task_id in self._rows

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[TaskContext]:
        return iter(self._rows.values())

    @property
    def has_ready(self) -> bool:
        """O(1): is any row READY?"""
        return bool(self._ready_ids)

    @property
    def ready_count(self) -> int:
        return len(self._ready_ids)

    def ready(self) -> List[TaskContext]:
        """The ReadyQueue of Algorithm 2 (stable by task id = FCFS order).

        O(ready rows): built from the incremental index, independent of
        how many completed rows the table has accumulated.
        """
        rows = self._rows
        return [rows[task_id] for task_id in self._ready_ids]

    def running(self) -> Optional[TaskContext]:
        if not self._running_ids:
            return None
        if len(self._running_ids) == 1:
            return self._rows[next(iter(self._running_ids))]
        # Multiple RUNNING rows only arise in hand-built tables; keep the
        # historical first-in-insertion-order answer.
        for row in self._rows.values():
            if row.state is TaskState.RUNNING:
                return row
        return None

    def sram_bits(self, bits_per_field: int = 64, fields: int = 7) -> int:
        """On-chip storage for the table (Sec VI-F: 448 bits/task)."""
        return bits_per_field * fields * len(self._rows)
