"""Extension bench: proactive migration vs reactive restart under churn.

Runs the ``device_churn`` experiment at full scale (16 seeds, 120 tasks,
4 NPUs in the hog regime, spot-style revocations: ~0.5 ms warnings
against ~50 ms outages) and asserts its headline ordering: at matched
churn schedules, the Parcae discipline — evacuate on the revocation
warning — beats restart-after-the-fact on goodput under churn and on
work lost per run.  The row set lands in
``benchmarks/results/BENCH_device_churn.json`` (uploaded as a CI
artifact by the bench-smoke job, like ``BENCH_sharded_serving.json``).
"""

import json
import pathlib

from repro.analysis.experiments.device_churn import (
    format_device_churn,
    run_device_churn,
)

RESULTS = (
    pathlib.Path(__file__).parent / "results" / "BENCH_device_churn.json"
)


def test_device_churn(benchmark, config, emit):
    rows = benchmark.pedantic(
        run_device_churn,
        kwargs=dict(config=config),
        rounds=1,
        iterations=1,
    )
    emit("device_churn", format_device_churn(rows))
    RESULTS.parent.mkdir(exist_ok=True)
    RESULTS.write_text(
        json.dumps(
            [row.__dict__ for row in rows], indent=2, sort_keys=True
        )
        + "\n"
    )
    by_mode = {r.mode: r for r in rows}
    baseline = by_mode["no-churn"]
    reactive = by_mode["reactive-restart"]
    proactive = by_mode["proactive-migration"]
    # Evacuating on the warning beats restarting after the kill...
    assert proactive.goodput_under_churn > reactive.goodput_under_churn
    assert proactive.work_lost_mcycles < reactive.work_lost_mcycles
    assert proactive.restarts_per_task < reactive.restarts_per_task
    # ...and the no-churn row calibrates what the churn itself costs.
    assert baseline.goodput_under_churn > proactive.goodput_under_churn
    # The levers actually engaged (guards against silently measuring
    # three identical configurations).
    assert reactive.work_lost_mcycles > 0.0
    assert reactive.migrations == 0.0
    assert proactive.migrations > 0.0
