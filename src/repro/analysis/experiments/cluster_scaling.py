"""Extension experiment: node-level scheduling over multiple NPUs.

The paper leaves multi-NPU policy as future work (Sec II-C); this harness
measures it with our event-driven cluster layer: a fixed pool of inference
requests is served by 1/2/4 NPUs under (router x device-scheduler)
combinations, and we report ANTT, makespan, queueing delay, migrations,
and the utilization spread across devices.

Two headline questions:

1. Does the predictor keep paying off *above* the device?  Predictive
   routing (static or online) should beat blind round-robin.
2. Does *online* dispatch -- deciding at each arrival event against live
   device state -- beat the static up-front routing pass, and does
   work stealing recover the remaining imbalance when estimates err?
"""

from __future__ import annotations

import dataclasses
import time
from typing import List, Optional, Sequence

import numpy as np

from repro.analysis.reporting import format_table
from repro.npu.config import NPUConfig
from repro.sched.cluster import ClusterScheduler, RoutingPolicy
from repro.sched.metrics import compute_cluster_metrics
from repro.sched.prepare import TaskFactory
from repro.sched.simulator import PreemptionMode, SimulationConfig
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.trace import (
    DEFAULT_MEAN_INTERARRIVAL_CYCLES,
    synthetic_trace_runtimes,
)

#: The evaluated (router, device policy, preemption mode) combinations:
#: the Kubernetes-default blind baseline, then predictive routing in its
#: three flavours over PREMA devices.
DEFAULT_COMBOS = (
    (RoutingPolicy.ROUND_ROBIN, "FCFS", PreemptionMode.NP),
    (RoutingPolicy.ROUND_ROBIN, "PREMA", PreemptionMode.DYNAMIC),
    (RoutingPolicy.STATIC, "PREMA", PreemptionMode.DYNAMIC),
    (RoutingPolicy.ONLINE_PREDICTED, "PREMA", PreemptionMode.DYNAMIC),
    (RoutingPolicy.WORK_STEALING, "PREMA", PreemptionMode.DYNAMIC),
)


@dataclasses.dataclass(frozen=True)
class ClusterRow:
    """One (devices, router, device-scheduler) measurement."""

    num_devices: int
    routing: str
    device_policy: str
    antt: float
    makespan_ms: float
    mean_queueing_delay_ms: float
    migrations: float
    mean_utilization: float
    utilization_spread: float


def run_cluster_scaling(
    config: Optional[NPUConfig] = None,
    factory: Optional[TaskFactory] = None,
    num_tasks: int = 24,
    num_workloads: int = 4,
    device_counts: Sequence[int] = (1, 2, 4),
    combos: Sequence = DEFAULT_COMBOS,
    seed: int = 33,
) -> List[ClusterRow]:
    config = config or NPUConfig()
    factory = factory or TaskFactory(config)
    workloads = WorkloadGenerator(
        seed=seed, arrival_window_cycles=config.ms_to_cycles(30.0)
    ).generate_many(num_workloads, num_tasks=num_tasks)
    rows: List[ClusterRow] = []
    for num_devices in device_counts:
        for routing, policy, mode in combos:
            antts, makespans, queues, migrations = [], [], [], []
            means, spreads = [], []
            for workload in workloads:
                scheduler = ClusterScheduler(
                    num_devices=num_devices,
                    simulation_config=SimulationConfig(npu=config, mode=mode),
                    policy_name=policy,
                    routing=routing,
                    seed=seed,
                )
                tasks = factory.build_workload(workload)
                result = scheduler.run(tasks)
                metrics = compute_cluster_metrics(result)
                antts.append(metrics.antt)
                makespans.append(config.cycles_to_ms(metrics.makespan_cycles))
                queues.append(
                    config.cycles_to_ms(metrics.mean_queueing_delay_cycles)
                )
                migrations.append(metrics.migration_count)
                means.append(metrics.mean_utilization)
                spreads.append(metrics.utilization_spread)
            rows.append(
                ClusterRow(
                    num_devices=num_devices,
                    routing=routing.value,
                    device_policy=policy,
                    antt=float(np.mean(antts)),
                    makespan_ms=float(np.mean(makespans)),
                    mean_queueing_delay_ms=float(np.mean(queues)),
                    migrations=float(np.mean(migrations)),
                    mean_utilization=float(np.mean(means)),
                    utilization_spread=float(np.mean(spreads)),
                )
            )
    return rows


@dataclasses.dataclass(frozen=True)
class ControlPlaneRow:
    """One (devices, loop variant) control-plane cost measurement."""

    num_devices: int
    routing: str
    indexed: bool
    tasks: int
    events: int
    seconds: float
    us_per_event: float
    tasks_per_sec: float


def run_control_plane_scaling(
    device_counts: Sequence[int] = (4, 64, 256),
    linear_device_counts: Sequence[int] = (4, 256),
    tasks_per_device: int = 10,
    routing: RoutingPolicy = RoutingPolicy.WORK_STEALING,
    seed: int = 47,
) -> List[ControlPlaneRow]:
    """Per-event cost of the cluster loop as the fleet grows.

    Synthetic open-arrival traces (no model building) at *fixed
    per-device load* -- the arrival rate scales with the fleet -- so
    per-device scheduler work per event is constant and any growth in
    the measured per-event cost is control-plane overhead.  The indexed
    loop (`_ClusterIndexes`, O(log d) per event) runs at every device
    count; the preserved pre-index linear-scan loop
    (``use_indexes=False``: O(d) next-event scan and termination sum,
    O(d x live) routing, O(d^2) steal scans) runs at the endpoints of
    ``linear_device_counts`` as the before/after comparison.
    """
    rows: List[ControlPlaneRow] = []
    for num_devices in device_counts:
        variants = [True]
        if num_devices in linear_device_counts:
            variants.append(False)
        for indexed in variants:
            num_tasks = num_devices * tasks_per_device
            runtimes = synthetic_trace_runtimes(
                num_tasks,
                seed=seed,
                mean_interarrival_cycles=(
                    DEFAULT_MEAN_INTERARRIVAL_CYCLES / num_devices
                ),
            )
            scheduler = ClusterScheduler(
                num_devices=num_devices,
                simulation_config=SimulationConfig(
                    npu=NPUConfig(),
                    mode=PreemptionMode.DYNAMIC,
                    mechanism="CHECKPOINT",
                ),
                policy_name="PREMA",
                routing=routing,
                seed=seed,
                use_indexes=indexed,
            )
            start = time.perf_counter()
            result = scheduler.run(runtimes)
            seconds = time.perf_counter() - start
            rows.append(
                ControlPlaneRow(
                    num_devices=num_devices,
                    routing=routing.value,
                    indexed=indexed,
                    tasks=num_tasks,
                    events=result.events_processed,
                    seconds=seconds,
                    us_per_event=1e6 * seconds / result.events_processed,
                    tasks_per_sec=num_tasks / seconds,
                )
            )
    return rows


def format_control_plane(rows: Sequence[ControlPlaneRow]) -> str:
    return format_table(
        ("devices", "routing", "loop", "tasks", "events", "us_per_event",
         "tasks_per_sec"),
        [
            (r.num_devices, r.routing,
             "indexed" if r.indexed else "linear-scan", r.tasks, r.events,
             r.us_per_event, r.tasks_per_sec)
            for r in rows
        ],
        title=(
            "Cluster control plane: per-event cost vs fleet size "
            "(O(log d) indexes vs the pre-index linear scans)"
        ),
    )


def format_cluster_scaling(rows: Sequence[ClusterRow]) -> str:
    return format_table(
        ("devices", "routing", "device_policy", "ANTT", "makespan_ms",
         "queue_ms", "migrations", "mean_util", "util_spread"),
        [
            (r.num_devices, r.routing, r.device_policy, r.antt,
             r.makespan_ms, r.mean_queueing_delay_ms, r.migrations,
             r.mean_utilization, r.utilization_spread)
            for r in rows
        ],
        title="Extension: multi-NPU node-level scheduling (Sec II-C future work)",
    )
