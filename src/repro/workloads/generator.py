"""Random multi-tasked workload construction (paper Sec III).

Methodology, exactly as the paper describes it: randomly select N
inference tasks among the eight benchmark DNNs, draw each task's dispatch
time from a uniform random distribution over an arrival window, and assign
each a random priority among low/medium/high.  RNN tasks additionally draw
an input sequence length from the profiled grid and an *actual* output
length from the observed outputs for that input length (Sec VI's
methodology for modeling dynamic execution lengths).
"""

from __future__ import annotations

import functools
import random
from typing import Dict, Optional, Sequence, Tuple

from repro.core.tokens import Priority
from repro.models.sequences import (
    BENCHMARK_PROFILE,
    SequenceProfile,
    generate_profile,
)
from repro.models.zoo import BENCHMARKS, is_rnn
from repro.workloads.specs import TaskSpec, WorkloadSpec

#: Default arrival window: 10 ms at 700 MHz.  With eight tasks whose
#: isolated times span ~0.5-100 ms (batches mixed over 1/4/16) this
#: produces the heavily contended regime the paper's Figs 11-14 study.
DEFAULT_ARRIVAL_WINDOW_CYCLES = 10e-3 * 700e6

#: Default batch-size mix (Sec III: batch size is a per-task workload
#: parameter drawn from 1/4/16).
DEFAULT_BATCH_CHOICES = (1, 4, 16)


class WorkloadGenerator:
    """Seeded generator of multi-tasked DNN workloads."""

    def __init__(
        self,
        seed: int = 0,
        benchmarks: Sequence[str] = BENCHMARKS,
        batch_choices: Sequence[int] = DEFAULT_BATCH_CHOICES,
        arrival_window_cycles: float = DEFAULT_ARRIVAL_WINDOW_CYCLES,
        profiles: Optional[Dict[str, SequenceProfile]] = None,
    ) -> None:
        if not benchmarks:
            raise ValueError("benchmarks must be non-empty")
        if not batch_choices or any(b <= 0 for b in batch_choices):
            raise ValueError("batch_choices must be positive")
        if arrival_window_cycles < 0:
            raise ValueError("arrival_window_cycles must be >= 0")
        self._rng = random.Random(seed)
        self.benchmarks = tuple(benchmarks)
        self.batch_choices = tuple(batch_choices)
        self.arrival_window_cycles = arrival_window_cycles
        self.profiles = profiles if profiles is not None else default_profiles()

    def generate(self, num_tasks: int = 8, name: str = "") -> WorkloadSpec:
        """Construct one workload of ``num_tasks`` random inference tasks."""
        if num_tasks <= 0:
            raise ValueError("num_tasks must be positive")
        arrivals = sorted(
            self._rng.uniform(0.0, self.arrival_window_cycles)
            for _ in range(num_tasks)
        )
        return self._build_tasks(
            arrivals, name or f"workload-{len(arrivals)}tasks"
        )

    def _build_tasks(
        self, arrivals: Sequence[float], name: str
    ) -> WorkloadSpec:
        """Draw per-task attributes over pre-drawn sorted arrival times.

        Shared by the uniform-window paper workloads and the open-arrival
        trace generators (:mod:`repro.workloads.trace`); the per-task RNG
        call order is part of the seeded-reproducibility contract.
        """
        tasks = []
        for task_id, arrival in enumerate(arrivals):
            benchmark = self._rng.choice(self.benchmarks)
            priority = self._rng.choice(
                (Priority.LOW, Priority.MEDIUM, Priority.HIGH)
            )
            batch = self._rng.choice(self.batch_choices)
            input_len, output_len = self._draw_lengths(benchmark)
            tasks.append(
                TaskSpec(
                    task_id=task_id,
                    benchmark=benchmark,
                    batch=batch,
                    priority=priority,
                    arrival_cycles=arrival,
                    input_len=input_len,
                    actual_output_len=output_len,
                )
            )
        return WorkloadSpec(name=name, tasks=tuple(tasks))

    def generate_many(
        self, num_workloads: int, num_tasks: int = 8
    ) -> Tuple[WorkloadSpec, ...]:
        """The paper's "averaged across 25 simulation runs" ensemble."""
        if num_workloads <= 0:
            raise ValueError("num_workloads must be positive")
        return tuple(
            self.generate(num_tasks=num_tasks, name=f"workload-{index:02d}")
            for index in range(num_workloads)
        )

    def _draw_lengths(
        self, benchmark: str
    ) -> Tuple[Optional[int], Optional[int]]:
        """(input_len, actual_output_len) for RNNs; (None, None) for CNNs.

        The input length is drawn from the profiled grid; the actual
        output length is drawn among the outputs observed for that input
        length when the regression model was built (Sec VI methodology).
        """
        if not is_rnn(benchmark):
            return None, None
        if benchmark == "RNN-SA":
            # Linear app (Fig 8b): unrolled length equals the input length.
            input_len = self._rng.choice(range(5, 55, 5))
            return input_len, input_len
        profile = self.profiles[benchmark]
        input_len = self._rng.choice(profile.input_lengths)
        output_len = self._rng.choice(profile.outputs_for(input_len))
        return input_len, output_len


@functools.lru_cache(maxsize=None)
def default_profiles(
    num_samples: int = 1500, seed: int = 2020
) -> Dict[str, SequenceProfile]:
    """The characterization profiles backing each dynamic-length RNN.

    Cached per ``(num_samples, seed)``: every :class:`WorkloadGenerator`
    and ``TaskFactory`` construction used to regenerate the eight
    1500-sample profiles, which dominated short-run startup.  The returned
    dict is shared -- treat it as read-only.
    """
    return {
        benchmark: generate_profile(app, num_samples=num_samples, seed=seed)
        for benchmark, app in BENCHMARK_PROFILE.items()
    }
