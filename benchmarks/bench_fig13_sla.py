"""Regenerates paper Fig 13: SLA violation rate vs target, nine policies."""

from repro.analysis.experiments.fig13_sla import format_fig13, run_fig13


def test_fig13_sla(benchmark, config, factory, workloads, emit):
    curves = benchmark.pedantic(
        run_fig13,
        kwargs=dict(workloads=workloads, config=config, factory=factory),
        rounds=1,
        iterations=1,
    )
    emit("fig13_sla", format_fig13(curves))
    by_label = {curve.label: curve for curve in curves}
    # Paper Sec VI-C: NP-FCFS violates ~36% at moderate targets while
    # PREMA drops below 10% beyond N=4.
    assert by_label["NP-FCFS"].rate_at(4) > 0.2
    assert by_label["Dynamic-PREMA"].rate_at(4) < 0.10
    # Monotone non-increasing curves for every policy.
    for curve in curves:
        assert list(curve.violation_rates) == sorted(
            curve.violation_rates, reverse=True
        )
