"""Dynamic preemption mechanism selection (paper Algorithm 3).

Once the scheduling policy has picked a candidate that outranks the
running task, the framework decides *how* to hand over the NPU: preempt
via CHECKPOINT, or override the policy and DRAIN (let the running task
finish first).  The decision compares the relative degradation each task
would impose on the other:

    Degradation_current   = candidate.remaining / current.estimated
    Degradation_candidate = current.remaining  / candidate.estimated

If preempting would hurt the current task more than waiting hurts the
candidate (e.g. the current task is nearly done while the candidate is
long), DRAIN wins; otherwise CHECKPOINT.
"""

from __future__ import annotations

import enum

from repro.core.context import TaskContext


class MechanismChoice(enum.Enum):
    """Outcome of Algorithm 3."""

    DRAIN = "DRAIN"
    CHECKPOINT = "CHECKPOINT"


def relative_degradations(
    current: TaskContext, candidate: TaskContext
) -> tuple:
    """(Degradation_current, Degradation_candidate) per Algorithm 3.

    Estimated totals of zero (defensive) degrade to infinity so the
    comparison still resolves deterministically.
    """
    current_remaining = current.estimated_remaining_cycles
    candidate_remaining = candidate.estimated_remaining_cycles
    degradation_current = (
        candidate_remaining / current.estimated_cycles
        if current.estimated_cycles > 0
        else float("inf")
    )
    degradation_candidate = (
        current_remaining / candidate.estimated_cycles
        if candidate.estimated_cycles > 0
        else float("inf")
    )
    return degradation_current, degradation_candidate


def select_mechanism(
    current: TaskContext, candidate: TaskContext
) -> MechanismChoice:
    """Algorithm 3: choose DRAIN or CHECKPOINT for this execution context."""
    degradation_current, degradation_candidate = relative_degradations(
        current, candidate
    )
    if degradation_current > degradation_candidate:
        return MechanismChoice.DRAIN
    return MechanismChoice.CHECKPOINT
