"""Scheduling policies: selection order and preemption intent."""

import pytest

from repro.core.context import TaskContext
from repro.core.tokens import Priority
from repro.sched.policies import (
    POLICY_NAMES,
    FcfsPolicy,
    HpfPolicy,
    PremaPolicy,
    RoundRobinPolicy,
    SjfPolicy,
    TokenPolicy,
    make_policy,
)


def make_row(task_id, priority=Priority.MEDIUM, estimated=1000.0,
             tokens=None, benchmark="CNN-AN"):
    return TaskContext(
        task_id=task_id,
        priority=priority,
        benchmark=benchmark,
        estimated_cycles=estimated,
        tokens=tokens if tokens is not None else 0.0,
    )


class TestFactory:
    @pytest.mark.parametrize("name", POLICY_NAMES)
    def test_all_policies_constructible(self, name):
        policy = make_policy(name)
        assert policy.name == name

    def test_case_insensitive(self):
        assert make_policy("prema").name == "PREMA"

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            make_policy("EDF")

    def test_predictor_flags(self):
        assert not make_policy("FCFS").uses_predictor
        assert not make_policy("RRB").uses_predictor
        assert not make_policy("HPF").uses_predictor
        assert make_policy("TOKEN").uses_predictor
        assert make_policy("SJF").uses_predictor
        assert make_policy("PREMA").uses_predictor


class TestFcfs:
    def test_selects_lowest_id(self):
        policy = FcfsPolicy()
        chosen = policy.select([make_row(3), make_row(1), make_row(2)])
        assert chosen.task_id == 1

    def test_empty_returns_none(self):
        assert FcfsPolicy().select([]) is None

    def test_never_preempts(self):
        policy = FcfsPolicy()
        assert not policy.outranks(make_row(1, Priority.HIGH), make_row(2))


class TestRoundRobin:
    def test_rotates_across_models(self):
        policy = RoundRobinPolicy()
        ready = [
            make_row(0, benchmark="CNN-AN"),
            make_row(1, benchmark="CNN-AN"),
            make_row(2, benchmark="CNN-VN"),
        ]
        first = policy.select(ready)
        assert first.benchmark == "CNN-AN"
        remaining = [r for r in ready if r.task_id != first.task_id]
        second = policy.select(remaining)
        assert second.benchmark == "CNN-VN"
        third = policy.select([r for r in remaining if r.task_id != second.task_id])
        assert third.benchmark == "CNN-AN"

    def test_reset_restarts_rotation(self):
        policy = RoundRobinPolicy()
        ready = [make_row(0, benchmark="A"), make_row(1, benchmark="B")]
        policy.select(ready)
        policy.reset()
        assert policy.select(ready).benchmark == "A"


class TestHpf:
    def test_priority_order(self):
        policy = HpfPolicy()
        ready = [make_row(1, Priority.LOW), make_row(2, Priority.HIGH),
                 make_row(3, Priority.MEDIUM)]
        assert policy.select(ready).task_id == 2

    def test_fcfs_among_equals(self):
        policy = HpfPolicy()
        ready = [make_row(4, Priority.HIGH), make_row(2, Priority.HIGH)]
        assert policy.select(ready).task_id == 2

    def test_preempts_only_strictly_higher(self):
        policy = HpfPolicy()
        assert policy.outranks(make_row(1, Priority.HIGH), make_row(2, Priority.LOW))
        assert not policy.outranks(make_row(1, Priority.HIGH), make_row(2, Priority.HIGH))
        assert not policy.outranks(make_row(1, Priority.LOW), make_row(2, Priority.HIGH))


class TestToken:
    def test_fcfs_among_candidates(self):
        policy = TokenPolicy()
        ready = [make_row(1, tokens=2.0), make_row(2, tokens=8.0),
                 make_row(3, tokens=5.0)]
        # max=8 -> threshold 3 -> candidates {2, 3} -> FCFS picks 2.
        assert policy.select(ready).task_id == 2

    def test_preempts_when_running_falls_below_threshold(self):
        policy = TokenPolicy()
        running = make_row(1, tokens=2.0)
        candidate = make_row(2, tokens=8.0)
        assert policy.outranks(candidate, running, [candidate])

    def test_no_preempt_when_running_is_candidate(self):
        policy = TokenPolicy()
        running = make_row(1, tokens=8.0)
        candidate = make_row(2, tokens=7.0)
        assert not policy.outranks(candidate, running, [candidate])


class TestSjf:
    def test_shortest_estimated_first(self):
        policy = SjfPolicy()
        ready = [make_row(1, estimated=500.0), make_row(2, estimated=100.0)]
        assert policy.select(ready).task_id == 2

    def test_uses_remaining_not_total(self):
        policy = SjfPolicy()
        long_but_almost_done = make_row(1, estimated=1000.0)
        long_but_almost_done.executed_cycles = 990.0
        fresh_short = make_row(2, estimated=100.0)
        assert policy.select([long_but_almost_done, fresh_short]).task_id == 1

    def test_preempts_longer_running(self):
        policy = SjfPolicy()
        assert policy.outranks(make_row(1, estimated=10.0), make_row(2, estimated=100.0))
        assert not policy.outranks(make_row(1, estimated=100.0), make_row(2, estimated=10.0))


class TestPrema:
    def test_combines_tokens_and_shortest_job(self):
        policy = PremaPolicy()
        ready = [
            make_row(1, tokens=8.0, estimated=5000.0),
            make_row(2, tokens=4.0, estimated=100.0),
            make_row(3, tokens=1.0, estimated=10.0),
        ]
        assert policy.select(ready).task_id == 2

    def test_preemption_recommendation_paths(self):
        policy = PremaPolicy()
        weak_running = make_row(1, tokens=1.0, estimated=100.0)
        strong_candidate = make_row(2, tokens=9.0, estimated=5000.0)
        assert policy.outranks(strong_candidate, weak_running, [strong_candidate])
        strong_running = make_row(1, tokens=9.0, estimated=100.0)
        assert not policy.outranks(strong_candidate, strong_running, [strong_candidate])
